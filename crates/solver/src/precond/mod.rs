//! The preconditioner candidates of §IV-A.
//!
//! "The preconditioners of DDA on the GPU prefer the low cost in
//! construction and implementation even if their performance is also
//! usually low." Three candidates are compared in Table I:
//!
//! | | construction | apply | convergence |
//! |---|---|---|---|
//! | [`BlockJacobi`] | trivial (6×6 inverses) | one block-diagonal product | slowest |
//! | [`SsorAi`] | trivial (reuses the block inverses) | two triangular SpMVs | middle |
//! | [`Ilu0`] | expensive factorization | two level-scheduled solves | fastest |
//!
//! ILU wins the iteration count (the paper: 93 vs 141 vs 275) and still
//! loses the total time by an order of magnitude because the triangular
//! solves and the factorization dominate.

mod block_jacobi;
mod identity;
mod ilu0;
mod jacobi;
mod ssor_ai;

pub use block_jacobi::BlockJacobi;
pub use identity::Identity;
pub use ilu0::Ilu0;
pub use jacobi::Jacobi;
pub use ssor_ai::SsorAi;

use dda_simt::Device;

/// Application interface: `z = M⁻¹ r` on the device.
pub trait Preconditioner {
    /// Short name used in reports ("BJ", "SSOR", "ILU").
    fn name(&self) -> &'static str;
    /// Applies the preconditioner.
    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64>;
    /// Flat row-major 6×6 block-diagonal inverses (36 scalars per block
    /// row) when [`Preconditioner::apply`] is exactly the block-diagonal
    /// product `z = D⁻¹ r` — the hook that lets the fused PCG compute `z`
    /// inside its reduction kernel instead of a separate apply launch.
    /// `None` (the default) sends the fused solver down its fallback path.
    fn block_diag_inv(&self) -> Option<&[f64]> {
        None
    }
    /// True when apply is the identity (`z = r`), which the fused PCG also
    /// folds into its reduction kernel.
    fn is_identity(&self) -> bool {
        false
    }
}
