//! Dense 6×6 sub-matrix arithmetic.
//!
//! Each DDA block carries six unknowns — rigid translation `(u0, v0)`,
//! rotation `r0`, and strains `(εx, εy, γxy)` — so every entry of the global
//! stiffness matrix is a 6×6 sub-matrix and every right-hand-side / solution
//! chunk is a [`Vec6`].

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// Degrees of freedom per DDA block.
pub const BLOCK_DOF: usize = 6;

/// A 6-component vector (one block's DOF chunk).
pub type Vec6 = [f64; 6];

/// Adds `b` into `a` component-wise.
pub fn vec6_add_assign(a: &mut Vec6, b: &Vec6) {
    for i in 0..6 {
        a[i] += b[i];
    }
}

/// Scales a [`Vec6`] by `s`.
pub fn vec6_scale(a: &Vec6, s: f64) -> Vec6 {
    let mut out = [0.0; 6];
    for i in 0..6 {
        out[i] = a[i] * s;
    }
    out
}

/// Dot product of two [`Vec6`]s.
pub fn vec6_dot(a: &Vec6, b: &Vec6) -> f64 {
    let mut s = 0.0;
    for i in 0..6 {
        s += a[i] * b[i];
    }
    s
}

/// A dense 6×6 sub-matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block6(pub [[f64; 6]; 6]);

impl Default for Block6 {
    fn default() -> Self {
        Block6::ZERO
    }
}

impl Block6 {
    /// The zero sub-matrix.
    pub const ZERO: Block6 = Block6([[0.0; 6]; 6]);

    /// The identity sub-matrix.
    pub fn identity() -> Block6 {
        let mut m = Block6::ZERO;
        for i in 0..6 {
            m.0[i][i] = 1.0;
        }
        m
    }

    /// Diagonal sub-matrix with the given diagonal.
    pub fn diag(d: &Vec6) -> Block6 {
        let mut m = Block6::ZERO;
        for i in 0..6 {
            m.0[i][i] = d[i];
        }
        m
    }

    /// Outer product `a bᵀ` — the shape of every penalty-spring stiffness
    /// contribution in DDA (`p · e eᵀ` etc.).
    pub fn outer(a: &Vec6, b: &Vec6) -> Block6 {
        let mut m = Block6::ZERO;
        for i in 0..6 {
            for j in 0..6 {
                m.0[i][j] = a[i] * b[j];
            }
        }
        m
    }

    /// Matrix–vector product `A x`.
    pub fn mul_vec(&self, x: &Vec6) -> Vec6 {
        let mut y = [0.0; 6];
        for i in 0..6 {
            let row = &self.0[i];
            let mut s = 0.0;
            for j in 0..6 {
                s += row[j] * x[j];
            }
            y[i] = s;
        }
        y
    }

    /// Transposed product `Aᵀ x` — used for the lower-triangle contribution
    /// of the half-stored symmetric SpMV.
    pub fn tr_mul_vec(&self, x: &Vec6) -> Vec6 {
        let mut y = [0.0; 6];
        for j in 0..6 {
            let xj = x[j];
            for i in 0..6 {
                y[i] += self.0[j][i] * xj;
            }
        }
        y
    }

    /// Transpose.
    pub fn transpose(&self) -> Block6 {
        let mut t = Block6::ZERO;
        for i in 0..6 {
            for j in 0..6 {
                t.0[j][i] = self.0[i][j];
            }
        }
        t
    }

    /// Matrix product `A B`.
    pub fn matmul(&self, rhs: &Block6) -> Block6 {
        let mut m = Block6::ZERO;
        for i in 0..6 {
            for k in 0..6 {
                let a = self.0[i][k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..6 {
                    m.0[i][j] += a * rhs.0[k][j];
                }
            }
        }
        m
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> Block6 {
        let mut m = *self;
        for row in m.0.iter_mut() {
            for v in row.iter_mut() {
                *v *= s;
            }
        }
        m
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// Returns `None` for (numerically) singular sub-matrices. Block-Jacobi
    /// preconditioning inverts every diagonal sub-matrix; DDA keeps them
    /// well-conditioned via the inertia term (§IV-A).
    pub fn inverse(&self) -> Option<Block6> {
        let mut a = self.0;
        let mut inv = Block6::identity().0;
        for col in 0..6 {
            // Partial pivot.
            let mut pivot_row = col;
            let mut best = a[col][col].abs();
            for r in (col + 1)..6 {
                if a[r][col].abs() > best {
                    best = a[r][col].abs();
                    pivot_row = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            a.swap(col, pivot_row);
            inv.swap(col, pivot_row);
            let p = a[col][col];
            for j in 0..6 {
                a[col][j] /= p;
                inv[col][j] /= p;
            }
            for r in 0..6 {
                if r == col {
                    continue;
                }
                let f = a[r][col];
                if f == 0.0 {
                    continue;
                }
                for j in 0..6 {
                    a[r][j] -= f * a[col][j];
                    inv[r][j] -= f * inv[col][j];
                }
            }
        }
        Some(Block6(inv))
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.0
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.0
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// True when symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..6 {
            for j in (i + 1)..6 {
                if (self.0[i][j] - self.0[j][i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Adds `s · I` to the diagonal.
    pub fn add_diag(&mut self, s: f64) {
        for i in 0..6 {
            self.0[i][i] += s;
        }
    }
}

impl Add for Block6 {
    type Output = Block6;
    fn add(self, rhs: Block6) -> Block6 {
        let mut m = self;
        m += rhs;
        m
    }
}

impl AddAssign for Block6 {
    fn add_assign(&mut self, rhs: Block6) {
        for i in 0..6 {
            for j in 0..6 {
                self.0[i][j] += rhs.0[i][j];
            }
        }
    }
}

impl Sub for Block6 {
    type Output = Block6;
    fn sub(self, rhs: Block6) -> Block6 {
        let mut m = self;
        for i in 0..6 {
            for j in 0..6 {
                m.0[i][j] -= rhs.0[i][j];
            }
        }
        m
    }
}

impl Mul for Block6 {
    type Output = Block6;
    fn mul(self, rhs: Block6) -> Block6 {
        Block6::matmul(&self, &rhs)
    }
}

impl Index<(usize, usize)> for Block6 {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.0[i][j]
    }
}

impl IndexMut<(usize, usize)> for Block6 {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.0[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Block6 {
        let mut m = Block6::ZERO;
        for i in 0..6 {
            for j in 0..6 {
                m.0[i][j] = (i * 6 + j) as f64 * 0.5 - 7.0;
            }
            m.0[i][i] += 20.0; // diagonally dominant → invertible
        }
        m
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = sample();
        let i = Block6::identity();
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Block6::identity().scale(2.0);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(m.mul_vec(&x), [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn tr_mul_vec_equals_transpose_mul() {
        let m = sample();
        let x = [1.0, -2.0, 0.5, 3.0, -1.0, 0.25];
        let a = m.tr_mul_vec(&x);
        let b = m.transpose().mul_vec(&x);
        for i in 0..6 {
            assert!((a[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = sample();
        let inv = m.inverse().expect("invertible");
        let prod = m.matmul(&inv);
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (prod.0[i][j] - expect).abs() < 1e-9,
                    "({i},{j}) = {}",
                    prod.0[i][j]
                );
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        assert!(Block6::ZERO.inverse().is_none());
        let mut m = Block6::identity();
        m.0[3][3] = 0.0;
        // Row 3 all-zero → singular.
        assert!(m.inverse().is_none());
    }

    #[test]
    fn outer_product_shape() {
        let a = [1.0, 0.0, 0.0, 0.0, 0.0, 2.0];
        let b = [0.0, 3.0, 0.0, 0.0, 0.0, 0.0];
        let m = Block6::outer(&a, &b);
        assert_eq!(m.0[0][1], 3.0);
        assert_eq!(m.0[5][1], 6.0);
        assert_eq!(m.0[2][2], 0.0);
        // outer(a,b)ᵀ = outer(b,a)
        assert_eq!(m.transpose(), Block6::outer(&b, &a));
    }

    #[test]
    fn outer_with_self_is_symmetric() {
        let e = [1.0, -2.0, 3.5, 0.0, 4.0, -1.0];
        assert!(Block6::outer(&e, &e).is_symmetric(0.0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = Block6::identity().scale(3.0);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn diag_and_add_diag() {
        let mut m = Block6::diag(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.add_diag(10.0);
        assert_eq!(m.0[0][0], 11.0);
        assert_eq!(m.0[5][5], 16.0);
        assert_eq!(m.0[0][1], 0.0);
    }

    #[test]
    fn norms() {
        let m = Block6::identity();
        assert!((m.frobenius() - 6.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(m.max_abs(), 1.0);
    }

    #[test]
    fn vec6_helpers() {
        let mut a = [1.0; 6];
        vec6_add_assign(&mut a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a[5], 7.0);
        assert_eq!(vec6_scale(&a, 2.0)[0], 4.0);
        assert_eq!(vec6_dot(&[1.0; 6], &[2.0; 6]), 12.0);
    }

    #[test]
    fn indexing() {
        let mut m = Block6::ZERO;
        m[(2, 3)] = 5.0;
        assert_eq!(m[(2, 3)], 5.0);
        assert_eq!(m.0[2][3], 5.0);
    }
}
