//! Cell-binned broad phase with displacement-bounded pair caching.
//!
//! The paper's broad phase is the all-pairs sweep of [`super::broad`] —
//! O(n²) in tests and memory, which EXPERIMENTS.md already flags as the
//! term that distorts pipeline speedups past a few hundred blocks.
//! Production GPU DEM codes replace it with a uniform-grid neighbor
//! search built from sort/scan/segment primitives; this module does the
//! same with exactly the primitives `dda_simt::primitives` ships:
//!
//! 1. every block's inflated AABB is binned into the grid cells it
//!    covers (a block spanning many cells emits one `(cell, block)`
//!    entry per cell, so giant blocks are handled exactly);
//! 2. the entries are radix-sorted by cell key ([`sort_pairs_u64`]);
//! 3. cell runs are found with [`segment_starts`];
//! 4. candidate pairs are counted and emitted per entry by a forward
//!    scan of the entry's run, compacted by an exclusive scan, and
//!    radix-sorted into the canonical `(i, j)` lexicographic order the
//!    narrow phase consumes.
//!
//! A pair whose boxes overlap is emitted **exactly once**, in its *owner
//! cell*: the cell `(max(cx₀ᵢ, cx₀ⱼ), max(cy₀ᵢ, cy₀ⱼ))` of the two
//! blocks' minimum covered cells. Overlapping boxes both cover that cell
//! (coverage ranges intersect exactly when the boxes overlap, because
//! `cell_x`/`cell_y` are monotone), and no other shared cell passes the
//! max/max test — so the grid's pair set equals the all-pairs sweep's,
//! element for element. Total modeled work is O(n + E + k·r̄) where E is
//! the entry count (≈ n for median-sized cells) and r̄ the mean run
//! occupancy — O(n + k) instead of the O(n²) flag matrix.
//!
//! # Displacement-bounded caching
//!
//! DDA's loop 2 bounds every accepted step's largest vertex displacement
//! (`StepReport::max_displacement`), so between steps the geometry moves
//! a *known* bounded amount. [`BroadPhaseCache`] exploits that: the grid
//! pass is run with the boxes inflated by `range + slack`, producing a
//! candidate superset; each following step only re-filters the cached
//! candidates by the exact at-`range` overlap test — O(C) with no
//! binning, no sort — while the accumulated per-block motion stays
//! within `slack`. A pair absent from the candidates had a box gap
//! greater than `2·(range + slack)`; after each block has moved at most
//! `M = Σ max_displacementₛ`, its gap is still greater than
//! `2·(range + slack) − 2M ≥ 2·range` while `M ≤ slack` — so the filter
//! over the superset yields *exactly* the all-pairs-at-`range` set and
//! trajectories stay bitwise identical. Once motion may have consumed
//! the slack, the grid pass re-bins and the accumulator resets.
//!
//! All scratch lives in a [`ContactWorkspace`] (one per pipeline/scene),
//! so the serial paths are allocation-free at steady state — the same
//! discipline as `SpmvWorkspace` — and the device paths reuse every
//! host-side buffer the kernels bind.

use super::soa::GeomSoa;
use crate::system::BlockSystem;
use dda_simt::primitives::{compact_indices, scan_exclusive_u32, segment_starts, sort_pairs_u64};
use dda_simt::serial::CpuCounter;
use dda_simt::Device;
use serde::{Deserialize, Serialize};

/// Broad-phase algorithm selection (a [`crate::params::DdaParams`]
/// control). All three modes produce the identical candidate pair set —
/// they differ only in modeled/wall cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BroadPhaseMode {
    /// The paper's O(n²) all-pairs sweep (serial upper-triangular loop /
    /// GPU tiled reshape) — the reference oracle.
    #[default]
    AllPairs,
    /// Uniform-grid cell binning: O(n + k) per step.
    Grid,
    /// Uniform-grid binning plus the displacement-bounded pair cache:
    /// steps inside the slack budget skip binning entirely.
    GridCached,
}

/// Uniform grid layout: origin, square cell edge, and cell counts. Built
/// per binning pass from the inflated boxes' extents; the cell edge is
/// the **median** inflated box extent (max of width/height), so a
/// median-sized block covers a handful of cells regardless of outliers
/// in either direction.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Grid origin (minimum inflated corner).
    pub ox: f64,
    /// Grid origin y.
    pub oy: f64,
    /// Square cell edge length.
    pub cell: f64,
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
}

impl GridSpec {
    /// Builds the grid for `n` raw boxes (flattened `(min_x, min_y,
    /// max_x, max_y)` quadruples) inflated by `inflate` on every side.
    /// `extents` is caller-owned scratch (reused across steps). Returns
    /// `None` for `n == 0`.
    pub fn from_boxes(
        boxes: &[f64],
        n: usize,
        inflate: f64,
        extents: &mut Vec<f64>,
    ) -> Option<GridSpec> {
        if n == 0 {
            return None;
        }
        let mut ox = f64::INFINITY;
        let mut oy = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        let mut my = f64::NEG_INFINITY;
        extents.clear();
        for b in 0..n {
            let x0 = boxes[4 * b] - inflate;
            let y0 = boxes[4 * b + 1] - inflate;
            let x1 = boxes[4 * b + 2] + inflate;
            let y1 = boxes[4 * b + 3] + inflate;
            // f64::min/max skip NaN operands, so a contaminated block
            // cannot poison the grid frame (it bins to cell 0 and its
            // overlap tests are all false, matching the all-pairs sweep).
            ox = ox.min(x0);
            oy = oy.min(y0);
            mx = mx.max(x1);
            my = my.max(y1);
            extents.push((x1 - x0).max(y1 - y0));
        }
        extents.sort_unstable_by(f64::total_cmp);
        let median = extents[n / 2];
        if !(ox.is_finite() && oy.is_finite() && mx.is_finite() && my.is_finite()) {
            // Every box is non-finite: degenerate single-cell grid; the
            // overlap predicate rejects everything, as all-pairs does.
            return Some(GridSpec {
                ox: 0.0,
                oy: 0.0,
                cell: 1.0,
                nx: 1,
                ny: 1,
            });
        }
        let cell = if median.is_finite() && median > 0.0 {
            median
        } else {
            // Degenerate (point blocks): any positive edge works.
            ((mx - ox).max(my - oy) / (n as f64).sqrt()).max(1.0)
        };
        let nx = (((mx - ox) / cell).ceil() as usize).max(1);
        let ny = (((my - oy) / cell).ceil() as usize).max(1);
        Some(GridSpec {
            ox,
            oy,
            cell,
            nx,
            ny,
        })
    }

    /// Cell column of coordinate `x` (clamped into the grid; NaN → 0 via
    /// the saturating float→int cast).
    #[inline]
    pub fn cell_x(&self, x: f64) -> usize {
        (((x - self.ox) / self.cell).floor() as i64).clamp(0, self.nx as i64 - 1) as usize
    }

    /// Cell row of coordinate `y`.
    #[inline]
    pub fn cell_y(&self, y: f64) -> usize {
        (((y - self.oy) / self.cell).floor() as i64).clamp(0, self.ny as i64 - 1) as usize
    }

    /// Covered cell range `(cx0, cx1, cy0, cy1)` of box `b` inflated by
    /// `inflate`.
    #[inline]
    pub fn cover(&self, boxes: &[f64], b: usize, inflate: f64) -> (usize, usize, usize, usize) {
        (
            self.cell_x(boxes[4 * b] - inflate),
            self.cell_x(boxes[4 * b + 2] + inflate),
            self.cell_y(boxes[4 * b + 1] - inflate),
            self.cell_y(boxes[4 * b + 3] + inflate),
        )
    }
}

/// The exact overlap predicate shared by every broad-phase path: boxes
/// `i` and `j` (raw), each inflated by `inflate`, overlap (touching
/// counts). The arithmetic (`min − r`, `max + r`, `≤`) is identical to
/// `Aabb::inflate` + `Aabb::overlaps`, so all paths agree bit for bit.
#[inline]
pub fn boxes_overlap(boxes: &[f64], i: usize, j: usize, inflate: f64) -> bool {
    let (ix0, iy0, ix1, iy1) = (
        boxes[4 * i] - inflate,
        boxes[4 * i + 1] - inflate,
        boxes[4 * i + 2] + inflate,
        boxes[4 * i + 3] + inflate,
    );
    let (jx0, jy0, jx1, jy1) = (
        boxes[4 * j] - inflate,
        boxes[4 * j + 1] - inflate,
        boxes[4 * j + 2] + inflate,
        boxes[4 * j + 3] + inflate,
    );
    ix0 <= jx1 && jx0 <= ix1 && iy0 <= jy1 && jy0 <= iy1
}

/// Persistent candidate-pair cache keyed on accumulated block motion.
/// See the module docs for the validity argument.
///
/// # Precision invariant
///
/// The validity argument above is a *geometric* one over fp64 AABBs and
/// fp64 accumulated motion, and it must stay that way regardless of
/// [`SolverPrecision`](dda_solver::SolverPrecision): the solver's `Mixed`
/// mode demotes only the *matrix value* arrays inside the equation-solving
/// module — block geometry, displacement bounds, `range`, `slack`, and
/// this cache's `motion` accumulator are never narrowed. Were the slack
/// accounting ever run in fp32, a rounded-down motion sum could keep the
/// cache "valid" after the true motion consumed the slack, silently
/// dropping contact candidates. The precision knob therefore threads no
/// further than the PCG kernels, and the slack arithmetic here is
/// precision-independent by construction (regression-tested in
/// `tests/solver_precision.rs`).
#[derive(Debug, Default)]
pub struct BroadPhaseCache {
    /// Cached candidate pairs (overlapping at `range + slack`), sorted.
    candidates: Vec<(u32, u32)>,
    /// Packed `(i << 32) | j` mirror of `candidates` for device filters.
    cand_keys: Vec<u64>,
    /// Inflation the candidates were built at minus the slack.
    range: f64,
    /// Per-block slack margin the candidates were built with.
    slack: f64,
    /// Accumulated worst-case per-block motion since the last build.
    motion: f64,
    /// Number of blocks at build time (geometry-shape guard).
    n_blocks: usize,
    built: bool,
    /// Steps served from the cache without re-binning.
    pub hits: u64,
    /// Grid builds (first build included).
    pub rebuilds: u64,
}

impl BroadPhaseCache {
    /// True when the cached candidates still bound the at-`range` pair
    /// set for `n` blocks.
    pub fn valid(&self, range: f64, slack: f64, n: usize) -> bool {
        self.built
            && self.n_blocks == n
            && self.range == range
            && self.slack == slack
            && self.motion <= self.slack
    }

    /// Records an accepted step's maximum vertex displacement. Every
    /// AABB coordinate moved by at most `maxd`, so the candidate set
    /// stays a superset of the at-`range` pairs while `Σ maxd ≤ slack`.
    pub fn note_motion(&mut self, maxd: f64) {
        if maxd.is_finite() {
            self.motion += maxd;
        } else {
            // Unbounded motion: force a rebuild.
            self.motion = f64::INFINITY;
        }
    }

    /// Drops the cached candidates (external geometry change — restore,
    /// slot reuse, block insertion).
    pub fn invalidate(&mut self) {
        self.built = false;
    }
}

/// Reusable broad-phase scratch: one per pipeline (or per batch scene).
/// Hoists every per-step allocation of the broad-phase paths — the box
/// mirror, the grid entries, the flag/count buffers, and the pair list —
/// so steady-state detection allocates nothing on the serial paths and
/// reuses all host-side kernel buffers on the device paths.
#[derive(Debug, Default)]
pub struct ContactWorkspace {
    /// Raw AABB quadruples `(min_x, min_y, max_x, max_y)` per block.
    pub boxes: Vec<f64>,
    /// Broad-phase output: candidate pairs `(i, j)`, `i < j`, sorted.
    pub pairs: Vec<(u32, u32)>,
    /// The displacement-bounded candidate cache.
    pub cache: BroadPhaseCache,
    /// The class-sorted contact-scheduling cache (used when
    /// [`crate::params::DdaParams::contact_order`] is `ClassSorted`).
    pub order: super::order::ContactOrderCache,
    // Grid scratch.
    extents: Vec<f64>,
    entries: Vec<(u64, u32)>,
    counts: Vec<u32>,
    cell_keys: Vec<u64>,
    cell_vals: Vec<u32>,
    // All-pairs GPU scratch (triangular flag matrix).
    pub(crate) flags: Vec<u32>,
}

impl ContactWorkspace {
    /// Fresh workspace (all buffers empty; they grow to steady-state
    /// capacity on the first step and are reused afterwards).
    pub fn new() -> ContactWorkspace {
        ContactWorkspace::default()
    }

    /// Mirrors the current block AABBs into [`ContactWorkspace::boxes`].
    fn load_boxes_host(&mut self, sys: &BlockSystem) {
        let n = sys.len();
        self.boxes.clear();
        self.boxes.reserve(4 * n);
        for b in &sys.blocks {
            let bb = b.aabb();
            self.boxes
                .extend_from_slice(&[bb.min.x, bb.min.y, bb.max.x, bb.max.y]);
        }
    }
}

// ---------------------------------------------------------------------------
// Serial grid broad phase
// ---------------------------------------------------------------------------

/// Core of the serial grid pass: bins `n` boxes inflated by `inflate`,
/// emits the exact overlapping pair set into `out` (sorted), and charges
/// `counter` with the O(n + E + considered) work. Scratch comes from the
/// split-borrowed workspace fields so the cached path can target
/// `cache.candidates` without aliasing.
#[allow(clippy::too_many_arguments)]
fn grid_pairs_serial_core(
    boxes: &[f64],
    n: usize,
    inflate: f64,
    extents: &mut Vec<f64>,
    entries: &mut Vec<(u64, u32)>,
    out: &mut Vec<(u32, u32)>,
    counter: &mut CpuCounter,
) {
    out.clear();
    if n < 2 {
        counter.flop(4 * n as u64);
        counter.bytes(32 * n as u64);
        return;
    }
    let spec = GridSpec::from_boxes(boxes, n, inflate, extents).expect("n >= 2");
    entries.clear();
    for i in 0..n {
        let (cx0, cx1, cy0, cy1) = spec.cover(boxes, i, inflate);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                entries.push(((cy * spec.nx + cx) as u64, i as u32));
            }
        }
    }
    entries.sort_unstable();
    let e_count = entries.len() as u64;

    // Walk cell runs; each unordered pair is tested in every shared cell
    // but emitted only by its owner cell.
    let mut considered: u64 = 0;
    let mut s = 0usize;
    while s < entries.len() {
        let key = entries[s].0;
        let mut t = s + 1;
        while t < entries.len() && entries[t].0 == key {
            t += 1;
        }
        for a in s..t {
            let i = entries[a].1 as usize;
            let (icx0, _, icy0, _) = spec.cover(boxes, i, inflate);
            for &(_, jv) in entries.iter().take(t).skip(a + 1) {
                considered += 1;
                let j = jv as usize;
                if !boxes_overlap(boxes, i, j, inflate) {
                    continue;
                }
                let (jcx0, _, jcy0, _) = spec.cover(boxes, j, inflate);
                let owner = (icy0.max(jcy0) * spec.nx + icx0.max(jcx0)) as u64;
                if owner == key {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    out.push((lo as u32, hi as u32));
                }
            }
        }
        s = t;
    }
    out.sort_unstable();

    // Work model: binning (box read + cell math + entry write), the
    // O(E log E) key sort, and the per-candidate overlap/owner tests
    // (same 4-flop/8-coordinate cost the all-pairs sweep charges per
    // test, plus the owner-cell comparison).
    let log_e = (64 - e_count.max(2).leading_zeros()) as u64;
    counter.flop(12 * n as u64 + 2 * e_count * log_e + 12 * considered);
    counter.bytes(
        32 * n as u64 + 12 * e_count * (1 + log_e / 2) + 64 * considered + 8 * out.len() as u64,
    );
}

/// Serial uniform-grid broad phase: the exact pair set of
/// [`super::broad_phase_serial`], in O(n + k) modeled work. Fills
/// `ws.pairs`.
pub fn grid_broad_phase_serial(
    sys: &BlockSystem,
    range: f64,
    counter: &mut CpuCounter,
    ws: &mut ContactWorkspace,
) {
    ws.load_boxes_host(sys);
    let n = sys.len();
    let ContactWorkspace {
        boxes,
        pairs,
        extents,
        entries,
        ..
    } = ws;
    grid_pairs_serial_core(boxes, n, range, extents, entries, pairs, counter);
}

/// Serial grid broad phase through the displacement-bounded cache:
/// re-bins at `range + slack` only when accumulated motion may have
/// invalidated the candidates; other steps just re-filter them at
/// `range`. Fills `ws.pairs`.
pub fn cached_broad_phase_serial(
    sys: &BlockSystem,
    range: f64,
    slack: f64,
    counter: &mut CpuCounter,
    ws: &mut ContactWorkspace,
) {
    ws.load_boxes_host(sys);
    let n = sys.len();
    if !ws.cache.valid(range, slack, n) {
        let ContactWorkspace {
            boxes,
            cache,
            extents,
            entries,
            ..
        } = ws;
        grid_pairs_serial_core(
            boxes,
            n,
            range + slack,
            extents,
            entries,
            &mut cache.candidates,
            counter,
        );
        cache.range = range;
        cache.slack = slack;
        cache.motion = 0.0;
        cache.n_blocks = n;
        cache.built = true;
        cache.rebuilds += 1;
    } else {
        ws.cache.hits += 1;
    }
    // Exact at-`range` filter over the candidate superset.
    ws.pairs.clear();
    let c_count = ws.cache.candidates.len() as u64;
    for &(i, j) in &ws.cache.candidates {
        if boxes_overlap(&ws.boxes, i as usize, j as usize, range) {
            ws.pairs.push((i, j));
        }
    }
    counter.flop(4 * c_count);
    counter.bytes(32 * n as u64 + 64 * c_count + 8 * ws.pairs.len() as u64);
}

// ---------------------------------------------------------------------------
// Device grid broad phase
// ---------------------------------------------------------------------------

/// Device grid pass core: bins, sorts, and emits into `out` (sorted pair
/// list identical to the all-pairs sweep at `inflate`). The workspace
/// buffers are reused across steps; the primitive calls (radix sort,
/// scans, segment detection) model their own launches.
#[allow(clippy::too_many_arguments)]
fn grid_pairs_gpu_core(
    dev: &Device,
    boxes: &[f64],
    n: usize,
    inflate: f64,
    extents: &mut Vec<f64>,
    counts: &mut Vec<u32>,
    cell_keys: &mut Vec<u64>,
    cell_vals: &mut Vec<u32>,
    out: &mut Vec<(u32, u32)>,
) {
    out.clear();
    if n < 2 {
        return;
    }

    // Grid frame: modeled as a small reduction kernel over the boxes (on
    // hardware: min/max reduce + sampled median); the host computes the
    // same spec the serial path uses so all paths bin identically.
    {
        let b_in = dev.bind_ro(boxes);
        dev.launch("grid.spec", n, |lane| {
            let b = lane.gid;
            let _x0 = lane.ld(&b_in, 4 * b);
            let _y0 = lane.ld(&b_in, 4 * b + 1);
            let _x1 = lane.ld(&b_in, 4 * b + 2);
            let _y1 = lane.ld(&b_in, 4 * b + 3);
            lane.flop(8);
        });
    }
    let spec = GridSpec::from_boxes(boxes, n, inflate, extents).expect("n >= 2");

    // Kernel: covered-cell count per block.
    counts.clear();
    counts.resize(n, 0);
    {
        let b_in = dev.bind_ro(boxes);
        let b_counts = dev.bind(&mut counts[..]);
        dev.launch("grid.count_cells", n, |lane| {
            let b = lane.gid;
            let x0 = lane.ld(&b_in, 4 * b);
            let y0 = lane.ld(&b_in, 4 * b + 1);
            let x1 = lane.ld(&b_in, 4 * b + 2);
            let y1 = lane.ld(&b_in, 4 * b + 3);
            let cx0 = spec.cell_x(x0 - inflate);
            let cx1 = spec.cell_x(x1 + inflate);
            let cy0 = spec.cell_y(y0 - inflate);
            let cy1 = spec.cell_y(y1 + inflate);
            lane.flop(8);
            lane.st(&b_counts, b, ((cx1 - cx0 + 1) * (cy1 - cy0 + 1)) as u32);
        });
    }

    // Scan → per-block entry offsets, total entry count.
    let (offsets, total) = scan_exclusive_u32(dev, counts);
    let e_count = total as usize;
    cell_keys.clear();
    cell_keys.resize(e_count, 0);
    cell_vals.clear();
    cell_vals.resize(e_count, 0);

    // Kernel: emit (cell key, block) entries.
    {
        let b_in = dev.bind_ro(boxes);
        let b_off = dev.bind_ro(&offsets);
        let b_keys = dev.bind(&mut cell_keys[..]);
        let b_vals = dev.bind(&mut cell_vals[..]);
        dev.launch("grid.emit_keys", n, |lane| {
            let b = lane.gid;
            let x0 = lane.ld(&b_in, 4 * b);
            let y0 = lane.ld(&b_in, 4 * b + 1);
            let x1 = lane.ld(&b_in, 4 * b + 2);
            let y1 = lane.ld(&b_in, 4 * b + 3);
            let cx0 = spec.cell_x(x0 - inflate);
            let cx1 = spec.cell_x(x1 + inflate);
            let cy0 = spec.cell_y(y0 - inflate);
            let cy1 = spec.cell_y(y1 + inflate);
            lane.flop(8);
            let mut o = lane.ld(&b_off, b) as usize;
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    lane.flop(2);
                    lane.st(&b_keys, o, (cy * spec.nx + cx) as u64);
                    lane.st(&b_vals, o, b as u32);
                    o += 1;
                }
            }
        });
    }

    // Radix-sort entries by cell key; find the cell runs.
    let (skeys, svals) = sort_pairs_u64(dev, cell_keys, cell_vals);
    let (seg_of, starts) = segment_starts(dev, &skeys);

    // Kernel: per-entry candidate count (forward scan of the entry's
    // run, owner-cell + overlap tests).
    counts.clear();
    counts.resize(e_count, 0);
    {
        let b_boxes = dev.bind_ro(boxes);
        let b_seg = dev.bind_ro(&seg_of);
        let b_starts = dev.bind_ro(&starts);
        let b_vals = dev.bind_ro(&svals);
        let b_keys = dev.bind_ro(&skeys);
        let b_counts = dev.bind(&mut counts[..]);
        dev.launch("grid.count_pairs", e_count, |lane| {
            let e = lane.gid;
            let seg = lane.ld(&b_seg, e) as usize;
            let end = lane.ld(&b_starts, seg + 1) as usize;
            let key = lane.ld(&b_keys, e);
            let i = lane.ld(&b_vals, e) as usize;
            let ix0 = lane.ld(&b_boxes, 4 * i);
            let iy0 = lane.ld(&b_boxes, 4 * i + 1);
            let ix1 = lane.ld(&b_boxes, 4 * i + 2);
            let iy1 = lane.ld(&b_boxes, 4 * i + 3);
            let icx0 = spec.cell_x(ix0 - inflate);
            let icy0 = spec.cell_y(iy0 - inflate);
            lane.flop(6);
            let mut count = 0u32;
            for f in (e + 1)..end {
                let j = lane.ld(&b_vals, f) as usize;
                let jx0 = lane.ld(&b_boxes, 4 * j);
                let jy0 = lane.ld(&b_boxes, 4 * j + 1);
                let jx1 = lane.ld(&b_boxes, 4 * j + 2);
                let jy1 = lane.ld(&b_boxes, 4 * j + 3);
                lane.flop(12);
                let overlap = ix0 - inflate <= jx1 + inflate
                    && jx0 - inflate <= ix1 + inflate
                    && iy0 - inflate <= jy1 + inflate
                    && jy0 - inflate <= iy1 + inflate;
                let mut accept = false;
                if lane.branch(0, overlap) {
                    let jcx0 = spec.cell_x(jx0 - inflate);
                    let jcy0 = spec.cell_y(jy0 - inflate);
                    let owner = (icy0.max(jcy0) * spec.nx + icx0.max(jcx0)) as u64;
                    accept = owner == key;
                }
                if lane.branch(1, accept) {
                    count += 1;
                }
            }
            lane.st(&b_counts, e, count);
        });
    }

    // Scan → pair offsets; emit packed (i << 32 | j) pair keys.
    let (poff, k_total) = scan_exclusive_u32(dev, counts);
    let k = k_total as usize;
    let mut pair_keys = vec![0u64; k];
    if k > 0 {
        let b_boxes = dev.bind_ro(boxes);
        let b_seg = dev.bind_ro(&seg_of);
        let b_starts = dev.bind_ro(&starts);
        let b_vals = dev.bind_ro(&svals);
        let b_keys = dev.bind_ro(&skeys);
        let b_poff = dev.bind_ro(&poff);
        let b_pairs = dev.bind(&mut pair_keys);
        dev.launch("grid.emit_pairs", e_count, |lane| {
            let e = lane.gid;
            let seg = lane.ld(&b_seg, e) as usize;
            let end = lane.ld(&b_starts, seg + 1) as usize;
            let key = lane.ld(&b_keys, e);
            let i = lane.ld(&b_vals, e) as usize;
            let ix0 = lane.ld(&b_boxes, 4 * i);
            let iy0 = lane.ld(&b_boxes, 4 * i + 1);
            let ix1 = lane.ld(&b_boxes, 4 * i + 2);
            let iy1 = lane.ld(&b_boxes, 4 * i + 3);
            let icx0 = spec.cell_x(ix0 - inflate);
            let icy0 = spec.cell_y(iy0 - inflate);
            lane.flop(6);
            let mut o = lane.ld(&b_poff, e) as usize;
            for f in (e + 1)..end {
                let j = lane.ld(&b_vals, f) as usize;
                let jx0 = lane.ld(&b_boxes, 4 * j);
                let jy0 = lane.ld(&b_boxes, 4 * j + 1);
                let jx1 = lane.ld(&b_boxes, 4 * j + 2);
                let jy1 = lane.ld(&b_boxes, 4 * j + 3);
                lane.flop(12);
                let overlap = ix0 - inflate <= jx1 + inflate
                    && jx0 - inflate <= ix1 + inflate
                    && iy0 - inflate <= jy1 + inflate
                    && jy0 - inflate <= iy1 + inflate;
                let mut accept = false;
                if lane.branch(0, overlap) {
                    let jcx0 = spec.cell_x(jx0 - inflate);
                    let jcy0 = spec.cell_y(jy0 - inflate);
                    let owner = (icy0.max(jcy0) * spec.nx + icx0.max(jcx0)) as u64;
                    accept = owner == key;
                }
                if lane.branch(1, accept) {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    lane.st(&b_pairs, o, ((lo as u64) << 32) | hi as u64);
                    o += 1;
                }
            }
        });
    }

    // Canonical (i, j) order straight from the device: radix-sort the
    // packed keys (the narrow phase and the all-pairs oracle both use
    // lexicographic order).
    let idx: Vec<u32> = vec![0; k];
    let (sorted_pairs, _) = sort_pairs_u64(dev, &pair_keys, &idx);
    out.reserve(k);
    for key in sorted_pairs {
        out.push(((key >> 32) as u32, key as u32));
    }
}

/// Device uniform-grid broad phase: the exact pair set of
/// [`super::broad_phase_gpu`], in O(n + k) modeled launches. Fills
/// `ws.pairs` from `soa.aabb` (raw boxes stay on the device).
pub fn grid_broad_phase_gpu(dev: &Device, soa: &GeomSoa, range: f64, ws: &mut ContactWorkspace) {
    let n = soa.n_blocks();
    let ContactWorkspace {
        pairs,
        extents,
        counts,
        cell_keys,
        cell_vals,
        ..
    } = ws;
    grid_pairs_gpu_core(
        dev, &soa.aabb, n, range, extents, counts, cell_keys, cell_vals, pairs,
    );
}

/// Device grid broad phase through the displacement-bounded cache: steps
/// inside the slack budget run only the O(C) candidate re-filter kernel
/// plus a compaction — no binning, no sort. Fills `ws.pairs`.
pub fn cached_broad_phase_gpu(
    dev: &Device,
    soa: &GeomSoa,
    range: f64,
    slack: f64,
    ws: &mut ContactWorkspace,
) {
    let n = soa.n_blocks();
    if !ws.cache.valid(range, slack, n) {
        {
            let ContactWorkspace {
                cache,
                extents,
                counts,
                cell_keys,
                cell_vals,
                ..
            } = ws;
            grid_pairs_gpu_core(
                dev,
                &soa.aabb,
                n,
                range + slack,
                extents,
                counts,
                cell_keys,
                cell_vals,
                &mut cache.candidates,
            );
        }
        let cache = &mut ws.cache;
        cache.cand_keys.clear();
        cache.cand_keys.reserve(cache.candidates.len());
        for &(i, j) in &cache.candidates {
            cache.cand_keys.push(((i as u64) << 32) | j as u64);
        }
        cache.range = range;
        cache.slack = slack;
        cache.motion = 0.0;
        cache.n_blocks = n;
        cache.built = true;
        cache.rebuilds += 1;
    } else {
        ws.cache.hits += 1;
    }

    // Kernel: exact at-`range` filter over the cached candidates.
    let c = ws.cache.candidates.len();
    ws.pairs.clear();
    if c == 0 {
        return;
    }
    ws.flags.clear();
    ws.flags.resize(c, 0);
    {
        let b_boxes = dev.bind_ro(&soa.aabb);
        let b_keys = dev.bind_ro(&ws.cache.cand_keys);
        let b_flags = dev.bind(&mut ws.flags[..]);
        dev.launch("grid.cache_filter", c, |lane| {
            let e = lane.gid;
            let key = lane.ld(&b_keys, e);
            let i = (key >> 32) as usize;
            let j = (key & 0xffff_ffff) as usize;
            let ix0 = lane.ld(&b_boxes, 4 * i);
            let iy0 = lane.ld(&b_boxes, 4 * i + 1);
            let ix1 = lane.ld(&b_boxes, 4 * i + 2);
            let iy1 = lane.ld(&b_boxes, 4 * i + 3);
            let jx0 = lane.ld(&b_boxes, 4 * j);
            let jy0 = lane.ld(&b_boxes, 4 * j + 1);
            let jx1 = lane.ld(&b_boxes, 4 * j + 2);
            let jy1 = lane.ld(&b_boxes, 4 * j + 3);
            lane.flop(12);
            let overlap = ix0 - range <= jx1 + range
                && jx0 - range <= ix1 + range
                && iy0 - range <= jy1 + range
                && jy0 - range <= iy1 + range;
            let keep = lane.branch(0, overlap);
            lane.st(&b_flags, e, u32::from(keep));
        });
    }
    // Compaction preserves the candidates' sorted order.
    let kept = compact_indices(dev, &ws.flags);
    ws.pairs.reserve(kept.len());
    for e in kept {
        ws.pairs.push(ws.cache.candidates[e as usize]);
    }
}

// ---------------------------------------------------------------------------
// Mode dispatch (the pipelines' single entry points)
// ---------------------------------------------------------------------------

/// Serial broad phase under the selected [`BroadPhaseMode`]; fills
/// `ws.pairs` with the identical pair set in every mode.
pub fn detect_broad_serial(
    sys: &BlockSystem,
    mode: BroadPhaseMode,
    range: f64,
    slack: f64,
    counter: &mut CpuCounter,
    ws: &mut ContactWorkspace,
) {
    match mode {
        BroadPhaseMode::AllPairs => super::broad::broad_phase_serial_ws(sys, range, counter, ws),
        BroadPhaseMode::Grid => grid_broad_phase_serial(sys, range, counter, ws),
        BroadPhaseMode::GridCached => cached_broad_phase_serial(sys, range, slack, counter, ws),
    }
}

/// Device broad phase under the selected [`BroadPhaseMode`]; fills
/// `ws.pairs` with the identical pair set in every mode.
pub fn detect_broad_gpu(
    dev: &Device,
    soa: &GeomSoa,
    mode: BroadPhaseMode,
    range: f64,
    slack: f64,
    ws: &mut ContactWorkspace,
) {
    match mode {
        BroadPhaseMode::AllPairs => super::broad::broad_phase_gpu_ws(dev, soa, range, ws),
        BroadPhaseMode::Grid => grid_broad_phase_gpu(dev, soa, range, ws),
        BroadPhaseMode::GridCached => cached_broad_phase_gpu(dev, soa, range, slack, ws),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::contact::broad::broad_phase_serial;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    fn grid_system(nx: usize, ny: usize, gap: f64) -> BlockSystem {
        let mut blocks = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                let x0 = ix as f64 * (1.0 + gap);
                let y0 = iy as f64 * (1.0 + gap);
                blocks.push(Block::new(Polygon::rect(x0, y0, x0 + 1.0, y0 + 1.0), 0));
            }
        }
        BlockSystem::new(
            blocks,
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        )
    }

    #[test]
    fn grid_serial_matches_all_pairs() {
        for (nx, ny, gap, range) in [
            (3usize, 3usize, 0.5f64, 0.3f64),
            (4, 4, 0.5, 0.3),
            (5, 3, 0.1, 0.6),
            (7, 1, 0.2, 0.15),
            (1, 1, 0.0, 1.0),
        ] {
            let sys = grid_system(nx, ny, gap);
            let mut c1 = CpuCounter::new();
            let oracle = broad_phase_serial(&sys, range, &mut c1);
            let mut ws = ContactWorkspace::new();
            let mut c2 = CpuCounter::new();
            grid_broad_phase_serial(&sys, range, &mut c2, &mut ws);
            assert_eq!(oracle, ws.pairs, "{nx}x{ny} gap {gap} range {range}");
        }
    }

    #[test]
    fn grid_gpu_matches_all_pairs() {
        for (nx, ny, gap, range) in [
            (3usize, 3usize, 0.5f64, 0.3f64),
            (4, 4, 0.5, 0.3),
            (5, 3, 0.1, 0.6),
        ] {
            let sys = grid_system(nx, ny, gap);
            let mut c = CpuCounter::new();
            let oracle = broad_phase_serial(&sys, range, &mut c);
            let d = dev();
            let soa = GeomSoa::build(&sys);
            let mut ws = ContactWorkspace::new();
            grid_broad_phase_gpu(&d, &soa, range, &mut ws);
            assert_eq!(oracle, ws.pairs, "{nx}x{ny}");
            let by = d.trace().by_kernel();
            assert!(by.contains_key("grid.count_cells"));
            assert!(by.contains_key("grid.emit_pairs"));
            assert!(by.contains_key("radix.scatter"), "grid must radix-sort");
        }
    }

    #[test]
    fn cache_serves_hits_until_slack_consumed() {
        let sys = grid_system(4, 4, 0.5);
        let range = 0.3;
        let slack = 0.1;
        let mut ws = ContactWorkspace::new();
        let mut c = CpuCounter::new();
        cached_broad_phase_serial(&sys, range, slack, &mut c, &mut ws);
        assert_eq!(ws.cache.rebuilds, 1);
        let first = ws.pairs.clone();
        // No motion: every following call is a hit with the same pairs.
        for _ in 0..3 {
            ws.cache.note_motion(0.01);
            cached_broad_phase_serial(&sys, range, slack, &mut c, &mut ws);
            assert_eq!(ws.pairs, first);
        }
        assert_eq!(ws.cache.rebuilds, 1);
        assert_eq!(ws.cache.hits, 3);
        // Blow the slack budget: the next call must re-bin.
        ws.cache.note_motion(0.2);
        cached_broad_phase_serial(&sys, range, slack, &mut c, &mut ws);
        assert_eq!(ws.cache.rebuilds, 2);
        assert_eq!(ws.pairs, first);
    }

    #[test]
    fn cache_gpu_matches_serial_cache() {
        let sys = grid_system(4, 3, 0.4);
        let range = 0.25;
        let slack = 0.08;
        let d = dev();
        let soa = GeomSoa::build(&sys);
        let mut wg = ContactWorkspace::new();
        cached_broad_phase_gpu(&d, &soa, range, slack, &mut wg);
        let mut wc = ContactWorkspace::new();
        let mut c = CpuCounter::new();
        cached_broad_phase_serial(&sys, range, slack, &mut c, &mut wc);
        assert_eq!(wg.pairs, wc.pairs);
        // Hit path on the device too.
        wg.cache.note_motion(0.01);
        cached_broad_phase_gpu(&d, &soa, range, slack, &mut wg);
        assert_eq!(wg.cache.hits, 1);
        assert_eq!(wg.pairs, wc.pairs);
    }

    #[test]
    fn giant_block_spanning_many_cells_pairs_once() {
        // One floor slab under a row of small blocks: the slab covers
        // every cell, each small block must pair with it exactly once.
        let mut blocks = vec![Block::new(Polygon::rect(0.0, -1.0, 32.0, 0.0), 0)];
        for i in 0..8 {
            let x0 = 4.0 * i as f64 + 1.0;
            blocks.push(Block::new(Polygon::rect(x0, 0.05, x0 + 1.0, 1.05), 0));
        }
        let sys = BlockSystem::new(
            blocks,
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let mut c = CpuCounter::new();
        let oracle = broad_phase_serial(&sys, 0.1, &mut c);
        let mut ws = ContactWorkspace::new();
        grid_broad_phase_serial(&sys, 0.1, &mut c, &mut ws);
        assert_eq!(oracle, ws.pairs);
        assert_eq!(ws.pairs.len(), 8, "slab pairs once with each block");
    }

    #[test]
    fn workspace_buffers_reach_steady_state() {
        let sys = grid_system(5, 5, 0.3);
        let mut ws = ContactWorkspace::new();
        let mut c = CpuCounter::new();
        grid_broad_phase_serial(&sys, 0.2, &mut c, &mut ws);
        let caps = (
            ws.boxes.capacity(),
            ws.pairs.capacity(),
            ws.entries.capacity(),
            ws.extents.capacity(),
        );
        for _ in 0..4 {
            grid_broad_phase_serial(&sys, 0.2, &mut c, &mut ws);
        }
        assert_eq!(
            caps,
            (
                ws.boxes.capacity(),
                ws.pairs.capacity(),
                ws.entries.capacity(),
                ws.extents.capacity(),
            ),
            "steady-state detection must reuse, not regrow"
        );
    }
}
