//! Line segments and point–segment / segment–segment queries.
//!
//! The DDA narrow phase is built almost entirely on these queries: a
//! vertex–edge (VE) candidate is a block vertex within the contact search
//! radius of another block's edge, and the *contact edge ratio* the paper
//! transfers between steps is exactly the [`Segment::closest_param`] value.

use crate::vec2::Vec2;
use crate::GEOM_EPS;
use serde::{Deserialize, Serialize};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Vec2, b: Vec2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Direction vector `b - a` (not normalized).
    #[inline]
    pub fn dir(&self) -> Vec2 {
        self.b - self.a
    }

    /// Unit direction vector; zero for degenerate segments.
    #[inline]
    pub fn unit_dir(&self) -> Vec2 {
        self.dir().normalized()
    }

    /// Outward unit normal assuming the segment is traversed CCW around a
    /// block: the normal points away from the block interior (to the right
    /// of the direction of travel).
    #[inline]
    pub fn outward_normal(&self) -> Vec2 {
        -self.unit_dir().perp()
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Vec2 {
        self.a.lerp(self.b, 0.5)
    }

    /// Point at parameter `t` (`a` at 0, `b` at 1).
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec2 {
        self.a.lerp(self.b, t)
    }

    /// Parameter in `[0, 1]` of the point on the segment closest to `p`.
    ///
    /// This is the DDA *contact edge ratio*: where along the contacted edge
    /// the contact vertex projects.
    pub fn closest_param(&self, p: Vec2) -> f64 {
        let d = self.dir();
        let len_sq = d.norm_sq();
        if len_sq < GEOM_EPS * GEOM_EPS {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// Closest point on the segment to `p`.
    #[inline]
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        self.point_at(self.closest_param(p))
    }

    /// Euclidean distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Vec2) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Signed perpendicular distance from `p` to the *infinite line*
    /// through the segment. Positive when `p` lies to the left of `a → b`.
    pub fn signed_line_dist(&self, p: Vec2) -> f64 {
        let d = self.dir();
        let len = d.norm();
        if len < GEOM_EPS {
            return self.a.dist(p);
        }
        d.cross(p - self.a) / len
    }

    /// Minimum distance between two segments.
    pub fn dist_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.dist_to_point(other.a)
            .min(self.dist_to_point(other.b))
            .min(other.dist_to_point(self.a))
            .min(other.dist_to_point(self.b))
    }

    /// True when the two segments properly intersect or touch.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = crate::predicates::orient2d(other.a, other.b, self.a);
        let d2 = crate::predicates::orient2d(other.a, other.b, self.b);
        let d3 = crate::predicates::orient2d(self.a, self.b, other.a);
        let d4 = crate::predicates::orient2d(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        let on = |p: Vec2, s: &Segment, d: f64| d.abs() < GEOM_EPS && s.bbox_contains(p);
        on(self.a, other, d1)
            || on(self.b, other, d2)
            || on(other.a, self, d3)
            || on(other.b, self, d4)
    }

    /// True when `p` is within the axis-aligned bounding box of the segment
    /// (a helper for collinear on-segment tests).
    fn bbox_contains(&self, p: Vec2) -> bool {
        p.x >= self.a.x.min(self.b.x) - GEOM_EPS
            && p.x <= self.a.x.max(self.b.x) + GEOM_EPS
            && p.y >= self.a.y.min(self.b.y) - GEOM_EPS
            && p.y <= self.a.y.max(self.b.y) + GEOM_EPS
    }

    /// Intersection point of the *lines* through two segments, if the lines
    /// are not parallel.
    pub fn line_intersection(&self, other: &Segment) -> Option<Vec2> {
        let d1 = self.dir();
        let d2 = other.dir();
        let denom = d1.cross(d2);
        if denom.abs() < GEOM_EPS {
            return None;
        }
        let t = (other.a - self.a).cross(d2) / denom;
        Some(self.point_at(t))
    }

    /// True when this segment is parallel to `other` within `tol` radians.
    ///
    /// Used by the narrow phase's angle judgment to split vertex–vertex
    /// contacts into VV1 (parallel edges) and VV2 (non-parallel).
    pub fn is_parallel_to(&self, other: &Segment, tol: f64) -> bool {
        let u = self.unit_dir();
        let v = other.unit_dir();
        u.cross(v).abs() < tol.sin().abs().max(GEOM_EPS)
    }

    /// Segment with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Vec2::new(ax, ay), Vec2::new(bx, by))
    }

    #[test]
    fn length_and_direction() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.dir(), Vec2::new(3.0, 4.0));
        assert!((s.unit_dir().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn closest_param_interior_and_clamped() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_param(Vec2::new(3.0, 5.0)), 0.3);
        assert_eq!(s.closest_param(Vec2::new(-4.0, 1.0)), 0.0);
        assert_eq!(s.closest_param(Vec2::new(14.0, 1.0)), 1.0);
    }

    #[test]
    fn degenerate_segment_closest() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.closest_param(Vec2::new(5.0, 5.0)), 0.0);
        assert_eq!(s.closest_point(Vec2::new(5.0, 5.0)), Vec2::new(1.0, 1.0));
    }

    #[test]
    fn point_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist_to_point(Vec2::new(5.0, 3.0)), 3.0);
        assert_eq!(s.dist_to_point(Vec2::new(-3.0, 4.0)), 5.0);
    }

    #[test]
    fn signed_line_distance_sides() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        assert!(s.signed_line_dist(Vec2::new(0.5, 1.0)) > 0.0);
        assert!(s.signed_line_dist(Vec2::new(0.5, -1.0)) < 0.0);
        assert!((s.signed_line_dist(Vec2::new(0.5, 2.5)) - 2.5).abs() < 1e-15);
    }

    #[test]
    fn outward_normal_for_ccw_block() {
        // Bottom edge of a CCW square goes left-to-right; outward is -y.
        let bottom = seg(0.0, 0.0, 1.0, 0.0);
        let n = bottom.outward_normal();
        assert!((n.x).abs() < 1e-15 && (n.y + 1.0).abs() < 1e-15);
    }

    #[test]
    fn proper_intersection() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert_eq!(s1.dist_to_segment(&s2), 0.0);
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn disjoint_segments_distance() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 2.0, 1.0, 2.0);
        assert!(!s1.intersects(&s2));
        assert!((s1.dist_to_segment(&s2) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn line_intersection_point() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.5, -1.0, 0.5, 1.0);
        let p = s1.line_intersection(&s2).unwrap();
        assert!((p.x - 0.5).abs() < 1e-15 && p.y.abs() < 1e-15);
        // Parallel lines have no intersection.
        let s3 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(s1.line_intersection(&s3).is_none());
    }

    #[test]
    fn parallel_test() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(5.0, 3.0, 9.0, 3.0);
        let s3 = seg(0.0, 0.0, 1.0, 0.2);
        assert!(s1.is_parallel_to(&s2, 0.01));
        assert!(!s1.is_parallel_to(&s3, 0.01));
        // Anti-parallel counts as parallel (edges traversed in opposite
        // directions on opposing blocks).
        assert!(s1.is_parallel_to(&s2.reversed(), 0.01));
    }
}
