//! Steady-state allocation audit for the serial contact-detection paths.
//!
//! Once a [`ContactWorkspace`] is warmed, every serial broad-phase
//! variant — the all-pairs sweep, the cell-binned grid, and the cached
//! grid's hit path — must allocate **nothing**: boxes, bin entries, and
//! pair lists live in the workspace and are reused by capacity, and all
//! sorting is in-place `sort_unstable`. This test arms a counting global
//! allocator around the warmed calls and requires exactly zero heap
//! allocations.
//!
//! Only the serial paths are audited: the device paths reuse their
//! host-side workspace buffers too, but the simulator's primitives
//! (radix sort, scan, compaction) allocate internally by design — their
//! buffer-capacity steady state is asserted in `contact::grid`'s unit
//! tests instead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dda_core::contact::{
    broad_phase_serial_ws, detect_broad_serial, BroadPhaseMode, ContactWorkspace,
};
use dda_core::{Block, BlockMaterial, BlockSystem, JointMaterial};
use dda_geom::Polygon;
use dda_simt::serial::CpuCounter;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn grid_system(nx: usize, ny: usize, gap: f64) -> BlockSystem {
    let mut blocks = Vec::new();
    for iy in 0..ny {
        for ix in 0..nx {
            let x0 = ix as f64 * (1.0 + gap);
            let y0 = iy as f64 * (1.0 + gap);
            blocks.push(Block::new(Polygon::rect(x0, y0, x0 + 1.0, y0 + 1.0), 0));
        }
    }
    BlockSystem::new(
        blocks,
        BlockMaterial::rock(),
        JointMaterial::frictional(30.0),
    )
}

#[test]
fn warmed_serial_broad_phases_allocate_nothing() {
    let sys = grid_system(12, 12, 0.02);
    let (range, slack) = (0.05, 0.4);
    let mut counter = CpuCounter::default();
    let mut ws_all = ContactWorkspace::new();
    let mut ws_grid = ContactWorkspace::new();
    let mut ws_cached = ContactWorkspace::new();

    // Warm: workspace capacities, and the cached mode's candidate build
    // (so the measured call is the steady-state hit path).
    for _ in 0..2 {
        broad_phase_serial_ws(&sys, range, &mut counter, &mut ws_all);
        detect_broad_serial(
            &sys,
            BroadPhaseMode::Grid,
            range,
            slack,
            &mut counter,
            &mut ws_grid,
        );
        detect_broad_serial(
            &sys,
            BroadPhaseMode::GridCached,
            range,
            slack,
            &mut counter,
            &mut ws_cached,
        );
    }
    let expected = ws_all.pairs.clone();
    assert!(!expected.is_empty(), "audit needs real pair work");

    // Measure.
    ARMED.store(true, Ordering::SeqCst);
    broad_phase_serial_ws(&sys, range, &mut counter, &mut ws_all);
    detect_broad_serial(
        &sys,
        BroadPhaseMode::Grid,
        range,
        slack,
        &mut counter,
        &mut ws_grid,
    );
    detect_broad_serial(
        &sys,
        BroadPhaseMode::GridCached,
        range,
        slack,
        &mut counter,
        &mut ws_cached,
    );
    ARMED.store(false, Ordering::SeqCst);

    let n_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n_allocs, 0,
        "warmed serial broad phases performed {n_allocs} heap allocations"
    );

    // And they still agree on the answer.
    assert_eq!(ws_grid.pairs, expected, "grid diverged from all-pairs");
    assert_eq!(
        ws_cached.pairs, expected,
        "cached hit diverged from all-pairs"
    );
    assert!(ws_cached.cache.hits >= 2, "third call must be a cache hit");
}
