//! BENCH_2 generator: batched multi-scene throughput vs a serial scene
//! loop.
//!
//! N distinct small rockfall scenes (the [`dda_workloads::fleet`] spread)
//! are stepped two ways on the Tesla K40 model:
//!
//! * **serial loop** — each scene in its own `GpuPipeline`, stepped one
//!   after another: N× the launches, each at a small scene's occupancy;
//! * **batched** — all scenes in one [`SceneBatch`]: every pipeline phase
//!   merges the scenes' matching kernels into one modeled launch with
//!   summed occupancy, with per-scene convergence masks dropping finished
//!   scenes out.
//!
//! Per-scene trajectories are verified **bit-identical** between the two
//! runs; the report records modeled scene-steps/second both ways, the
//! launch counts per step, and the resulting speed-up.
//!
//! Writes `BENCH_2.json` into the current directory and prints it.
//!
//! Usage: `bench2 [--scenes N] [--rocks N] [--steps N]`

use std::time::Instant;

use dda_core::pipeline::{GpuPipeline, SceneBatch};
use dda_harness::Args;
use dda_simt::{Device, DeviceProfile};
use dda_workloads::{rockfall_fleet, FleetConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn main() {
    let a = Args::parse(0, 10, 6);
    // `--scenes` is specific to this benchmark; Args doesn't know it.
    let argv: Vec<String> = std::env::args().collect();
    let scenes = argv
        .iter()
        .position(|s| s == "--scenes")
        .and_then(|p| argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    eprintln!(
        "bench2: scenes={scenes} rocks={} steps={} (K40 model)",
        a.rocks, a.steps
    );

    let cfg = FleetConfig::default()
        .with_scenes(scenes)
        .with_rocks(a.rocks);

    // ---- Serial loop baseline: one pipeline per scene, stepped in turn.
    let mut solos: Vec<GpuPipeline> = rockfall_fleet(&cfg)
        .into_iter()
        .map(|(sys, params)| GpuPipeline::new(sys, params, k40()))
        .collect();
    let t = Instant::now();
    for _ in 0..a.steps {
        for pipe in solos.iter_mut() {
            pipe.step();
        }
    }
    let serial_wall = t.elapsed().as_secs_f64();
    let serial_modeled: f64 = solos.iter().map(|p| p.device().modeled_seconds()).sum();
    let serial_launches: u64 = solos
        .iter()
        .map(|p| {
            p.device()
                .trace()
                .records
                .iter()
                .map(|r| r.stats.launches)
                .sum::<u64>()
        })
        .sum();

    // ---- Batched: every scene on one device, phases merged.
    let mut batch = SceneBatch::new(k40(), rockfall_fleet(&cfg));
    let t = Instant::now();
    let mut launches_in_total = 0u64;
    let mut launches_out_total = 0u64;
    for _ in 0..a.steps {
        batch.step();
        let (li, lo) = batch.last_step_launches();
        launches_in_total += li;
        launches_out_total += lo;
    }
    let batch_wall = t.elapsed().as_secs_f64();
    let batch_modeled = batch.device().modeled_seconds();

    // ---- Equivalence: the batch must reproduce the solo trajectories bit
    // for bit — batching is a scheduling change, not a physics change.
    let mut bit_identical = true;
    for (i, solo) in solos.iter().enumerate() {
        let bsys = batch.sys(i).expect("live scene");
        for (bs, bb) in solo.sys.blocks.iter().zip(&bsys.blocks) {
            let (cs, cb) = (bs.centroid(), bb.centroid());
            if cs.x.to_bits() != cb.x.to_bits() || cs.y.to_bits() != cb.y.to_bits() {
                bit_identical = false;
            }
            for dof in 0..6 {
                if bs.velocity[dof].to_bits() != bb.velocity[dof].to_bits() {
                    bit_identical = false;
                }
            }
        }
    }

    let scene_steps = (scenes * a.steps) as f64;
    let serial_rate = scene_steps / serial_modeled;
    let batch_rate = scene_steps / batch_modeled;
    let speedup = serial_modeled / batch_modeled;
    let serial_lps = serial_launches as f64 / a.steps as f64;
    let batch_lps = launches_out_total as f64 / a.steps as f64;

    eprintln!(
        "  serial: {serial_modeled:.6e} s modeled, {serial_lps:.0} launches/step \
         | batched: {batch_modeled:.6e} s modeled, {batch_lps:.0} launches/step \
         | speedup {speedup:.2}x | bit_identical={bit_identical}"
    );

    let json = format!(
        "{{\n  \"bench\": \"batched_multi_scene_runtime\",\n  \"device\": \"tesla_k40_model\",\n  \
         \"config\": {{ \"scenes\": {scenes}, \"rocks\": {}, \"steps\": {} }},\n  \
         \"units\": \"modeled_s = total modeled device seconds; scene_steps_per_modeled_s = scenes*steps / modeled_s; launches_per_step averaged over the run\",\n  \
         \"serial_loop\": {{ \"modeled_s\": {serial_modeled:.6e}, \"wall_s\": {serial_wall:.6e}, \"scene_steps_per_modeled_s\": {serial_rate:.3}, \"launches_per_step\": {serial_lps:.1} }},\n  \
         \"batched\": {{ \"modeled_s\": {batch_modeled:.6e}, \"wall_s\": {batch_wall:.6e}, \"scene_steps_per_modeled_s\": {batch_rate:.3}, \"launches_per_step\": {batch_lps:.1}, \"launches_in_per_step\": {:.1} }},\n  \
         \"modeled_speedup\": {speedup:.3},\n  \
         \"launch_reduction\": {:.3},\n  \
         \"bit_identical\": {bit_identical}\n}}\n",
        a.rocks,
        a.steps,
        launches_in_total as f64 / a.steps as f64,
        serial_lps / batch_lps.max(1e-12),
    );

    print!("{json}");
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    eprintln!("wrote BENCH_2.json");
    assert!(
        bit_identical,
        "batched trajectories diverged from the serial loop"
    );
}
