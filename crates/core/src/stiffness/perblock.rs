//! Per-block (diagonal) stiffness and force terms.
//!
//! Every block contributes a 6×6 diagonal sub-matrix and a 6-vector of
//! loads, independent of all other blocks — "diagonal matrix building" is
//! therefore embarrassingly parallel (one thread per block) and reaches a
//! ~100× speed-up in Table II. The terms (first-order DDA, Shi 1988):
//!
//! * **Elastic**: `Π = S/2·εᵀEε` adds `S·E` to the strain 3×3 corner.
//! * **Inertia**: `M = ρ∫TᵀT dA`, assembled analytically from the area and
//!   second moments; the implicit time integration adds `(2/Δt²)M` to `K`
//!   and `(2/Δt)M·v` to `F`.
//! * **Body force**: `F += ∫Tᵀb dA = S·(bx, by, 0, 0, 0, 0)` (first moments
//!   about the centroid vanish).
//! * **Initial stress**: `F −= S·(0, 0, 0, σx, σy, τxy)`.
//! * **Fixity**: fixed blocks get stiff springs at every vertex pulling
//!   displacement to zero: `K += p_f·Tᵀ(v)T(v)`.
//! * **Point loads**: `F += Tᵀ(q)·f`.

use crate::block::t_rows_at;
use crate::params::DdaParams;
use crate::system::BlockSystem;
use dda_geom::Vec2;
use dda_simt::serial::CpuCounter;
use dda_simt::Device;
use dda_sparse::{Block6, Vec6};

/// Flat per-block property arrays for the diagonal-building kernel.
#[derive(Debug, Clone)]
pub struct BlockSoa {
    /// Area, sxx, syy, sxy per block (4 f64 each).
    pub geom: Vec<f64>,
    /// Density, E, ν, body-force x, body-force y per block (5 f64 each).
    pub mat: Vec<f64>,
    /// Velocity (6 f64 per block).
    pub vel: Vec<f64>,
    /// Stress (3 f64 per block).
    pub stress: Vec<f64>,
    /// 1.0 for fixed blocks.
    pub fixed: Vec<f64>,
    /// Centroid (2 f64 per block).
    pub cen: Vec<f64>,
    /// Vertex data for fixity springs (CSR layout shared with GeomSoa).
    pub vx: Vec<f64>,
    /// Vertex y.
    pub vy: Vec<f64>,
    /// Vertex pointers.
    pub vptr: Vec<u32>,
}

impl BlockSoa {
    /// Flattens the system's per-block properties.
    pub fn build(sys: &BlockSystem) -> BlockSoa {
        let n = sys.len();
        let mut geom = Vec::with_capacity(4 * n);
        let mut mat = Vec::with_capacity(5 * n);
        let mut vel = Vec::with_capacity(6 * n);
        let mut stress = Vec::with_capacity(3 * n);
        let mut fixed = Vec::with_capacity(n);
        let mut cen = Vec::with_capacity(2 * n);
        let mut vx = Vec::new();
        let mut vy = Vec::new();
        let mut vptr = vec![0u32];
        for b in &sys.blocks {
            let m = b.moments();
            geom.extend_from_slice(&[b.area(), m.sxx, m.syy, m.sxy]);
            let bm = &sys.block_materials[b.material as usize];
            mat.extend_from_slice(&[
                bm.density,
                bm.young,
                bm.poisson,
                bm.body_force[0],
                bm.body_force[1],
            ]);
            vel.extend_from_slice(&b.velocity);
            stress.extend_from_slice(&b.stress);
            fixed.push(f64::from(u8::from(b.fixed)));
            let c = b.centroid();
            cen.extend_from_slice(&[c.x, c.y]);
            for v in b.poly.vertices() {
                vx.push(v.x);
                vy.push(v.y);
            }
            vptr.push(vx.len() as u32);
        }
        BlockSoa {
            geom,
            mat,
            vel,
            stress,
            fixed,
            cen,
            vx,
            vy,
            vptr,
        }
    }
}

/// The inertia matrix `ρ ∫ Tᵀ T dA` from area and second moments.
pub fn inertia_matrix(density: f64, area: f64, sxx: f64, syy: f64, sxy: f64) -> Block6 {
    let mut m = Block6::ZERO;
    m.0[0][0] = area;
    m.0[1][1] = area;
    m.0[2][2] = sxx + syy;
    m.0[2][3] = -sxy;
    m.0[3][2] = -sxy;
    m.0[2][4] = sxy;
    m.0[4][2] = sxy;
    m.0[2][5] = 0.5 * (sxx - syy);
    m.0[5][2] = 0.5 * (sxx - syy);
    m.0[3][3] = sxx;
    m.0[3][5] = 0.5 * sxy;
    m.0[5][3] = 0.5 * sxy;
    m.0[4][4] = syy;
    m.0[4][5] = 0.5 * sxy;
    m.0[5][4] = 0.5 * sxy;
    m.0[5][5] = 0.25 * (sxx + syy);
    m.scale(density)
}

/// Pure per-block computation shared by the serial and GPU paths.
///
/// Inputs are the flattened property tuples; returns `(K_diag, F)`.
#[allow(clippy::too_many_arguments)]
fn diag_one(
    area: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
    density: f64,
    young: f64,
    poisson: f64,
    body: [f64; 2],
    velocity: &Vec6,
    stress: &[f64; 3],
    is_fixed: bool,
    centroid: Vec2,
    verts: &[Vec2],
    params: &DdaParams,
) -> (Block6, Vec6) {
    let mut k = Block6::ZERO;
    let mut f = [0.0f64; 6];

    // Elastic (plane stress).
    let e0 = young / (1.0 - poisson * poisson);
    k.0[3][3] += e0 * area;
    k.0[4][4] += e0 * area;
    k.0[3][4] += e0 * poisson * area;
    k.0[4][3] += e0 * poisson * area;
    k.0[5][5] += e0 * (1.0 - poisson) / 2.0 * area;

    // Inertia: K += 2M/Δt², F += (2/Δt)·M·(dynamics·v).
    let m = inertia_matrix(density, area, sxx, syy, sxy);
    let dt = params.dt;
    k += m.scale(2.0 / (dt * dt));
    let v_scaled = dda_sparse::block6::vec6_scale(velocity, params.dynamics);
    let mv = m.mul_vec(&v_scaled);
    for r in 0..6 {
        f[r] += 2.0 / dt * mv[r];
    }

    // Body force.
    f[0] += area * body[0];
    f[1] += area * body[1];

    // Initial stress.
    f[3] -= area * stress[0];
    f[4] -= area * stress[1];
    f[5] -= area * stress[2];

    // Fixity springs at every vertex.
    if is_fixed {
        let pf = params.penalty * params.fixity_factor;
        for &v in verts {
            let (tx, ty) = t_rows_at(centroid, v);
            k += Block6::outer(&tx, &tx).scale(pf);
            k += Block6::outer(&ty, &ty).scale(pf);
            // Target displacement zero → no force term.
        }
    }

    (k, f)
}

/// Serial diagonal building: returns `(diag sub-matrices, global RHS)`.
pub fn build_diag_serial(
    sys: &BlockSystem,
    params: &DdaParams,
    counter: &mut CpuCounter,
) -> (Vec<Block6>, Vec<f64>) {
    let n = sys.len();
    let mut diag = Vec::with_capacity(n);
    let mut rhs = vec![0.0; 6 * n];
    for (i, b) in sys.blocks.iter().enumerate() {
        let bm = &sys.block_materials[b.material as usize];
        let m = b.moments();
        let (k, f) = diag_one(
            b.area(),
            m.sxx,
            m.syy,
            m.sxy,
            bm.density,
            bm.young,
            bm.poisson,
            bm.body_force,
            &b.velocity,
            &b.stress,
            b.fixed,
            b.centroid(),
            b.poly.vertices(),
            params,
        );
        diag.push(k);
        rhs[6 * i..6 * i + 6].copy_from_slice(&f);
        counter.flop(
            400 + if b.fixed {
                150 * b.poly.len() as u64
            } else {
                0
            },
        );
        counter.bytes(60 * 8);
    }
    // Point loads.
    for pl in &sys.point_loads {
        let b = &sys.blocks[pl.block as usize];
        let (tx, ty) = b.t_rows(pl.point);
        for r in 0..6 {
            rhs[6 * pl.block as usize + r] += tx[r] * pl.force.x + ty[r] * pl.force.y;
        }
        counter.flop(24);
    }
    (diag, rhs)
}

/// GPU diagonal building: one thread per block over the flattened
/// properties; point loads added in a second small kernel.
pub fn build_diag_gpu(
    dev: &Device,
    sys: &BlockSystem,
    soa: &BlockSoa,
    params: &DdaParams,
) -> (Vec<Block6>, Vec<f64>) {
    let n = sys.len();
    let mut diag = vec![Block6::ZERO; n];
    let mut rhs = vec![0.0f64; 6 * n];
    {
        let b_geom = dev.bind_ro(&soa.geom);
        let b_mat = dev.bind_ro(&soa.mat);
        let b_vel = dev.bind_ro(&soa.vel);
        let b_str = dev.bind_ro(&soa.stress);
        let b_fix = dev.bind_ro(&soa.fixed);
        let b_cen = dev.bind_ro(&soa.cen);
        let b_vx = dev.bind_ro(&soa.vx);
        let b_vy = dev.bind_ro(&soa.vy);
        let b_vp = dev.bind_ro(&soa.vptr);
        let b_diag = dev.bind(&mut diag);
        let b_rhs = dev.bind(&mut rhs);
        dev.launch("diag.build", n, |lane| {
            let i = lane.gid;
            let area = lane.ld(&b_geom, 4 * i);
            let sxx = lane.ld(&b_geom, 4 * i + 1);
            let syy = lane.ld(&b_geom, 4 * i + 2);
            let sxy = lane.ld(&b_geom, 4 * i + 3);
            let density = lane.ld(&b_mat, 5 * i);
            let young = lane.ld(&b_mat, 5 * i + 1);
            let poisson = lane.ld(&b_mat, 5 * i + 2);
            let bx = lane.ld(&b_mat, 5 * i + 3);
            let by = lane.ld(&b_mat, 5 * i + 4);
            let mut velocity = [0.0f64; 6];
            for r in 0..6 {
                velocity[r] = lane.ld(&b_vel, 6 * i + r);
            }
            let stress = [
                lane.ld(&b_str, 3 * i),
                lane.ld(&b_str, 3 * i + 1),
                lane.ld(&b_str, 3 * i + 2),
            ];
            let is_fixed = lane.ld(&b_fix, i) != 0.0;
            let centroid = Vec2::new(lane.ld(&b_cen, 2 * i), lane.ld(&b_cen, 2 * i + 1));
            let lo = lane.ld(&b_vp, i) as usize;
            let hi = lane.ld(&b_vp, i + 1) as usize;
            let verts: Vec<Vec2> = if lane.branch(0, is_fixed) {
                (lo..hi)
                    .map(|k| Vec2::new(lane.ld_tex(&b_vx, k), lane.ld_tex(&b_vy, k)))
                    .collect()
            } else {
                Vec::new()
            };
            lane.flop(400 + if is_fixed { 150 * (hi - lo) as u32 } else { 0 });
            let (k, f) = diag_one(
                area,
                sxx,
                syy,
                sxy,
                density,
                young,
                poisson,
                [bx, by],
                &velocity,
                &stress,
                is_fixed,
                centroid,
                &verts,
                params,
            );
            lane.st(&b_diag, i, k);
            for r in 0..6 {
                lane.st(&b_rhs, 6 * i + r, f[r]);
            }
        });
    }
    // Point loads (host-side: a handful of entries, as in the original
    // code's data-input stage).
    for pl in &sys.point_loads {
        let b = &sys.blocks[pl.block as usize];
        let (tx, ty) = b.t_rows(pl.point);
        for r in 0..6 {
            rhs[6 * pl.block as usize + r] += tx[r] * pl.force.x + ty[r] * pl.force.y;
        }
    }
    (diag, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use crate::system::PointLoad;
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn sys() -> BlockSystem {
        let mut s = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(0.0, 0.0, 2.0, 1.0), 0),
                Block::new(Polygon::rect(0.0, 2.0, 1.0, 3.0), 0).fixed(),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        s.blocks[0].velocity = [0.1, -0.2, 0.01, 0.0, 0.0, 0.0];
        s.blocks[0].stress = [1e5, -2e5, 5e4];
        s.point_loads.push(PointLoad {
            block: 0,
            point: dda_geom::Vec2::new(2.0, 0.5),
            force: dda_geom::Vec2::new(0.0, -1000.0),
        });
        s
    }

    fn params() -> DdaParams {
        DdaParams::for_model(1.0, 5e9)
    }

    #[test]
    fn inertia_matrix_for_rectangle() {
        // 2×1 rectangle: S=2, sxx = 1·2³/12 = 2/3, syy = 2·1³/12 = 1/6.
        let m = inertia_matrix(1000.0, 2.0, 2.0 / 3.0, 1.0 / 6.0, 0.0);
        assert!((m.0[0][0] - 2000.0).abs() < 1e-9);
        assert!((m.0[2][2] - 1000.0 * (2.0 / 3.0 + 1.0 / 6.0)).abs() < 1e-9);
        assert!((m.0[3][3] - 1000.0 * 2.0 / 3.0).abs() < 1e-9);
        assert!((m.0[5][5] - 250.0 * (2.0 / 3.0 + 1.0 / 6.0)).abs() < 1e-9);
        assert!(m.is_symmetric(1e-9));
    }

    #[test]
    fn diag_terms_are_spd_shaped() {
        let s = sys();
        let p = params();
        let mut c = CpuCounter::new();
        let (diag, rhs) = build_diag_serial(&s, &p, &mut c);
        assert_eq!(diag.len(), 2);
        assert_eq!(rhs.len(), 12);
        for d in &diag {
            assert!(d.is_symmetric(1e-6 * d.max_abs()));
            for r in 0..6 {
                assert!(d.0[r][r] > 0.0, "diagonal must be positive");
            }
            assert!(d.inverse().is_some());
        }
    }

    #[test]
    fn gravity_appears_in_rhs() {
        let s = sys();
        let p = params();
        let mut c = CpuCounter::new();
        let (_, rhs) = build_diag_serial(&s, &p, &mut c);
        // Block 0: area 2, gravity −2600·9.81 N/m³ plus inertia force from
        // downward initial velocity and the point load — all negative-y.
        assert!(rhs[1] < -2.0 * 2600.0 * 9.0);
    }

    #[test]
    fn initial_stress_loads_strain_dofs() {
        let s = sys();
        let p = params();
        let mut c = CpuCounter::new();
        let (_, rhs) = build_diag_serial(&s, &p, &mut c);
        // F[3] −= S·σx = 2·1e5.
        assert!((rhs[3] + 2.0 * 1e5).abs() < 1e-6);
        assert!((rhs[4] - 2.0 * 2e5).abs() < 1e-6);
    }

    #[test]
    fn fixity_springs_stiffen_the_diagonal() {
        let s = sys();
        let p = params();
        let mut c = CpuCounter::new();
        let (diag, _) = build_diag_serial(&s, &p, &mut c);
        // The same block without the fixed flag.
        let mut s2 = s.clone();
        s2.blocks[1].fixed = false;
        let (diag2, _) = build_diag_serial(&s2, &p, &mut c);
        assert!(
            diag[1].0[0][0] > 2.0 * diag2[1].0[0][0],
            "{} vs unfixed {}",
            diag[1].0[0][0],
            diag2[1].0[0][0]
        );
    }

    #[test]
    fn point_load_moment_consistent() {
        let s = sys();
        let p = params();
        let mut c = CpuCounter::new();
        let (_, rhs) = build_diag_serial(&s, &p, &mut c);
        // Without the point load the r0 component comes only from inertia
        // velocity coupling; compare against a system without the load.
        let mut s2 = s.clone();
        s2.point_loads.clear();
        let (_, rhs2) = build_diag_serial(&s2, &p, &mut c);
        // Force applied at (2.0, 0.5), centroid (1.0, 0.5): moment arm dx=1
        // → r0 load = dx·fy = −1000.
        assert!((rhs[2] - rhs2[2] + 1000.0).abs() < 1e-9);
        assert!((rhs[1] - rhs2[1] + 1000.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_matches_serial() {
        let s = sys();
        let p = params();
        let mut c = CpuCounter::new();
        let (diag_s, rhs_s) = build_diag_serial(&s, &p, &mut c);
        let dev = Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true);
        let soa = BlockSoa::build(&s);
        let (diag_g, rhs_g) = build_diag_gpu(&dev, &s, &soa, &p);
        for i in 0..s.len() {
            for r in 0..6 {
                for cc in 0..6 {
                    assert!(
                        (diag_s[i].0[r][cc] - diag_g[i].0[r][cc]).abs()
                            <= 1e-12 * diag_s[i].max_abs(),
                        "block {i} ({r},{cc})"
                    );
                }
            }
        }
        for k in 0..rhs_s.len() {
            assert!((rhs_s[k] - rhs_g[k]).abs() <= 1e-9 * rhs_s[k].abs().max(1.0));
        }
    }

    #[test]
    fn static_mode_drops_velocity_force() {
        let s = sys();
        let p_dyn = params();
        let p_static = params().static_analysis();
        let mut c = CpuCounter::new();
        let (_, rhs_dyn) = build_diag_serial(&s, &p_dyn, &mut c);
        let (_, rhs_static) = build_diag_serial(&s, &p_static, &mut c);
        // Dynamic RHS carries the 2MV/Δt term; static must not.
        assert!((rhs_dyn[0] - rhs_static[0]).abs() > 1.0);
    }
}
