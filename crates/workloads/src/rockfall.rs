//! Case 2: dynamic motion of falling rocks on a slope (§V-B).
//!
//! A fixed slope wedge (700 m high in the paper) with a column of ~2×2 m
//! rock blocks stacked at its top; the rocks fall, land on the face, and
//! slide to the toe. The case is *dynamic* (velocity carried between
//! steps) and its equation solving is "much easier than in the static
//! case" — the contact network is sparse and transient, which is exactly
//! why its GPU speed-up is modest (Table III).

use dda_core::{Block, BlockMaterial, BlockSystem, DdaParams, JointMaterial};
use dda_geom::{Polygon, Vec2};
use serde::{Deserialize, Serialize};

/// Parameters of the rockfall model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RockfallConfig {
    /// Slope height (m); the paper uses 700.
    pub height: f64,
    /// Slope face angle from horizontal (degrees).
    pub face_angle_deg: f64,
    /// Rock block edge length (m); the paper's average is 2.
    pub rock_size: f64,
    /// Number of rock blocks (paper: 1683).
    pub n_rocks: usize,
    /// Horizontal run-out floor length beyond the toe (m).
    pub runout: f64,
    /// Initial downslope speed of the rocks (m/s) — a mid-run snapshot of
    /// the paper's 80 000-step descent.
    pub initial_speed: f64,
}

impl Default for RockfallConfig {
    fn default() -> Self {
        RockfallConfig {
            height: 70.0,
            face_angle_deg: 42.0,
            rock_size: 2.0,
            n_rocks: 60,
            runout: 80.0,
            initial_speed: 2.0,
        }
    }
}

impl RockfallConfig {
    /// The paper's scale: 700 m slope, 1683 rocks.
    pub fn paper_scale() -> RockfallConfig {
        RockfallConfig {
            height: 700.0,
            n_rocks: 1683,
            runout: 600.0,
            ..RockfallConfig::default()
        }
    }

    /// Adjusts the rock count, scaling the slope height with it so the
    /// bands of rocks still fit along the face (the paper's proportions:
    /// 1683 rocks on a 700 m slope).
    pub fn with_rocks(mut self, n: usize) -> RockfallConfig {
        self.n_rocks = n;
        self.height = (700.0 * n as f64 / 1683.0).max(70.0);
        self.runout = self.height.max(80.0);
        self
    }
}

/// Builds the case-2 block system and matching (dynamic) parameters.
pub fn rockfall_case(cfg: &RockfallConfig) -> (BlockSystem, DdaParams) {
    let h = cfg.height;
    let run = h / cfg.face_angle_deg.to_radians().tan();
    let s = cfg.rock_size;

    let mut blocks = Vec::new();
    // Fixed slope wedge: face from the crest down to the toe, one convex
    // block.
    blocks.push(
        Block::new(
            Polygon::new(vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(run, 0.0),
                Vec2::new(0.0, h),
            ]),
            0,
        )
        .fixed(),
    );
    // Fixed run-out floor.
    blocks.push(Block::new(Polygon::rect(0.0, -s, run + cfg.runout, 0.0), 0).fixed());

    // Falling rocks: scattered in sparse bands just above the slope face
    // (the paper's long-run regime — rocks interact mostly with the face,
    // one or two contacts each, never forming a dense network; this is
    // exactly why case 2's equation systems are "much easier" and its GPU
    // speed-up modest).
    let face_a = Vec2::new(0.0, h);
    let face_b = Vec2::new(run, 0.0);
    let face_len = face_a.dist(face_b);
    let t = (face_b - face_a).normalized(); // downslope
    let n = Vec2::new(-t.y, t.x); // outward (up-right of downslope)
    let spacing = 1.15 * s;
    let margin = 3.0 * s;
    let per_band = (((face_len - 2.0 * margin) / spacing).floor() as usize).max(1);
    for k in 0..cfg.n_rocks {
        let band = k / per_band;
        let pos = k % per_band;
        // Stagger alternate bands by half a spacing.
        let along = margin + pos as f64 * spacing + 0.5 * spacing * ((band % 2) as f64);
        let lift = 0.5 * s + 0.005 * s + band as f64 * (1.6 * s);
        let c = face_a + t * along + n * lift;
        // Face-aligned squares: the rocks rest flat on the slope, the
        // natural post-detachment configuration.
        let ht = t * (s / 2.0);
        let hn = n * (s / 2.0);
        let mut rock = Block::new(
            Polygon::new(vec![c - ht - hn, c + ht - hn, c + ht + hn, c - ht + hn]),
            1,
        );
        // Mid-run snapshot: the paper's rocks spend the 80 000 steps in
        // motion; a reduced-step window samples that regime by starting
        // the rocks already sliding.
        rock.velocity[0] = t.x * cfg.initial_speed;
        rock.velocity[1] = t.y * cfg.initial_speed;
        blocks.push(rock);
    }

    let sys = BlockSystem {
        blocks,
        block_materials: vec![
            BlockMaterial::rock().with_young(10e9), // slope body
            BlockMaterial::rock().with_young(4e9).with_density(2500.0), // rocks
        ],
        joint_materials: vec![JointMaterial::frictional(28.0)],
        point_loads: Vec::new(),
    };
    let mut params = DdaParams::for_model(s, 10e9);
    // Case 2 marches real time: the step size is set by the motion scale
    // (rocks may move a good fraction of the allowed displacement per
    // step), not by the elastic time scale — "it was related to the way
    // physical time was calculated at each step" (§V-B). The stiffer
    // systems this produces are solved afresh each step as the contact
    // network churns.
    params.dt = 0.01;
    params.dt_max = 0.01;
    // Slightly sub-unit dynamic coefficient: the classical DDA knob that
    // dissipates the penalty-spring bounce at impacts while keeping the
    // analysis dynamic.
    params.dynamics = 0.95;
    (sys, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape() {
        let (sys, params) = rockfall_case(&RockfallConfig::default());
        assert_eq!(sys.len(), 2 + 60);
        assert_eq!(sys.blocks.iter().filter(|b| b.fixed).count(), 2);
        assert!(params.dynamics > 0.9, "case 2 is dynamic");
        for b in &sys.blocks {
            assert!(b.poly.is_convex());
        }
    }

    #[test]
    fn paper_scale_counts() {
        let cfg = RockfallConfig::paper_scale();
        assert_eq!(cfg.height, 700.0);
        let (sys, _) = rockfall_case(&cfg);
        assert_eq!(sys.len(), 2 + 1683);
    }

    #[test]
    fn rocks_start_above_the_face() {
        let (cfg, (sys, _)) = {
            let c = RockfallConfig::default();
            let r = rockfall_case(&c);
            (c, r)
        };
        let h = cfg.height;
        let run = h / cfg.face_angle_deg.to_radians().tan();
        let a = Vec2::new(0.0, h);
        let b2 = Vec2::new(run, 0.0);
        for b in sys.blocks.iter().skip(2) {
            // Every rock vertex lies on the outer side of the face line.
            for &v in b.poly.vertices() {
                let side = (b2 - a).cross(v - a);
                assert!(
                    side < 0.0 || v.y > 0.0,
                    "rock vertex {v:?} inside the wedge"
                );
            }
            assert!(!b.fixed);
        }
    }

    #[test]
    fn no_initial_interpenetration() {
        let (sys, _) = rockfall_case(&RockfallConfig::default().with_rocks(20));
        assert!(sys.total_interpenetration() < 1e-9);
    }

    #[test]
    fn rocks_fall_under_one_pipeline_step() {
        use dda_core::pipeline::CpuPipeline;
        let (sys, params) = rockfall_case(&RockfallConfig::default().with_rocks(6));
        let mut pipe = CpuPipeline::new(sys, params);
        let y0: f64 = pipe.sys.blocks[2].centroid().y;
        for _ in 0..5 {
            pipe.step();
        }
        assert!(
            pipe.sys.blocks[2].centroid().y < y0,
            "rock must start falling"
        );
    }
}
