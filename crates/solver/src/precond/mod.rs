//! The preconditioner candidates of §IV-A.
//!
//! "The preconditioners of DDA on the GPU prefer the low cost in
//! construction and implementation even if their performance is also
//! usually low." Three candidates are compared in Table I:
//!
//! | | construction | apply | convergence |
//! |---|---|---|---|
//! | [`BlockJacobi`] | trivial (6×6 inverses) | one block-diagonal product | slowest |
//! | [`SsorAi`] | trivial (reuses the block inverses) | two triangular SpMVs | middle |
//! | [`Ilu0`] | expensive factorization | two level-scheduled solves | fastest |
//!
//! ILU wins the iteration count (the paper: 93 vs 141 vs 275) and still
//! loses the total time by an order of magnitude because the triangular
//! solves and the factorization dominate.

mod block_jacobi;
mod identity;
mod ilu0;
mod jacobi;
mod ssor_ai;

pub use block_jacobi::BlockJacobi;
pub use identity::Identity;
pub use ilu0::Ilu0;
pub use jacobi::Jacobi;
pub use ssor_ai::SsorAi;

use dda_simt::Device;

/// Structured construction failure: the matrix handed to a preconditioner
/// cannot be factored. These feed the pipeline's degradation ladder
/// (ILU0 → SSOR-AI → Block-Jacobi → Jacobi): a rung that fails to
/// construct is skipped instead of panicking mid-solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondError {
    /// A pivot was zero, nearly zero (relative to the largest diagonal
    /// entry), or non-finite during ILU(0) factorization.
    ZeroPivot {
        /// Scalar row of the offending pivot.
        row: usize,
        /// The pivot value encountered.
        pivot: f64,
    },
    /// A structurally required diagonal entry is absent from the pattern.
    MissingDiagonal {
        /// Scalar row with no stored diagonal.
        row: usize,
    },
    /// A 6×6 diagonal sub-matrix is singular or non-finite (Block-Jacobi
    /// and SSOR-AI construction).
    SingularBlock {
        /// Index of the offending block row.
        block: usize,
    },
    /// A scalar diagonal entry is zero or non-finite (point Jacobi).
    ZeroDiagonal {
        /// Scalar row of the offending entry.
        row: usize,
    },
}

impl core::fmt::Display for PrecondError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PrecondError::ZeroPivot { row, pivot } => {
                write!(f, "zero or non-finite pivot {pivot} at row {row}")
            }
            PrecondError::MissingDiagonal { row } => {
                write!(f, "diagonal entry missing at row {row}")
            }
            PrecondError::SingularBlock { block } => {
                write!(f, "singular diagonal sub-matrix {block}")
            }
            PrecondError::ZeroDiagonal { row } => {
                write!(f, "zero or non-finite diagonal at scalar row {row}")
            }
        }
    }
}

/// Application interface: `z = M⁻¹ r` on the device.
pub trait Preconditioner {
    /// Short name used in reports ("BJ", "SSOR", "ILU").
    fn name(&self) -> &'static str;
    /// Applies the preconditioner.
    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64>;
    /// Flat row-major 6×6 block-diagonal inverses (36 scalars per block
    /// row) when [`Preconditioner::apply`] is exactly the block-diagonal
    /// product `z = D⁻¹ r` — the hook that lets the fused PCG compute `z`
    /// inside its reduction kernel instead of a separate apply launch.
    /// `None` (the default) sends the fused solver down its fallback path.
    fn block_diag_inv(&self) -> Option<&[f64]> {
        None
    }
    /// True when apply is the identity (`z = r`), which the fused PCG also
    /// folds into its reduction kernel.
    fn is_identity(&self) -> bool {
        false
    }
}
