//! Simulated device global-memory buffers.
//!
//! A [`GBuf`] wraps a host slice and gives simulated kernels CUDA-like
//! access semantics: any lane may load any element, and lanes may store to
//! elements *provided no two lanes store to the same element within one
//! launch* — exactly the discipline CUDA global memory imposes on kernels
//! that do not use atomics.
//!
//! Each buffer is assigned a synthetic, 128-byte-aligned base address so the
//! coalescing model can reason about transactions without interference
//! between buffers.
//!
//! ## Write-conflict detector
//!
//! When the owning [`crate::Device`] has conflict checking armed, every
//! buffer carries an epoch stamp per element. A store bumps the element to
//! the current launch epoch; a second store to the same element in the same
//! epoch panics. This turns the paper's §III-C claim — that sort/scan
//! assembly of the global stiffness matrix is write-conflict-free — into a
//! machine-checked invariant.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Interior-mutable cell that is `Sync` so warps on different host threads
/// can access the simulated global memory concurrently.
///
/// Safety relies on the CUDA discipline documented on [`GBuf`]: disjoint
/// stores within a launch, no load of an element stored in the same launch
/// without an intervening kernel boundary.
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: access discipline is enforced by the kernel-programming contract
// (and dynamically by the conflict detector in checked mode); `T: Send`
// suffices because only plain copies cross threads.
unsafe impl<T: Send> Sync for SyncCell<T> {}

/// A device-visible view of a host slice.
///
/// Create via [`crate::Device::bind`] (read-write) or
/// [`crate::Device::bind_ro`] (read-only).
pub struct GBuf<'a, T> {
    cells: &'a [SyncCell<T>],
    base: u64,
    writable: bool,
    stamps: Option<Arc<Vec<AtomicU32>>>,
}

impl<'a, T: Copy + Send> GBuf<'a, T> {
    /// Internal constructor used by `Device::bind`.
    pub(crate) fn new_rw(slice: &'a mut [T], base: u64, check: bool) -> Self {
        let len = slice.len();
        // SAFETY: SyncCell<T> is repr(transparent) over UnsafeCell<T>, which
        // is repr(transparent) over T; the exclusive borrow guarantees no
        // other alias exists for the lifetime 'a.
        let cells =
            unsafe { std::slice::from_raw_parts(slice.as_mut_ptr() as *const SyncCell<T>, len) };
        GBuf {
            cells,
            base,
            writable: true,
            stamps: check.then(|| Arc::new((0..len).map(|_| AtomicU32::new(0)).collect())),
        }
    }

    /// Internal constructor used by `Device::bind_ro`.
    pub(crate) fn new_ro(slice: &'a [T], base: u64) -> Self {
        let cells = unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const SyncCell<T>, slice.len())
        };
        GBuf {
            cells,
            base,
            writable: false,
            stamps: None,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the buffer has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Synthetic device address of element `i`, used by the coalescing
    /// model.
    #[inline]
    pub(crate) fn addr(&self, i: usize) -> u64 {
        self.base + (i * std::mem::size_of::<T>()) as u64
    }

    /// Element size in bytes.
    #[inline]
    pub(crate) fn elem_bytes(&self) -> u32 {
        std::mem::size_of::<T>() as u32
    }

    /// Raw load (no instrumentation — used by [`crate::Lane::ld`] which adds
    /// the accounting).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> T {
        // SAFETY: in-bounds index (slice indexing panics otherwise); the
        // kernel contract guarantees no concurrent writer to this element.
        unsafe { *self.cells[i].0.get() }
    }

    /// Raw store (no instrumentation). Panics on read-only buffers and, in
    /// checked mode, on write conflicts within `epoch`.
    #[inline]
    pub(crate) fn set(&self, i: usize, v: T, epoch: u32) {
        assert!(self.writable, "store to read-only device buffer");
        if let Some(stamps) = &self.stamps {
            let prev = stamps[i].swap(epoch, Ordering::Relaxed);
            assert!(
                prev != epoch,
                "memory write conflict: element {i} stored twice in launch epoch {epoch}"
            );
        }
        // SAFETY: in-bounds; conflict freedom per the kernel contract (and
        // dynamically verified above when checking is armed).
        unsafe { *self.cells[i].0.get() = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_buffer_roundtrip() {
        let mut data = vec![1.0f64, 2.0, 3.0];
        let buf = GBuf::new_rw(&mut data, 0, false);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.get(1), 2.0);
        buf.set(1, 9.0, 1);
        assert_eq!(buf.get(1), 9.0);
        drop(buf);
        assert_eq!(data[1], 9.0);
    }

    #[test]
    fn ro_buffer_reads() {
        let data = vec![7u32, 8, 9];
        let buf = GBuf::new_ro(&data, 256);
        assert_eq!(buf.get(2), 9);
        assert_eq!(buf.addr(0), 256);
        assert_eq!(buf.addr(2), 256 + 8);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn ro_buffer_rejects_store() {
        let data = vec![1u8];
        let buf = GBuf::new_ro(&data, 0);
        buf.set(0, 2, 1);
    }

    #[test]
    fn conflict_detector_allows_distinct_elements() {
        let mut data = vec![0i32; 4];
        let buf = GBuf::new_rw(&mut data, 0, true);
        for i in 0..4 {
            buf.set(i, i as i32, 1);
        }
        // A later epoch may rewrite the same elements.
        for i in 0..4 {
            buf.set(i, -(i as i32), 2);
        }
    }

    #[test]
    #[should_panic(expected = "write conflict")]
    fn conflict_detector_catches_double_store() {
        let mut data = vec![0i32; 4];
        let buf = GBuf::new_rw(&mut data, 0, true);
        buf.set(2, 1, 7);
        buf.set(2, 2, 7); // same element, same epoch
    }

    #[test]
    fn addresses_use_element_size() {
        let mut data = vec![0f64; 10];
        let buf = GBuf::new_rw(&mut data, 1024, false);
        assert_eq!(buf.addr(3), 1024 + 24);
        assert_eq!(buf.elem_bytes(), 8);
    }
}
