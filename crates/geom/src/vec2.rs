//! Plain 2-D vector with the operations DDA needs.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `rhs` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root in comparisons).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, rhs: Vec2) -> f64 {
        (self - rhs).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist_sq(self, rhs: Vec2) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Unit vector in the same direction.
    ///
    /// Returns [`Vec2::ZERO`] for (near-)zero input rather than NaN, which
    /// is the behaviour the contact kernels want for degenerate edges.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < crate::GEOM_EPS {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Counter-clockwise perpendicular (rotation by +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec2, t: f64) -> Vec2 {
        self + (rhs - self) * t
    }

    /// Angle of the vector measured counter-clockwise from +x, in
    /// `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x.min(rhs.x), self.y.min(rhs.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x.max(rhs.x), self.y.max(rhs.y))
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec2::new(3.0, -4.0);
        let b = Vec2::new(-1.0, 2.0);
        assert_eq!(a + b, Vec2::new(2.0, -2.0));
        assert_eq!(a - b, Vec2::new(4.0, -6.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, -8.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(1.5, -2.0));
        assert_eq!(-a, Vec2::new(-3.0, 4.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norm_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.dist(a), 5.0);
        assert_eq!(Vec2::ZERO.dist_sq(a), 25.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let n = Vec2::new(10.0, 0.0).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let a = Vec2::new(1.0, 0.0);
        assert_eq!(a.perp(), Vec2::new(0.0, 1.0));
        // perp of perp is negation
        assert_eq!(a.perp().perp(), -a);
        // cross(v, v.perp()) > 0 means perp is CCW.
        assert!(a.cross(a.perp()) > 0.0);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let a = Vec2::new(1.0, 0.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < 1e-15);
        assert!((r.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rotation_preserves_norm() {
        let a = Vec2::new(2.5, -7.25);
        for k in 0..16 {
            let r = a.rotated(k as f64 * 0.39);
            assert!((r.norm() - a.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn angle_quadrants() {
        assert!((Vec2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-15);
        assert!((Vec2::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((Vec2::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, -3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, -3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
    }
}
