//! # dda-geom — 2-D computational geometry substrate for DDA
//!
//! Discontinuous Deformation Analysis operates on systems of convex
//! polygonal blocks. Every stage of the pipeline leans on a small set of
//! geometric primitives:
//!
//! * **broad-phase contact detection** needs axis-aligned bounding boxes
//!   ([`Aabb`]) and fast overlap tests;
//! * **narrow-phase contact detection** needs point–segment distances,
//!   vertex–vertex distances, and the *contact angle* test between vertex
//!   wedges ([`angle`]);
//! * **stiffness assembly** needs block areas, centroids and second moments
//!   ([`Polygon::second_moments`]) for the elastic and inertia terms;
//! * **interpenetration checking** needs signed areas of vertex/edge
//!   triples and polygon overlap areas ([`intersect`]).
//!
//! All computations are in `f64`; DDA requires double precision (the paper
//! evaluates exclusively in double precision and so do we).
//!
//! The crate is dependency-light and fully deterministic, so it can be used
//! both from the serial reference pipeline and from inside simulated GPU
//! kernels (the SIMT simulator executes plain Rust closures).

#![deny(missing_docs)]
// Index-based loops over fixed 6-DOF arrays mirror the paper's kernel
// notation (row r, column c); iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod aabb;
pub mod angle;
pub mod intersect;
pub mod polygon;
pub mod predicates;
pub mod segment;
pub mod vec2;

pub use aabb::Aabb;
pub use polygon::Polygon;
pub use segment::Segment;
pub use vec2::Vec2;

/// Geometric tolerance used across the DDA pipeline for degeneracy tests
/// (parallel edges, zero-length segments, coincident vertices).
///
/// Shi's reference implementation uses a relative tolerance of `1e-12`
/// scaled by the problem size; the workloads in this repository are sized in
/// metres with coordinates up to ~1e3, so an absolute `1e-9` keeps roughly
/// the same relative resolution.
pub const GEOM_EPS: f64 = 1e-9;
