//! Steady-state allocation audit for the HSBCSR SpMV path.
//!
//! The workspace-based SpMV (`spmv_hsbcsr_into` / `spmv_hsbcsr_fused_pq`)
//! must allocate **nothing** once warmed: per-call intermediates live in
//! `SpmvWorkspace`, per-block gather scratch is thread-local, kernel names
//! are `&'static str`, and the device trace retains its capacity across
//! `reset_trace`. This test arms a counting global allocator around the
//! warmed calls and requires exactly zero heap allocations.
//!
//! The matrix is sized so both SpMV stages run on the simulator's serial
//! path (few warps / blocks): a single deterministic thread, so a zero
//! count is exact rather than scheduling-dependent. The parallel-pool path
//! reuses the same thread-local scratch but warms per worker thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dda_simt::{Device, DeviceProfile};
use dda_sparse::spmv::{spmv_hsbcsr_fused_pq, spmv_hsbcsr_into, SpmvWorkspace, Stage1Smem};
use dda_sparse::{Hsbcsr, SymBlockMatrix};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_spmv_steady_state_allocates_nothing() {
    // No conflict checking: the epoch detector allocates stamp arrays on
    // bind, which is a debug facility, not part of the hot loop.
    let dev = Device::new(DeviceProfile::tesla_k40());
    let m = SymBlockMatrix::random_spd(150, 4.0, 77);
    let h = Hsbcsr::from_sym(&m);
    let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.19).sin()).collect();
    let mut ws = SpmvWorkspace::new();
    let mut y = vec![0.0f64; m.dim()];

    // Warm: workspace buffers, thread-local kernel scratch, trace capacity.
    for _ in 0..2 {
        spmv_hsbcsr_into(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
        spmv_hsbcsr_fused_pq(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    }
    dev.reset_trace();

    // Measure.
    ARMED.store(true, Ordering::SeqCst);
    spmv_hsbcsr_into(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    spmv_hsbcsr_fused_pq(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    ARMED.store(false, Ordering::SeqCst);

    let n_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n_allocs, 0,
        "warmed SpMV steady state performed {n_allocs} heap allocations"
    );

    // And it still computes the right thing.
    let y_ref = m.mul_vec(&x);
    for i in 0..m.dim() {
        assert!((y[i] - y_ref[i]).abs() < 1e-9, "i={i}");
    }
}
