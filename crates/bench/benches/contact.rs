//! Criterion benches for contact detection: broad and narrow phase,
//! serial vs simulated-GPU paths, plus transfer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dda_bench::SMALL_BLOCKS;
use dda_core::contact::{
    broad_phase_gpu, broad_phase_serial, narrow_phase_gpu, narrow_phase_serial,
    transfer_contacts_serial, GeomSoa,
};
use dda_simt::serial::CpuCounter;
use dda_simt::{Device, DeviceProfile};
use dda_workloads::{slope_case, SlopeConfig};
use std::hint::black_box;

fn bench_broad(c: &mut Criterion) {
    let mut g = c.benchmark_group("broad_phase");
    g.sample_size(15);
    for n in [SMALL_BLOCKS, 600] {
        let (sys, params) = slope_case(&SlopeConfig::default().with_target_blocks(n));
        let soa = GeomSoa::build(&sys);
        g.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                let mut cnt = CpuCounter::new();
                broad_phase_serial(black_box(&sys), params.contact_range, &mut cnt)
            })
        });
        g.bench_with_input(BenchmarkId::new("gpu", n), &n, |b, _| {
            let d = Device::new(DeviceProfile::tesla_k40());
            b.iter(|| broad_phase_gpu(&d, black_box(&soa), params.contact_range))
        });
    }
    g.finish();
}

fn bench_narrow_and_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("narrow_phase");
    g.sample_size(15);
    let (sys, params) = slope_case(&SlopeConfig::default().with_target_blocks(SMALL_BLOCKS));
    let soa = GeomSoa::build(&sys);
    let mut cnt = CpuCounter::new();
    let pairs = broad_phase_serial(&sys, params.contact_range, &mut cnt);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut cnt = CpuCounter::new();
            narrow_phase_serial(black_box(&sys), &pairs, params.contact_range, &mut cnt)
        })
    });
    g.bench_function("gpu", |b| {
        let d = Device::new(DeviceProfile::tesla_k40());
        b.iter(|| narrow_phase_gpu(&d, black_box(&soa), &pairs, params.contact_range))
    });
    let contacts = narrow_phase_serial(&sys, &pairs, params.contact_range, &mut cnt);
    g.bench_function("transfer_serial", |b| {
        b.iter(|| {
            let mut cur = contacts.clone();
            let mut cnt = CpuCounter::new();
            transfer_contacts_serial(black_box(&contacts), &mut cur, &mut cnt)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_broad, bench_narrow_and_transfer);
criterion_main!(benches);
