//! # dda-repro — GPU-architected Discontinuous Deformation Analysis
//!
//! Umbrella crate re-exporting the public API of the workspace. This is the
//! crate downstream users depend on; the examples and integration tests in
//! this repository exercise exactly this surface.
//!
//! Reproduction of: Xiao, Huang, Miao, Xiao, Wang — *Architecting the
//! Discontinuous Deformation Analysis Method Pipeline on the GPU*
//! (IPPS 2017). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! * [`geom`] — 2-D geometry: vectors, convex polygons, distances.
//! * [`simt`] — the SIMT GPU execution simulator (warps, divergence,
//!   coalescing, bank conflicts, timing model) plus device-wide primitives
//!   (scan, radix sort, segmented reduce).
//! * [`sparse`] — 6×6 block-sparse symmetric matrices: CSR, BCSR and the
//!   paper's HSBCSR format with its two-stage SpMV.
//! * [`solver`] — CG/PCG with Block-Jacobi, SSOR-AI and ILU(0)
//!   preconditioners; level-scheduled triangular solves.
//! * [`core`] — the DDA method itself: blocks, contact detection,
//!   stiffness assembly, open–close iteration, interpenetration checking,
//!   and the serial-CPU and simulated-GPU pipelines.
//! * [`workloads`] — the paper's two evaluation cases (slope stability,
//!   rockfall) and synthetic generators.
//!
//! ## Example
//!
//! ```
//! use dda_repro::core::pipeline::GpuPipeline;
//! use dda_repro::core::{Block, BlockMaterial, BlockSystem, DdaParams, JointMaterial};
//! use dda_repro::geom::Polygon;
//! use dda_repro::simt::{Device, DeviceProfile};
//!
//! // A block resting on a fixed floor, run for one step on a simulated
//! // Tesla K40.
//! let sys = BlockSystem::new(
//!     vec![
//!         Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
//!         Block::new(Polygon::rect(-0.5, 0.0, 0.5, 1.0), 0),
//!     ],
//!     BlockMaterial::rock(),
//!     JointMaterial::frictional(35.0),
//! );
//! let params = DdaParams::for_model(1.0, 5e9).static_analysis();
//! let mut pipe = GpuPipeline::new(sys, params, Device::new(DeviceProfile::tesla_k40()));
//! let report = pipe.step();
//! assert!(report.oc_converged);
//! assert!(report.n_contacts >= 2);
//! assert!(pipe.times.total() > 0.0);
//! ```

pub use dda_core as core;
pub use dda_geom as geom;
pub use dda_simt as simt;
pub use dda_solver as solver;
pub use dda_sparse as sparse;
pub use dda_workloads as workloads;
