//! Cross-crate physical validation of the DDA method.
//!
//! These tests exercise the public API end-to-end and assert *physics*, not
//! implementation details: gravity integration accuracy, Coulomb friction
//! thresholds, penalty-bounded interpenetration, and static settling.

use dda_repro::core::pipeline::{CpuPipeline, GpuPipeline};
use dda_repro::core::{Block, BlockMaterial, BlockSystem, DdaParams, JointMaterial};
use dda_repro::geom::{Polygon, Vec2};
use dda_repro::simt::{Device, DeviceProfile};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

/// Free fall must integrate gravity exactly (DDA's inertia scheme is exact
/// for constant acceleration: v(n) = g·n·Δt).
#[test]
fn free_fall_matches_analytic_velocity() {
    let sys = BlockSystem::new(
        vec![Block::new(Polygon::rect(0.0, 100.0, 1.0, 101.0), 0)],
        BlockMaterial::rock(),
        JointMaterial::frictional(30.0),
    );
    let mut params = DdaParams::for_model(1.0, 5e9);
    params.dt = 0.01;
    params.dt_max = 0.01;
    let mut pipe = CpuPipeline::new(sys, params);
    let n = 20;
    for _ in 0..n {
        pipe.step();
    }
    let v = pipe.sys.blocks[0].velocity[1];
    let expect = -9.81 * 0.01 * n as f64;
    assert!(
        (v - expect).abs() < 1e-6 * expect.abs(),
        "v = {v}, analytic {expect}"
    );
}

/// A block on a 30° incline: slides when friction is 15°, holds when 45°
/// (the Coulomb threshold tanφ vs tanθ).
#[test]
fn incline_friction_threshold() {
    let run_incline = |phi_deg: f64| -> f64 {
        // 30° incline as a fixed right triangle; a square block resting on
        // the face, axis-aligned with the slope via rotation.
        let angle: f64 = 30f64.to_radians();
        let incline = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(0.0, 10.0 * angle.tan()),
        ]);
        // Block sitting on the hypotenuse near the middle, edges parallel
        // to the face.
        let t = Vec2::new(angle.cos(), -angle.sin()); // downslope direction
        let n = Vec2::new(angle.sin(), angle.cos()); // outward normal
        let mid = Vec2::new(5.0, 5.0 * angle.tan()) + n * 1e-6;
        let s = 1.0;
        let block = Polygon::new(vec![mid, mid + t * s, mid + t * s + n * s, mid + n * s]);
        let sys = BlockSystem::new(
            vec![Block::new(incline, 0).fixed(), Block::new(block, 0)],
            BlockMaterial::rock(),
            JointMaterial::frictional(phi_deg),
        );
        let mut params = DdaParams::for_model(1.0, 5e9);
        // Slightly damped dynamics (the classical DDA dynamic coefficient)
        // so the block stays in contact instead of elastically skipping.
        params.dynamics = 0.97;
        // Enough physical time for measurable travel: a 30° slope with
        // φ=15° accelerates at g(sin30 − cos30·tan15) ≈ 2.6 m/s².
        params.dt = 2e-3;
        params.dt_max = 2e-3;
        let mut pipe = CpuPipeline::new(sys, params);
        for _ in 0..50 {
            pipe.step();
        }
        // Downslope velocity (positive = sliding).
        let v = pipe.sys.blocks[1].velocity;
        Vec2::new(v[0], v[1]).dot(t)
    };

    // φ=15° on 30°: slides (the damped dynamics bound the terminal
    // velocity below the undamped analytic 0.26 m/s); φ=45° holds.
    let slid = run_incline(15.0);
    let held = run_incline(45.0);
    assert!(
        slid > 0.02,
        "φ=15° must be sliding on a 30° slope: v = {slid}"
    );
    assert!(
        held.abs() < 0.2 * slid,
        "φ=45° must hold on a 30° slope: v = {held} (vs sliding {slid})"
    );
}

/// Interpenetration stays at the penalty-compliance scale, far below the
/// geometric scale of the blocks.
#[test]
fn interpenetration_bounded_by_penalty_compliance() {
    let sys = BlockSystem::new(
        vec![
            Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
            Block::new(Polygon::rect(-0.5, 0.0, 0.5, 1.0), 0),
            Block::new(Polygon::rect(-0.5, 1.0, 0.5, 2.0), 0),
            Block::new(Polygon::rect(-0.5, 2.0, 0.5, 3.0), 0),
        ],
        BlockMaterial::rock(),
        JointMaterial::frictional(35.0),
    );
    let params = DdaParams::for_model(1.0, 5e9).static_analysis();
    let mut pipe = CpuPipeline::new(sys, params);
    for _ in 0..8 {
        pipe.step();
    }
    // Stack of 3 blocks under gravity: overlap area per contact ~
    // (weight/penalty)·width ≈ 1e-6 — assert two orders above that.
    assert!(
        pipe.sys.total_interpenetration() < 1e-4,
        "overlap {}",
        pipe.sys.total_interpenetration()
    );
    // And the stack has not collapsed: top block still near y = 2.5.
    let top = pipe.sys.blocks[3].centroid();
    assert!((top.y - 2.5).abs() < 0.01, "top block at {top:?}");
}

/// Static analysis drives the kinetic-energy proxy toward zero (the
/// paper's case-1 termination criterion: "all the blocks stayed in the
/// static state").
#[test]
fn static_slope_settles() {
    use dda_repro::workloads::{slope_case, SlopeConfig};
    let (sys, params) = slope_case(&SlopeConfig::default().with_target_blocks(60));
    let allowed = params.max_displacement;
    let mut pipe = CpuPipeline::new(sys, params);
    for step in 0..8 {
        let r = pipe.step();
        // Quasi-static from the start: per-step displacements sit orders of
        // magnitude below the allowed maximum (the slope is stable, which
        // is the case-1 premise).
        assert!(
            r.max_displacement < 0.05 * allowed,
            "step {step}: displacement {} vs allowed {allowed}",
            r.max_displacement
        );
    }
    assert!(pipe.sys.total_interpenetration() < 1e-3);
}

/// The GPU pipeline follows the CPU pipeline trajectory on a dynamic
/// multi-block problem (same algorithm, same arithmetic up to reduction
/// order).
#[test]
fn gpu_and_cpu_pipelines_agree_dynamically() {
    use dda_repro::workloads::{rockfall_case, RockfallConfig};
    let (sys, params) = rockfall_case(&RockfallConfig::default().with_rocks(8));
    let mut cpu = CpuPipeline::new(sys.clone(), params.clone());
    let mut gpu = GpuPipeline::new(sys, params, k40());
    for step in 0..6 {
        let rc = cpu.step();
        let rg = gpu.step();
        assert_eq!(rc.n_contacts, rg.n_contacts, "step {step}");
        for (i, (bc, bg)) in cpu.sys.blocks.iter().zip(&gpu.sys.blocks).enumerate() {
            let d = bc.centroid().dist(bg.centroid());
            assert!(d < 1e-6, "step {step} block {i}: drift {d}");
        }
    }
}

/// Momentum sanity: a sliding block decelerates under friction on a flat
/// floor (kinetic friction converts momentum at rate μmg).
#[test]
fn sliding_block_decelerates_by_friction() {
    let sys = {
        let mut s = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-50.0, -1.0, 50.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(20.0),
        );
        s.blocks[1].velocity[0] = 2.0; // initial horizontal slide
        s
    };
    let mut params = DdaParams::for_model(1.0, 5e9);
    params.dynamics = 1.0;
    params.dt = 2e-3;
    params.dt_max = 2e-3;
    let mut pipe = CpuPipeline::new(sys, params);
    let v0 = pipe.sys.blocks[1].velocity[0];
    let n = 25;
    for _ in 0..n {
        pipe.step();
    }
    let v1 = pipe.sys.blocks[1].velocity[0];
    // Coulomb: Δv ≈ −g·tanφ·t (within the settle transient of the first
    // couple of steps).
    let expect = v0 - 9.81 * 20f64.to_radians().tan() * 2e-3 * n as f64;
    assert!(
        (v1 - expect).abs() < 0.15 * (v0 - expect).abs(),
        "friction deceleration off: v1 = {v1}, analytic {expect}"
    );
}

/// Mechanical-energy audit: a free-falling block conserves KE + PE to
/// first order in Δt (the DDA update is exact for constant acceleration up
/// to the velocity's half-step offset).
#[test]
fn free_fall_conserves_mechanical_energy() {
    let sys = BlockSystem::new(
        vec![Block::new(Polygon::rect(0.0, 100.0, 1.0, 101.0), 0)],
        BlockMaterial::rock(),
        JointMaterial::frictional(30.0),
    );
    let mut params = DdaParams::for_model(1.0, 5e9);
    params.dt = 0.005;
    params.dt_max = 0.005;
    let mut pipe = CpuPipeline::new(sys, params);
    let e0 = pipe.sys.kinetic_energy() + pipe.sys.gravitational_potential();
    for _ in 0..40 {
        pipe.step();
    }
    let e1 = pipe.sys.kinetic_energy() + pipe.sys.gravitational_potential();
    // After 0.2 s of fall the block carries ~5 kJ of KE; the audit must
    // close to well under a percent of the energy exchanged.
    let exchanged = pipe.sys.kinetic_energy();
    assert!(exchanged > 1000.0, "block should be moving: {exchanged}");
    assert!(
        (e1 - e0).abs() < 0.02 * exchanged,
        "energy drift {} vs exchanged {exchanged}",
        e1 - e0
    );
}
