//! Segment boundary detection and segmented reduction over sorted keys.
//!
//! This is Fig. 4 of the paper, verbatim: after sorting contact
//! contributions by sub-matrix number, boundaries are found with
//! `di[i] = (SD[i] − SD[i−1] == 0) ? 1 : 0`, `di` is scanned to index the
//! distinct sub-matrices, and each sub-matrix is the sum of its segment
//! `SD[sd2[i−1]] … SD[sd2[i]]`. No element is written by two threads —
//! the write-conflict-free assembly.

use super::scan::scan_exclusive_u32;
use crate::device::Device;

/// Given keys sorted ascending, returns `(segment_of, starts)`:
/// `segment_of[i]` is the segment index of element `i`, and `starts[s]` is
/// the first element of segment `s` (with a final sentinel `starts[n_seg] =
/// keys.len()`).
pub fn segment_starts(dev: &Device, sorted_keys: &[u64]) -> (Vec<u32>, Vec<u32>) {
    let n = sorted_keys.len();
    if n == 0 {
        return (Vec::new(), vec![0]);
    }

    // Kernel: head flags (paper's `di`).
    let mut flags = vec![0u32; n];
    {
        let b_keys = dev.bind_ro(sorted_keys);
        let b_flags = dev.bind(&mut flags);
        dev.launch("segments.head_flags", n, |lane| {
            let i = lane.gid;
            let k = lane.ld(&b_keys, i);
            let is_head = if i == 0 {
                true
            } else {
                let prev = lane.ld(&b_keys, i - 1);
                lane.flop(1);
                prev != k
            };
            lane.st(&b_flags, i, u32::from(is_head));
        });
    }

    // Scan flags → segment index per element (inclusive-style via exclusive
    // scan + flag).
    let (scanned, total) = scan_exclusive_u32(dev, &flags);
    let n_segments = total as usize;
    let segment_of: Vec<u32> = scanned
        .iter()
        .zip(flags.iter())
        .map(|(&s, &f)| s + f - 1)
        .collect();

    // Kernel: scatter segment starts (each head element writes its start —
    // disjoint by construction).
    let mut starts = vec![0u32; n_segments + 1];
    starts[n_segments] = n as u32;
    {
        let b_flags = dev.bind_ro(&flags);
        let b_seg = dev.bind_ro(&segment_of);
        let b_starts = dev.bind(&mut starts);
        dev.launch("segments.scatter_starts", n, |lane| {
            let i = lane.gid;
            let f = lane.ld(&b_flags, i);
            if lane.branch(0, f == 1) {
                let s = lane.ld(&b_seg, i);
                lane.st(&b_starts, s as usize, i as u32);
            }
        });
    }

    (segment_of, starts)
}

/// Sums `values` within each segment delimited by `starts` (as produced by
/// [`segment_starts`], including the trailing sentinel). One thread reduces
/// one segment — the load imbalance of skewed segment sizes is therefore
/// visible to the timing model, as it is on hardware.
pub fn segmented_sum_f64(dev: &Device, values: &[f64], starts: &[u32]) -> Vec<f64> {
    let n_segments = starts.len().saturating_sub(1);
    let mut out = vec![0.0f64; n_segments];
    if n_segments == 0 {
        return out;
    }
    let b_vals = dev.bind_ro(values);
    let b_starts = dev.bind_ro(starts);
    let b_out = dev.bind(&mut out);
    dev.launch("segments.sum", n_segments, |lane| {
        let s = lane.gid;
        let lo = lane.ld(&b_starts, s) as usize;
        let hi = lane.ld(&b_starts, s + 1) as usize;
        let mut acc = 0.0;
        for i in lo..hi {
            acc += lane.ld(&b_vals, i);
            lane.flop(1);
        }
        lane.st(&b_out, s, acc);
    });
    drop(b_out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn empty_keys() {
        let d = dev();
        let (seg, starts) = segment_starts(&d, &[]);
        assert!(seg.is_empty());
        assert_eq!(starts, vec![0]);
        let sums = segmented_sum_f64(&d, &[], &starts);
        assert!(sums.is_empty());
    }

    #[test]
    fn single_segment() {
        let d = dev();
        let keys = vec![7u64; 100];
        let (seg, starts) = segment_starts(&d, &keys);
        assert!(seg.iter().all(|&s| s == 0));
        assert_eq!(starts, vec![0, 100]);
        let vals = vec![0.5f64; 100];
        let sums = segmented_sum_f64(&d, &vals, &starts);
        assert_eq!(sums.len(), 1);
        assert!((sums[0] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_segments() {
        let d = dev();
        let keys = vec![1u64, 1, 2, 2, 2, 5, 9, 9];
        let (seg, starts) = segment_starts(&d, &keys);
        assert_eq!(seg, vec![0, 0, 1, 1, 1, 2, 3, 3]);
        assert_eq!(starts, vec![0, 2, 5, 6, 8]);
        let vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let sums = segmented_sum_f64(&d, &vals, &starts);
        assert_eq!(sums, vec![1.0, 9.0, 5.0, 13.0]);
    }

    #[test]
    fn every_element_its_own_segment() {
        let d = dev();
        let keys: Vec<u64> = (0..500).collect();
        let (seg, starts) = segment_starts(&d, &keys);
        assert_eq!(seg.len(), 500);
        for (i, &s) in seg.iter().enumerate() {
            assert_eq!(s as usize, i);
        }
        assert_eq!(starts.len(), 501);
    }

    #[test]
    fn skewed_segments_sum_correctly() {
        // One huge segment, many tiny ones — the assembly's worst case.
        let d = dev();
        let mut keys = vec![0u64; 1000];
        keys.extend(1..=50u64);
        let vals: Vec<f64> = vec![1.0; keys.len()];
        let (_, starts) = segment_starts(&d, &keys);
        let sums = segmented_sum_f64(&d, &vals, &starts);
        assert_eq!(sums.len(), 51);
        assert!((sums[0] - 1000.0).abs() < 1e-12);
        assert!(sums[1..].iter().all(|&s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn large_input_crosses_tiles() {
        let d = dev();
        let n = 10_000usize;
        // Segments of length 37.
        let keys: Vec<u64> = (0..n).map(|i| (i / 37) as u64).collect();
        let vals: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let (_, starts) = segment_starts(&d, &keys);
        let sums = segmented_sum_f64(&d, &vals, &starts);
        // Reference.
        let n_seg = n.div_ceil(37);
        assert_eq!(sums.len(), n_seg);
        for s in 0..n_seg {
            let lo = s * 37;
            let hi = ((s + 1) * 37).min(n);
            let expect: f64 = (lo..hi).map(|i| (i % 5) as f64).sum();
            assert!((sums[s] - expect).abs() < 1e-9, "segment {s}");
        }
    }
}
