//! Batched multi-scene throughput runtime with a fault-isolated scene
//! lifecycle.
//!
//! Small DDA scenes leave a modeled GPU mostly idle: a 60-block rockfall
//! launches kernels over a few hundred threads, so per-launch overhead and
//! low occupancy dominate. [`SceneBatch`] steps N independent scenes
//! concurrently on **one** device: the per-scene state lives side by side
//! (offset-indexed per scene), every pipeline phase is visited
//! *phase-major* across all scenes inside a device batch region, and the
//! region merges the scenes' matching kernels into one modeled launch
//! covering all scenes — amortizing launch overhead and summing warps into
//! far better occupancy.
//!
//! The three-level DDA loop becomes a **masked lockstep**: all scenes enter
//! loop 2 (displacement control) and loop 3 (open–close iteration)
//! together, and per-scene convergence masks drop finished scenes out of
//! subsequent phases — a scene whose open–close iteration converged at
//! global iteration k simply stops contributing launches, exactly like a
//! masked-off scene slice in a real packed kernel. Each scene's own
//! control-flow decisions (convergence, Δt retries, freeze flags) are
//! evaluated with scene-local data, so per-scene trajectories are
//! **bit-identical** to stepping the same scene alone in a
//! [`GpuPipeline`](super::GpuPipeline).
//!
//! # Scene lifecycle and fault isolation
//!
//! Each batch position is a *slot* carrying a [`SceneHealth`] record whose
//! [`SlotState`] walks `Running → Degraded → Quarantined → Retired`:
//!
//! - **Streaming admission**: [`SceneBatch::admit`] adds a scene at a step
//!   boundary without draining the batch (reusing a retired slot when one
//!   is free); [`SceneBatch::retire`] frees a slot and hands its system
//!   back.
//! - **Health monitoring**: phase boundaries scan the faulting scene's RHS,
//!   solution, and gap arrays for NaN/Inf, bound the accepted displacement
//!   (divergence), and watch for a pinned open–close loop. The scans are
//!   host-side — no launches, no modeled time — so healthy scenes stay bit-
//!   and time-identical to an unmonitored run.
//! - **Graceful degradation**: a batched Block-Jacobi solve that breaks
//!   down is re-solved solo under scalar Jacobi (the last ladder rung);
//!   success marks the scene [`SlotState::Degraded`] but keeps it moving.
//! - **Fault isolation**: a faulted scene's step is *not committed* — its
//!   system and warm-start stay frozen — its Δt backs off exponentially,
//!   and [`HealthPolicy::retry_budget`] consecutive failures quarantine it.
//!   Batch-mates never see any of this: their masked launches and values
//!   are unchanged.
//!
//! Launch accounting per step is exposed as `(launches_in, launches_out)`:
//! the launches the N scenes would have issued solo versus the merged
//! launches the batch actually modeled.

use super::driver::{StepOutcome, MAX_RETRIES};
use super::health::{all_finite, HealthPolicy, SceneHealth, SlotState, StepError};
use super::solver_cache::SolverCache;
use super::{ModuleTimes, StepReport};
use crate::assembly::{assemble_contacts_gpu_scheduled, AssembledSystem};
use crate::assembly_cache::{AssemblyCache, AssemblyStats};
use crate::contact::init::init_contacts_classified;
use crate::contact::{
    detect_broad_gpu, narrow_phase_gpu_scheduled, transfer_contacts_gpu_scheduled, Contact,
    ContactOrder, ContactWorkspace, GeomSoa,
};
use crate::interpenetration::{check_gpu, BranchScheme, GapArrays};
use crate::openclose::{categorize_gpu, open_close_gpu, open_close_gpu_masked};
use crate::params::{AssemblyReuse, DdaParams, SolverWarmStart};
use crate::stiffness::perblock::{build_diag_gpu, BlockSoa};
use crate::system::BlockSystem;
use crate::update::{max_displacement, update_system};
use dda_simt::serial::CpuCounter;
use dda_simt::{BatchSummary, Device, KernelStats};
use dda_solver::precond::Jacobi;
use dda_solver::{
    pcg_fused, pcg_fused_batch, pcg_fused_mixed, PcgBatchEntry, PrecondKind, SolveResult,
    SolverPrecision,
};
use dda_sparse::Block6;

/// One scene's slice of the batch: its own block system, parameters,
/// contact set, warm-start vector, and solver cache.
struct BatchScene {
    sys: BlockSystem,
    params: DdaParams,
    times: ModuleTimes,
    contacts: Vec<Contact>,
    x_prev: Vec<f64>,
    cache: SolverCache,
    acache: AssemblyCache,
    // Staged PCG starting iterate (warm iterate or `x_prev`), a scratch
    // buffer so the batched-entry borrow never conflicts with the solver
    // cache's `try_prepare`.
    x0: Vec<f64>,
    ws: ContactWorkspace,
    gsoa: Option<GeomSoa>,
    bsoa: Option<BlockSoa>,
}

impl BatchScene {
    fn new(sys: BlockSystem, params: DdaParams) -> BatchScene {
        let n = sys.len();
        BatchScene {
            sys,
            params,
            times: ModuleTimes::default(),
            contacts: Vec::new(),
            x_prev: vec![0.0; 6 * n],
            cache: SolverCache::default(),
            acache: AssemblyCache::new(),
            x0: Vec::new(),
            ws: ContactWorkspace::new(),
            gsoa: None,
            bsoa: None,
        }
    }
}

/// One batch position: the scene payload (absent once retired) plus its
/// lifecycle health record.
struct SceneSlot {
    scene: Option<BatchScene>,
    health: SceneHealth,
}

/// Full-fidelity snapshot of one slot's scene: everything needed to
/// re-create the scene elsewhere (another slot, another batch, another
/// process) with a bit-identical trajectory — the evolving system, the
/// parameters (including Δt backoff), the contact set (whose transfer
/// history seeds the next detection), the PCG warm start, the per-module
/// accounting, and the health record. Derived caches (SoA mirrors, solver
/// format cache) are deliberately absent: they are rebuilt deterministically
/// and never influence trajectory values.
#[derive(Debug, Clone)]
pub struct SceneState {
    /// The evolving block system.
    pub sys: BlockSystem,
    /// Analysis parameters (Δt carries the backoff state).
    pub params: DdaParams,
    /// Current contact set (transfer history).
    pub contacts: Vec<Contact>,
    /// Previous accepted solution (PCG warm start / loop-3 seed).
    pub x_prev: Vec<f64>,
    /// Accumulated modeled seconds per module.
    pub times: ModuleTimes,
    /// Lifecycle health record at snapshot time.
    pub health: SceneHealth,
}

/// Steps N independent scenes concurrently on one modeled device (see the
/// module docs for the batching model and the scene lifecycle).
pub struct SceneBatch {
    dev: Device,
    slots: Vec<SceneSlot>,
    policy: HealthPolicy,
    step_index: u64,
    launches_in: u64,
    launches_out: u64,
}

impl SceneBatch {
    /// Packs `scenes` onto `dev`. Panics if `scenes` is empty.
    pub fn new(dev: Device, scenes: Vec<(BlockSystem, DdaParams)>) -> SceneBatch {
        assert!(!scenes.is_empty(), "a batch needs at least one scene");
        let slots = scenes
            .into_iter()
            .map(|(sys, params)| SceneSlot {
                scene: Some(BatchScene::new(sys, params)),
                health: SceneHealth::new_running(),
            })
            .collect();
        SceneBatch {
            dev,
            slots,
            policy: HealthPolicy::default(),
            step_index: 0,
            launches_in: 0,
            launches_out: 0,
        }
    }

    /// An empty batch: no slots yet, scenes arrive through
    /// [`SceneBatch::admit`] (this is how the ingestion scheduler starts a
    /// fleet). Stepping an empty batch is a safe no-op.
    pub fn empty(dev: Device) -> SceneBatch {
        SceneBatch {
            dev,
            slots: Vec::new(),
            policy: HealthPolicy::default(),
            step_index: 0,
            launches_in: 0,
            launches_out: 0,
        }
    }

    /// The batch's step counter (increments once per [`SceneBatch::step`]).
    pub fn step_index(&self) -> u64 {
        self.step_index
    }

    /// Overrides the degradation policy (retry budget, stall limit,
    /// divergence bound).
    pub fn with_policy(mut self, policy: HealthPolicy) -> SceneBatch {
        self.policy = policy;
        self
    }

    /// Number of slots in the batch (including quarantined/retired ones —
    /// slot indices are stable for the batch's lifetime).
    pub fn n_scenes(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently stepping (Running or Degraded).
    pub fn n_live(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.health.is_stepping() && s.scene.is_some())
            .count()
    }

    /// Admits a new scene at the next step boundary: it joins the merged
    /// launches of the following [`SceneBatch::step`] without draining the
    /// batch. Reuses a retired slot when one is free (keeping batch
    /// regions dense), otherwise appends. Returns the slot index.
    ///
    /// A reused slot is rebuilt from scratch — fresh scene payload *and*
    /// fresh [`SceneHealth`] — so a new scene can never inherit its
    /// predecessor's failure counters or Δt backoff.
    pub fn admit(&mut self, sys: BlockSystem, params: DdaParams) -> usize {
        self.admit_state(SceneState {
            x_prev: vec![0.0; 6 * sys.len()],
            sys,
            params,
            contacts: Vec::new(),
            times: ModuleTimes::default(),
            health: SceneHealth::new_running(),
        })
    }

    /// Admits a previously captured [`SceneState`] — the restore half of
    /// checkpointing and the mechanism behind requeue-after-repair. The
    /// scene resumes with its saved system, contact history, warm start,
    /// Δt backoff, and health record, so its continued trajectory is
    /// bit-identical to never having left the batch. Placement follows
    /// [`SceneBatch::admit`] (retired slot first, else append).
    pub fn admit_state(&mut self, st: SceneState) -> usize {
        let SceneState {
            sys,
            params,
            contacts,
            x_prev,
            times,
            health,
        } = st;
        let mut scene = BatchScene::new(sys, params);
        scene.contacts = contacts;
        scene.x_prev = x_prev;
        scene.times = times;
        let slot = SceneSlot {
            scene: Some(scene),
            health,
        };
        match self
            .slots
            .iter()
            .position(|s| s.health.state == SlotState::Retired)
        {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    /// Retires slot `i`, freeing it for re-admission, and hands back the
    /// scene's final block system (`None` if the slot was already empty).
    /// Works on any state — finished scenes and quarantined ones alike.
    pub fn retire(&mut self, i: usize) -> Option<BlockSystem> {
        self.extract(i).map(|st| st.sys)
    }

    /// Retires slot `i` and hands back the scene's **full** state — system,
    /// parameters, contacts, warm start, times, and the pre-retirement
    /// health record — so the caller can repair and resubmit it, or
    /// checkpoint it. The slot itself is left with a clean
    /// [`SceneHealth::retired`] record (no inherited degradation).
    pub fn extract(&mut self, i: usize) -> Option<SceneState> {
        let slot = self.slots.get_mut(i)?;
        let health = std::mem::replace(&mut slot.health, SceneHealth::retired());
        let sc = slot.scene.take()?;
        Some(SceneState {
            sys: sc.sys,
            params: sc.params,
            contacts: sc.contacts,
            x_prev: sc.x_prev,
            times: sc.times,
            health,
        })
    }

    /// A clone of slot `i`'s full scene state (`None` for empty slots) —
    /// the capture half of checkpointing. Must be taken at a step boundary
    /// for the snapshot to be resumable.
    pub fn scene_state(&self, i: usize) -> Option<SceneState> {
        let slot = self.slots.get(i)?;
        let sc = slot.scene.as_ref()?;
        Some(SceneState {
            sys: sc.sys.clone(),
            params: sc.params.clone(),
            contacts: sc.contacts.clone(),
            x_prev: sc.x_prev.clone(),
            times: sc.times,
            health: slot.health.clone(),
        })
    }

    /// Compacts the batch at a step boundary: retired slots are removed and
    /// surviving scenes move down into the lowest indices, so merged batch
    /// regions stop carrying dead segments (a region's modeled cost is the
    /// `max` over member segments — empty trailing slots are pure waste).
    ///
    /// Returns the old→new slot mapping (`None` for removed slots). Scene
    /// payloads are *moved*, never rebuilt, so surviving trajectories are
    /// bit-identical by construction — and asserted, via a state
    /// fingerprint taken on each side of the move. Armed fault injections
    /// (under `fault-inject`) are remapped to follow their scenes.
    pub fn compact(&mut self) -> Vec<Option<usize>> {
        let n = self.slots.len();
        let before: Vec<Option<u64>> = (0..n).map(|i| self.fingerprint(i)).collect();
        let mut map: Vec<Option<usize>> = vec![None; n];
        let old = std::mem::take(&mut self.slots);
        for (i, slot) in old.into_iter().enumerate() {
            if slot.health.state == SlotState::Retired {
                continue;
            }
            map[i] = Some(self.slots.len());
            self.slots.push(slot);
        }
        for (old_i, &new_i) in map.iter().enumerate() {
            if let Some(new_i) = new_i {
                assert_eq!(
                    before[old_i],
                    self.fingerprint(new_i),
                    "compaction must preserve scene state bit-for-bit \
                     (slot {old_i} -> {new_i})"
                );
            }
        }
        #[cfg(feature = "fault-inject")]
        self.dev.remap_fault_segments(&map);
        map
    }

    /// FNV-1a over the bits of scene `i`'s kinematic state (centroids,
    /// velocities, warm start, Δt) — `None` for empty slots. Collision-safe
    /// enough for the compaction assertion; never fed back into physics.
    fn fingerprint(&self, i: usize) -> Option<u64> {
        let sc = self.scene(i)?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in &sc.sys.blocks {
            let c = b.centroid();
            eat(c.x.to_bits());
            eat(c.y.to_bits());
            for dof in 0..6 {
                eat(b.velocity[dof].to_bits());
            }
        }
        for x in &sc.x_prev {
            eat(x.to_bits());
        }
        eat(sc.params.dt.to_bits());
        Some(h)
    }

    /// Slot `i`'s health record (state machine position, failure counters,
    /// last fault).
    pub fn health(&self, i: usize) -> &SceneHealth {
        &self.slots[i].health
    }

    /// The degradation policy in force.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// The shared device (for trace inspection).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    fn scene(&self, i: usize) -> Option<&BatchScene> {
        self.slots.get(i)?.scene.as_ref()
    }

    /// Scene `i`'s evolving block system (`None` once the slot is retired
    /// or out of range).
    pub fn sys(&self, i: usize) -> Option<&BlockSystem> {
        self.scene(i).map(|sc| &sc.sys)
    }

    /// Scene `i`'s analysis parameters (Δt adapts per scene). `None` once
    /// the slot is retired or out of range.
    pub fn params(&self, i: usize) -> Option<&DdaParams> {
        self.scene(i).map(|sc| &sc.params)
    }

    /// Scene `i`'s current contact set (`None` once the slot is retired or
    /// out of range).
    pub fn contacts(&self, i: usize) -> Option<&[Contact]> {
        self.scene(i).map(|sc| sc.contacts.as_slice())
    }

    /// Scene `i`'s accumulated modeled seconds per module (its share of
    /// every merged launch, split by modeled work). `None` once the slot
    /// is retired or out of range.
    pub fn times(&self, i: usize) -> Option<&ModuleTimes> {
        self.scene(i).map(|sc| &sc.times)
    }

    /// Scene `i`'s broad-phase cache diagnostics `(hits, rebuilds)`
    /// (both zero unless the scene runs
    /// [`crate::contact::BroadPhaseMode::GridCached`]).
    pub fn broad_cache_stats(&self, i: usize) -> Option<(u64, u64)> {
        self.scene(i)
            .map(|sc| (sc.ws.cache.hits, sc.ws.cache.rebuilds))
    }

    /// Scene `i`'s ordering-cache diagnostics `(resorts, reuses,
    /// switches)` (all zero under [`ContactOrder::Discovery`]).
    pub fn contact_order_stats(&self, i: usize) -> Option<(u64, u64, u64)> {
        self.scene(i).map(|sc| sc.ws.order.stats())
    }

    /// Sum of all scenes' module times.
    pub fn total_times(&self) -> ModuleTimes {
        let mut t = ModuleTimes::default();
        for sc in self.slots.iter().filter_map(|s| s.scene.as_ref()) {
            t.contact_detection += sc.times.contact_detection;
            t.diag_building += sc.times.diag_building;
            t.nondiag_building += sc.times.nondiag_building;
            t.solving += sc.times.solving;
            t.interpenetration += sc.times.interpenetration;
            t.updating += sc.times.updating;
        }
        t
    }

    /// Launch accounting of the last step: `(launches_in, launches_out)` —
    /// what the scenes would have launched solo vs what the batch modeled
    /// after merging.
    pub fn last_step_launches(&self) -> (u64, u64) {
        (self.launches_in, self.launches_out)
    }

    /// Folds a phase's batch summary into the per-scene module times and
    /// the step's launch accounting.
    fn charge(&mut self, s: BatchSummary, field: fn(&mut ModuleTimes) -> &mut f64) {
        self.launches_in += s.launches_in;
        self.launches_out += s.launches_out;
        for (slot, &sec) in self.slots.iter_mut().zip(&s.per_segment_seconds) {
            if let Some(sc) = slot.scene.as_mut() {
                *field(&mut sc.times) += sec;
            }
        }
    }

    /// Books a fault against slot `i`: Δt backs off exponentially and the
    /// scene keeps retrying until the budget is spent, then quarantines
    /// frozen at its last accepted state.
    fn record_fault(&mut self, i: usize, err: StepError) {
        let slot = &mut self.slots[i];
        slot.health.total_faults += 1;
        slot.health.consecutive_failures += 1;
        slot.health.last_error = Some(err);
        if slot.health.consecutive_failures > self.policy.retry_budget {
            slot.health.state = SlotState::Quarantined;
            slot.health.quarantined_at_step = Some(self.step_index);
        } else {
            slot.health.state = SlotState::Degraded;
            if let Some(sc) = slot.scene.as_mut() {
                sc.params.reduce_dt();
            }
        }
    }

    /// Attempts the degraded solo re-solve for slot `i` after the batched
    /// Block-Jacobi solve (or its factorization) failed: scalar Jacobi —
    /// the last ladder rung — in the scene's own batch region.
    fn rescue_solve(&mut self, i: usize, asm: &AssembledSystem) -> Result<SolveResult, StepError> {
        let n = self.slots.len();
        self.dev.batch_begin(n);
        self.dev.batch_segment(i);
        let res = match self.slots[i].scene.as_mut() {
            None => Err(StepError::Internal {
                what: "rescued slot lost its scene",
            }),
            Some(sc) => (|| {
                // Ladder descent: cold-start from the previous step's
                // solution and drop the warm iterate, which the degraded
                // solve is about to invalidate (gpu.rs mirror).
                sc.cache.clear_warm();
                // The rescue rung honors the scene's precision mode so a
                // rescued batch scene stays bit-identical to the same
                // scene descending to the Jacobi rung solo.
                let f32_shadow = sc.params.precision == SolverPrecision::Mixed;
                let (h, h32, _, ws) = sc
                    .cache
                    .try_prepare(&self.dev, &asm.matrix, false, f32_shadow)
                    .map_err(|error| StepError::PreconditionerFailed { error })?;
                let j = Jacobi::try_new(&self.dev, h)
                    .map_err(|error| StepError::PreconditionerFailed { error })?;
                Ok(match h32 {
                    Some(h32) => pcg_fused_mixed(
                        &self.dev,
                        h,
                        h32,
                        &asm.rhs,
                        &sc.x_prev,
                        &j,
                        sc.params.pcg,
                        ws,
                    ),
                    None => pcg_fused(&self.dev, h, &asm.rhs, &sc.x_prev, &j, sc.params.pcg, ws),
                })
            })(),
        };
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.solving);
        let r = res?;
        if let Some(error) = r.error {
            Err(StepError::SolverBreakdown { error })
        } else if !all_finite(&r.x) {
            Err(StepError::NonFiniteSolution { oc_iteration: 0 })
        } else {
            Ok(r)
        }
    }

    /// Advances every stepping scene one time step, returning one report
    /// per slot (quarantined/retired slots get a default report).
    pub fn step(&mut self) -> Vec<StepReport> {
        let n = self.slots.len();
        let mut reports = vec![StepReport::default(); n];
        self.launches_in = 0;
        self.launches_out = 0;
        self.step_index += 1;
        // Per-scene snapshots for the step report's phase/assembly deltas.
        let times_at_start: Vec<ModuleTimes> = self
            .slots
            .iter()
            .map(|s| s.scene.as_ref().map(|sc| sc.times).unwrap_or_default())
            .collect();
        let asm_at_start: Vec<AssemblyStats> = self
            .slots
            .iter()
            .map(|s| {
                s.scene
                    .as_ref()
                    .map(|sc| sc.acache.stats())
                    .unwrap_or_default()
            })
            .collect();
        let mut warm_starts = vec![0usize; n];

        let mut stepping: Vec<bool> = self
            .slots
            .iter()
            .map(|s| s.health.is_stepping() && s.scene.is_some())
            .collect();
        if !stepping.iter().any(|&a| a) {
            return reports;
        }
        // Faults detected mid-step; a faulted scene leaves the lockstep
        // immediately and its step is never committed.
        let mut fault: Vec<Option<StepError>> = vec![None; n];

        // ---- Phase: contact detection (all scenes, one merged launch set)
        self.dev.batch_begin(n);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if !stepping[i] {
                continue;
            }
            let Some(sc) = slot.scene.as_mut() else {
                fault[i] = Some(StepError::Internal {
                    what: "stepping slot lost its scene",
                });
                stepping[i] = false;
                continue;
            };
            self.dev.batch_segment(i);
            let touch = sc.params.touch_tol * sc.params.max_displacement;
            let gsoa = GeomSoa::build(&sc.sys);
            detect_broad_gpu(
                &self.dev,
                &gsoa,
                sc.params.broad_phase,
                sc.params.contact_range,
                sc.params.broad_slack,
                &mut sc.ws,
            );
            let class_sorted = sc.params.contact_order == ContactOrder::ClassSorted;
            let mut contacts = narrow_phase_gpu_scheduled(
                &self.dev,
                &gsoa,
                &sc.ws.pairs,
                sc.params.contact_range,
                if class_sorted {
                    sc.ws.order.pair_schedule(sc.ws.pairs.len())
                } else {
                    None
                },
            );
            transfer_contacts_gpu_scheduled(
                &self.dev,
                &sc.contacts,
                &mut contacts,
                if class_sorted {
                    sc.ws.order.contact_schedule(sc.contacts.len())
                } else {
                    None
                },
            );
            init_contacts_classified(&self.dev, &gsoa, &mut contacts, touch);
            sc.contacts = contacts;
            if class_sorted {
                // Same revalidation as the solo pipeline: the device
                // re-sort (when the budget is spent) is charged inside
                // this scene's batch segment.
                let resorted = sc.ws.order.refresh(&self.dev, &sc.contacts);
                sc.ws
                    .order
                    .refresh_pairs(&sc.ws.pairs, &sc.contacts, resorted);
            }
            reports[i].n_contacts = sc.contacts.len();
            for c in sc.contacts.iter_mut() {
                c.flips = 0;
            }
            sc.gsoa = Some(gsoa);
            sc.bsoa = Some(BlockSoa::build(&sc.sys));
            if sc.params.assembly_reuse == AssemblyReuse::Incremental {
                // Detection rebuilt the contact list: rebind the assembly
                // cache (full recompute on the first iteration, joint
                // params refilled, pending deltas cleared).
                sc.acache.begin_step(&sc.sys, &sc.contacts);
            }
        }
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.contact_detection);

        // ---- Loops 2–3: masked lockstep across scenes ------------------------
        let mut active = stepping.clone(); // still inside loop 2
        let mut outcomes: Vec<Option<StepOutcome>> = (0..n).map(|_| None).collect();
        let mut diag: Vec<Option<(Vec<Block6>, Vec<f64>)>> = (0..n).map(|_| None).collect();
        let mut rescued = vec![false; n];
        let mut attempt = 0;
        while active.iter().any(|&a| a) {
            // Phase: diagonal building (Δt changed for retrying scenes).
            self.dev.batch_begin(n);
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                let Some(sc) = slot.scene.as_mut() else {
                    fault[i] = Some(StepError::Internal {
                        what: "active slot lost its scene",
                    });
                    active[i] = false;
                    continue;
                };
                let Some(bsoa) = sc.bsoa.as_ref() else {
                    fault[i] = Some(StepError::Internal {
                        what: "detection skipped the block SoA build",
                    });
                    active[i] = false;
                    continue;
                };
                self.dev.batch_segment(i);
                // Attempt start (loop 2): the warm iterate belongs to the
                // previous attempt's open–close loop, not this one.
                sc.cache.clear_warm();
                diag[i] = Some(build_diag_gpu(&self.dev, &sc.sys, bsoa, &sc.params));
            }
            let s = self.dev.batch_end();
            self.charge(s, |t| &mut t.diag_building);

            // Loop 3 state for this attempt.
            let mut in_oc = active.clone();
            let mut d: Vec<Vec<f64>> = self
                .slots
                .iter()
                .map(|slot| {
                    slot.scene
                        .as_ref()
                        .map(|sc| sc.x_prev.clone())
                        .unwrap_or_default()
                })
                .collect();
            let mut gaps: Vec<GapArrays> = (0..n).map(|_| GapArrays::default()).collect();
            let mut oc_conv = vec![false; n];
            let mut asms: Vec<Option<AssembledSystem>> = (0..n).map(|_| None).collect();
            for i in 0..n {
                if active[i] {
                    reports[i].oc_iterations = 0;
                }
            }
            let mut oc_iter = 0;
            while in_oc.iter().any(|&a| a) {
                // Phase: non-diagonal building.
                self.dev.batch_begin(n);
                for (i, slot) in self.slots.iter_mut().enumerate() {
                    if !in_oc[i] {
                        continue;
                    }
                    let Some(sc) = slot.scene.as_mut() else {
                        fault[i] = Some(StepError::Internal {
                            what: "iterating slot lost its scene",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    let (Some((dg, rhs0)), Some(gsoa)) = (diag[i].as_ref(), sc.gsoa.as_ref())
                    else {
                        fault[i] = Some(StepError::Internal {
                            what: "diag/detection output missing at assembly",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    self.dev.batch_segment(i);
                    let sched = if sc.params.contact_order == ContactOrder::ClassSorted {
                        sc.ws.order.contact_schedule(sc.contacts.len())
                    } else {
                        None
                    };
                    #[allow(unused_mut)]
                    let mut asm = match sc.params.assembly_reuse {
                        AssemblyReuse::Recompute => assemble_contacts_gpu_scheduled(
                            &self.dev,
                            &sc.sys,
                            gsoa,
                            &sc.contacts,
                            &sc.params,
                            dg.clone(),
                            rhs0.clone(),
                            sched,
                        ),
                        AssemblyReuse::Incremental => sc.acache.assemble(
                            &self.dev,
                            &sc.sys,
                            gsoa,
                            &sc.contacts,
                            &sc.params,
                            dg.clone(),
                            rhs0.clone(),
                            sched,
                        ),
                    };
                    #[cfg(feature = "fault-inject")]
                    {
                        use dda_simt::Fault;
                        if self.dev.fault_fires(Fault::NanRhs) {
                            asm.rhs[0] = f64::NAN;
                        }
                        if self.dev.fault_fires(Fault::IndefiniteOperator) {
                            for db in asm.matrix.diag.iter_mut() {
                                *db = db.scale(-1.0);
                            }
                        }
                    }
                    reports[i].n_upper = asm.matrix.n_upper();
                    reports[i].oc_iterations += 1;
                    asms[i] = Some(asm);
                }
                let s = self.dev.batch_end();
                self.charge(s, |t| &mut t.nondiag_building);

                // Health check: a NaN/Inf right-hand side never reaches the
                // solver (host-side scan, no launches).
                for i in 0..n {
                    if !in_oc[i] {
                        continue;
                    }
                    let Some(asm) = asms[i].as_ref() else {
                        fault[i] = Some(StepError::Internal {
                            what: "assembly output missing at RHS scan",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    if !all_finite(&asm.rhs) {
                        fault[i] = Some(StepError::NonFiniteRhs {
                            oc_iteration: reports[i].oc_iterations,
                        });
                        in_oc[i] = false;
                        active[i] = false;
                    }
                }

                // Phase: equation solving — per-scene format/preconditioner
                // prep, then the masked batched fused PCG over all active
                // scenes' systems. Scenes whose factorization fails drop to
                // the rescue path instead of joining the batch.
                let mut entries = Vec::new();
                let mut idxs = Vec::new();
                let mut needs_rescue = Vec::new();
                let mut warm_used = vec![false; n];
                self.dev.batch_begin(n);
                for (i, (slot, asm)) in self.slots.iter_mut().zip(asms.iter()).enumerate() {
                    if !in_oc[i] {
                        continue;
                    }
                    let Some(sc) = slot.scene.as_mut() else {
                        fault[i] = Some(StepError::Internal {
                            what: "solving slot lost its scene",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    let Some(asm) = asm.as_ref() else {
                        fault[i] = Some(StepError::Internal {
                            what: "assembly output missing at solve",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    self.dev.batch_segment(i);
                    let BatchScene {
                        cache,
                        x_prev,
                        x0,
                        params,
                        ..
                    } = sc;
                    // Stage the starting iterate: the batched Block-Jacobi
                    // solve is the configured rung, so the warm iterate
                    // applies here; the rescue path always cold-starts
                    // from the previous step's solution (gpu.rs mirror).
                    let want_warm = params.warm_start == SolverWarmStart::PrevIterate;
                    x0.clear();
                    match cache.warm_iterate().filter(|_| want_warm) {
                        Some(w) => {
                            x0.extend_from_slice(w);
                            warm_used[i] = true;
                        }
                        None => x0.extend_from_slice(x_prev),
                    }
                    let f32_shadow = params.precision == SolverPrecision::Mixed;
                    match cache.try_prepare(&self.dev, &asm.matrix, true, f32_shadow) {
                        Ok((h, h32, Some(m), ws)) => {
                            entries.push(PcgBatchEntry {
                                h,
                                h32,
                                b: &asm.rhs,
                                x0: x0.as_slice(),
                                m,
                                opts: params.pcg,
                                precision: params.precision,
                                ws,
                            });
                            idxs.push(i);
                        }
                        // A missing factorization (contract breach) degrades
                        // to the solo rescue path instead of panicking.
                        Ok((_, _, None, _)) | Err(_) => needs_rescue.push(i),
                    }
                }
                let prep = self.dev.batch_end();
                let (results, solve_sum) = pcg_fused_batch(&self.dev, &mut entries);
                drop(entries);
                self.charge(prep, |t| &mut t.solving);
                self.launches_in += solve_sum.launches_in;
                self.launches_out += solve_sum.launches_out;
                let mut last_conv = vec![false; n];
                for (k, (res, &i)) in results.into_iter().zip(&idxs).enumerate() {
                    if let Some(sc) = self.slots[i].scene.as_mut() {
                        sc.times.solving += solve_sum.per_segment_seconds[k];
                    }
                    if res.broke_down() || !all_finite(&res.x) {
                        needs_rescue.push(i);
                        continue;
                    }
                    reports[i].pcg_iterations += res.iterations;
                    reports[i].last_solve_iterations = res.iterations;
                    last_conv[i] = res.converged;
                    if warm_used[i] {
                        warm_starts[i] += 1;
                    }
                    // A healthy configured-rung solve seeds the next
                    // re-solve of this open–close loop.
                    if let Some(sc) = self.slots[i].scene.as_mut() {
                        if sc.params.warm_start == SolverWarmStart::PrevIterate {
                            sc.cache.set_warm(&res.x);
                        }
                    }
                    d[i] = res.x;
                }
                // Degraded re-solve: scalar Jacobi in the scene's own batch
                // region. Failure here is a fault; success keeps the scene
                // stepping under Degraded.
                for &i in &needs_rescue {
                    let Some(asm) = asms[i].take() else {
                        fault[i] = Some(StepError::Internal {
                            what: "assembly output missing at rescue",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    match self.rescue_solve(i, &asm) {
                        Ok(res) => {
                            reports[i].pcg_iterations += res.iterations;
                            reports[i].last_solve_iterations = res.iterations;
                            reports[i].fallback_level = reports[i].fallback_level.max(1);
                            reports[i].fallback_rung = PrecondKind::Jacobi;
                            last_conv[i] = res.converged;
                            d[i] = res.x;
                            rescued[i] = true;
                            self.slots[i].health.fallback_solves += 1;
                            self.slots[i].health.state = SlotState::Degraded;
                        }
                        Err(e) => {
                            fault[i] = Some(e);
                            in_oc[i] = false;
                            active[i] = false;
                        }
                    }
                    asms[i] = Some(asm);
                }
                // Health check: NaN that slipped through a "successful"
                // solve (e.g. NaN off-diagonals with a finite diagonal).
                for i in 0..n {
                    if in_oc[i] && !all_finite(&d[i]) {
                        fault[i] = Some(StepError::NonFiniteSolution {
                            oc_iteration: reports[i].oc_iterations,
                        });
                        in_oc[i] = false;
                        active[i] = false;
                    }
                }

                // Phase: interpenetration checking + open–close update.
                self.dev.batch_begin(n);
                for (i, slot) in self.slots.iter_mut().enumerate() {
                    if !in_oc[i] {
                        continue;
                    }
                    let Some(sc) = slot.scene.as_mut() else {
                        fault[i] = Some(StepError::Internal {
                            what: "checking slot lost its scene",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    let Some(gsoa) = sc.gsoa.as_ref() else {
                        fault[i] = Some(StepError::Internal {
                            what: "detection output missing at gap check",
                        });
                        in_oc[i] = false;
                        active[i] = false;
                        continue;
                    };
                    self.dev.batch_segment(i);
                    let open_tol = 1e-6 * sc.params.max_displacement;
                    let freeze = oc_iter + 3 >= sc.params.oc_max_iters;
                    gaps[i] = check_gpu(
                        &self.dev,
                        gsoa,
                        &sc.sys,
                        &sc.contacts,
                        &d[i],
                        sc.params.penalty,
                        sc.params.shear_ratio,
                        BranchScheme::Restructured,
                    );
                    #[allow(unused_mut)]
                    let mut changes = match sc.params.assembly_reuse {
                        AssemblyReuse::Recompute => {
                            open_close_gpu(&self.dev, &mut sc.contacts, &gaps[i], open_tol, freeze)
                        }
                        AssemblyReuse::Incremental => open_close_gpu_masked(
                            &self.dev,
                            &mut sc.contacts,
                            &gaps[i],
                            open_tol,
                            freeze,
                            Some(sc.acache.dirty_mask()),
                        ),
                    };
                    #[cfg(feature = "fault-inject")]
                    if self.dev.fault_fires(dda_simt::Fault::OcPin) {
                        changes = changes.max(1);
                    }
                    // Scene-local convergence mask: a converged (or
                    // iteration-capped) scene stops contributing launches.
                    if changes == 0 && last_conv[i] {
                        oc_conv[i] = true;
                        in_oc[i] = false;
                    } else if oc_iter + 1 >= sc.params.oc_max_iters {
                        in_oc[i] = false;
                    }
                }
                let s = self.dev.batch_end();
                self.charge(s, |t| &mut t.interpenetration);
                // Health check: gap measures must stay finite (host-side).
                for i in 0..n {
                    if !active[i] || in_oc[i] {
                        continue;
                    }
                    if !gaps[i].all_finite() {
                        fault[i] = Some(StepError::NonFiniteGaps {
                            oc_iteration: reports[i].oc_iterations,
                        });
                        active[i] = false;
                    }
                }
                oc_iter += 1;
            }

            // Displacement control, per scene on the host (scalar controls
            // are the only thing that crosses back, as in the paper).
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                let Some(sc) = slot.scene.as_mut() else {
                    fault[i] = Some(StepError::Internal {
                        what: "controlled slot lost its scene",
                    });
                    active[i] = false;
                    continue;
                };
                reports[i].oc_converged = oc_conv[i];
                let maxd = max_displacement(&sc.sys, &d[i]);
                reports[i].max_displacement = maxd;
                if !maxd.is_finite()
                    || maxd > self.policy.divergence_factor * sc.params.max_displacement
                {
                    fault[i] = Some(StepError::Diverged {
                        max_displacement: maxd,
                    });
                    active[i] = false;
                    continue;
                }
                let too_big = maxd > 2.0 * sc.params.max_displacement;
                if (too_big || !oc_conv[i]) && attempt < MAX_RETRIES && sc.params.reduce_dt() {
                    reports[i].retries += 1; // scene stays active for the next attempt
                } else {
                    outcomes[i] = Some(StepOutcome {
                        d: std::mem::take(&mut d[i]),
                        gaps: std::mem::take(&mut gaps[i]),
                        oc_converged: oc_conv[i],
                        too_big,
                        retries: reports[i].retries,
                    });
                    active[i] = false;
                }
            }
            attempt += 1;
        }

        // Stall detector: an accepted-but-dirty step extends the scene's
        // streak; past the policy limit the step is demoted to a fault so
        // a permanently pinned open–close loop quarantines instead of
        // spinning at the Δt floor forever.
        for i in 0..n {
            if fault[i].is_some() || !stepping[i] {
                continue;
            }
            let Some(out) = outcomes[i].as_ref() else {
                continue;
            };
            if out.oc_converged {
                self.slots[i].health.oc_stall_streak = 0;
            } else {
                self.slots[i].health.oc_stall_streak += 1;
                let streak = self.slots[i].health.oc_stall_streak;
                if streak >= self.policy.oc_stall_limit {
                    fault[i] = Some(StepError::OcStalled { streak });
                    outcomes[i] = None;
                }
            }
        }

        // ---- Phase: third classification (C1…C5) -----------------------------
        self.dev.batch_begin(n);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if !stepping[i] || fault[i].is_some() {
                continue;
            }
            let Some(sc) = slot.scene.as_mut() else {
                fault[i] = Some(StepError::Internal {
                    what: "classified slot lost its scene",
                });
                continue;
            };
            self.dev.batch_segment(i);
            reports[i].categories = categorize_gpu(&self.dev, &sc.contacts);
        }
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.interpenetration);

        // ---- Phase: data updating (commit) -----------------------------------
        // Faulted scenes are conspicuously absent: their systems and
        // warm-starts stay frozen at the last accepted state.
        self.dev.batch_begin(n);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let Some(out) = outcomes[i].take() else {
                continue;
            };
            if fault[i].is_some() {
                continue;
            }
            let Some(sc) = slot.scene.as_mut() else {
                fault[i] = Some(StepError::Internal {
                    what: "committing slot lost its scene",
                });
                continue;
            };
            self.dev.batch_segment(i);
            reports[i].max_open_penetration = out.gaps.max_open_penetration(&sc.contacts);
            let mut uc = CpuCounter::new();
            update_system(
                &mut sc.sys,
                &out.d,
                &mut sc.contacts,
                &out.gaps,
                &sc.params,
                &mut uc,
            );
            let nd = 6 * sc.sys.len() as u64; // one thread per DOF
            self.dev.record_external(
                "update.apply",
                KernelStats {
                    launches: 2,
                    threads: nd,
                    warps: nd.div_ceil(32).max(1),
                    flops: uc.flops,
                    warp_flops: uc.flops * 2,
                    gmem_bytes: uc.bytes,
                    gmem_transactions: uc.bytes.div_ceil(128),
                    ..Default::default()
                },
            );
            reports[i].dt = sc.params.dt;
            out.recover_dt_if_clean(&mut sc.params);
            sc.x_prev = out.d;
            // Committed geometry moved at most the accepted step's largest
            // vertex displacement — the broad-phase cache's validity
            // bound. Faulted scenes never reach this point, so their
            // frozen geometry keeps the cache valid.
            sc.ws.cache.note_motion(reports[i].max_displacement);
            // Open–close flips of the committed step charge the ordering
            // cache's switch budget (no-op counters under Discovery, where
            // the cache never holds a permutation).
            if sc.params.contact_order == ContactOrder::ClassSorted {
                sc.ws
                    .order
                    .note_flips(sc.contacts.iter().map(|c| c.flips as u64).sum());
            }
            // Committed step: clear the failure streak; a scene that got
            // here without needing the rescue solve is healthy again.
            slot.health.consecutive_failures = 0;
            slot.health.steps_committed += 1;
            if slot.health.state == SlotState::Degraded && !rescued[i] {
                slot.health.state = SlotState::Running;
            }
        }
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.updating);

        // ---- Fault bookkeeping ----------------------------------------------
        for i in 0..n {
            if let Some(err) = fault[i] {
                self.record_fault(i, err);
            }
        }

        // Per-scene phase/assembly deltas (faulted scenes report what they
        // actually spent — the modeled time is real even when the step is
        // not committed).
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(sc) = slot.scene.as_ref() {
                reports[i].phase_times = sc.times.delta_since(&times_at_start[i]);
                reports[i].assembly = sc.acache.stats().delta_since(&asm_at_start[i]);
                reports[i].warm_starts = warm_starts[i];
            }
        }

        reports
    }

    /// Runs `n` steps; element `[s][i]` is scene `i`'s report at step `s`.
    pub fn run(&mut self, n: usize) -> Vec<Vec<StepReport>> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use crate::pipeline::GpuPipeline;
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn k40() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    /// A family of small distinct scenes: a resting stack, a falling
    /// block, and an offset stack — different contact histories, different
    /// convergence behavior.
    fn scene(kind: usize) -> (BlockSystem, DdaParams) {
        let (top, params) = match kind % 3 {
            0 => (
                Polygon::rect(-0.5, 0.0, 0.5, 1.0),
                DdaParams::for_model(1.0, 5e9).static_analysis(),
            ),
            1 => {
                let mut p = DdaParams::for_model(1.0, 5e9);
                p.dt = 0.002;
                p.dt_max = 0.002;
                (Polygon::rect(-0.5, 0.005, 0.5, 1.005), p)
            }
            _ => (
                Polygon::rect(0.3, 0.0, 1.3, 1.0),
                DdaParams::for_model(1.0, 5e9).static_analysis(),
            ),
        };
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(top, 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(35.0),
        );
        (sys, params)
    }

    #[test]
    fn batch_trajectories_bit_identical_to_solo() {
        let n = 3;
        let mut solos: Vec<GpuPipeline> = (0..n)
            .map(|k| {
                let (sys, params) = scene(k);
                GpuPipeline::new(sys, params, k40())
            })
            .collect();
        let mut batch = SceneBatch::new(k40(), (0..n).map(scene).collect());
        for step in 0..4 {
            let rb = batch.step();
            for (i, solo) in solos.iter_mut().enumerate() {
                let rs = solo.step();
                assert_eq!(rs.n_contacts, rb[i].n_contacts, "step {step} scene {i}");
                assert_eq!(
                    rs.oc_iterations, rb[i].oc_iterations,
                    "step {step} scene {i}"
                );
                assert_eq!(rs.retries, rb[i].retries, "step {step} scene {i}");
                assert_eq!(
                    rs.pcg_iterations, rb[i].pcg_iterations,
                    "step {step} scene {i}"
                );
                assert_eq!(rs.oc_converged, rb[i].oc_converged, "step {step} scene {i}");
                assert_eq!(rs.dt.to_bits(), rb[i].dt.to_bits(), "step {step} scene {i}");
                // Bit-identical state: positions and velocities match
                // exactly, not merely within tolerance.
                let bsys = batch.sys(i).expect("live scene");
                for (bs, bb) in solo.sys.blocks.iter().zip(&bsys.blocks) {
                    let (cs, cb) = (bs.centroid(), bb.centroid());
                    assert_eq!(cs.x.to_bits(), cb.x.to_bits(), "step {step} scene {i}");
                    assert_eq!(cs.y.to_bits(), cb.y.to_bits(), "step {step} scene {i}");
                    for dof in 0..6 {
                        assert_eq!(
                            bs.velocity[dof].to_bits(),
                            bb.velocity[dof].to_bits(),
                            "step {step} scene {i} dof {dof}"
                        );
                    }
                }
                // And the contact bookkeeping agrees.
                let bcontacts = batch.contacts(i).expect("live scene");
                assert_eq!(solo.contacts().len(), bcontacts.len());
                for (cs, cb) in solo.contacts().iter().zip(bcontacts) {
                    assert_eq!(cs.state, cb.state, "step {step} scene {i}");
                    assert_eq!(
                        cs.edge_ratio.to_bits(),
                        cb.edge_ratio.to_bits(),
                        "step {step} scene {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_merges_launches_and_beats_serial_time() {
        let n = 4;
        let mut batch = SceneBatch::new(k40(), (0..n).map(|_| scene(0)).collect());
        let mut solos: Vec<GpuPipeline> = (0..n)
            .map(|_| {
                let (sys, params) = scene(0);
                GpuPipeline::new(sys, params, k40())
            })
            .collect();
        batch.step();
        for s in solos.iter_mut() {
            s.step();
        }
        let (l_in, l_out) = batch.last_step_launches();
        assert!(
            l_out < l_in,
            "merging must reduce launches: {l_out} vs {l_in}"
        );
        // Identical scenes merge near-perfectly: ~n× fewer launches.
        assert!(
            (l_out as f64) < (l_in as f64) / (n as f64 - 1.0),
            "expected ~{n}× merge, got {l_in} -> {l_out}"
        );
        let serial: f64 = solos.iter().map(|s| s.device().modeled_seconds()).sum();
        let batched = batch.device().modeled_seconds();
        assert!(
            batched < serial,
            "batched {batched} s must beat serial-loop {serial} s"
        );
    }

    #[test]
    fn batch_of_one_keeps_solo_accounting() {
        let mut batch = SceneBatch::new(k40(), vec![scene(0)]);
        batch.step();
        let (l_in, l_out) = batch.last_step_launches();
        assert_eq!(l_in, l_out, "a single scene has nothing to merge with");
    }

    #[test]
    fn per_scene_times_sum_to_device_total() {
        let mut batch = SceneBatch::new(k40(), (0..3).map(scene).collect());
        batch.run(2);
        let total = batch.total_times().total();
        let dev = batch.device().modeled_seconds();
        assert!(
            (total - dev).abs() < 1e-9 * dev.max(1e-12),
            "attributed {total} s vs device {dev} s"
        );
        for i in 0..3 {
            let t = batch.times(i).expect("live scene");
            assert!(t.total() > 0.0, "scene {i} got no time share");
        }
    }

    #[test]
    fn admitted_scene_joins_without_draining_the_batch() {
        let mut batch = SceneBatch::new(k40(), (0..2).map(scene).collect());
        batch.step();
        // A solo pipeline tracks what the late scene should do once it
        // joins — admission must not perturb anyone's trajectory.
        let (sys, params) = scene(2);
        let mut solo = GpuPipeline::new(sys.clone(), params.clone(), k40());
        let slot = batch.admit(sys, params);
        assert_eq!(slot, 2, "no retired slot to reuse: appended");
        assert_eq!(batch.n_live(), 3);
        for step in 0..3 {
            let rb = batch.step();
            let rs = solo.step();
            assert_eq!(rs.oc_iterations, rb[slot].oc_iterations, "step {step}");
            let bsys = batch.sys(slot).expect("live scene");
            for (bs, bb) in solo.sys.blocks.iter().zip(&bsys.blocks) {
                assert_eq!(bs.centroid().x.to_bits(), bb.centroid().x.to_bits());
                assert_eq!(bs.centroid().y.to_bits(), bb.centroid().y.to_bits());
            }
        }
    }

    #[test]
    fn retired_slot_is_reused_by_admission() {
        let mut batch = SceneBatch::new(k40(), (0..3).map(scene).collect());
        batch.step();
        let sys = batch.retire(1).expect("slot 1 held a scene");
        assert!(!sys.blocks.is_empty());
        assert_eq!(batch.health(1).state, SlotState::Retired);
        assert_eq!(batch.n_live(), 2);
        assert!(batch.retire(1).is_none(), "already retired");
        // The freed slot is reused, not appended after.
        let (s2, p2) = scene(1);
        assert_eq!(batch.admit(s2, p2), 1);
        assert_eq!(batch.n_scenes(), 3);
        assert_eq!(batch.n_live(), 3);
        assert_eq!(batch.health(1).state, SlotState::Running);
        // And the refreshed batch still steps.
        let reports = batch.step();
        assert_eq!(reports.len(), 3);
        assert!(reports[1].oc_iterations >= 1);
    }

    #[test]
    fn all_quarantined_batch_steps_to_noop() {
        let mut batch = SceneBatch::new(k40(), vec![scene(0)]);
        batch.retire(0);
        let reports = batch.step();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].oc_iterations, 0, "retired slot must not step");
        assert_eq!(batch.n_live(), 0);
    }

    #[test]
    fn empty_batch_steps_and_admits() {
        let mut batch = SceneBatch::empty(k40());
        assert_eq!(batch.n_scenes(), 0);
        assert!(batch.step().is_empty(), "empty batch steps to nothing");
        let (sys, params) = scene(0);
        assert_eq!(batch.admit(sys, params), 0);
        let reports = batch.step();
        assert!(reports[0].oc_iterations >= 1);
    }

    #[test]
    fn accessors_return_none_for_retired_and_out_of_range_slots() {
        let mut batch = SceneBatch::new(k40(), vec![scene(0)]);
        assert!(batch.sys(0).is_some());
        batch.retire(0);
        assert!(batch.sys(0).is_none());
        assert!(batch.params(0).is_none());
        assert!(batch.contacts(0).is_none());
        assert!(batch.times(0).is_none());
        assert!(batch.sys(7).is_none(), "out-of-range is None, not a panic");
    }

    /// Regression (satellite): a reused slot must not inherit its
    /// predecessor's failure counters or Δt backoff.
    #[test]
    fn readmission_resets_health_and_backoff() {
        let mut batch = SceneBatch::new(k40(), (0..2).map(scene).collect());
        batch.run(2);
        // Manufacture a degraded predecessor: poison its health record the
        // way repeated faults would.
        {
            let slot = &mut batch.slots[1];
            slot.health.consecutive_failures = 3;
            slot.health.total_faults = 5;
            slot.health.oc_stall_streak = 4;
            slot.health.last_error = Some(StepError::OcStalled { streak: 4 });
            slot.health.state = SlotState::Quarantined;
            slot.health.quarantined_at_step = Some(2);
            if let Some(sc) = slot.scene.as_mut() {
                while sc.params.reduce_dt() {}
            }
        }
        let st = batch.extract(1).expect("quarantined slot holds state");
        assert_eq!(st.health.total_faults, 5, "extract preserves post-mortem");
        assert_eq!(
            batch.health(1).state,
            SlotState::Retired,
            "slot freed after extract"
        );
        assert_eq!(batch.health(1).total_faults, 0, "slot record is clean");
        let (sys, params) = scene(1);
        let dt_fresh = params.dt;
        let slot = batch.admit(sys, params);
        assert_eq!(slot, 1, "retired slot is reused");
        let h = batch.health(1);
        assert_eq!(h.state, SlotState::Running);
        assert_eq!(h.consecutive_failures, 0);
        assert_eq!(h.total_faults, 0);
        assert_eq!(h.oc_stall_streak, 0);
        assert_eq!(h.steps_committed, 0);
        assert!(h.last_error.is_none());
        assert!(h.quarantined_at_step.is_none());
        assert_eq!(
            batch.params(1).expect("live scene").dt.to_bits(),
            dt_fresh.to_bits(),
            "no inherited Δt backoff"
        );
    }

    #[test]
    fn commit_counts_steps_per_scene() {
        let mut batch = SceneBatch::new(k40(), (0..2).map(scene).collect());
        batch.run(3);
        assert_eq!(batch.health(0).steps_committed, 3);
        assert_eq!(batch.health(1).steps_committed, 3);
    }

    #[test]
    fn extract_admit_state_round_trip_is_bitwise() {
        // Run two identical fleets; mid-run, bounce scene 1 of the second
        // batch through extract + admit_state. Trajectories must match the
        // undisturbed batch bit-for-bit afterwards.
        let mut a = SceneBatch::new(k40(), (0..3).map(scene).collect());
        let mut b = SceneBatch::new(k40(), (0..3).map(scene).collect());
        a.run(2);
        b.run(2);
        let st = b.extract(1).expect("live scene");
        assert_eq!(b.n_live(), 2);
        assert_eq!(b.admit_state(st), 1, "retired slot is reused");
        a.run(3);
        b.run(3);
        for i in 0..3 {
            let (sa, sb) = (a.sys(i).expect("live"), b.sys(i).expect("live"));
            for (ba, bb) in sa.blocks.iter().zip(&sb.blocks) {
                assert_eq!(ba.centroid().x.to_bits(), bb.centroid().x.to_bits());
                assert_eq!(ba.centroid().y.to_bits(), bb.centroid().y.to_bits());
                for dof in 0..6 {
                    assert_eq!(ba.velocity[dof].to_bits(), bb.velocity[dof].to_bits());
                }
            }
        }
        assert_eq!(
            a.health(1).steps_committed,
            b.health(1).steps_committed,
            "health continuity across the bounce"
        );
    }

    #[test]
    fn compaction_drops_retired_slots_and_preserves_survivors_bitwise() {
        let mut full = SceneBatch::new(k40(), (0..4).map(scene).collect());
        let mut compacted = SceneBatch::new(k40(), (0..4).map(scene).collect());
        full.run(2);
        compacted.run(2);
        compacted.retire(1);
        compacted.retire(3);
        let map = compacted.compact();
        assert_eq!(map, vec![Some(0), None, Some(1), None]);
        assert_eq!(compacted.n_scenes(), 2);
        assert_eq!(compacted.n_live(), 2);
        // Survivors continue bit-identically to the uncompacted batch.
        full.run(3);
        compacted.run(3);
        for (old_i, new_i) in [(0usize, 0usize), (2, 1)] {
            let (sf, sc) = (
                full.sys(old_i).expect("live"),
                compacted.sys(new_i).expect("live"),
            );
            for (bf, bc) in sf.blocks.iter().zip(&sc.blocks) {
                assert_eq!(bf.centroid().x.to_bits(), bc.centroid().x.to_bits());
                assert_eq!(bf.centroid().y.to_bits(), bc.centroid().y.to_bits());
                for dof in 0..6 {
                    assert_eq!(bf.velocity[dof].to_bits(), bc.velocity[dof].to_bits());
                }
            }
        }
    }
}
