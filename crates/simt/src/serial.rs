//! Instrumentation for the serial-CPU reference implementation.
//!
//! The paper's baseline is "the original CPU-based serial implementation"
//! on a Xeon E5620. The reproduction's serial pipeline computes with plain
//! Rust but tallies its useful work through a [`CpuCounter`]; the counters
//! convert to modeled E5620 seconds through the same [`TimingModel`] used
//! for the GPU, so speedups compare like with like.

use crate::profile::DeviceProfile;
use crate::stats::KernelStats;
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// Work tally for a stretch of serial code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCounter {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes of data touched (reads + writes of working-set traffic).
    pub bytes: u64,
}

impl CpuCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` floating-point operations.
    #[inline]
    pub fn flop(&mut self, n: u64) {
        self.flops += n;
    }

    /// Records a special-function evaluation (`tan`, `sqrt`, …), costed at
    /// 8 flops as in the SIMT model.
    #[inline]
    pub fn special(&mut self, n: u64) {
        self.flops += 8 * n;
    }

    /// Records `n` bytes of memory traffic.
    #[inline]
    pub fn bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Records traffic for `n` elements of `size` bytes.
    #[inline]
    pub fn elems(&mut self, n: u64, size: u64) {
        self.bytes += n * size;
    }

    /// Adds another counter's tallies.
    #[inline]
    pub fn add(&mut self, other: CpuCounter) {
        self.flops += other.flops;
        self.bytes += other.bytes;
    }

    /// Converts the tally to a [`KernelStats`] record (useful flops and
    /// bytes only; no SIMT counters).
    pub fn to_stats(self) -> KernelStats {
        KernelStats {
            launches: 1,
            flops: self.flops,
            gmem_bytes: self.bytes,
            ..Default::default()
        }
    }

    /// Modeled serial seconds under `profile` (normally
    /// [`DeviceProfile::xeon_e5620_serial`]).
    pub fn seconds(self, model: &TimingModel, profile: &DeviceProfile) -> f64 {
        assert!(
            profile.serial,
            "CpuCounter timing requires a serial profile"
        );
        model.seconds(&self.to_stats(), profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate() {
        let mut c = CpuCounter::new();
        c.flop(10);
        c.special(2);
        c.bytes(100);
        c.elems(4, 8);
        assert_eq!(c.flops, 26);
        assert_eq!(c.bytes, 132);
        let mut d = CpuCounter::new();
        d.flop(4);
        c.add(d);
        assert_eq!(c.flops, 30);
    }

    #[test]
    fn seconds_scale_linearly() {
        let model = TimingModel::default();
        let cpu = DeviceProfile::xeon_e5620_serial();
        let mut a = CpuCounter::new();
        a.flop(1_000_000_000);
        let mut b = CpuCounter::new();
        b.flop(2_000_000_000);
        let ta = a.seconds(&model, &cpu);
        let tb = b.seconds(&model, &cpu);
        assert!((tb / ta - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "serial profile")]
    fn rejects_gpu_profile() {
        let model = TimingModel::default();
        let mut c = CpuCounter::new();
        c.flop(1);
        let _ = c.seconds(&model, &DeviceProfile::tesla_k40());
    }
}
