//! Thread-block-granular kernel context for cooperative kernels.
//!
//! Scan, radix sort and the SpMV reductions are *cooperative*: threads of a
//! block exchange data through shared memory across barriers. Simulating
//! that lane-by-lane would require re-entrant closures; instead, a
//! block-granular kernel receives a [`Block`] that executes whole-block
//! operations ("every thread t loads `base + t`", "the block scans its
//! shared array") — computing real results while instrumenting the canonical
//! access pattern of each operation.
//!
//! The accounting rules are identical to the lane-level collector: 128-byte
//! coalescing over each warp's 32 addresses, 32-bank conflict replays,
//! per-warp divergence groups for masked execution.

use crate::buffer::GBuf;
use crate::stats::KernelStats;
use crate::{SMEM_BANKS, TEX_TRANSACTION_BYTES, TRANSACTION_BYTES, WARP_SIZE};

thread_local! {
    /// Reused per-warp transaction-segment scratch for address accounting.
    static SEG_SCRATCH: std::cell::RefCell<Vec<u64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Execution context handed to a per-block kernel closure.
pub struct Block {
    /// Block index within the launch.
    pub block_id: usize,
    /// Threads per block.
    pub block_size: usize,
    pub(crate) epoch: u32,
    pub(crate) stats: KernelStats,
}

impl Block {
    pub(crate) fn new(block_id: usize, block_size: usize, epoch: u32) -> Self {
        Block {
            block_id,
            block_size,
            epoch,
            stats: KernelStats::default(),
        }
    }

    fn account_addresses<I: Iterator<Item = u64>>(&mut self, addrs: I, elem_bytes: u64, tex: bool) {
        // Chunk the per-thread addresses into warps and count distinct
        // transaction segments per warp. The segment scratch is per-thread
        // and reused across every launch, so accounting never allocates.
        let granularity = if tex {
            TEX_TRANSACTION_BYTES
        } else {
            TRANSACTION_BYTES
        };
        SEG_SCRATCH.with(|cell| {
            let mut segs = cell.borrow_mut();
            segs.clear();
            let mut in_warp = 0usize;
            let flush = |segs: &mut Vec<u64>, stats: &mut KernelStats| {
                if segs.is_empty() {
                    return;
                }
                segs.sort_unstable();
                segs.dedup();
                if tex {
                    stats.tex_transactions += segs.len() as u64;
                } else {
                    stats.gmem_transactions += segs.len() as u64;
                }
                segs.clear();
            };
            for (addr, bytes) in addrs.map(|a| (a, elem_bytes)) {
                let first = addr / granularity;
                let last = (addr + bytes - 1) / granularity;
                for s in first..=last {
                    segs.push(s);
                }
                in_warp += 1;
                if in_warp == WARP_SIZE {
                    flush(&mut segs, &mut self.stats);
                    in_warp = 0;
                }
            }
            flush(&mut segs, &mut self.stats);
        });
    }

    /// Every thread `t < count` loads `buf[start + t]`; returns the values.
    pub fn gld_range<T: Copy + Send>(
        &mut self,
        buf: &GBuf<T>,
        start: usize,
        count: usize,
    ) -> Vec<T> {
        let mut out = Vec::with_capacity(count);
        self.gld_range_into(buf, start, count, &mut out);
        out
    }

    /// Allocation-free [`Block::gld_range`]: clears `out` and fills it with
    /// the loaded values, reusing its capacity.
    pub fn gld_range_into<T: Copy + Send>(
        &mut self,
        buf: &GBuf<T>,
        start: usize,
        count: usize,
        out: &mut Vec<T>,
    ) {
        self.stats.gmem_bytes += (count * buf.elem_bytes() as usize) as u64;
        self.account_addresses(
            (0..count).map(|t| buf.addr(start + t)),
            u64::from(buf.elem_bytes()),
            false,
        );
        out.clear();
        out.extend((0..count).map(|t| buf.get(start + t)));
    }

    /// Thread `t` loads `buf[idxs[t]]` (arbitrary gather); returns values.
    pub fn gld_gather<T: Copy + Send>(&mut self, buf: &GBuf<T>, idxs: &[usize]) -> Vec<T> {
        let mut out = Vec::with_capacity(idxs.len());
        self.gld_gather_into(buf, idxs, &mut out);
        out
    }

    /// Allocation-free [`Block::gld_gather`] reusing `out`'s capacity.
    pub fn gld_gather_into<T: Copy + Send>(
        &mut self,
        buf: &GBuf<T>,
        idxs: &[usize],
        out: &mut Vec<T>,
    ) {
        self.stats.gmem_bytes += (idxs.len() * buf.elem_bytes() as usize) as u64;
        self.account_addresses(
            idxs.iter().map(|&i| buf.addr(i)),
            u64::from(buf.elem_bytes()),
            false,
        );
        out.clear();
        out.extend(idxs.iter().map(|&i| buf.get(i)));
    }

    /// Gather through the texture path (32-byte transactions).
    pub fn gld_gather_tex<T: Copy + Send>(&mut self, buf: &GBuf<T>, idxs: &[usize]) -> Vec<T> {
        let mut out = Vec::with_capacity(idxs.len());
        self.gld_gather_tex_into(buf, idxs, &mut out);
        out
    }

    /// Allocation-free [`Block::gld_gather_tex`] reusing `out`'s capacity.
    pub fn gld_gather_tex_into<T: Copy + Send>(
        &mut self,
        buf: &GBuf<T>,
        idxs: &[usize],
        out: &mut Vec<T>,
    ) {
        self.stats.gmem_bytes += (idxs.len() * buf.elem_bytes() as usize) as u64;
        self.account_addresses(
            idxs.iter().map(|&i| buf.addr(i)),
            u64::from(buf.elem_bytes()),
            true,
        );
        out.clear();
        out.extend(idxs.iter().map(|&i| buf.get(i)));
    }

    /// Single-thread load of one element.
    pub fn gld_one<T: Copy + Send>(&mut self, buf: &GBuf<T>, i: usize) -> T {
        self.stats.gmem_bytes += u64::from(buf.elem_bytes());
        self.stats.gmem_transactions += 1;
        buf.get(i)
    }

    /// Every thread `t < vals.len()` stores `vals[t]` to `buf[start + t]`.
    pub fn gst_range<T: Copy + Send>(&mut self, buf: &GBuf<T>, start: usize, vals: &[T]) {
        self.stats.gmem_bytes += (vals.len() * buf.elem_bytes() as usize) as u64;
        self.account_addresses(
            (0..vals.len()).map(|t| buf.addr(start + t)),
            u64::from(buf.elem_bytes()),
            false,
        );
        for (t, &v) in vals.iter().enumerate() {
            buf.set(start + t, v, self.epoch);
        }
    }

    /// Thread `t` stores `pairs[t].1` to `buf[pairs[t].0]` (scatter).
    pub fn gst_scatter<T: Copy + Send>(&mut self, buf: &GBuf<T>, pairs: &[(usize, T)]) {
        self.stats.gmem_bytes += (pairs.len() * buf.elem_bytes() as usize) as u64;
        self.account_addresses(
            pairs.iter().map(|&(i, _)| buf.addr(i)),
            u64::from(buf.elem_bytes()),
            false,
        );
        for &(i, v) in pairs {
            buf.set(i, v, self.epoch);
        }
    }

    /// Single-thread store of one element.
    pub fn gst_one<T: Copy + Send>(&mut self, buf: &GBuf<T>, i: usize, v: T) {
        self.stats.gmem_bytes += u64::from(buf.elem_bytes());
        self.stats.gmem_transactions += 1;
        buf.set(i, v, self.epoch);
    }

    /// Every thread performs `n` flops.
    pub fn flop_all(&mut self, n: u64) {
        self.stats.flops += n * self.block_size as u64;
        self.stats.warp_flops += n * (self.warps() * WARP_SIZE) as u64;
    }

    /// The first `active` threads (contiguous mask) perform `n` flops each;
    /// the rest idle — lockstep work still covers their warps.
    ///
    /// # Contiguity contract
    ///
    /// `active` is a *front length* — threads `0..active` work, threads
    /// `active..block_size` idle — not a popcount of a scattered mask. The
    /// lockstep charge assumes the idle threads occupy only the trailing
    /// warps; a scattered mask spread over every warp keeps *all* warps
    /// busy and would be under-charged here. Callers holding a per-thread
    /// mask must account it warp-exactly instead (see
    /// [`Block::branch_mask`] for the branch analogue). Audit note: every
    /// in-tree caller (solver vecops, SpMV stages, scan and radix-sort
    /// tiles) passes a `min(tile, n - start)`-style tail count — a true
    /// front.
    pub fn flop_masked(&mut self, active: usize, n: u64) {
        let active = active.min(self.block_size);
        self.stats.flops += n * active as u64;
        let busy_warps = active.div_ceil(WARP_SIZE);
        self.stats.warp_flops += n * (busy_warps * WARP_SIZE) as u64;
    }

    /// One designated thread performs `n` flops.
    pub fn flop_one(&mut self, n: u64) {
        self.stats.flops += n;
        self.stats.warp_flops += n * WARP_SIZE as u64;
    }

    /// Records a branch at `site` taken by the first `active` threads of a
    /// contiguous mask: every fully-agreeing warp is a uniform group, the
    /// boundary warp (if mixed) diverges.
    ///
    /// # Contiguity contract
    ///
    /// `active` is a *front length*, exactly as for [`Block::flop_masked`]:
    /// threads `0..active` take the branch, the rest fall through. Under
    /// that shape at most one warp — the boundary warp — can be mixed,
    /// which is all this method ever charges. Feeding it the popcount of a
    /// scattered mask silently under-counts divergence no matter how
    /// fragmented the mask is; callers holding a mask must use
    /// [`Block::branch_mask`] (exact per-warp accounting) or
    /// [`Block::branch_front_of`], which checks the shape per call.
    pub fn branch_front(&mut self, _site: u32, active: usize) {
        let active = active.min(self.block_size);
        let warps = self.warps();
        self.stats.branch_groups += warps as u64;
        if !active.is_multiple_of(WARP_SIZE) && active < self.block_size {
            self.stats.divergent_branch_groups += 1;
        }
    }

    /// Records a branch at `site` from an explicit mask the caller expects
    /// to be a contiguous front (the class-sorted scheduling invariant).
    /// The shape is checked per call: a true front takes the cheap
    /// [`Block::branch_front`] accounting, a scattered mask is routed to
    /// the exact [`Block::branch_mask`] path instead of being silently
    /// under-counted — and trips a debug assertion, because a scattered
    /// mask here means the caller's sorting invariant is broken.
    pub fn branch_front_of(&mut self, site: u32, mask: &[bool]) {
        if let Some(len) = front_len(mask) {
            self.branch_front(site, len);
        } else {
            if cfg!(debug_assertions) && !cfg!(test) {
                panic!(
                    "branch_front_of: scattered mask violates the contiguity contract; \
                     use branch_mask at this call site"
                );
            }
            self.branch_mask(site, mask);
        }
    }

    /// Records a branch at `site` with an explicit per-thread mask.
    /// Warp-exact: any warp seeing both outcomes is charged divergent,
    /// however the mask is shaped. This is the correct entry point for
    /// scattered masks (see the contiguity contract on
    /// [`Block::branch_front`]).
    pub fn branch_mask(&mut self, _site: u32, mask: &[bool]) {
        for chunk in mask.chunks(WARP_SIZE) {
            self.stats.branch_groups += 1;
            let taken = chunk.iter().filter(|&&b| b).count();
            if taken != 0 && taken != chunk.len() {
                self.stats.divergent_branch_groups += 1;
            }
        }
    }

    /// Records one lockstep shared-memory access per thread, `words[t]`
    /// being thread `t`'s word index. Counts bank-conflict replays per warp.
    pub fn smem_access(&mut self, words: &[u32]) {
        for chunk in words.chunks(WARP_SIZE) {
            let mut bank_count = [0u32; SMEM_BANKS];
            for &w in chunk {
                bank_count[(w as usize) % SMEM_BANKS] += 1;
            }
            self.stats.smem_accesses += chunk.len() as u64;
            let max_mult = *bank_count.iter().max().unwrap();
            self.stats.smem_replays += u64::from(max_mult.saturating_sub(1));
        }
    }

    /// Cost of a work-efficient (Blelloch) block scan over `n` shared-memory
    /// elements: `2(n-1)` adds, `~4n` conflict-free shared accesses,
    /// `2·log2(n)` barriers.
    pub fn block_scan_cost(&mut self, n: usize) {
        if n <= 1 {
            return;
        }
        let adds = 2 * (n as u64 - 1);
        self.stats.flops += adds;
        self.stats.warp_flops += adds; // spread over the block's lanes
        self.stats.smem_accesses += 4 * n as u64;
        self.stats.syncs += 2 * (usize::BITS - (n - 1).leading_zeros()) as u64;
    }

    /// Cost of a warp shuffle reduction/scan over `width` lanes
    /// (`log2(width)` shuffle steps per warp) for the first `active`
    /// threads. The paper replaces shared-memory reductions with shuffles in
    /// its scan and radix sort ("Faster Parallel Reductions on Kepler").
    pub fn shfl_reduce_cost(&mut self, active: usize, width: usize) {
        let warps = active.div_ceil(WARP_SIZE) as u64;
        let steps = usize::BITS as u64 - (width.max(2) - 1).leading_zeros() as u64;
        self.stats.shuffles += warps * steps;
        let adds = steps * active as u64;
        self.stats.flops += adds;
        self.stats.warp_flops += steps * (warps * WARP_SIZE as u64);
    }

    /// Records a block-wide barrier.
    pub fn sync(&mut self) {
        self.stats.syncs += 1;
    }

    /// Number of warps in this block.
    fn warps(&self) -> usize {
        self.block_size.div_ceil(WARP_SIZE)
    }
}

/// Front-shape check: `Some(len)` when `mask` is `len` trues followed only
/// by falses (a contiguous front), `None` for any scattered mask.
fn front_len(mask: &[bool]) -> Option<usize> {
    let len = mask.iter().position(|&b| !b).unwrap_or(mask.len());
    mask[len..].iter().all(|&b| !b).then_some(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        Block::new(0, 256, 1)
    }

    #[test]
    fn range_load_is_coalesced() {
        let data = vec![1.0f64; 1024];
        let buf = GBuf::new_ro(&data, 0);
        let mut b = block();
        let vals = b.gld_range(&buf, 0, 256);
        assert_eq!(vals.len(), 256);
        // 256 f64 = 2048 bytes = 16 transactions of 128 B.
        assert_eq!(b.stats.gmem_transactions, 16);
        assert!((b.stats.overfetch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gather_load_counts_scattered_segments() {
        let data = vec![1.0f64; 4096];
        let buf = GBuf::new_ro(&data, 0);
        let mut b = block();
        let idxs: Vec<usize> = (0..256).map(|t| t * 16).collect(); // stride 16 f64
        let _ = b.gld_gather(&buf, &idxs);
        // Every access in its own 128-byte segment.
        assert_eq!(b.stats.gmem_transactions, 256);
    }

    #[test]
    fn scatter_store_roundtrip() {
        let mut data = vec![0u32; 64];
        let buf = GBuf::new_rw(&mut data, 0, true);
        let mut b = block();
        let pairs: Vec<(usize, u32)> = (0..64).map(|i| (63 - i, i as u32)).collect();
        b.gst_scatter(&buf, &pairs);
        drop(buf);
        assert_eq!(data[63], 0);
        assert_eq!(data[0], 63);
    }

    #[test]
    fn masked_flops_work() {
        let mut b = block();
        b.flop_masked(40, 10);
        assert_eq!(b.stats.flops, 400);
        // 40 active threads span 2 warps → 2 × 32 lockstep lanes.
        assert_eq!(b.stats.warp_flops, 640);
    }

    #[test]
    fn branch_front_divergence_only_at_boundary() {
        let mut b = block();
        b.branch_front(0, 64); // warp-aligned: no divergence
        assert_eq!(b.stats.divergent_branch_groups, 0);
        b.branch_front(0, 40); // boundary warp mixed
        assert_eq!(b.stats.divergent_branch_groups, 1);
        b.branch_front(0, 256); // everyone takes it: uniform
        assert_eq!(b.stats.divergent_branch_groups, 1);
    }

    #[test]
    fn front_len_detects_shape() {
        assert_eq!(front_len(&[true, true, false, false]), Some(2));
        assert_eq!(front_len(&[false, false]), Some(0));
        assert_eq!(front_len(&[true, true]), Some(2));
        assert_eq!(front_len(&[]), Some(0));
        assert_eq!(front_len(&[true, false, true]), None, "scattered");
    }

    #[test]
    fn branch_front_of_honors_shape() {
        // A true front takes the boundary-warp shortcut.
        let mut b = block();
        let mut mask = vec![false; 256];
        for m in mask.iter_mut().take(40) {
            *m = true;
        }
        b.branch_front_of(0, &mask);
        assert_eq!(b.stats.branch_groups, 8);
        assert_eq!(b.stats.divergent_branch_groups, 1);
        // A scattered mask must NOT be under-counted: it falls through to
        // the exact per-warp accounting (both warps of the pattern mixed).
        let mut b2 = block();
        let scattered: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        b2.branch_front_of(0, &scattered);
        assert_eq!(b2.stats.branch_groups, 2);
        assert_eq!(
            b2.stats.divergent_branch_groups, 2,
            "scattered mask through the front API must charge every mixed warp"
        );
    }

    #[test]
    fn branch_mask_counts_mixed_warps() {
        let mut b = block();
        let mut mask = vec![false; 64];
        for (i, m) in mask.iter_mut().enumerate() {
            *m = i % 2 == 0; // alternating: both warps diverge
        }
        b.branch_mask(1, &mask);
        assert_eq!(b.stats.branch_groups, 2);
        assert_eq!(b.stats.divergent_branch_groups, 2);
    }

    #[test]
    fn smem_conflicts() {
        let mut b = block();
        // 32 threads all in bank 5.
        let words: Vec<u32> = (0..32).map(|t| 5 + 32 * t).collect();
        b.smem_access(&words);
        assert_eq!(b.stats.smem_replays, 31);
        // Identity mapping: conflict-free.
        let mut b2 = block();
        let words2: Vec<u32> = (0..32).collect();
        b2.smem_access(&words2);
        assert_eq!(b2.stats.smem_replays, 0);
    }

    #[test]
    fn scan_cost_scaling() {
        let mut b = block();
        b.block_scan_cost(256);
        assert_eq!(b.stats.flops, 510);
        assert_eq!(b.stats.smem_accesses, 1024);
        assert_eq!(b.stats.syncs, 16); // 2 * log2(256)
    }

    #[test]
    fn shfl_cost_scaling() {
        let mut b = block();
        b.shfl_reduce_cost(256, 32);
        // 8 warps × 5 shuffle steps.
        assert_eq!(b.stats.shuffles, 40);
    }
}
