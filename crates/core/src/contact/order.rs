//! Divergence-aware contact scheduling: the persistent contact-class
//! ordering cache.
//!
//! The paper's C1–C5 classification exists to keep warps class-uniform
//! through the non-diagonal building path, but a contact stream walked in
//! pair-discovery order still mixes classes inside warps at the
//! narrow-phase judgment sites, the transfer hit/miss branch, and the
//! assembly closed/abandoned branch. Following the DEM reordering idea
//! (Nakahara & Washizawa, PAPERS.md), [`ContactOrderCache`] keeps a
//! *scheduling permutation* of the contact stream sorted by
//! `(category, kind)` class across steps, the same persistence trick as
//! [`super::grid::BroadPhaseCache`]: re-sorting costs a device radix sort,
//! so the permutation is reused until the accumulated class-switch count
//! (open–close state flips plus cross-step class drift) spends a budget.
//!
//! Correctness never depends on the permutation: scheduled kernels make
//! thread `t` *process* item `sched[t]` while every store still lands in
//! the item's own discovery-order slot, so pair lists, assembled systems,
//! and trajectories are bitwise identical to the unscheduled path — a
//! stale permutation only costs divergence, never physics. That is why a
//! loose budget is safe, and why shape mismatches simply fall back to
//! discovery order instead of erroring.

use super::types::Contact;
use dda_simt::primitives::sort::argsort_u64;
use dda_simt::Device;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Contact-stream scheduling order for the GPU kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ContactOrder {
    /// Pair-discovery order (the reference; scheduling machinery is off).
    #[default]
    Discovery,
    /// Class-sorted scheduling through the ordering cache: warps stay
    /// `(category, kind)`-uniform, outputs stay bitwise identical.
    ClassSorted,
}

/// Scheduling class of a contact: the third-classification category
/// (0 = abandoned) in the high bits, the geometric kind in the low bits —
/// exactly the pair the per-class building pipelines branch on.
pub(crate) fn class_key(c: &Contact) -> u8 {
    (c.category().unwrap_or(0) << 2) | c.kind as u8
}

/// Persistent class-sorted scheduling permutations for the contact stream
/// (narrow phase, transfer, assembly). Lives in the per-pipeline
/// [`super::grid::ContactWorkspace`] beside the broad-phase cache; like
/// every derived cache it is *not* checkpointed — a restored scene
/// rebuilds it deterministically, and since permutations are
/// correctness-neutral the rebuild cannot perturb the trajectory.
#[derive(Debug, Clone, Default)]
pub struct ContactOrderCache {
    /// Thread `t` of a contact-stream kernel processes contact `sched[t]`.
    sched: Vec<u32>,
    /// Discovery-order class keys captured at the last re-sort, compared
    /// against each step's keys to meter class drift.
    classes: Vec<u8>,
    /// Thread `t` of a narrow-phase kernel processes pair-orientation
    /// `pair_sched[t]` (orientation `2·pair + flip`).
    pair_sched: Vec<u32>,
    /// Class switches accumulated since the last re-sort.
    pending: u64,
    /// Re-sorts performed (device radix sorts paid).
    pub resorts: u64,
    /// Steps that reused the standing permutation.
    pub reuses: u64,
    /// Total class switches observed (drift + open–close flips).
    pub switches: u64,
}

impl ContactOrderCache {
    /// Fresh, empty cache.
    pub fn new() -> ContactOrderCache {
        ContactOrderCache::default()
    }

    /// Switch budget for a population of `n` contacts: a re-sort is worth
    /// one radix pass over the stream, so it amortizes once roughly an
    /// eighth of the population has changed class (plus a small floor so
    /// tiny scenes don't re-sort on every marginal contact).
    pub fn budget(n: usize) -> u64 {
        8 + n as u64 / 8
    }

    /// Revalidates the contact permutation against this step's stream,
    /// re-sorting on the device when the switch budget is spent (or the
    /// population changed shape, which invalidates the permutation
    /// outright). Returns `true` when a re-sort happened. Call once per
    /// step after contact initialization, before the solve loop.
    pub fn refresh(&mut self, dev: &Device, contacts: &[Contact]) -> bool {
        let n = contacts.len();
        if n == self.classes.len() {
            let drift = contacts
                .iter()
                .zip(&self.classes)
                .filter(|(c, &k)| class_key(c) != k)
                .count() as u64;
            self.switches += drift;
            self.pending += drift;
            if self.pending <= Self::budget(n) {
                self.reuses += 1;
                return false;
            }
        }
        // Stable class sort on the device: the radix argsort key carries
        // the discovery index in its low bits, so equal classes keep
        // discovery order and the permutation is reproducible bit for bit.
        self.classes.clear();
        self.classes.extend(contacts.iter().map(class_key));
        let keys: Vec<u64> = self
            .classes
            .iter()
            .enumerate()
            .map(|(idx, &k)| ((k as u64) << 32) | idx as u64)
            .collect();
        let (_, perm) = argsort_u64(dev, &keys);
        self.sched = perm;
        self.pending = 0;
        self.resorts += 1;
        true
    }

    /// Charges the open–close iteration's state flips of the finished step
    /// against the switch budget (each flip is a class switch the standing
    /// permutation did not see).
    pub fn note_flips(&mut self, flips: u64) {
        self.switches += flips;
        self.pending += flips;
    }

    /// Rebuilds the narrow-phase orientation permutation from the
    /// previous step's contacts. Orientations are classed by the best
    /// (lowest-keyed) surviving contact they produced last step;
    /// orientations with no survivors group together at the tail — the
    /// uniform "nothing to emit" front. Host-side bookkeeping, rebuilt
    /// only on the same events that re-sort the contact stream (`force`)
    /// or when the candidate-pair population changed shape.
    pub fn refresh_pairs(&mut self, pairs: &[(u32, u32)], previous: &[Contact], force: bool) {
        let n_threads = pairs.len() * 2;
        if !force && self.pair_sched.len() == n_threads {
            return;
        }
        let mut by_orient: HashMap<(u32, u32), u8> = HashMap::with_capacity(previous.len());
        for c in previous {
            let k = class_key(c);
            by_orient
                .entry((c.i, c.j))
                .and_modify(|v| *v = (*v).min(k))
                .or_insert(k);
        }
        let orient_key = |t: u32| -> u8 {
            let (a, b) = pairs[t as usize / 2];
            let o = if t % 2 == 1 { (b, a) } else { (a, b) };
            by_orient.get(&o).copied().unwrap_or(u8::MAX)
        };
        self.pair_sched.clear();
        self.pair_sched.extend(0..n_threads as u32);
        self.pair_sched.sort_by_key(|&t| (orient_key(t), t));
    }

    /// The contact-stream schedule, if it matches a population of `n`
    /// contacts (a permutation of the wrong length is never applied).
    pub fn contact_schedule(&self, n: usize) -> Option<&[u32]> {
        (self.sched.len() == n && n > 0).then_some(self.sched.as_slice())
    }

    /// The narrow-phase orientation schedule for `n_pairs` candidate
    /// pairs, if it matches.
    pub fn pair_schedule(&self, n_pairs: usize) -> Option<&[u32]> {
        let n_threads = n_pairs * 2;
        (self.pair_sched.len() == n_threads && n_threads > 0).then_some(self.pair_sched.as_slice())
    }

    /// Drops the permutations (checkpoint restore, slot reuse): the next
    /// refresh re-sorts from scratch.
    pub fn invalidate(&mut self) {
        self.sched.clear();
        self.classes.clear();
        self.pair_sched.clear();
        self.pending = 0;
    }

    /// `(resorts, reuses, switches)` counters, for benches and tests.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.resorts, self.reuses, self.switches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::types::{ContactKind, ContactState};
    use dda_simt::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40())
    }

    fn contact(i: u32, kind: ContactKind, state: ContactState) -> Contact {
        let mut c = Contact::new(i, i + 1, 0, 0, u32::MAX, kind);
        c.state = state;
        c.prev_step_state = state;
        c.prev_iter_state = state;
        c
    }

    fn mixed_population(n: usize) -> Vec<Contact> {
        (0..n)
            .map(|k| {
                let kind = match k % 3 {
                    0 => ContactKind::Ve,
                    1 => ContactKind::Vv1,
                    _ => ContactKind::Vv2,
                };
                let state = if k % 2 == 0 {
                    ContactState::Lock
                } else {
                    ContactState::Open
                };
                contact(k as u32, kind, state)
            })
            .collect()
    }

    #[test]
    fn first_refresh_sorts_by_class_stably() {
        let d = dev();
        let mut cache = ContactOrderCache::new();
        let contacts = mixed_population(100);
        assert!(cache.refresh(&d, &contacts), "first refresh must sort");
        let sched = cache.contact_schedule(100).expect("schedule");
        // Permutation property.
        let mut seen = [false; 100];
        for &s in sched {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
        // Class-sorted, discovery-stable within a class.
        for w in sched.windows(2) {
            let (a, b) = (
                class_key(&contacts[w[0] as usize]),
                class_key(&contacts[w[1] as usize]),
            );
            assert!(a <= b, "classes out of order");
            if a == b {
                assert!(w[0] < w[1], "equal classes must keep discovery order");
            }
        }
    }

    #[test]
    fn reuse_until_budget_spent() {
        let d = dev();
        let mut cache = ContactOrderCache::new();
        let mut contacts = mixed_population(64);
        cache.refresh(&d, &contacts);
        assert!(!cache.refresh(&d, &contacts), "unchanged stream reuses");
        assert_eq!(cache.stats().1, 1);
        // Drift below the budget (8 + 64/8 = 16): still reused.
        for c in contacts.iter_mut().take(10) {
            c.state = ContactState::Slide;
            c.prev_step_state = ContactState::Open;
        }
        assert!(!cache.refresh(&d, &contacts), "10 switches <= budget 16");
        // Flips push the pending count over the budget: next refresh sorts.
        cache.note_flips(20);
        assert!(cache.refresh(&d, &contacts), "budget spent -> re-sort");
        assert_eq!(cache.stats().0, 2);
        // After the re-sort the ledger is clean again.
        assert!(!cache.refresh(&d, &contacts));
    }

    #[test]
    fn shape_change_forces_resort() {
        let d = dev();
        let mut cache = ContactOrderCache::new();
        cache.refresh(&d, &mixed_population(32));
        assert!(
            cache.refresh(&d, &mixed_population(33)),
            "length change invalidates the permutation"
        );
        assert!(cache.contact_schedule(32).is_none());
        assert!(cache.contact_schedule(33).is_some());
    }

    #[test]
    fn pair_schedule_groups_known_orientations() {
        let mut cache = ContactOrderCache::new();
        let previous = vec![
            contact(2, ContactKind::Ve, ContactState::Lock), // orientation (2,3)
            contact(0, ContactKind::Vv2, ContactState::Lock), // orientation (0,1)
        ];
        let pairs = vec![(0u32, 1u32), (2, 3), (4, 5)];
        cache.refresh_pairs(&pairs, &previous, true);
        let sched = cache.pair_schedule(3).expect("schedule");
        // Orientations with survivors lead; the never-matched tail (both
        // orientations of (4,5), and the flipped orientations) follows.
        let lead = sched[0];
        let (a, b) = pairs[lead as usize / 2];
        let o = if lead % 2 == 1 { (b, a) } else { (a, b) };
        assert!(
            o == (2, 3) || o == (0, 1),
            "a surviving orientation must be scheduled first, got {o:?}"
        );
        // Unknown-length requests are refused.
        assert!(cache.pair_schedule(2).is_none());
        // Without force and with matching shape, the permutation stands.
        let before = sched.to_vec();
        cache.refresh_pairs(&pairs, &[], false);
        assert_eq!(cache.pair_schedule(3).unwrap(), &before[..]);
    }

    #[test]
    fn invalidate_clears_everything() {
        let d = dev();
        let mut cache = ContactOrderCache::new();
        let contacts = mixed_population(16);
        cache.refresh(&d, &contacts);
        cache.refresh_pairs(&[(0, 1)], &contacts, true);
        cache.invalidate();
        assert!(cache.contact_schedule(16).is_none());
        assert!(cache.pair_schedule(1).is_none());
    }
}
