//! Steady-state allocation audit for the HSBCSR SpMV path.
//!
//! The workspace-based SpMV (`spmv_hsbcsr_into` / `spmv_hsbcsr_fused_pq`)
//! must allocate **nothing** once warmed: per-call intermediates live in
//! `SpmvWorkspace`, per-block gather scratch is thread-local, kernel names
//! are `&'static str`, and the device trace retains its capacity across
//! `reset_trace`. This test arms a counting global allocator around the
//! warmed calls and requires exactly zero heap allocations.
//!
//! The matrix is sized so both SpMV stages run on the simulator's serial
//! path (few warps / blocks): a single deterministic thread, so a zero
//! count is exact rather than scheduling-dependent. The parallel-pool path
//! reuses the same thread-local scratch but warms per worker thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dda_simt::{Device, DeviceProfile};
use dda_sparse::spmv::{
    spmv_hsbcsr_fused_pq, spmv_hsbcsr_fused_pq_f32, spmv_hsbcsr_into, spmv_hsbcsr_into_f32,
    SpmvWorkspace, Stage1Smem,
};
use dda_sparse::{Hsbcsr, Hsbcsr32, SymBlockMatrix};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_spmv_steady_state_allocates_nothing() {
    // No conflict checking: the epoch detector allocates stamp arrays on
    // bind, which is a debug facility, not part of the hot loop.
    let dev = Device::new(DeviceProfile::tesla_k40());
    let m = SymBlockMatrix::random_spd(150, 4.0, 77);
    let h = Hsbcsr::from_sym(&m);
    let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.19).sin()).collect();
    let mut ws = SpmvWorkspace::new();
    let mut y = vec![0.0f64; m.dim()];

    // Warm: workspace buffers, thread-local kernel scratch, trace capacity.
    for _ in 0..2 {
        spmv_hsbcsr_into(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
        spmv_hsbcsr_fused_pq(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    }
    dev.reset_trace();

    // Measure.
    ARMED.store(true, Ordering::SeqCst);
    spmv_hsbcsr_into(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    spmv_hsbcsr_fused_pq(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    ARMED.store(false, Ordering::SeqCst);

    let n_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n_allocs, 0,
        "warmed SpMV steady state performed {n_allocs} heap allocations"
    );

    // And it still computes the right thing.
    let y_ref = m.mul_vec(&x);
    for i in 0..m.dim() {
        assert!((y[i] - y_ref[i]).abs() < 1e-9, "i={i}");
    }
}

/// Uniformly scales every stored value so a refill pass has fresh data
/// without changing the sparsity pattern (keeps SPD for positive factors).
fn scale_values(m: &mut SymBlockMatrix, factor: f64) {
    for b in &mut m.diag {
        for row in &mut b.0 {
            for v in row {
                *v *= factor;
            }
        }
    }
    for (_, _, b) in &mut m.upper {
        for row in &mut b.0 {
            for v in row {
                *v *= factor;
            }
        }
    }
}

#[test]
fn warmed_shadow_refill_and_f32_spmv_allocate_nothing() {
    // The mixed-precision path must add zero extra heap traffic per step:
    // the fp32 shadow is refilled in the *same* pass as the fp64 values
    // (`refill_values_with_shadow`), and the f32 SpMV reuses the shared
    // `SpmvWorkspace` plus the shadow's own capacity.
    let dev = Device::new(DeviceProfile::tesla_k40());
    let mut m = SymBlockMatrix::random_spd(150, 4.0, 91);
    let mut h = Hsbcsr::from_sym(&m);
    let mut shadow = Hsbcsr32::new();
    let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.23).cos()).collect();
    let mut ws = SpmvWorkspace::new();
    let mut y = vec![0.0f64; m.dim()];

    // Warm: shadow capacity, workspace buffers (incl. f32 diagonal
    // scratch), thread-local kernel scratch, trace capacity. Perturb the
    // values between warm passes so the refill path actually runs.
    for pass in 0..2 {
        scale_values(&mut m, 1.0 + 1e-3 * f64::from(pass));
        assert!(h.refill_values_with_shadow(&m, &mut shadow));
        spmv_hsbcsr_into_f32(&dev, &h, &shadow, &x, Stage1Smem::Proposed, &mut ws, &mut y);
        spmv_hsbcsr_fused_pq_f32(&dev, &h, &shadow, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    }
    dev.reset_trace();

    // Measure a full steady-state step: refill (with shadow) + f32 SpMV.
    scale_values(&mut m, 1.0 + 5e-4);
    ARMED.store(true, Ordering::SeqCst);
    let refilled = h.refill_values_with_shadow(&m, &mut shadow);
    spmv_hsbcsr_into_f32(&dev, &h, &shadow, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    spmv_hsbcsr_fused_pq_f32(&dev, &h, &shadow, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    ARMED.store(false, Ordering::SeqCst);

    assert!(refilled, "pattern unchanged, refill must succeed");
    let n_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n_allocs, 0,
        "warmed shadow refill + f32 SpMV performed {n_allocs} heap allocations"
    );

    // Accuracy: f32 storage, f64 accumulation — rounding-level agreement.
    let y_ref = m.mul_vec(&x);
    let scale: f64 = y_ref.iter().fold(1.0, |a, v| a.max(v.abs()));
    for i in 0..m.dim() {
        assert!((y[i] - y_ref[i]).abs() < 1e-5 * scale, "i={i}");
    }
}
