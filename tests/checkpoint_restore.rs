//! Integration tests for checkpoint/restore at the umbrella-crate surface.
//!
//! The contract pinned here: a [`SceneCheckpoint`] is a *complete* capture
//! of a pipeline's resumable state. Encoding it to text, dropping the
//! original world, decoding on a fresh device, and continuing must produce
//! trajectories bit-identical to the uninterrupted run — on the CPU
//! pipeline, on the GPU pipeline, and across the batch↔solo boundary
//! (a state captured from a `SceneBatch` slot resumes in a solo
//! `GpuPipeline`, and vice versa). Derived solver caches are deliberately
//! excluded from the capture: they rebuild deterministically and only
//! shift modeled-time attribution, never trajectory values — so the tests
//! compare state bits, not modeled seconds.

use dda_repro::core::pipeline::{CpuPipeline, GpuPipeline, SceneBatch, SceneCheckpoint};
use dda_repro::core::BlockSystem;
use dda_repro::simt::{Device, DeviceProfile};
use dda_repro::workloads::{rockfall_case, RockfallConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn scene(rocks: usize, speed: f64) -> (BlockSystem, dda_repro::core::DdaParams) {
    let mut cfg = RockfallConfig::default().with_rocks(rocks);
    cfg.initial_speed = speed;
    rockfall_case(&cfg)
}

/// Every trajectory-bearing bit of the two systems must agree exactly.
fn assert_sys_bits_eq(a: &BlockSystem, b: &BlockSystem, what: &str) {
    assert_eq!(a.blocks.len(), b.blocks.len(), "{what}: block count");
    for (i, (x, y)) in a.blocks.iter().zip(&b.blocks).enumerate() {
        let (cx, cy) = (x.centroid(), y.centroid());
        assert_eq!(
            cx.x.to_bits(),
            cy.x.to_bits(),
            "{what}: block {i} centroid x"
        );
        assert_eq!(
            cx.y.to_bits(),
            cy.y.to_bits(),
            "{what}: block {i} centroid y"
        );
        for dof in 0..6 {
            assert_eq!(
                x.velocity[dof].to_bits(),
                y.velocity[dof].to_bits(),
                "{what}: block {i} velocity dof {dof}"
            );
        }
        for k in 0..3 {
            assert_eq!(
                x.stress[k].to_bits(),
                y.stress[k].to_bits(),
                "{what}: block {i} stress {k}"
            );
        }
    }
}

#[test]
fn cpu_pipeline_round_trips_through_a_checkpoint() {
    let (sys, params) = scene(3, 2.0);
    let mut original = CpuPipeline::new(sys, params);
    original.run(3);

    let text = SceneCheckpoint {
        state: original.scene_state(),
        taken_at_step: 3,
    }
    .encode();
    // Simulate process death: only `text` survives.
    let decoded = SceneCheckpoint::decode(&text).expect("checkpoint decodes");
    assert_eq!(decoded.taken_at_step, 3);
    let mut restored = CpuPipeline::from_state(decoded.state);

    for step in 0..4 {
        let ro = original.step();
        let rr = restored.step();
        assert_eq!(ro.dt.to_bits(), rr.dt.to_bits(), "dt at step {step}");
        assert_eq!(ro.n_contacts, rr.n_contacts, "contacts at step {step}");
        assert_eq!(ro.retries, rr.retries, "retries at step {step}");
    }
    assert_sys_bits_eq(
        &original.scene_state().sys,
        &restored.scene_state().sys,
        "cpu restore",
    );
}

#[test]
fn gpu_pipeline_round_trips_through_a_checkpoint() {
    let (sys, params) = scene(4, 2.5);
    let mut original = GpuPipeline::new(sys, params, k40());
    original.run(3);

    let text = SceneCheckpoint {
        state: original.scene_state(),
        taken_at_step: 3,
    }
    .encode();
    let decoded = SceneCheckpoint::decode(&text).expect("checkpoint decodes");
    // A fresh device: the restored world shares nothing with the original.
    let mut restored = GpuPipeline::from_state(decoded.state, k40());

    for step in 0..4 {
        let ro = original.step();
        let rr = restored.step();
        assert_eq!(ro.dt.to_bits(), rr.dt.to_bits(), "dt at step {step}");
        assert_eq!(ro.n_contacts, rr.n_contacts, "contacts at step {step}");
        assert_eq!(
            ro.oc_iterations, rr.oc_iterations,
            "oc iterations at step {step}"
        );
    }
    assert_sys_bits_eq(
        &original.scene_state().sys,
        &restored.scene_state().sys,
        "gpu restore",
    );
}

#[test]
fn batch_slot_checkpoint_resumes_in_a_solo_pipeline() {
    let (sys, params) = scene(3, 1.5);
    let mut batch = SceneBatch::empty(k40());
    batch.admit(sys, params);
    batch.run(3);

    let text = SceneCheckpoint {
        state: batch.scene_state(0).expect("live slot"),
        taken_at_step: 3,
    }
    .encode();
    let decoded = SceneCheckpoint::decode(&text).expect("checkpoint decodes");
    let mut solo = GpuPipeline::from_state(decoded.state, k40());

    batch.run(4);
    solo.run(4);
    assert_sys_bits_eq(
        batch.sys(0).expect("live slot"),
        &solo.scene_state().sys,
        "batch slot -> solo",
    );
}

#[test]
fn solo_checkpoint_resumes_in_a_batch_slot() {
    let (sys, params) = scene(3, 3.0);
    let mut solo = GpuPipeline::new(sys, params, k40());
    solo.run(3);

    let text = SceneCheckpoint {
        state: solo.scene_state(),
        taken_at_step: 3,
    }
    .encode();
    let decoded = SceneCheckpoint::decode(&text).expect("checkpoint decodes");
    let mut batch = SceneBatch::empty(k40());
    let slot = batch.admit_state(decoded.state);

    solo.run(4);
    batch.run(4);
    assert_sys_bits_eq(
        &solo.scene_state().sys,
        batch.sys(slot).expect("live slot"),
        "solo -> batch slot",
    );
}

#[test]
fn checkpoint_text_is_stable_under_re_encode() {
    let (sys, params) = scene(3, 2.0);
    let mut p = GpuPipeline::new(sys, params, k40());
    p.run(2);
    let ck = SceneCheckpoint {
        state: p.scene_state(),
        taken_at_step: 2,
    };
    let text = ck.encode();
    let again = SceneCheckpoint::decode(&text).expect("decodes").encode();
    assert_eq!(text, again, "decode∘encode must be the identity on text");
}
