//! Fig 5 reproduction: sampled per-step PCG iteration counts of the three
//! preconditioners.
//!
//! Usage: `fig5 [--blocks N] [--steps N] [--seed N]`

use dda_harness::experiments::preconditioner_study;
use dda_harness::Args;
use dda_harness::Table;

/// Number of samples the paper plots.
const PAPER_SAMPLES: usize = 26;

fn main() {
    let a = Args::parse(400, 0, 26);
    println!(
        "Fig 5 — sampled PCG iterations per time step (case 1, {} target blocks, {} steps)\n",
        a.blocks, a.steps
    );
    let rows = preconditioner_study(a.blocks, a.steps, a.seed);

    let n_steps = rows[0].samples.len();
    let stride = (n_steps / PAPER_SAMPLES).max(1);
    let mut t = Table::new(vec!["step", "BJ", "SSOR", "ILU"]);
    for s in (0..n_steps).step_by(stride) {
        t.row(vec![
            s.to_string(),
            rows[0].samples[s].to_string(),
            rows[1].samples[s].to_string(),
            rows[2].samples[s].to_string(),
        ]);
    }
    t.print();

    // A terminal sparkline per preconditioner (the figure's series shapes).
    println!();
    for r in &rows {
        let max = r.samples.iter().copied().max().unwrap_or(1).max(1) as f64;
        let bars: String = r
            .samples
            .iter()
            .map(|&v| {
                let level = (v as f64 / max * 7.0).round() as usize;
                char::from_u32(0x2581 + level as u32).unwrap_or('▁')
            })
            .collect();
        println!("{:>5}: {}", r.name, bars);
    }
    println!(
        "\nPaper's Fig 5 shape: three horizontally-banded series, ILU lowest,\n\
         SSOR in the middle, BJ highest (averages 93 / 141 / 275)."
    );
}
