//! Incremental re-assembly across the open–close iteration loop.
//!
//! Loop 3 re-assembles and re-solves until no contact changes state, but
//! between iterations only the contacts whose open/closed/sliding state
//! (or sliding bookkeeping) actually changed produce different
//! contributions — the rest of the Fig 4 contribution stream is
//! bit-for-bit the work of the previous iteration. [`AssemblyCache`]
//! memoizes that stream and the keyed-reduction plan:
//!
//! * **Stream splice.** The keyed arrays (`D` and the force stream) are
//!   retained across iterations. On iteration `k > 1` only the delta set
//!   — contacts flagged by `open_close_gpu_masked` as having changed
//!   `state`, `edge_ratio`, or `slide_dir` — is recomputed by the
//!   `nondiag.delta` kernel, which shares its per-lane body with the full
//!   `nondiag.compute` kernel. Unflagged slots keep their previous bits,
//!   so the spliced stream equals a full recompute bit-for-bit, and the
//!   deterministic keyed reduction downstream yields a bitwise-identical
//!   system.
//! * **Plan reuse.** The radix argsort and segment boundaries depend only
//!   on the keys. The plan snapshot is compared against the fresh keys
//!   (host-side memcmp); on a match the sort and boundary launches are
//!   skipped entirely. Lock↔slide churn never changes keys, so settled
//!   scenes reuse one plan across iterations *and* across steps; any
//!   broad-phase rebind or open/close transition changes the keys and
//!   self-invalidates the plan.
//!
//! The cache is a pure accelerator: `AssemblyReuse::Recompute` bypasses it
//! and stays the reference oracle, and the parity suite asserts the two
//! modes agree bitwise per step under random churn and injected faults.

use crate::assembly::{
    compute_contact_stream, fill_joint_params, reduce_keyed_blocks, reduce_keyed_vec6,
    AssembledSystem, ReducePlan, StreamPass,
};
use crate::contact::types::Contact;
use crate::contact::GeomSoa;
use crate::params::DdaParams;
use crate::system::BlockSystem;
use dda_simt::primitives::compact_indices;
use dda_simt::Device;
use dda_sparse::{Block6, SymBlockMatrix};
use serde::{Deserialize, Serialize};

/// Lifetime counters of the incremental-assembly machinery; the per-step
/// deltas ride on `StepReport` so benches read reuse rates directly
/// instead of inferring them from kernel-name greps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssemblyStats {
    /// Full-stream recomputes (first iteration of a step, or after an
    /// invalidation).
    pub full_builds: u64,
    /// Per-contact contributions recomputed (full passes + delta sets).
    pub recomputed: u64,
    /// Per-contact contributions spliced from the cached stream.
    pub spliced: u64,
    /// Keyed-reduction plans rebuilt (argsort + segment boundaries ran).
    pub plan_rebuilds: u64,
    /// Keyed-reduction plans reused (sort and boundary launches skipped).
    pub plan_hits: u64,
}

impl AssemblyStats {
    /// Counter increments since an earlier snapshot.
    pub fn delta_since(&self, earlier: &AssemblyStats) -> AssemblyStats {
        AssemblyStats {
            full_builds: self.full_builds - earlier.full_builds,
            recomputed: self.recomputed - earlier.recomputed,
            spliced: self.spliced - earlier.spliced,
            plan_rebuilds: self.plan_rebuilds - earlier.plan_rebuilds,
            plan_hits: self.plan_hits - earlier.plan_hits,
        }
    }

    /// Fraction of contributions spliced rather than recomputed.
    pub fn splice_rate(&self) -> f64 {
        let total = self.recomputed + self.spliced;
        if total == 0 {
            0.0
        } else {
            self.spliced as f64 / total as f64
        }
    }
}

/// Memoized per-contact contribution stream + keyed-reduction plans,
/// living beside [`crate::pipeline::GpuPipeline`]'s solver cache. See the
/// module docs for the reuse/invalidation rules.
#[derive(Debug, Default)]
pub struct AssemblyCache {
    d_vals: Vec<f64>,
    d_keys: Vec<u64>,
    f_vals: Vec<f64>,
    f_keys: Vec<u64>,
    jparams: Vec<f64>,
    dirty: Vec<u32>,
    pending_all: bool,
    nc: usize,
    plan_blocks: ReducePlan,
    plan_forces: ReducePlan,
    stats: AssemblyStats,
}

impl AssemblyCache {
    /// Empty cache; the first `begin_step` sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-step rebind: size the stream buffers for the step's contact
    /// population, refill the flattened joint parameters, clear pending
    /// deltas, and force a full recompute on the next assemble (detection
    /// rebuilt the contact list, so every cached slot is stale). All
    /// buffers reuse capacity — a warmed cache rebinds without heap
    /// traffic.
    pub fn begin_step(&mut self, sys: &BlockSystem, contacts: &[Contact]) {
        let nc = contacts.len();
        self.nc = nc;
        self.d_vals.clear();
        self.d_vals.resize(nc * 3 * 36, 0.0);
        self.d_keys.clear();
        self.d_keys.resize(nc * 3, u64::MAX);
        self.f_vals.clear();
        self.f_vals.resize(nc * 2 * 6, 0.0);
        self.f_keys.clear();
        self.f_keys.resize(nc * 2, u64::MAX);
        self.dirty.clear();
        self.dirty.resize(nc, 0);
        fill_joint_params(sys, contacts, &mut self.jparams);
        self.pending_all = true;
    }

    /// Force the next assemble to recompute every contribution (the
    /// reduction plans self-invalidate via key comparison and are kept).
    pub fn invalidate(&mut self) {
        self.pending_all = true;
    }

    /// The per-contact contribution-delta mask for
    /// [`crate::openclose::open_close_gpu_masked`] to OR-accumulate into.
    pub fn dirty_mask(&mut self) -> &mut [u32] {
        &mut self.dirty
    }

    /// Lifetime reuse counters.
    pub fn stats(&self) -> AssemblyStats {
        self.stats
    }

    /// Incremental equivalent of
    /// [`crate::assembly::assemble_contacts_gpu_scheduled`]: recompute the
    /// pending delta set (or everything, after `begin_step`/`invalidate`),
    /// splice into the cached stream, and run the keyed reduction under
    /// the cached plans. Bitwise identical to the full recompute by
    /// construction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        &mut self,
        dev: &Device,
        sys: &BlockSystem,
        gsoa: &GeomSoa,
        contacts: &[Contact],
        params: &DdaParams,
        mut diag: Vec<Block6>,
        mut rhs: Vec<f64>,
        sched: Option<&[u32]>,
    ) -> AssembledSystem {
        let nc = contacts.len();
        assert_eq!(
            nc, self.nc,
            "AssemblyCache::begin_step must precede assemble"
        );
        if nc == 0 {
            return AssembledSystem {
                matrix: SymBlockMatrix::new(diag, Vec::new()),
                rhs,
            };
        }
        let n = sys.len() as u64;
        if self.pending_all {
            self.d_keys.fill(u64::MAX);
            self.f_keys.fill(u64::MAX);
            compute_contact_stream(
                dev,
                n,
                gsoa,
                contacts,
                &self.jparams,
                params.penalty,
                params.shear_ratio,
                &mut self.d_vals,
                &mut self.d_keys,
                &mut self.f_vals,
                &mut self.f_keys,
                StreamPass::Full {
                    sched: sched.filter(|s| s.len() == nc),
                },
            );
            self.pending_all = false;
            self.stats.full_builds += 1;
            self.stats.recomputed += nc as u64;
        } else {
            let changed = compact_indices(dev, &self.dirty);
            if !changed.is_empty() {
                compute_contact_stream(
                    dev,
                    n,
                    gsoa,
                    contacts,
                    &self.jparams,
                    params.penalty,
                    params.shear_ratio,
                    &mut self.d_vals,
                    &mut self.d_keys,
                    &mut self.f_vals,
                    &mut self.f_keys,
                    StreamPass::Delta { changed: &changed },
                );
            }
            self.stats.recomputed += changed.len() as u64;
            self.stats.spliced += (nc - changed.len()) as u64;
        }
        // The stream now reflects the current contact states; the deltas
        // are consumed.
        self.dirty.fill(0);

        let (diag_add, upper, hit_b) = reduce_keyed_blocks(
            dev,
            &self.d_keys,
            &self.d_vals,
            n,
            Some(&mut self.plan_blocks),
        );
        for (b, blk) in &diag_add {
            diag[*b as usize] += *blk;
        }
        let (f_add, hit_f) =
            reduce_keyed_vec6(dev, &self.f_keys, &self.f_vals, Some(&mut self.plan_forces));
        for (b, f) in &f_add {
            for k in 0..6 {
                rhs[6 * *b as usize + k] += f[k];
            }
        }
        for hit in [hit_b, hit_f] {
            if hit {
                self.stats.plan_hits += 1;
            } else {
                self.stats.plan_rebuilds += 1;
            }
        }

        AssembledSystem {
            matrix: SymBlockMatrix::new(diag, upper),
            rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::contact::narrow::narrow_phase_serial;
    use crate::contact::types::ContactState;
    use crate::material::{BlockMaterial, JointMaterial};
    use crate::stiffness::perblock::{build_diag_gpu, BlockSoa};
    use dda_geom::Polygon;
    use dda_simt::serial::CpuCounter;
    use dda_simt::DeviceProfile;

    fn stack() -> (BlockSystem, Vec<Contact>, DdaParams) {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0),
                Block::new(Polygon::rect(1.0, 0.0, 2.0, 1.0), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let params = DdaParams::for_model(1.0, 5e9);
        let mut cnt = CpuCounter::new();
        let mut contacts = narrow_phase_serial(
            &sys,
            &[(0, 1), (0, 2), (1, 2)],
            params.contact_range,
            &mut cnt,
        );
        crate::contact::init::init_contacts_serial(
            &sys,
            &mut contacts,
            params.touch_tol * params.max_displacement,
            &mut cnt,
        );
        (sys, contacts, params)
    }

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    fn bits(asm: &AssembledSystem) -> Vec<u64> {
        let mut v = Vec::new();
        for b in &asm.matrix.diag {
            for r in 0..6 {
                for c in 0..6 {
                    v.push(b.0[r][c].to_bits());
                }
            }
        }
        for (r, c, b) in &asm.matrix.upper {
            v.push(*r as u64);
            v.push(*c as u64);
            for rr in 0..6 {
                for cc in 0..6 {
                    v.push(b.0[rr][cc].to_bits());
                }
            }
        }
        v.extend(asm.rhs.iter().map(|x| x.to_bits()));
        v
    }

    /// Churn states between iterations, flagging exactly the changed
    /// contacts, and check the spliced stream reduces to the same bits as
    /// a from-scratch recompute of the mutated contact list.
    #[test]
    fn spliced_stream_matches_full_recompute_bitwise() {
        let (sys, mut contacts, params) = stack();
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let (dg, rhs0) = build_diag_gpu(&d, &sys, &bsoa, &params);

        let mut cache = AssemblyCache::new();
        cache.begin_step(&sys, &contacts);
        let first = cache.assemble(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
            None,
        );
        let oracle = crate::assembly::assemble_contacts_gpu(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
        );
        assert_eq!(bits(&first), bits(&oracle), "full build must match");

        // Iteration 2: flip one contact open, slide another, flag both.
        let churn: Vec<(usize, ContactState, f64)> =
            vec![(0, ContactState::Open, 0.0), (1, ContactState::Slide, 0.37)];
        for &(k, s, ratio) in &churn {
            if k < contacts.len() {
                contacts[k].state = s;
                if s == ContactState::Slide {
                    contacts[k].edge_ratio = ratio;
                    contacts[k].slide_dir = 1.0;
                }
                cache.dirty_mask()[k] = 1;
            }
        }
        let spliced = cache.assemble(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
            None,
        );
        let oracle2 = crate::assembly::assemble_contacts_gpu(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
        );
        assert_eq!(bits(&spliced), bits(&oracle2), "spliced must match");
        let st = cache.stats();
        assert_eq!(st.full_builds, 1);
        assert!(st.spliced > 0, "second iteration must splice");

        // Iteration 3: nothing changed — pure splice, and the keys are
        // unchanged so both plans must hit.
        let before = cache.stats();
        let again = cache.assemble(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
            None,
        );
        assert_eq!(bits(&again), bits(&oracle2));
        let delta = cache.stats().delta_since(&before);
        assert_eq!(delta.recomputed, 0);
        assert_eq!(delta.plan_hits, 2, "unchanged keys must reuse both plans");
    }

    #[test]
    fn lock_slide_flip_reuses_plan() {
        let (sys, mut contacts, params) = stack();
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let (dg, rhs0) = build_diag_gpu(&d, &sys, &bsoa, &params);
        let locked = contacts.iter().position(|c| c.state == ContactState::Lock);
        let Some(k) = locked else { return };

        let mut cache = AssemblyCache::new();
        cache.begin_step(&sys, &contacts);
        let _ = cache.assemble(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
            None,
        );
        // Lock → slide keeps the contact closed: same keys, new values.
        contacts[k].state = ContactState::Slide;
        contacts[k].slide_dir = 1.0;
        cache.dirty_mask()[k] = 1;
        let before = cache.stats();
        let spliced = cache.assemble(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
            None,
        );
        let oracle = crate::assembly::assemble_contacts_gpu(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
        );
        assert_eq!(bits(&spliced), bits(&oracle));
        let delta = cache.stats().delta_since(&before);
        assert_eq!(delta.recomputed, 1);
        assert_eq!(
            delta.plan_hits, 2,
            "a closed-state flip keeps the keys, so the plans must hit"
        );
    }

    #[test]
    fn delta_kernel_traced_and_cheaper() {
        let (sys, contacts, params) = stack();
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let (dg, rhs0) = build_diag_gpu(&d, &sys, &bsoa, &params);
        let mut cache = AssemblyCache::new();
        cache.begin_step(&sys, &contacts);
        let _ = cache.assemble(
            &d,
            &sys,
            &gsoa,
            &contacts,
            &params,
            dg.clone(),
            rhs0.clone(),
            None,
        );
        cache.dirty_mask()[0] = 1;
        let _ = cache.assemble(&d, &sys, &gsoa, &contacts, &params, dg, rhs0, None);
        let by = d.trace().by_kernel();
        let (full, _) = by["nondiag.compute"];
        let (delta, _) = by["nondiag.delta"];
        assert_eq!(full.threads, contacts.len() as u64);
        assert_eq!(delta.threads, 1, "delta pass touches only flagged contacts");
    }
}
