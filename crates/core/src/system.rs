//! The block system: blocks, material tables, and loading.

use crate::block::Block;
use crate::material::{BlockMaterial, JointMaterial};
use dda_geom::{Aabb, Vec2};
use serde::{Deserialize, Serialize};

/// A concentrated load applied at a fixed point of one block.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PointLoad {
    /// Index of the loaded block.
    pub block: u32,
    /// Application point (moves with the block).
    pub point: Vec2,
    /// Force vector (N).
    pub force: Vec2,
}

/// A complete DDA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockSystem {
    /// The blocks.
    pub blocks: Vec<Block>,
    /// Block material table (indexed by [`Block::material`]).
    pub block_materials: Vec<BlockMaterial>,
    /// Joint material table. Contacts pick the joint material by the
    /// *minimum* of the two blocks' material indices (a common DDA
    /// convention; workloads may override per-pair).
    pub joint_materials: Vec<JointMaterial>,
    /// Concentrated loads.
    pub point_loads: Vec<PointLoad>,
}

impl BlockSystem {
    /// Creates a system with a single material pair.
    pub fn new(blocks: Vec<Block>, bm: BlockMaterial, jm: JointMaterial) -> BlockSystem {
        BlockSystem {
            blocks,
            block_materials: vec![bm],
            joint_materials: vec![jm],
            point_loads: Vec::new(),
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the system has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Material of block `i`.
    pub fn material_of(&self, i: usize) -> &BlockMaterial {
        &self.block_materials[self.blocks[i].material as usize]
    }

    /// Joint material governing the contact between blocks `i` and `j`.
    pub fn joint_of(&self, i: usize, j: usize) -> &JointMaterial {
        let mi = self.blocks[i].material as usize;
        let mj = self.blocks[j].material as usize;
        let idx = mi.min(mj).min(self.joint_materials.len() - 1);
        &self.joint_materials[idx]
    }

    /// Bounding box of the whole model.
    pub fn domain(&self) -> Aabb {
        self.blocks
            .iter()
            .fold(Aabb::EMPTY, |acc, b| acc.union(b.aabb()))
    }

    /// Characteristic block size: the mean circumradius ×2.
    pub fn mean_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .blocks
            .iter()
            .map(|b| b.poly.circumradius() * 2.0)
            .sum();
        sum / self.blocks.len() as f64
    }

    /// Total kinetic-energy proxy `Σ ρ·S·|v(centroid)|²/2` — the quantity
    /// that must decay to zero in a static stability analysis (case 1's
    /// "until all the blocks stayed in the static state").
    pub fn kinetic_energy(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let rho = self.block_materials[b.material as usize].density;
                let v2 = b.velocity[0] * b.velocity[0] + b.velocity[1] * b.velocity[1];
                0.5 * rho * b.area() * v2
            })
            .sum()
    }

    /// Gravitational potential energy `Σ m·g·y_c` relative to `y = 0`,
    /// using each material's body force (so non-gravity loadings are
    /// handled consistently). Together with [`BlockSystem::kinetic_energy`]
    /// this gives the conservation audit used by the physics tests.
    pub fn gravitational_potential(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let bm = &self.block_materials[b.material as usize];
                let c = b.centroid();
                // Potential of a uniform body force f over the block:
                // −f·c·S (per unit thickness).
                -(bm.body_force[0] * c.x + bm.body_force[1] * c.y) * b.area()
            })
            .sum()
    }

    /// Total overlap area between all block pairs (validation metric; the
    /// penalty method keeps this near zero).
    pub fn total_interpenetration(&self) -> f64 {
        let polys: Vec<_> = self.blocks.iter().map(|b| b.poly.clone()).collect();
        dda_geom::intersect::total_overlap_area(&polys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_geom::Polygon;

    fn two_block_system() -> BlockSystem {
        let b0 = Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0).fixed();
        let b1 = Block::new(Polygon::rect(0.0, 1.0, 1.0, 2.0), 0);
        BlockSystem::new(
            vec![b0, b1],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        )
    }

    #[test]
    fn basic_accessors() {
        let s = two_block_system();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.material_of(1).density, 2600.0);
        assert!((s.joint_of(0, 1).friction_angle_deg - 30.0).abs() < 1e-12);
    }

    #[test]
    fn domain_covers_all_blocks() {
        let s = two_block_system();
        let d = s.domain();
        assert!(d.contains(Vec2::new(0.5, 1.9)));
        assert!((d.extent().y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kinetic_energy_zero_at_rest_positive_in_motion() {
        let mut s = two_block_system();
        assert_eq!(s.kinetic_energy(), 0.0);
        s.blocks[1].velocity[1] = -1.0;
        let ke = s.kinetic_energy();
        assert!((ke - 0.5 * 2600.0 * 1.0).abs() < 1e-9);
    }

    #[test]
    fn interpenetration_of_stacked_blocks_is_zero() {
        let s = two_block_system();
        assert!(s.total_interpenetration() < 1e-12);
    }

    #[test]
    fn mean_block_size_reasonable() {
        let s = two_block_system();
        // Unit squares: circumradius √2/2 → size √2.
        assert!((s.mean_block_size() - 2.0f64.sqrt()).abs() < 1e-9);
    }
}
