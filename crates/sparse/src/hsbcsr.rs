//! HSBCSR — *half slice block compressed sparse row* format (§IV-B).
//!
//! The paper's storage format for the half-stored symmetric block matrix:
//!
//! * Sub-matrix data live in two arrays, `d-data` (diagonal sub-matrices)
//!   and `nd-data-up` (strict upper triangle), with identical layout
//!   (Fig 6): the 6×6 sub-matrices are **sliced by local row**; slice `r`
//!   holds row `r` of every sub-matrix. The sort priority is slice number,
//!   then global row, then global column. Each slice is padded to a
//!   multiple of 32 sub-matrices so that 32 consecutive threads reading the
//!   same `(slice, local column)` hit consecutive, 128-byte-aligned
//!   addresses — perfectly coalesced.
//! * Four index arrays describe the non-diagonal structure (Fig 7):
//!   `rc` packs each upper sub-matrix's `(row, col)`; `row-up-i[i]` is the
//!   end position of row `i` in the upper listing; `row-low-i[i]` is the
//!   end position of row `i` in the (virtual, transposed) lower listing;
//!   and `row-low-p[k] = j` maps the `k`-th lower entry to its transposed
//!   source at position `j` in `nd-data-up`.
//!
//! The matrix is never recovered to full storage: the two-stage SpMV in
//! [`crate::spmv::hsbcsr`] multiplies each stored sub-matrix by both the
//! upper and the lower vector chunk and reduces per row.

use crate::block6::Block6;
use crate::sym::SymBlockMatrix;
use serde::{Deserialize, Serialize};

/// Slice padding granularity: "the length of one slice is a multiple of 32
/// to satisfy the alignment condition of the GPU's global memory access."
pub const SLICE_ALIGN: usize = 32;

/// The HSBCSR matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hsbcsr {
    /// Number of block rows.
    pub n: usize,
    /// Number of stored (upper) non-diagonal sub-matrices.
    pub n_nd: usize,
    /// Diagonal sub-matrix count padded to [`SLICE_ALIGN`].
    pub pad_d: usize,
    /// Non-diagonal sub-matrix count padded to [`SLICE_ALIGN`].
    pub pad_nd: usize,
    /// Diagonal data, sliced layout, length `36 * pad_d`.
    pub d_data: Vec<f64>,
    /// Upper-triangle data, sliced layout, length `36 * pad_nd`.
    pub nd_data_up: Vec<f64>,
    /// Packed `(row << 32) | col` per upper sub-matrix, in storage order.
    pub rc: Vec<u64>,
    /// End position (exclusive) of each block row in the upper listing.
    pub row_up_i: Vec<u32>,
    /// End position (exclusive) of each block row in the lower listing.
    pub row_low_i: Vec<u32>,
    /// For the `k`-th lower entry, the position of its transposed source in
    /// the upper listing.
    pub row_low_p: Vec<u32>,
}

/// Single-precision shadow of an [`Hsbcsr`]'s value arrays.
///
/// The mixed-precision solver streams matrix values as fp32 (half the
/// bytes of the dominant SpMV traffic) while every accumulation stays
/// fp64. Only the two value arrays are shadowed — the symbolic structure
/// (`rc`, `row-up-i`, `row-low-i`, `row-low-p`, padding) is shared with
/// the parent format, so the shadow costs no extra index storage and is
/// refilled in the *same sweep* as the fp64 values
/// ([`Hsbcsr::refill_values_with_shadow`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Hsbcsr32 {
    /// Diagonal data, sliced layout, length `36 * pad_d`.
    pub d_data: Vec<f32>,
    /// Upper-triangle data, sliced layout, length `36 * pad_nd`.
    pub nd_data_up: Vec<f32>,
}

impl Hsbcsr32 {
    /// An empty shadow; arrays grow on first refill and are reused after.
    pub fn new() -> Hsbcsr32 {
        Hsbcsr32::default()
    }

    /// Rebuilds the shadow by demoting `h`'s value arrays (used after a
    /// full symbolic rebuild; the steady-state path is the fused sweep in
    /// [`Hsbcsr::refill_values_with_shadow`]). Reuses capacity once warm.
    pub fn refill_from(&mut self, h: &Hsbcsr) {
        self.d_data.clear();
        self.d_data.extend(h.d_data.iter().map(|&v| v as f32));
        self.nd_data_up.clear();
        self.nd_data_up
            .extend(h.nd_data_up.iter().map(|&v| v as f32));
    }

    /// True when the shadow's array lengths match `h`'s layout.
    pub fn matches(&self, h: &Hsbcsr) -> bool {
        self.d_data.len() == h.d_data.len() && self.nd_data_up.len() == h.nd_data_up.len()
    }

    /// Bytes of shadowed sub-matrix data (half of [`Hsbcsr::data_bytes`]).
    pub fn data_bytes(&self) -> usize {
        (self.d_data.len() + self.nd_data_up.len()) * 4
    }
}

impl Hsbcsr {
    /// Builds the format from the canonical half-stored symmetric matrix.
    ///
    /// ```
    /// use dda_sparse::{Hsbcsr, SymBlockMatrix};
    ///
    /// let m = SymBlockMatrix::random_spd(40, 3.0, 7);
    /// let h = Hsbcsr::from_sym(&m);
    /// assert_eq!(h.n_nd, m.n_upper());
    /// assert_eq!(h.pad_d % 32, 0); // slices padded for coalescing
    /// // The format multiplies without recovering the full matrix:
    /// let x = vec![1.0; m.dim()];
    /// let y = h.mul_vec_serial(&x);
    /// let y_ref = m.mul_vec(&x);
    /// assert!((y[0] - y_ref[0]).abs() < 1e-9);
    /// ```
    pub fn from_sym(m: &SymBlockMatrix) -> Hsbcsr {
        let n = m.n_blocks();
        let n_nd = m.n_upper();
        let pad_d = pad(n.max(1));
        let pad_nd = pad(n_nd.max(1));

        // Diagonal data: sub-matrix i at slot i, sliced by local row.
        let mut d_data = vec![0.0f64; 36 * pad_d];
        for (i, b) in m.diag.iter().enumerate() {
            write_sliced(&mut d_data, pad_d, i, b);
        }

        // Upper data: m.upper is already sorted by (row, col) — the format's
        // required order.
        let mut nd_data_up = vec![0.0f64; 36 * pad_nd];
        let mut rc = Vec::with_capacity(n_nd);
        for (k, &(r, c, ref b)) in m.upper.iter().enumerate() {
            write_sliced(&mut nd_data_up, pad_nd, k, b);
            rc.push(((r as u64) << 32) | c as u64);
        }

        // row-up-i: end of each row's run in the (row, col)-sorted listing.
        let mut row_up_i = vec![0u32; n];
        {
            let mut counts = vec![0u32; n];
            for &(r, _, _) in &m.upper {
                counts[r as usize] += 1;
            }
            let mut acc = 0u32;
            for i in 0..n {
                acc += counts[i];
                row_up_i[i] = acc;
            }
        }

        // Lower listing: entries (c, r) for each upper (r, c), sorted by
        // (c, r). Because the upper listing is sorted by (r, c), sorting the
        // same entries by (c, r) gives the lower traversal order; row-low-p
        // maps back to the source position.
        let mut low: Vec<(u32, u32, u32)> = m
            .upper
            .iter()
            .enumerate()
            .map(|(k, &(r, c, _))| (c, r, k as u32))
            .collect();
        low.sort_by_key(|&(lr, lc, _)| (lr, lc));
        let row_low_p: Vec<u32> = low.iter().map(|&(_, _, k)| k).collect();
        let mut row_low_i = vec![0u32; n];
        {
            let mut counts = vec![0u32; n];
            for &(lr, _, _) in &low {
                counts[lr as usize] += 1;
            }
            let mut acc = 0u32;
            for i in 0..n {
                acc += counts[i];
                row_low_i[i] = acc;
            }
        }

        Hsbcsr {
            n,
            n_nd,
            pad_d,
            pad_nd,
            d_data,
            nd_data_up,
            rc,
            row_up_i,
            row_low_i,
            row_low_p,
        }
    }

    /// Flat index of `(local row r, local col c)` of sub-matrix `slot` in a
    /// sliced array padded to `pad` sub-matrices.
    #[inline]
    pub fn sliced_index(pad: usize, slot: usize, r: usize, c: usize) -> usize {
        r * 6 * pad + c * pad + slot
    }

    /// Entry `(r, c)` of the `k`-th upper sub-matrix.
    #[inline]
    pub fn nd_entry(&self, k: usize, r: usize, c: usize) -> f64 {
        self.nd_data_up[Self::sliced_index(self.pad_nd, k, r, c)]
    }

    /// Entry `(r, c)` of the `i`-th diagonal sub-matrix.
    #[inline]
    pub fn d_entry(&self, i: usize, r: usize, c: usize) -> f64 {
        self.d_data[Self::sliced_index(self.pad_d, i, r, c)]
    }

    /// Block row of the `k`-th upper sub-matrix.
    #[inline]
    pub fn row_of(&self, k: usize) -> u32 {
        (self.rc[k] >> 32) as u32
    }

    /// Block column of the `k`-th upper sub-matrix.
    #[inline]
    pub fn col_of(&self, k: usize) -> u32 {
        (self.rc[k] & 0xFFFF_FFFF) as u32
    }

    /// Reconstructs the `k`-th upper sub-matrix (tests / diagnostics).
    pub fn nd_block(&self, k: usize) -> Block6 {
        let mut b = Block6::ZERO;
        for r in 0..6 {
            for c in 0..6 {
                b.0[r][c] = self.nd_entry(k, r, c);
            }
        }
        b
    }

    /// Serial SpMV walking the format exactly as the GPU kernels do
    /// (stage 1 per-sub-matrix products, stage 2 per-row reductions) — the
    /// format-correctness reference, independent of the simulator.
    pub fn mul_vec_serial(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n * 6);
        let mut up_res = vec![0.0f64; self.n_nd * 6];
        let mut low_res = vec![0.0f64; self.n_nd * 6];

        // Stage 1.
        for k in 0..self.n_nd {
            let row = self.row_of(k) as usize;
            let col = self.col_of(k) as usize;
            for r in 0..6 {
                let mut up = 0.0;
                for c in 0..6 {
                    let a = self.nd_entry(k, r, c);
                    up += a * x[col * 6 + c];
                    low_res[k * 6 + c] += a * x[row * 6 + r];
                }
                up_res[k * 6 + r] = up;
            }
        }

        // Stage 2 + diagonal.
        let mut y = vec![0.0f64; self.n * 6];
        for i in 0..self.n {
            // Upper reduction: contiguous run of this row's sub-matrices.
            let lo = if i == 0 { 0 } else { self.row_up_i[i - 1] } as usize;
            let hi = self.row_up_i[i] as usize;
            for k in lo..hi {
                for r in 0..6 {
                    y[i * 6 + r] += up_res[k * 6 + r];
                }
            }
            // Lower reduction: scattered via row-low-p.
            let llo = if i == 0 { 0 } else { self.row_low_i[i - 1] } as usize;
            let lhi = self.row_low_i[i] as usize;
            for l in llo..lhi {
                let k = self.row_low_p[l] as usize;
                for r in 0..6 {
                    y[i * 6 + r] += low_res[k * 6 + r];
                }
            }
            // Diagonal.
            for r in 0..6 {
                let mut acc = 0.0;
                for c in 0..6 {
                    acc += self.d_entry(i, r, c) * x[i * 6 + c];
                }
                y[i * 6 + r] += acc;
            }
        }
        y
    }

    /// Bytes of sub-matrix data including slice padding.
    pub fn data_bytes(&self) -> usize {
        (self.d_data.len() + self.nd_data_up.len()) * 8
    }

    /// Refills the numeric values from `m`, reusing the symbolic structure
    /// (index arrays, padding, slice layout) built by [`Hsbcsr::from_sym`].
    ///
    /// Succeeds — and returns `true` — only when `m` has exactly the
    /// sparsity pattern this format was built for (same block count, same
    /// upper `(row, col)` listing in the same order). Otherwise returns
    /// `false` **without modifying `self`**, and the caller rebuilds with
    /// `from_sym`. In the DDA open–close loop the contact pattern is
    /// usually stable between iterations, so the solver refreshes values
    /// only instead of re-deriving `rc` / `row-up-i` / `row-low-i` /
    /// `row-low-p` every solve.
    pub fn refill_values(&mut self, m: &SymBlockMatrix) -> bool {
        self.refill_impl(m, None)
    }

    /// [`Hsbcsr::refill_values`] that additionally refreshes the fp32
    /// `shadow` *in the same sweep*: each 6×6 block is read once and
    /// written to both precisions, so keeping the shadow warm adds zero
    /// extra passes over the matrix (and, once the shadow's capacity is
    /// grown, zero allocations). Same pattern-match contract: on `false`
    /// neither `self` nor `shadow` is modified.
    pub fn refill_values_with_shadow(&mut self, m: &SymBlockMatrix, shadow: &mut Hsbcsr32) -> bool {
        self.refill_impl(m, Some(shadow))
    }

    fn refill_impl(&mut self, m: &SymBlockMatrix, shadow: Option<&mut Hsbcsr32>) -> bool {
        if m.n_blocks() != self.n || m.n_upper() != self.n_nd {
            return false;
        }
        // Pattern check first — no partial writes on mismatch.
        for (k, &(r, c, _)) in m.upper.iter().enumerate() {
            if self.rc[k] != ((r as u64) << 32) | c as u64 {
                return false;
            }
        }
        match shadow {
            None => {
                for (i, b) in m.diag.iter().enumerate() {
                    write_sliced(&mut self.d_data, self.pad_d, i, b);
                }
                for (k, (_, _, b)) in m.upper.iter().enumerate() {
                    write_sliced(&mut self.nd_data_up, self.pad_nd, k, b);
                }
            }
            Some(sh) => {
                sh.d_data.resize(self.d_data.len(), 0.0);
                sh.nd_data_up.resize(self.nd_data_up.len(), 0.0);
                for (i, b) in m.diag.iter().enumerate() {
                    write_sliced_both(&mut self.d_data, &mut sh.d_data, self.pad_d, i, b);
                }
                for (k, (_, _, b)) in m.upper.iter().enumerate() {
                    write_sliced_both(&mut self.nd_data_up, &mut sh.nd_data_up, self.pad_nd, k, b);
                }
            }
        }
        true
    }
}

fn pad(n: usize) -> usize {
    n.div_ceil(SLICE_ALIGN) * SLICE_ALIGN
}

fn write_sliced(data: &mut [f64], pad: usize, slot: usize, b: &Block6) {
    for r in 0..6 {
        for c in 0..6 {
            data[Hsbcsr::sliced_index(pad, slot, r, c)] = b.0[r][c];
        }
    }
}

/// One block written to both precisions in the same pass — the fused
/// fp64+fp32 refill sweep.
fn write_sliced_both(data: &mut [f64], data32: &mut [f32], pad: usize, slot: usize, b: &Block6) {
    for r in 0..6 {
        for c in 0..6 {
            let i = Hsbcsr::sliced_index(pad, slot, r, c);
            let v = b.0[r][c];
            data[i] = v;
            data32[i] = v as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, seed: u64) -> SymBlockMatrix {
        SymBlockMatrix::random_spd(n, 3.5, seed)
    }

    #[test]
    fn padding_is_32_aligned() {
        let m = sym(45, 3);
        let h = Hsbcsr::from_sym(&m);
        assert_eq!(h.pad_d % SLICE_ALIGN, 0);
        assert_eq!(h.pad_nd % SLICE_ALIGN, 0);
        assert!(h.pad_d >= h.n);
        assert!(h.pad_nd >= h.n_nd);
        assert_eq!(h.d_data.len(), 36 * h.pad_d);
        assert_eq!(h.nd_data_up.len(), 36 * h.pad_nd);
    }

    #[test]
    fn sliced_layout_roundtrip() {
        let m = sym(10, 9);
        let h = Hsbcsr::from_sym(&m);
        for (k, (_, _, b)) in m.upper.iter().enumerate() {
            assert_eq!(h.nd_block(k), *b, "sub-matrix {k}");
        }
        for (i, d) in m.diag.iter().enumerate() {
            for r in 0..6 {
                for c in 0..6 {
                    assert_eq!(h.d_entry(i, r, c), d.0[r][c]);
                }
            }
        }
    }

    #[test]
    fn slice_is_column_contiguous_across_submatrices() {
        // The whole point of the layout: entry (r, c) of consecutive
        // sub-matrices are adjacent in memory.
        let m = sym(40, 11);
        let h = Hsbcsr::from_sym(&m);
        let i0 = Hsbcsr::sliced_index(h.pad_nd, 0, 3, 2);
        let i1 = Hsbcsr::sliced_index(h.pad_nd, 1, 3, 2);
        assert_eq!(i1, i0 + 1);
        // The next slice (local row) starts a 6·pad_nd stride later.
        let j0 = Hsbcsr::sliced_index(h.pad_nd, 0, 4, 2);
        assert_eq!(j0 - i0, 6 * h.pad_nd);
    }

    #[test]
    fn rc_and_row_indices_consistent() {
        let m = sym(30, 17);
        let h = Hsbcsr::from_sym(&m);
        assert_eq!(h.rc.len(), m.n_upper());
        // Upper listing sorted by (row, col) and row_up_i delimits rows.
        for k in 0..h.n_nd {
            let r = h.row_of(k) as usize;
            let lo = if r == 0 { 0 } else { h.row_up_i[r - 1] } as usize;
            let hi = h.row_up_i[r] as usize;
            assert!(lo <= k && k < hi, "entry {k} outside its row range");
            assert!(h.row_of(k) < h.col_of(k));
        }
        assert_eq!(h.row_up_i[h.n - 1] as usize, h.n_nd);
    }

    #[test]
    fn row_low_p_maps_to_transposed_entries() {
        let m = sym(30, 23);
        let h = Hsbcsr::from_sym(&m);
        assert_eq!(h.row_low_p.len(), h.n_nd);
        assert_eq!(h.row_low_i[h.n - 1] as usize, h.n_nd);
        // For lower row i, every mapped source has col == i.
        for i in 0..h.n {
            let lo = if i == 0 { 0 } else { h.row_low_i[i - 1] } as usize;
            let hi = h.row_low_i[i] as usize;
            for l in lo..hi {
                let k = h.row_low_p[l] as usize;
                assert_eq!(h.col_of(k) as usize, i, "lower entry {l} of row {i}");
            }
        }
        // row_low_p is a permutation.
        let mut seen = vec![false; h.n_nd];
        for &p in &h.row_low_p {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn serial_spmv_matches_reference() {
        for seed in [1u64, 2, 3] {
            let m = sym(25, seed);
            let h = Hsbcsr::from_sym(&m);
            let x: Vec<f64> = (0..m.dim())
                .map(|i| ((i * 31 + 7) % 17) as f64 - 8.0)
                .collect();
            let y_ref = m.mul_vec(&x);
            let y = h.mul_vec_serial(&x);
            for i in 0..m.dim() {
                assert!((y[i] - y_ref[i]).abs() < 1e-9, "seed {seed} i={i}");
            }
        }
    }

    #[test]
    fn empty_upper_triangle() {
        let m = SymBlockMatrix::new(vec![Block6::identity().scale(3.0); 5], vec![]);
        let h = Hsbcsr::from_sym(&m);
        assert_eq!(h.n_nd, 0);
        let x = vec![2.0; 30];
        let y = h.mul_vec_serial(&x);
        assert!(y.iter().all(|&v| (v - 6.0).abs() < 1e-15));
    }

    #[test]
    fn refill_matches_fresh_from_sym() {
        let m1 = sym(30, 41);
        // Same sparsity pattern, different values.
        let mut m2 = m1.clone();
        for b in &mut m2.diag {
            *b = b.scale(1.5);
        }
        for (_, _, b) in &mut m2.upper {
            *b = b.scale(0.25);
        }
        let mut h = Hsbcsr::from_sym(&m1);
        assert!(h.refill_values(&m2));
        let fresh = Hsbcsr::from_sym(&m2);
        assert_eq!(h, fresh, "refilled format must equal a fresh build");
        let x: Vec<f64> = (0..m2.dim()).map(|i| (i as f64 * 0.31).cos()).collect();
        assert_eq!(h.mul_vec_serial(&x), fresh.mul_vec_serial(&x));
    }

    #[test]
    fn refill_rejects_pattern_change_without_partial_writes() {
        let m1 = sym(20, 5);
        let mut h = Hsbcsr::from_sym(&m1);
        let before = h.clone();
        // Different block count.
        assert!(!h.refill_values(&sym(21, 5)));
        // Same size, different pattern (different seed ⇒ different contacts).
        let m3 = sym(20, 6);
        if m3.upper.iter().map(|&(r, c, _)| (r, c)).collect::<Vec<_>>()
            != m1.upper.iter().map(|&(r, c, _)| (r, c)).collect::<Vec<_>>()
        {
            assert!(!h.refill_values(&m3));
        }
        assert_eq!(h, before, "failed refill must leave the format untouched");
    }

    #[test]
    fn shadow_refill_matches_full_demotion() {
        let m1 = sym(25, 51);
        let mut m2 = m1.clone();
        for b in &mut m2.diag {
            *b = b.scale(1.0 + 1.0 / 3.0);
        }
        let mut h = Hsbcsr::from_sym(&m1);
        let mut sh = Hsbcsr32::new();
        assert!(h.refill_values_with_shadow(&m2, &mut sh));
        // The fused sweep must equal a from-scratch demotion of the fp64
        // arrays it wrote.
        let mut fresh = Hsbcsr32::new();
        fresh.refill_from(&h);
        assert_eq!(sh, fresh, "fused shadow refill must equal full demotion");
        assert!(sh.matches(&h));
        assert_eq!(sh.data_bytes() * 2, h.data_bytes());
        // And the fp64 side is untouched by the fusion.
        let mut h_plain = Hsbcsr::from_sym(&m1);
        assert!(h_plain.refill_values(&m2));
        assert_eq!(h, h_plain);
    }

    #[test]
    fn shadow_refill_rejects_pattern_change_without_partial_writes() {
        let m1 = sym(20, 7);
        let mut h = Hsbcsr::from_sym(&m1);
        let mut sh = Hsbcsr32::new();
        assert!(h.refill_values_with_shadow(&m1, &mut sh));
        let h_before = h.clone();
        let sh_before = sh.clone();
        assert!(!h.refill_values_with_shadow(&sym(21, 7), &mut sh));
        assert_eq!(h, h_before);
        assert_eq!(sh, sh_before, "failed refill must leave the shadow intact");
    }

    #[test]
    fn paper_case1_scale_counts() {
        // The paper's Fig 10 matrix: 4361 diagonal and 18731 non-diagonal
        // sub-matrices. Verify the format's memory layout at that scale.
        let n = 4361;
        let m = sym(n, 99);
        let h = Hsbcsr::from_sym(&m);
        assert_eq!(h.n, n);
        assert_eq!(h.pad_d, 4384); // 4361 → next multiple of 32
        assert!(h.data_bytes() > 36 * 8 * n);
    }
}
