//! Low-level geometric predicates.
//!
//! DDA's contact logic ultimately reduces to orientation tests — the paper's
//! "distance judgment" and "angle judgment" steps and the interpenetration
//! check all evaluate signed areas of vertex triples. These helpers keep the
//! conventions (CCW positive) in one place.

use crate::vec2::Vec2;

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive when the triangle winds counter-clockwise, i.e. when `c` lies to
/// the left of the directed line `a → b`. This is the quantity Shi's DDA
/// calls `S0` in the vertex–edge penetration formula: for contact vertex
/// `p1` and contacted edge `p2 → p3`, the normal penetration distance is
/// `orient2d(p2, p3, p1) / |p3 - p2|`.
#[inline]
pub fn orient2d(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Signed area of triangle `(a, b, c)` (half of [`orient2d`]).
#[inline]
pub fn triangle_area(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    0.5 * orient2d(a, b, c)
}

/// True when point `p` lies inside or on the triangle `(a, b, c)` given in
/// CCW order.
pub fn point_in_triangle(p: Vec2, a: Vec2, b: Vec2, c: Vec2) -> bool {
    let eps = -crate::GEOM_EPS;
    orient2d(a, b, p) >= eps && orient2d(b, c, p) >= eps && orient2d(c, a, p) >= eps
}

/// Orientation classification of `c` relative to directed line `a → b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` is to the left (counter-clockwise).
    Left,
    /// `c` is to the right (clockwise).
    Right,
    /// The three points are collinear within tolerance.
    Collinear,
}

/// Classifies the orientation of `c` relative to `a → b` using the global
/// tolerance scaled by the segment length.
pub fn classify_orientation(a: Vec2, b: Vec2, c: Vec2) -> Orientation {
    let d = orient2d(a, b, c);
    let scale = (b - a).norm().max(1.0);
    if d > crate::GEOM_EPS * scale {
        Orientation::Left
    } else if d < -crate::GEOM_EPS * scale {
        Orientation::Right
    } else {
        Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient2d_signs() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        assert!(orient2d(a, b, Vec2::new(0.5, 1.0)) > 0.0);
        assert!(orient2d(a, b, Vec2::new(0.5, -1.0)) < 0.0);
        assert_eq!(orient2d(a, b, Vec2::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn orient2d_is_twice_triangle_area() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(4.0, 0.0);
        let c = Vec2::new(0.0, 3.0);
        assert_eq!(orient2d(a, b, c), 12.0);
        assert_eq!(triangle_area(a, b, c), 6.0);
    }

    #[test]
    fn point_in_triangle_cases() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 0.0);
        let c = Vec2::new(0.0, 2.0);
        assert!(point_in_triangle(Vec2::new(0.5, 0.5), a, b, c));
        assert!(point_in_triangle(a, a, b, c)); // vertex counts
        assert!(point_in_triangle(Vec2::new(1.0, 0.0), a, b, c)); // edge counts
        assert!(!point_in_triangle(Vec2::new(2.0, 2.0), a, b, c));
    }

    #[test]
    fn classify_orientation_tolerance() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(100.0, 0.0);
        assert_eq!(
            classify_orientation(a, b, Vec2::new(50.0, 1.0)),
            Orientation::Left
        );
        assert_eq!(
            classify_orientation(a, b, Vec2::new(50.0, -1.0)),
            Orientation::Right
        );
        assert_eq!(
            classify_orientation(a, b, Vec2::new(50.0, 1e-12)),
            Orientation::Collinear
        );
    }
}
