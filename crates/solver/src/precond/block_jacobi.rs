//! Block-Jacobi preconditioner: `M = blockdiag(A)`.
//!
//! "BJ and Jacobi methods are easy to construct and implement on the GPU"
//! (§II-B): construction inverts every 6×6 diagonal sub-matrix (one thread
//! each, embarrassingly parallel), application is one block-diagonal
//! product. The paper measures 0.059 ms construction / 0.011 ms apply —
//! the cheapest of the three — at the cost of the most iterations (275).

use super::{PrecondError, Preconditioner};
use dda_simt::Device;
use dda_sparse::{Block6, Hsbcsr};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Block-Jacobi preconditioner with precomputed 6×6 inverses.
pub struct BlockJacobi {
    n: usize,
    /// Flat row-major inverses, 36 values per block row.
    dinv: Vec<f64>,
    /// fp32 shadow of `dinv`, written by the same construction launch, so
    /// the mixed solver's inner loop streams the inverses at half the
    /// bytes without a separate demotion pass.
    dinv32: Vec<f32>,
}

impl BlockJacobi {
    /// Inverts the diagonal sub-matrices on the device.
    ///
    /// # Panics
    /// Panics when a diagonal sub-matrix is singular — in DDA the inertia
    /// term guarantees it never is (§IV-A). Use [`BlockJacobi::try_new`]
    /// when the matrix comes from untrusted scene input.
    pub fn new(dev: &Device, m: &Hsbcsr) -> BlockJacobi {
        BlockJacobi::try_new(dev, m)
            .unwrap_or_else(|e| panic!("Block-Jacobi construction failed: {e}"))
    }

    /// Fallible construction: reports the first singular (or non-finite)
    /// diagonal sub-matrix as a structured [`PrecondError`] instead of
    /// panicking inside the construction kernel.
    pub fn try_new(dev: &Device, m: &Hsbcsr) -> Result<BlockJacobi, PrecondError> {
        let mut bj = BlockJacobi {
            n: m.n,
            dinv: vec![0.0f64; 36 * m.n],
            dinv32: vec![0.0f32; 36 * m.n],
        };
        bj.compute(dev, m)?;
        Ok(bj)
    }

    /// Recomputes the inverses in place — the identical single launch as
    /// construction, but reusing the existing allocation. The pipeline's
    /// solver cache calls this every solve, since the diagonal values
    /// change with the contact springs even when the pattern is stable.
    ///
    /// # Panics
    /// Panics on a singular diagonal sub-matrix, like [`BlockJacobi::new`].
    pub fn refactor(&mut self, dev: &Device, m: &Hsbcsr) {
        self.try_refactor(dev, m)
            .unwrap_or_else(|e| panic!("Block-Jacobi refactor failed: {e}"))
    }

    /// Fallible in-place refactor, reporting singular blocks structurally.
    pub fn try_refactor(&mut self, dev: &Device, m: &Hsbcsr) -> Result<(), PrecondError> {
        if self.n != m.n {
            self.n = m.n;
            self.dinv.clear();
            self.dinv.resize(36 * m.n, 0.0);
            self.dinv32.clear();
            self.dinv32.resize(36 * m.n, 0.0);
        }
        self.compute(dev, m)
    }

    fn compute(&mut self, dev: &Device, m: &Hsbcsr) -> Result<(), PrecondError> {
        // Lanes run concurrently, so a failed inverse is flagged through an
        // atomic min (lowest failing block wins) and checked after the
        // launch; the kernel itself never panics on scene data.
        let singular = AtomicUsize::new(usize::MAX);
        {
            let b_d = dev.bind_ro(&m.d_data);
            let b_out = dev.bind(self.dinv.as_mut_slice());
            let b_out32 = dev.bind(self.dinv32.as_mut_slice());
            let pad = m.pad_d;
            let flag = &singular;
            dev.launch("precond.bj.construct", m.n, |lane| {
                let i = lane.gid;
                let mut blk = Block6::ZERO;
                let mut finite = true;
                for r in 0..6 {
                    for c in 0..6 {
                        // Sliced layout: coalesced across threads.
                        let v = lane.ld(&b_d, Hsbcsr::sliced_index(pad, i, r, c));
                        finite &= v.is_finite();
                        blk.0[r][c] = v;
                    }
                }
                // 6×6 Gauss–Jordan ≈ 2·6³ flops.
                lane.flop(430);
                let inv = if finite { blk.inverse() } else { None };
                let out = inv.unwrap_or_else(|| {
                    flag.fetch_min(i, Ordering::Relaxed);
                    Block6::ZERO
                });
                for r in 0..6 {
                    for c in 0..6 {
                        lane.st(&b_out, i * 36 + r * 6 + c, out.0[r][c]);
                        lane.st(&b_out32, i * 36 + r * 6 + c, out.0[r][c] as f32);
                    }
                }
            });
        }
        match singular.load(Ordering::Relaxed) {
            usize::MAX => Ok(()),
            block => Err(PrecondError::SingularBlock { block }),
        }
    }

    /// The inverse of diagonal block `i` (diagnostics/tests).
    pub fn block_inverse(&self, i: usize) -> Block6 {
        let mut b = Block6::ZERO;
        for r in 0..6 {
            for c in 0..6 {
                b.0[r][c] = self.dinv[i * 36 + r * 6 + c];
            }
        }
        b
    }

    /// Raw access for preconditioners that reuse the inverses (SSOR-AI).
    pub(crate) fn dinv(&self) -> &[f64] {
        &self.dinv
    }

    /// Number of block rows.
    pub fn n_blocks(&self) -> usize {
        self.n
    }
}

/// Device kernel: `z_i = Dinv_i · r_i`, one thread per *scalar* row
/// (`6n` threads — six per block — which keeps the kernel occupied even on
/// mid-sized models; one-thread-per-block leaves 5/6 of the device idle).
pub(crate) fn block_diag_apply(
    dev: &Device,
    name: &'static str,
    dinv: &[f64],
    r: &[f64],
) -> Vec<f64> {
    let dim = r.len();
    let mut z = vec![0.0f64; dim];
    {
        let b_dinv = dev.bind_ro(dinv);
        let b_r = dev.bind_ro(r);
        let b_z = dev.bind(&mut z);
        dev.launch(name, dim, |lane| {
            let i = lane.gid / 6;
            let r_ = lane.gid % 6;
            let mut acc = 0.0;
            for c in 0..6 {
                let v = lane.ld(&b_dinv, i * 36 + r_ * 6 + c);
                let rv = lane.ld_tex(&b_r, i * 6 + c);
                lane.flop(2);
                acc += v * rv;
            }
            lane.st(&b_z, lane.gid, acc);
        });
    }
    z
}

impl Preconditioner for BlockJacobi {
    fn name(&self) -> &'static str {
        "BJ"
    }

    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64> {
        assert_eq!(r.len(), self.n * 6);
        block_diag_apply(dev, "precond.bj.apply", &self.dinv, r)
    }

    fn block_diag_inv(&self) -> Option<&[f64]> {
        Some(&self.dinv)
    }

    fn block_diag_inv_f32(&self) -> Option<&[f32]> {
        Some(&self.dinv32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::DeviceProfile;
    use dda_sparse::SymBlockMatrix;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn inverts_diagonal_blocks() {
        let m = SymBlockMatrix::random_spd(10, 2.0, 3);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        for i in 0..10 {
            let prod = m.diag[i].matmul(&bj.block_inverse(i));
            for r in 0..6 {
                for c in 0..6 {
                    let expect = if r == c { 1.0 } else { 0.0 };
                    assert!((prod.0[r][c] - expect).abs() < 1e-9, "block {i} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn apply_is_block_diag_solve() {
        let m = SymBlockMatrix::random_spd(8, 2.0, 9);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let r: Vec<f64> = (0..48).map(|i| (i as f64 * 0.7).cos()).collect();
        let z = bj.apply(&d, &r);
        // D z = r must hold block-wise.
        for i in 0..8 {
            let zi: [f64; 6] = z[i * 6..i * 6 + 6].try_into().unwrap();
            let back = m.diag[i].mul_vec(&zi);
            for c in 0..6 {
                assert!((back[c] - r[i * 6 + c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refactor_matches_fresh_construction() {
        let d = dev();
        let h1 = Hsbcsr::from_sym(&SymBlockMatrix::random_spd(12, 2.0, 3));
        let h2 = Hsbcsr::from_sym(&SymBlockMatrix::random_spd(12, 2.0, 4));
        let mut bj = BlockJacobi::new(&d, &h1);
        bj.refactor(&d, &h2);
        let fresh = BlockJacobi::new(&d, &h2);
        for i in 0..12 {
            assert_eq!(bj.block_inverse(i), fresh.block_inverse(i), "block {i}");
        }
    }

    #[test]
    fn singular_block_reports_structured_error() {
        let mut m = SymBlockMatrix::random_spd(5, 2.0, 6);
        m.diag[3] = Block6::ZERO;
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        assert_eq!(
            BlockJacobi::try_new(&d, &h).err(),
            Some(PrecondError::SingularBlock { block: 3 })
        );
        // Refactor from a healthy factorization hits the same guard.
        let good = Hsbcsr::from_sym(&SymBlockMatrix::random_spd(5, 2.0, 7));
        let mut bj = BlockJacobi::new(&d, &good);
        assert!(bj.try_refactor(&d, &h).is_err());
    }

    #[test]
    fn construction_is_one_launch() {
        let m = SymBlockMatrix::random_spd(20, 2.0, 1);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let _bj = BlockJacobi::new(&d, &h);
        let by = d.trace().by_kernel();
        assert_eq!(by["precond.bj.construct"].0.launches, 1);
        assert_eq!(by.len(), 1, "BJ construction must be a single kernel");
    }
}
