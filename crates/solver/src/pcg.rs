//! Preconditioned conjugate gradients on the simulated device.
//!
//! Standard PCG with the DDA conventions: the iteration cap defaults to 200
//! (the paper shrinks the physical time step when a solve fails to converge
//! within 200 iterations), and callers seed `x0` with the previous step's
//! solution ("the equation solution of the previous step is the initial
//! value of the PCG iterative step", §IV-A).
//!
//! Two drivers share the math:
//!
//! * [`pcg`] — the textbook loop, ~12 launches per iteration (2 SpMV
//!   stages, 2×2 dot stages, 2 norm stages, 2 axpy, 1 apply, 1 xpby);
//! * [`pcg_fused`] — the fused-kernel loop: with a block-diagonal (or
//!   identity) preconditioner each iteration is exactly **5 launches**
//!   (SpMV stage 1, SpMV stage 2 + `p·q` partials, `axpy2norm`,
//!   `precond_rz`, `xpby_beta`); other preconditioners fall back to the
//!   fused BLAS-1 train around an unfused apply. Launch overhead is the
//!   dominant per-iteration fixed cost on the GPU (5 µs each under the
//!   timing model), so the fusion cuts the solver's modeled time directly.
//!   The iterates match the unfused loop except for the `p·q` dot, whose
//!   partials tile by SpMV row block instead of 256-scalar tiles — a
//!   reassociation drift of order 1e-16 relative per iteration.

use crate::precond::Preconditioner;
use crate::traits::MatVec;
use crate::vecops::{
    axpy, axpy_widen, demote, dot, dot_partials_into, dot_partials_into_f32, fused_axpy2_norm,
    fused_axpy2_norm_f32, fused_precond_rz, fused_precond_rz_f32, fused_xpby_beta,
    fused_xpby_beta_f32, norm_sq, promote, reduce_partials, xpby,
};
use dda_simt::{BatchSummary, Device};
use dda_sparse::spmv::{
    spmv_hsbcsr_fused_pq, spmv_hsbcsr_fused_pq_f32v, spmv_hsbcsr_into, SpmvWorkspace, Stage1Smem,
};
use dda_sparse::{Hsbcsr, Hsbcsr32};
use serde::{Deserialize, Serialize};

/// Numeric mode for the fused solver's value streams.
///
/// [`Full`](SolverPrecision::Full) is the historical pure-fp64 path.
/// [`Mixed`](SolverPrecision::Mixed) runs the inner PCG iterations with
/// fp32 *storage* of the matrix values, every iterate vector (`x`, `r`,
/// `z`, `p`, `q`), the SpMV staging arrays, and the Block-Jacobi inverses
/// — halving the bytes of essentially all inner-loop global traffic —
/// while every accumulation, every update scalar, every partial sum, and
/// every index stays fp64, wrapped in an fp64 outer iterative-refinement
/// loop that restores full-precision residuals. When refinement stalls or
/// the inner solve breaks down, [`pcg_fused_mixed`] falls back
/// deterministically to the pure-fp64 solve from the original warm start —
/// bit-identical to what `Full` would have produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverPrecision {
    /// Pure fp64 storage and arithmetic everywhere.
    #[default]
    Full,
    /// fp32-storage/fp64-accumulate inner PCG under fp64 refinement.
    Mixed,
}

impl SolverPrecision {
    /// Short name used in reports and benchmark records.
    pub fn name(self) -> &'static str {
        match self {
            SolverPrecision::Full => "fp64",
            SolverPrecision::Mixed => "mixed",
        }
    }
}

/// PCG controls.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PcgOptions {
    /// Relative residual tolerance: converge when `‖r‖ ≤ tol·‖b‖`.
    pub tol: f64,
    /// Iteration cap (DDA uses 200; on failure the time step is reduced).
    pub max_iters: usize,
}

impl Default for PcgOptions {
    fn default() -> Self {
        PcgOptions {
            tol: 1e-8,
            max_iters: 200,
        }
    }
}

/// Why a PCG solve stopped before meeting its tolerance.
///
/// Historically the `p·q ≤ 0` breakdown guard exited the iteration loop
/// indistinguishably from convergence (the caller only saw
/// `converged = false`, the same as an iteration-cap exit). The pipeline's
/// degradation ladder needs to tell those apart: a cap exit means "shrink
/// Δt and retry", a breakdown means "the operator or preconditioner is
/// unusable — fall back or quarantine".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolveError {
    /// `p·q ≤ 0`: the operator is not positive definite along the current
    /// search direction (CG's invariant is broken).
    IndefiniteOperator {
        /// The offending curvature value `p·q`.
        pq: f64,
        /// Iteration at which the guard tripped (1-based).
        iteration: usize,
    },
    /// A non-finite value contaminated the iteration (NaN/Inf in the
    /// right-hand side, the operator, or the preconditioner output).
    NonFinite {
        /// Iteration at which the contamination was detected (0 = the
        /// inputs were already non-finite before the first iteration).
        iteration: usize,
    },
    /// The preconditioner could not be applied (singular diagonal block in
    /// the serial Block-Jacobi path).
    SingularPreconditioner {
        /// Index of the offending 6×6 diagonal block.
        block: usize,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolveError::IndefiniteOperator { pq, iteration } => {
                write!(
                    f,
                    "indefinite operator: p·q = {pq} at iteration {iteration}"
                )
            }
            SolveError::NonFinite { iteration } => {
                write!(f, "non-finite value at iteration {iteration}")
            }
            SolveError::SingularPreconditioner { block } => {
                write!(f, "singular preconditioner diagonal block {block}")
            }
        }
    }
}

/// Classifies a breakdown curvature value `p·q` into its [`SolveError`].
fn breakdown_reason(pq: f64, iteration: usize) -> SolveError {
    if pq.is_finite() {
        SolveError::IndefiniteOperator { pq, iteration }
    } else {
        SolveError::NonFinite { iteration }
    }
}

/// Outcome of one PCG solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met within the cap.
    pub converged: bool,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Why the solve stopped early, if it broke down. `None` with
    /// `converged = false` means the iteration cap was reached — a normal
    /// Δt-retry situation, not a fault.
    pub error: Option<SolveError>,
}

impl SolveResult {
    /// True when the solve ended in breakdown (as opposed to converging or
    /// merely hitting the iteration cap).
    pub fn broke_down(&self) -> bool {
        self.error.is_some()
    }
}

/// Solves `A x = b` by preconditioned CG, starting from `x0`.
///
/// ```
/// use dda_simt::{Device, DeviceProfile};
/// use dda_solver::precond::BlockJacobi;
/// use dda_solver::traits::HsbcsrMat;
/// use dda_solver::{pcg, PcgOptions};
/// use dda_sparse::{Hsbcsr, SymBlockMatrix};
///
/// let m = SymBlockMatrix::random_spd(20, 3.0, 1);
/// let h = Hsbcsr::from_sym(&m);
/// let b = vec![1.0; m.dim()];
/// let dev = Device::new(DeviceProfile::tesla_k40());
/// let bj = BlockJacobi::new(&dev, &h);
/// let res = pcg(&dev, &HsbcsrMat { m: &h }, &b, &vec![0.0; m.dim()], &bj,
///               PcgOptions::default());
/// assert!(res.converged);
/// ```
pub fn pcg<A: MatVec + ?Sized, P: Preconditioner + ?Sized>(
    dev: &Device,
    a: &A,
    b: &[f64],
    x0: &[f64],
    m: &P,
    opts: PcgOptions,
) -> SolveResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    assert_eq!(x0.len(), n, "initial guess dimension mismatch");

    let b_norm_sq = norm_sq(dev, b);
    if !b_norm_sq.is_finite() {
        // NaN/Inf already in the right-hand side: no iteration can help.
        return SolveResult {
            x: x0.to_vec(),
            iterations: 0,
            converged: false,
            residual: f64::NAN,
            error: Some(SolveError::NonFinite { iteration: 0 }),
        };
    }
    let threshold_sq = if b_norm_sq > 0.0 {
        opts.tol * opts.tol * b_norm_sq
    } else {
        opts.tol * opts.tol
    };

    let mut x = x0.to_vec();
    // r = b − A x
    let ax = a.apply(dev, &x);
    let mut r = b.to_vec();
    axpy(dev, -1.0, &ax, &mut r);

    let mut r_norm_sq = norm_sq(dev, &r);
    if r_norm_sq <= threshold_sq {
        return SolveResult {
            x,
            iterations: 0,
            converged: true,
            residual: r_norm_sq.sqrt(),
            error: None,
        };
    }

    let mut z = m.apply(dev, &r);
    let mut p = z.clone();
    let mut rz = dot(dev, &r, &z);

    let mut iterations = 0;
    let mut converged = false;
    let mut error = None;
    while iterations < opts.max_iters {
        iterations += 1;
        let q = a.apply(dev, &p);
        let pq = dot(dev, &p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            // Indefinite or broken operator — bail with the current
            // iterate, reporting why so the caller can tell this apart
            // from an iteration-cap exit.
            error = Some(breakdown_reason(pq, iterations));
            break;
        }
        let alpha = rz / pq;
        axpy(dev, alpha, &p, &mut x);
        axpy(dev, -alpha, &q, &mut r);
        r_norm_sq = norm_sq(dev, &r);
        if r_norm_sq <= threshold_sq {
            converged = true;
            break;
        }
        z = m.apply(dev, &r);
        let rz_new = dot(dev, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p ← z + β p
        xpby(dev, &z, beta, &mut p);
    }

    SolveResult {
        x,
        iterations,
        converged,
        residual: r_norm_sq.max(0.0).sqrt(),
        error,
    }
}

/// Persistent state for [`pcg_fused`]: the SpMV workspace plus every
/// iteration vector and partial-sum buffer. Holding one workspace across
/// solves makes the fused solver's steady state allocation-free (the
/// returned solution is the only per-solve allocation).
#[derive(Debug, Default)]
pub struct PcgWorkspace {
    spmv: SpmvWorkspace,
    q: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    x: Vec<f64>,
    norm_partials: Vec<f64>,
    rz_partials: Vec<f64>,
    // Outer-loop state of the mixed-precision refinement driver; kept
    // apart from the inner-solve vectors above.
    outer_x: Vec<f64>,
    outer_r: Vec<f64>,
    // fp32 iterate vectors of the mixed driver's inner correction solves
    // ([`pcg_fused_core32`]); empty until the first Mixed solve.
    x32: Vec<f32>,
    r32: Vec<f32>,
    z32: Vec<f32>,
    p32: Vec<f32>,
    q32: Vec<f32>,
}

impl PcgWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> PcgWorkspace {
        PcgWorkspace::default()
    }
}

/// Fused-kernel PCG on an HSBCSR operator: with a Block-Jacobi or identity
/// preconditioner each iteration is exactly five launches; see the module
/// docs for the launch map and the (tiny, documented) `p·q` reassociation
/// relative to [`pcg`].
///
/// ```
/// use dda_simt::{Device, DeviceProfile};
/// use dda_solver::precond::BlockJacobi;
/// use dda_solver::{pcg_fused, PcgOptions, PcgWorkspace};
/// use dda_sparse::{Hsbcsr, SymBlockMatrix};
///
/// let m = SymBlockMatrix::random_spd(20, 3.0, 1);
/// let h = Hsbcsr::from_sym(&m);
/// let b = vec![1.0; m.dim()];
/// let dev = Device::new(DeviceProfile::tesla_k40());
/// let bj = BlockJacobi::new(&dev, &h);
/// let mut ws = PcgWorkspace::new();
/// let res = pcg_fused(&dev, &h, &b, &vec![0.0; m.dim()], &bj,
///                     PcgOptions::default(), &mut ws);
/// assert!(res.converged);
/// ```
pub fn pcg_fused<P: Preconditioner + ?Sized>(
    dev: &Device,
    h: &Hsbcsr,
    b: &[f64],
    x0: &[f64],
    m: &P,
    opts: PcgOptions,
    ws: &mut PcgWorkspace,
) -> SolveResult {
    pcg_fused_core(dev, h, b, x0, m, opts, ws)
}

/// The fused fp64 iteration behind [`pcg_fused`] — bit-identical to the
/// historical path (the mixed driver's fp32 inner solves live in their own
/// sibling, [`pcg_fused_core32`], precisely so this one never changes).
fn pcg_fused_core<P: Preconditioner + ?Sized>(
    dev: &Device,
    h: &Hsbcsr,
    b: &[f64],
    x0: &[f64],
    m: &P,
    opts: PcgOptions,
    ws: &mut PcgWorkspace,
) -> SolveResult {
    let n = h.n * 6;
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    assert_eq!(x0.len(), n, "initial guess dimension mismatch");

    let b_norm_sq = norm_sq(dev, b);
    if !b_norm_sq.is_finite() {
        // NaN/Inf already in the right-hand side: no iteration can help.
        return SolveResult {
            x: x0.to_vec(),
            iterations: 0,
            converged: false,
            residual: f64::NAN,
            error: Some(SolveError::NonFinite { iteration: 0 }),
        };
    }
    let threshold_sq = if b_norm_sq > 0.0 {
        opts.tol * opts.tol * b_norm_sq
    } else {
        opts.tol * opts.tol
    };

    ws.x.clear();
    ws.x.extend_from_slice(x0);
    // r = b − A x (setup launches; the 5-launch budget is per iteration).
    ws.q.clear();
    ws.q.resize(n, 0.0);
    spmv_hsbcsr_into(dev, h, &ws.x, Stage1Smem::Proposed, &mut ws.spmv, &mut ws.q);
    ws.r.clear();
    ws.r.extend_from_slice(b);
    axpy(dev, -1.0, &ws.q, &mut ws.r);

    let mut r_norm_sq = norm_sq(dev, &ws.r);
    if r_norm_sq <= threshold_sq {
        return SolveResult {
            x: ws.x.clone(),
            iterations: 0,
            converged: true,
            residual: r_norm_sq.sqrt(),
            error: None,
        };
    }

    let z0 = m.apply(dev, &ws.r);
    ws.z.clear();
    ws.z.extend_from_slice(&z0);
    ws.p.clear();
    ws.p.extend_from_slice(&ws.z);
    let mut rz = dot(dev, &ws.r, &ws.z);

    let dinv = m.block_diag_inv();
    let fast_precond = dinv.is_some() || m.is_identity();

    let mut iterations = 0;
    let mut converged = false;
    let mut error = None;
    while iterations < opts.max_iters {
        iterations += 1;
        // Launches 1–2: q = A p with per-row-block p·q partials fused into
        // SpMV stage 2.
        spmv_hsbcsr_fused_pq(dev, h, &ws.p, Stage1Smem::Proposed, &mut ws.spmv, &mut ws.q);
        // Launch 3: α from the partials (device-guarded), x and r updates,
        // ‖r‖² tile partials.
        let pq = fused_axpy2_norm(
            dev,
            &ws.spmv.pq_partials,
            rz,
            &ws.p,
            &ws.q,
            &mut ws.x,
            &mut ws.r,
            &mut ws.norm_partials,
        );
        if pq <= 0.0 || !pq.is_finite() {
            // Indefinite or broken operator — the kernel left x and r
            // untouched; bail with the current iterate and a reason.
            error = Some(breakdown_reason(pq, iterations));
            break;
        }
        if fast_precond {
            // Launch 4: ‖r‖² reduce + z = D⁻¹r (or z = r) + r·z partials.
            r_norm_sq = fused_precond_rz(
                dev,
                dinv,
                &ws.r,
                &mut ws.z,
                &ws.norm_partials,
                &mut ws.rz_partials,
            );
            if r_norm_sq <= threshold_sq {
                converged = true;
                break;
            }
            // Launch 5: β from the partials, p ← z + β p.
            rz = fused_xpby_beta(dev, &ws.rz_partials, rz, &ws.z, &mut ws.p);
        } else {
            // Fallback: fused BLAS-1 around an unfused preconditioner
            // apply (SSOR/ILU applies are not single block-diagonal
            // products).
            r_norm_sq = reduce_partials(dev, &ws.norm_partials);
            if r_norm_sq <= threshold_sq {
                converged = true;
                break;
            }
            let z = m.apply(dev, &ws.r);
            ws.z.clear();
            ws.z.extend_from_slice(&z);
            dot_partials_into(dev, &ws.r, &ws.z, &mut ws.rz_partials);
            rz = fused_xpby_beta(dev, &ws.rz_partials, rz, &ws.z, &mut ws.p);
        }
    }

    SolveResult {
        x: ws.x.clone(),
        iterations,
        converged,
        residual: r_norm_sq.max(0.0).sqrt(),
        error,
    }
}

/// How an fp32 inner correction solve ended; the solution itself stays in
/// `ws.x32` (fp32 — it folds into the fp64 outer iterate via
/// [`axpy_widen`] without ever materialising an fp64 copy).
struct InnerOutcome {
    iterations: usize,
    error: Option<SolveError>,
}

impl InnerOutcome {
    fn broke_down(&self) -> bool {
        self.error.is_some()
    }
}

/// The fp32 inner iteration of [`pcg_fused_mixed`]: solves `A₃₂ δ = r`
/// from zero with every iterate vector stored fp32, so SpMV values,
/// staging arrays, vectors, *and* the Block-Jacobi inverses all stream at
/// half the bytes. Every accumulation, update scalar, and partial-sum
/// buffer stays fp64 (the fp32-storage/fp64-accumulate contract).
///
/// A deliberate line-for-line sibling of [`pcg_fused_core`] rather than a
/// generic instantiation, so the fp64 path stays literally untouched and
/// trivially bit-identical. Two structural differences: `x0` is always
/// zero, so the setup SpMV of the general core (whose `A·0` is exactly
/// zero) collapses to one demotion launch; and `b_norm_sq` arrives from
/// the caller, whose outer residual norm *is* `‖b‖²` here — recomputing it
/// would waste a launch.
#[deny(clippy::float_cmp)]
#[allow(clippy::too_many_arguments)]
fn pcg_fused_core32<P: Preconditioner + ?Sized>(
    dev: &Device,
    h: &Hsbcsr,
    h32: &Hsbcsr32,
    b: &[f64],
    b_norm_sq: f64,
    m: &P,
    opts: PcgOptions,
    ws: &mut PcgWorkspace,
) -> InnerOutcome {
    let n = h.n * 6;
    assert_eq!(b.len(), n, "rhs dimension mismatch");

    ws.x32.clear();
    ws.x32.resize(n, 0.0);
    if !b_norm_sq.is_finite() {
        return InnerOutcome {
            iterations: 0,
            error: Some(SolveError::NonFinite { iteration: 0 }),
        };
    }
    let threshold_sq = if b_norm_sq > 0.0 {
        opts.tol * opts.tol * b_norm_sq
    } else {
        opts.tol * opts.tol
    };

    // x = 0 ⇒ r = b, demoted once.
    demote(dev, b, &mut ws.r32);
    let mut r_norm_sq = b_norm_sq;
    if r_norm_sq <= threshold_sq {
        return InnerOutcome {
            iterations: 0,
            error: None,
        };
    }

    let dinv32 = m.block_diag_inv_f32();
    let fast_precond = dinv32.is_some() || m.is_identity();

    // z₀ = M⁻¹ r and rz₀ = r·z (the fast path reuses the fused kernel so
    // z and the r·z partials cost one launch, plus the final reduce).
    ws.z32.clear();
    ws.z32.resize(n, 0.0);
    if fast_precond {
        fused_precond_rz_f32(dev, dinv32, &ws.r32, &mut ws.z32, &[], &mut ws.rz_partials);
    } else {
        promote(dev, &ws.r32, &mut ws.q);
        let z = m.apply(dev, &ws.q);
        demote(dev, &z, &mut ws.z32);
        dot_partials_into_f32(dev, &ws.r32, &ws.z32, &mut ws.rz_partials);
    }
    let mut rz = reduce_partials(dev, &ws.rz_partials);
    ws.p32.clear();
    ws.p32.extend_from_slice(&ws.z32);
    ws.q32.clear();
    ws.q32.resize(n, 0.0);

    let mut iterations = 0;
    let mut error = None;
    while iterations < opts.max_iters {
        iterations += 1;
        // Launches 1–2: q = A₃₂ p, fully-fp32 streams, fused p·q partials.
        spmv_hsbcsr_fused_pq_f32v(
            dev,
            h,
            h32,
            &ws.p32,
            Stage1Smem::Proposed,
            &mut ws.spmv,
            &mut ws.q32,
        );
        // Launch 3: α, x/r updates, ‖r‖² partials — fp32 storage twin.
        let pq = fused_axpy2_norm_f32(
            dev,
            &ws.spmv.pq_partials,
            rz,
            &ws.p32,
            &ws.q32,
            &mut ws.x32,
            &mut ws.r32,
            &mut ws.norm_partials,
        );
        if pq <= 0.0 || !pq.is_finite() {
            error = Some(breakdown_reason(pq, iterations));
            break;
        }
        if fast_precond {
            // Launch 4: ‖r‖² reduce + z = D⁻¹r (fp32 inverses) + r·z.
            r_norm_sq = fused_precond_rz_f32(
                dev,
                dinv32,
                &ws.r32,
                &mut ws.z32,
                &ws.norm_partials,
                &mut ws.rz_partials,
            );
            if r_norm_sq <= threshold_sq {
                break;
            }
            // Launch 5: β, p ← z + β p.
            rz = fused_xpby_beta_f32(dev, &ws.rz_partials, rz, &ws.z32, &mut ws.p32);
        } else {
            // Fallback: promote/demote bridge around the fp64 apply
            // (SSOR/ILU0/AMG2 kernels stay fp64; those rungs pay the
            // bridge traffic honestly).
            r_norm_sq = reduce_partials(dev, &ws.norm_partials);
            if r_norm_sq <= threshold_sq {
                break;
            }
            promote(dev, &ws.r32, &mut ws.q);
            let z = m.apply(dev, &ws.q);
            demote(dev, &z, &mut ws.z32);
            dot_partials_into_f32(dev, &ws.r32, &ws.z32, &mut ws.rz_partials);
            rz = fused_xpby_beta_f32(dev, &ws.rz_partials, rz, &ws.z32, &mut ws.p32);
        }
    }

    InnerOutcome { iterations, error }
}

/// Inner-loop relative tolerance for the fp32 correction solves: tighter
/// buys nothing (fp32 matrix storage bounds the attainable inner accuracy),
/// looser wastes outer passes.
const MIXED_INNER_TOL: f64 = 1e-4;

/// Each outer refinement pass must shrink the fp64 residual norm by at
/// least this factor, or the fp32 corrections have hit their precision
/// floor and the driver falls back to pure fp64.
const MIXED_MIN_DROP: f64 = 0.5;

/// Mixed-precision fused PCG: fp32-storage/fp64-accumulate inner solves
/// under an fp64 iterative-refinement outer loop.
///
/// Each outer pass computes the full-precision residual `r = b − A₆₄x`,
/// tests the *same* convergence criterion as [`pcg_fused`]
/// (`‖r‖ ≤ tol·‖b‖`, so a converged mixed solve meets the pure-fp64
/// tolerance by construction), then solves the correction system
/// `A₃₂ δ = r` from zero with the fp32 value streams and adds `δ` back in
/// fp64. Inner iterations draw on the shared `opts.max_iters` budget, so
/// the iteration count in the result is comparable with the pure path.
///
/// **Deterministic fallback:** when an inner solve breaks down, the outer
/// residual goes non-finite, or a pass fails to shrink `‖r‖` by
/// [`MIXED_MIN_DROP`], the driver discards the refinement state and reruns
/// [`pcg_fused`] in pure fp64 from the original `x0` — the result is then
/// bit-identical to what [`SolverPrecision::Full`] would have produced,
/// including its structured [`SolveError`]. Fault quarantine therefore
/// behaves identically under both precisions.
#[deny(clippy::float_cmp)]
#[allow(clippy::too_many_arguments)]
pub fn pcg_fused_mixed<P: Preconditioner + ?Sized>(
    dev: &Device,
    h: &Hsbcsr,
    h32: &Hsbcsr32,
    b: &[f64],
    x0: &[f64],
    m: &P,
    opts: PcgOptions,
    ws: &mut PcgWorkspace,
) -> SolveResult {
    let n = h.n * 6;
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    assert_eq!(x0.len(), n, "initial guess dimension mismatch");
    assert!(h32.matches(h), "fp32 shadow out of sync with its Hsbcsr");

    let b_norm_sq = norm_sq(dev, b);
    if !b_norm_sq.is_finite() {
        // Same early rejection as the pure path — bit-identical outcome.
        return SolveResult {
            x: x0.to_vec(),
            iterations: 0,
            converged: false,
            residual: f64::NAN,
            error: Some(SolveError::NonFinite { iteration: 0 }),
        };
    }
    let threshold_sq = if b_norm_sq > 0.0 {
        opts.tol * opts.tol * b_norm_sq
    } else {
        opts.tol * opts.tol
    };

    // The inner solves reuse the workspace wholesale, so the outer state
    // is moved out for the duration of the refinement.
    let mut outer_x = std::mem::take(&mut ws.outer_x);
    let mut outer_r = std::mem::take(&mut ws.outer_r);
    let refined = refine_mixed(
        dev,
        h,
        h32,
        b,
        x0,
        m,
        opts,
        threshold_sq,
        ws,
        &mut outer_x,
        &mut outer_r,
    );
    ws.outer_x = outer_x;
    ws.outer_r = outer_r;
    match refined {
        Some(res) => res,
        // Deterministic fallback: rerun pure fp64 from the original warm
        // start, bit-identical to `SolverPrecision::Full`.
        None => pcg_fused(dev, h, b, x0, m, opts, ws),
    }
}

/// The refinement loop of [`pcg_fused_mixed`]. `None` means "fall back to
/// pure fp64": the inner solve broke down, the outer residual went
/// non-finite, or a pass stalled.
#[allow(clippy::too_many_arguments)]
fn refine_mixed<P: Preconditioner + ?Sized>(
    dev: &Device,
    h: &Hsbcsr,
    h32: &Hsbcsr32,
    b: &[f64],
    x0: &[f64],
    m: &P,
    opts: PcgOptions,
    threshold_sq: f64,
    ws: &mut PcgWorkspace,
    outer_x: &mut Vec<f64>,
    outer_r: &mut Vec<f64>,
) -> Option<SolveResult> {
    outer_x.clear();
    outer_x.extend_from_slice(x0);

    // Full-precision residual r = b − A₆₄ x (fp64 streams).
    let mut r_norm_sq = outer_residual(dev, h, b, outer_x, ws, outer_r);
    if r_norm_sq <= threshold_sq {
        return Some(SolveResult {
            x: outer_x.clone(),
            iterations: 0,
            converged: true,
            residual: r_norm_sq.max(0.0).sqrt(),
            error: None,
        });
    }

    let mut iterations = 0;
    while iterations < opts.max_iters {
        // Correction solve A₃₂ δ = r from zero, on the remaining budget.
        let inner_opts = PcgOptions {
            tol: MIXED_INNER_TOL,
            max_iters: opts.max_iters - iterations,
        };
        let inner = pcg_fused_core32(dev, h, h32, outer_r, r_norm_sq, m, inner_opts, ws);
        iterations += inner.iterations.max(1);
        if inner.broke_down() {
            return None;
        }
        // x ← x + δ (the fp32 correction lives in ws.x32 after the core
        // call; the fold-in widens on the fly).
        axpy_widen(dev, &ws.x32, outer_x);
        // Refresh the full-precision residual and retest convergence.
        let new_norm_sq = outer_residual(dev, h, b, outer_x, ws, outer_r);
        if !new_norm_sq.is_finite() {
            return None;
        }
        if new_norm_sq <= threshold_sq {
            return Some(SolveResult {
                x: outer_x.clone(),
                iterations,
                converged: true,
                residual: new_norm_sq.max(0.0).sqrt(),
                error: None,
            });
        }
        if new_norm_sq > MIXED_MIN_DROP * MIXED_MIN_DROP * r_norm_sq {
            // Stalled: fp32 corrections no longer move the fp64 residual.
            return None;
        }
        r_norm_sq = new_norm_sq;
    }

    // Budget exhausted without breakdown — a normal Δt-retry exit, the
    // same contract as the pure-fp64 iteration cap.
    Some(SolveResult {
        x: outer_x.clone(),
        iterations,
        converged: false,
        residual: r_norm_sq.max(0.0).sqrt(),
        error: None,
    })
}

/// `outer_r ← b − A₆₄·x`, returning `‖outer_r‖²` — the fp64 half of every
/// refinement pass (two SpMV stages, one axpy, one norm).
fn outer_residual(
    dev: &Device,
    h: &Hsbcsr,
    b: &[f64],
    x: &[f64],
    ws: &mut PcgWorkspace,
    outer_r: &mut Vec<f64>,
) -> f64 {
    let n = h.n * 6;
    ws.q.clear();
    ws.q.resize(n, 0.0);
    spmv_hsbcsr_into(dev, h, x, Stage1Smem::Proposed, &mut ws.spmv, &mut ws.q);
    outer_r.clear();
    outer_r.extend_from_slice(b);
    axpy(dev, -1.0, &ws.q, outer_r);
    norm_sq(dev, outer_r)
}

/// One scene's system inside a batched PCG call: the same inputs
/// [`pcg_fused`] takes, bundled so [`pcg_fused_batch`] can iterate over
/// scenes while each keeps its own matrix, preconditioner and workspace.
pub struct PcgBatchEntry<'a> {
    /// Scene operator in HSBCSR form.
    pub h: &'a Hsbcsr,
    /// fp32 value shadow of `h`; required when `precision` is
    /// [`SolverPrecision::Mixed`], ignored otherwise.
    pub h32: Option<&'a Hsbcsr32>,
    /// Right-hand side.
    pub b: &'a [f64],
    /// Warm-start iterate.
    pub x0: &'a [f64],
    /// Preconditioner (Block-Jacobi rides the 5-launch fast path).
    pub m: &'a dyn Preconditioner,
    /// Per-scene tolerance and iteration cap.
    pub opts: PcgOptions,
    /// Numeric mode for this scene's solve.
    pub precision: SolverPrecision,
    /// The scene's persistent workspace.
    pub ws: &'a mut PcgWorkspace,
}

/// Batched fused PCG over N independent systems on one device.
///
/// Each scene's solve runs the exact [`pcg_fused`] (or, for
/// [`SolverPrecision::Mixed`] entries, [`pcg_fused_mixed`]) code path —
/// results are bit-identical to solo solves under the same precision mode
/// — inside a device batch region that merges
/// iteration *k*'s five kernels across scenes into five batched launches
/// (the masked lockstep a real multi-scene kernel would execute; see
/// `dda_simt::batch`). A scene that converges early stops contributing to
/// later groups, so the batch drains gracefully. Returns the per-scene
/// results in input order plus the region's launch/time accounting.
pub fn pcg_fused_batch(
    dev: &Device,
    entries: &mut [PcgBatchEntry<'_>],
) -> (Vec<SolveResult>, BatchSummary) {
    if entries.is_empty() {
        return (Vec::new(), BatchSummary::default());
    }
    dev.batch_begin(entries.len());
    let mut results = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter_mut().enumerate() {
        dev.batch_segment(i);
        results.push(match e.precision {
            SolverPrecision::Full => pcg_fused(dev, e.h, e.b, e.x0, e.m, e.opts, e.ws),
            SolverPrecision::Mixed => {
                let h32 = e.h32.expect("Mixed batch entries carry an fp32 shadow");
                pcg_fused_mixed(dev, e.h, h32, e.b, e.x0, e.m, e.opts, e.ws)
            }
        });
    }
    let summary = dev.batch_end();
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{BlockJacobi, Identity, Ilu0, SsorAi};
    use crate::traits::{CsrVectorMat, HsbcsrMat};
    use dda_simt::DeviceProfile;
    use dda_sparse::{Csr, Hsbcsr, SymBlockMatrix};

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40())
    }

    fn problem(n: usize, seed: u64) -> (SymBlockMatrix, Vec<f64>) {
        let m = SymBlockMatrix::random_spd(n, 3.0, seed);
        let b: Vec<f64> = (0..m.dim())
            .map(|i| ((i * 7 + 3) % 19) as f64 - 9.0)
            .collect();
        (m, b)
    }

    fn check_solution(m: &SymBlockMatrix, b: &[f64], res: &SolveResult, tol: f64) {
        assert!(res.converged, "did not converge: {} iters", res.iterations);
        let ax = m.mul_vec(&res.x);
        let err: f64 = ax
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err <= tol * bn * 10.0, "residual {err} too large vs {bn}");
    }

    #[test]
    fn plain_cg_converges() {
        let (m, b) = problem(15, 1);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let res = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions::default(),
        );
        check_solution(&m, &b, &res, 1e-8);
    }

    #[test]
    fn bj_reduces_iterations() {
        let (m, b) = problem(40, 2);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let none = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions::default(),
        );
        let bj = BlockJacobi::new(&d, &h);
        let with_bj = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &bj,
            PcgOptions::default(),
        );
        check_solution(&m, &b, &with_bj, 1e-8);
        assert!(
            with_bj.iterations <= none.iterations,
            "BJ {} vs none {}",
            with_bj.iterations,
            none.iterations
        );
    }

    #[test]
    fn preconditioner_iteration_ordering_matches_paper() {
        // Table I ordering: ILU ≤ SSOR ≤ BJ in iteration count.
        let (m, b) = problem(60, 3);
        let h = Hsbcsr::from_sym(&m);
        let csr = Csr::from_sym_full(&m);
        let d = dev();
        let opts = PcgOptions {
            tol: 1e-10,
            max_iters: 500,
        };
        let x0 = vec![0.0; m.dim()];

        let bj = BlockJacobi::new(&d, &h);
        let r_bj = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &bj, opts);
        let ssor = SsorAi::new(&d, &h, 1.0);
        let r_ssor = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &ssor, opts);
        let ilu = Ilu0::new(&d, &csr);
        let r_ilu = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &ilu, opts);

        check_solution(&m, &b, &r_bj, 1e-10);
        check_solution(&m, &b, &r_ssor, 1e-10);
        check_solution(&m, &b, &r_ilu, 1e-10);
        assert!(
            r_ilu.iterations <= r_ssor.iterations,
            "ILU {} vs SSOR {}",
            r_ilu.iterations,
            r_ssor.iterations
        );
        assert!(
            r_ssor.iterations <= r_bj.iterations,
            "SSOR {} vs BJ {}",
            r_ssor.iterations,
            r_bj.iterations
        );
    }

    #[test]
    fn warm_start_converges_faster() {
        // The DDA trick: seeding with (nearly) the solution of the previous
        // step slashes iterations.
        let (m, b) = problem(30, 4);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let cold = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions::default(),
        );
        // Perturbed solution as warm start.
        let warm_x0: Vec<f64> = cold.x.iter().map(|v| v * 1.001).collect();
        let warm = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &warm_x0,
            &Identity,
            PcgOptions::default(),
        );
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn zero_rhs_converges_immediately_from_zero() {
        let (m, _) = problem(5, 5);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let res = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &vec![0.0; m.dim()],
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions::default(),
        );
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn iteration_cap_respected() {
        let (m, b) = problem(50, 6);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let res = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions {
                tol: 1e-30,
                max_iters: 3,
            },
        );
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn fused_agrees_with_unfused_bj() {
        // The tentpole's correctness bar: same iteration count, solutions
        // within 1e-10 (the only reassociation is the p·q tiling).
        let (m, b) = problem(50, 11);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let x0 = vec![0.0; m.dim()];
        let opts = PcgOptions::default();

        let unfused = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &bj, opts);
        let mut ws = PcgWorkspace::new();
        let fused = pcg_fused(&d, &h, &b, &x0, &bj, opts, &mut ws);

        assert!(fused.converged);
        assert_eq!(
            fused.iterations, unfused.iterations,
            "fused {} vs unfused {} iterations",
            fused.iterations, unfused.iterations
        );
        let scale = unfused.x.iter().fold(1.0f64, |a, v| a.max(v.abs()));
        for i in 0..m.dim() {
            assert!(
                (fused.x[i] - unfused.x[i]).abs() <= 1e-10 * scale,
                "i={i}: fused {} vs unfused {}",
                fused.x[i],
                unfused.x[i]
            );
        }
    }

    #[test]
    fn fused_agrees_with_unfused_identity_and_ssor() {
        let (m, b) = problem(40, 13);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let x0 = vec![0.0; m.dim()];
        let opts = PcgOptions::default();
        let mut ws = PcgWorkspace::new();

        // Identity rides the 5-launch fast path.
        let u1 = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &Identity, opts);
        let f1 = pcg_fused(&d, &h, &b, &x0, &Identity, opts, &mut ws);
        assert_eq!(f1.iterations, u1.iterations);

        // SSOR rides the fallback path (fused BLAS-1, unfused apply).
        let ssor = SsorAi::new(&d, &h, 1.0);
        let u2 = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &ssor, opts);
        let f2 = pcg_fused(&d, &h, &b, &x0, &ssor, opts, &mut ws);
        assert_eq!(f2.iterations, u2.iterations);
        for (res, reference) in [(&f1, &u1), (&f2, &u2)] {
            assert!(res.converged);
            let scale = reference.x.iter().fold(1.0f64, |a, v| a.max(v.abs()));
            for i in 0..m.dim() {
                assert!((res.x[i] - reference.x[i]).abs() <= 1e-10 * scale);
            }
        }
    }

    #[test]
    fn fused_bj_iteration_costs_at_most_five_launches() {
        // The launch-budget regression test: run the same unconverging
        // solve at two iteration caps and divide the launch-count delta by
        // the iteration delta — setup launches cancel exactly.
        let (m, b) = problem(60, 17);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let x0 = vec![0.0; m.dim()];
        let tight = PcgOptions {
            tol: 1e-30,
            max_iters: 4,
        };
        let looser = PcgOptions {
            tol: 1e-30,
            max_iters: 12,
        };
        let mut ws = PcgWorkspace::new();

        d.reset_trace();
        let r1 = pcg_fused(&d, &h, &b, &x0, &bj, tight, &mut ws);
        let l1 = d.trace().records.len();
        d.reset_trace();
        let r2 = pcg_fused(&d, &h, &b, &x0, &bj, looser, &mut ws);
        let l2 = d.trace().records.len();

        assert_eq!(r1.iterations, 4);
        assert_eq!(r2.iterations, 12);
        let per_iter = (l2 - l1) as f64 / (r2.iterations - r1.iterations) as f64;
        assert!(
            per_iter <= 5.0,
            "fused PCG spends {per_iter} launches/iteration (budget 5)"
        );

        // And the unfused loop really is much heavier — the fusion matters.
        d.reset_trace();
        let u1 = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &bj, tight);
        let ul1 = d.trace().records.len();
        d.reset_trace();
        let u2 = pcg(&d, &HsbcsrMat { m: &h }, &b, &x0, &bj, looser);
        let ul2 = d.trace().records.len();
        let unfused_per_iter = (ul2 - ul1) as f64 / (u2.iterations - u1.iterations) as f64;
        assert!(
            unfused_per_iter >= 2.0 * per_iter,
            "unfused {unfused_per_iter} vs fused {per_iter} launches/iteration"
        );
    }

    #[test]
    fn fused_breakdown_bails_with_current_iterate() {
        // An indefinite operator trips the device-side pq ≤ 0 guard; the
        // fused loop must stop without corrupting x, like the unfused one.
        let m = SymBlockMatrix::random_spd(10, 2.0, 19);
        let mut neg = m.clone();
        for bdiag in &mut neg.diag {
            *bdiag = bdiag.scale(-1.0);
        }
        for (_, _, bu) in &mut neg.upper {
            *bu = bu.scale(-1.0);
        }
        let h = Hsbcsr::from_sym(&neg);
        let d = dev();
        let b: Vec<f64> = (0..neg.dim()).map(|i| (i as f64 * 0.3).sin()).collect();
        let x0 = vec![0.0; neg.dim()];
        let mut ws = PcgWorkspace::new();
        let unfused = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &x0,
            &Identity,
            PcgOptions::default(),
        );
        let fused = pcg_fused(&d, &h, &b, &x0, &Identity, PcgOptions::default(), &mut ws);
        assert!(!fused.converged);
        assert_eq!(fused.iterations, unfused.iterations);
        assert_eq!(fused.x, unfused.x, "breakdown must not corrupt the iterate");
    }

    #[test]
    fn breakdown_is_distinguishable_from_iteration_cap() {
        // An SPD matrix perturbed to indefiniteness (one diagonal block
        // flipped) must report `IndefiniteOperator`, not just a bare
        // `converged = false` — a cap exit must stay reason-less.
        let m = SymBlockMatrix::random_spd(12, 2.0, 41);
        let mut indef = m.clone();
        indef.diag[3] = indef.diag[3].scale(-40.0);
        let h = Hsbcsr::from_sym(&indef);
        let d = dev();
        let b: Vec<f64> = (0..indef.dim()).map(|i| (i as f64 * 0.7).cos()).collect();
        let x0 = vec![0.0; indef.dim()];
        let mut ws = PcgWorkspace::new();

        let unfused = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &x0,
            &Identity,
            PcgOptions::default(),
        );
        let fused = pcg_fused(&d, &h, &b, &x0, &Identity, PcgOptions::default(), &mut ws);
        for res in [&unfused, &fused] {
            assert!(!res.converged);
            assert!(res.broke_down());
            match res.error {
                Some(SolveError::IndefiniteOperator { pq, iteration }) => {
                    assert!(pq <= 0.0, "reported curvature must be non-positive: {pq}");
                    assert!(iteration >= 1);
                }
                other => panic!("expected IndefiniteOperator, got {other:?}"),
            }
        }

        // Iteration-cap exit: converged = false but *no* error.
        let (spd, b2) = problem(30, 42);
        let h2 = Hsbcsr::from_sym(&spd);
        let capped = pcg_fused(
            &d,
            &h2,
            &b2,
            &vec![0.0; spd.dim()],
            &Identity,
            PcgOptions {
                tol: 1e-30,
                max_iters: 2,
            },
            &mut ws,
        );
        assert!(!capped.converged);
        assert!(!capped.broke_down(), "cap exit must not be a breakdown");
    }

    #[test]
    fn nan_rhs_is_rejected_before_iterating() {
        let (m, mut b) = problem(8, 43);
        b[5] = f64::NAN;
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let x0 = vec![0.0; m.dim()];
        let mut ws = PcgWorkspace::new();
        let fused = pcg_fused(&d, &h, &b, &x0, &Identity, PcgOptions::default(), &mut ws);
        assert!(!fused.converged);
        assert_eq!(fused.error, Some(SolveError::NonFinite { iteration: 0 }));
        assert_eq!(fused.x, x0, "iterate must stay at the warm start");
        let unfused = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &x0,
            &Identity,
            PcgOptions::default(),
        );
        assert_eq!(unfused.error, Some(SolveError::NonFinite { iteration: 0 }));
    }

    #[test]
    fn batched_solves_are_bit_identical_to_solo() {
        // Three systems of different sizes and conditioning, solved solo
        // and batched: identical iterates, iteration counts, residuals.
        let sizes = [(20usize, 21u64), (35, 22), (27, 23)];
        let problems: Vec<(SymBlockMatrix, Vec<f64>)> =
            sizes.iter().map(|&(n, s)| problem(n, s)).collect();
        let hs: Vec<Hsbcsr> = problems.iter().map(|(m, _)| Hsbcsr::from_sym(m)).collect();
        let opts = PcgOptions::default();

        // Solo reference.
        let d_solo = dev();
        let mut solo = Vec::new();
        for ((m, b), h) in problems.iter().zip(&hs) {
            let bj = BlockJacobi::new(&d_solo, h);
            let mut ws = PcgWorkspace::new();
            solo.push(pcg_fused(
                &d_solo,
                h,
                b,
                &vec![0.0; m.dim()],
                &bj,
                opts,
                &mut ws,
            ));
        }

        // Batched run on a fresh device.
        let d = dev();
        let bjs: Vec<BlockJacobi> = hs.iter().map(|h| BlockJacobi::new(&d, h)).collect();
        let x0s: Vec<Vec<f64>> = problems.iter().map(|(m, _)| vec![0.0; m.dim()]).collect();
        let mut wss: Vec<PcgWorkspace> = (0..3).map(|_| PcgWorkspace::new()).collect();
        d.reset_trace();
        let mut entries: Vec<PcgBatchEntry> = Vec::new();
        for (((h, (_, b)), (bj, x0)), ws) in hs
            .iter()
            .zip(&problems)
            .zip(bjs.iter().zip(&x0s))
            .zip(&mut wss)
        {
            entries.push(PcgBatchEntry {
                h,
                h32: None,
                b,
                x0,
                m: bj,
                opts,
                precision: SolverPrecision::Full,
                ws,
            });
        }
        let (batched, summary) = pcg_fused_batch(&d, &mut entries);

        for (s, f) in solo.iter().zip(&batched) {
            assert_eq!(s.x, f.x, "batched iterate must be bit-identical");
            assert_eq!(s.iterations, f.iterations);
            assert_eq!(s.converged, f.converged);
            assert_eq!(s.residual, f.residual);
        }

        // Launch accounting: the batch must merge (fewer records out than
        // in) and the merged time must beat three solo runs.
        assert!(summary.launches_out < summary.launches_in);
        assert_eq!(summary.per_segment_seconds.len(), 3);
        let solo_seconds = d_solo.modeled_seconds();
        assert!(
            summary.seconds < solo_seconds,
            "batched {} vs solo {}",
            summary.seconds,
            solo_seconds
        );
    }

    #[test]
    fn batch_of_one_matches_solo_accounting_shape() {
        let (m, b) = problem(12, 31);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let x0 = vec![0.0; m.dim()];
        let mut ws = PcgWorkspace::new();
        let mut entries = [PcgBatchEntry {
            h: &h,
            h32: None,
            b: &b,
            x0: &x0,
            m: &bj,
            opts: PcgOptions::default(),
            precision: SolverPrecision::Full,
            ws: &mut ws,
        }];
        let (results, summary) = pcg_fused_batch(&d, &mut entries);
        assert_eq!(results.len(), 1);
        assert!(results[0].converged);
        // A batch of one merges nothing: launches in == launches out.
        assert_eq!(summary.launches_in, summary.launches_out);
        let total: f64 = summary.per_segment_seconds.iter().sum();
        assert!((total - summary.seconds).abs() <= 1e-12 * summary.seconds.max(1.0));
    }

    fn shadow_of(h: &Hsbcsr) -> Hsbcsr32 {
        let mut s = Hsbcsr32::new();
        s.refill_from(h);
        s
    }

    #[test]
    fn mixed_converges_within_tolerance_of_full() {
        // The outer refinement tests the same ‖r‖ ≤ tol·‖b‖ criterion as
        // the pure path, so a converged mixed solve satisfies the fp64
        // tolerance on the *true* residual.
        let (m, b) = problem(50, 61);
        let h = Hsbcsr::from_sym(&m);
        let h32 = shadow_of(&h);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let x0 = vec![0.0; m.dim()];
        let opts = PcgOptions::default();
        let mut ws = PcgWorkspace::new();

        let full = pcg_fused(&d, &h, &b, &x0, &bj, opts, &mut ws);
        let mixed = pcg_fused_mixed(&d, &h, &h32, &b, &x0, &bj, opts, &mut ws);
        assert!(full.converged && mixed.converged);

        // True fp64 residual of the mixed solution meets the tolerance.
        let ax = m.mul_vec(&mixed.x);
        let rnorm: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, bv)| (a - bv) * (a - bv))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            rnorm <= opts.tol * bn * 10.0,
            "mixed residual {rnorm} vs tol {}",
            opts.tol * bn
        );

        // And the two solutions agree to the outer tolerance.
        let scale = full.x.iter().fold(1.0f64, |a, v| a.max(v.abs()));
        for i in 0..m.dim() {
            assert!(
                (mixed.x[i] - full.x[i]).abs() <= opts.tol.sqrt() * scale,
                "i={i}: mixed {} vs full {}",
                mixed.x[i],
                full.x[i]
            );
        }
    }

    #[test]
    fn mixed_inner_iterations_stream_f32_kernels() {
        let (m, b) = problem(40, 62);
        let h = Hsbcsr::from_sym(&m);
        let h32 = shadow_of(&h);
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let x0 = vec![0.0; m.dim()];
        let mut ws = PcgWorkspace::new();
        d.reset_trace();
        let res = pcg_fused_mixed(&d, &h, &h32, &b, &x0, &bj, PcgOptions::default(), &mut ws);
        assert!(res.converged);
        let by = d.trace().by_kernel();
        assert!(
            by.contains_key("spmv.hsbcsr.stage1.f32"),
            "inner iterations must stream the fp32 matrix values"
        );
        assert!(
            by.contains_key("spmv.hsbcsr.stage1"),
            "outer refinement must stream fp64 values"
        );
        // The fp32 iterations dominate: more inner SpMVs than outer ones.
        let inner = by["spmv.hsbcsr.stage1.f32"].0.launches;
        let outer = by["spmv.hsbcsr.stage1"].0.launches;
        assert!(
            inner > outer,
            "inner {inner} vs outer {outer} SpMV launches"
        );
    }

    #[test]
    fn mixed_nan_rhs_rejected_identically_to_full() {
        let (m, mut b) = problem(8, 63);
        b[2] = f64::NAN;
        let h = Hsbcsr::from_sym(&m);
        let h32 = shadow_of(&h);
        let d = dev();
        let x0 = vec![0.0; m.dim()];
        let mut ws = PcgWorkspace::new();
        let mixed = pcg_fused_mixed(
            &d,
            &h,
            &h32,
            &b,
            &x0,
            &Identity,
            PcgOptions::default(),
            &mut ws,
        );
        let full = pcg_fused(&d, &h, &b, &x0, &Identity, PcgOptions::default(), &mut ws);
        assert_eq!(mixed.error, Some(SolveError::NonFinite { iteration: 0 }));
        assert_eq!(mixed.x, full.x);
        assert_eq!(mixed.iterations, full.iterations);
    }

    #[test]
    fn mixed_breakdown_falls_back_to_bitwise_full_result() {
        // An indefinite operator breaks the fp32 inner solve; the driver
        // must then produce the pure-fp64 result bit-for-bit, including
        // the structured error — quarantine parity by construction.
        let m = SymBlockMatrix::random_spd(12, 2.0, 64);
        let mut indef = m.clone();
        indef.diag[5] = indef.diag[5].scale(-25.0);
        let h = Hsbcsr::from_sym(&indef);
        let h32 = shadow_of(&h);
        let d = dev();
        let b: Vec<f64> = (0..indef.dim()).map(|i| (i as f64 * 0.4).sin()).collect();
        let x0 = vec![0.0; indef.dim()];
        let mut ws = PcgWorkspace::new();

        let full = pcg_fused(&d, &h, &b, &x0, &Identity, PcgOptions::default(), &mut ws);
        let mixed = pcg_fused_mixed(
            &d,
            &h,
            &h32,
            &b,
            &x0,
            &Identity,
            PcgOptions::default(),
            &mut ws,
        );
        assert!(full.broke_down() && mixed.broke_down());
        assert_eq!(mixed.x, full.x, "fallback must be bit-identical to Full");
        assert_eq!(mixed.error, full.error);
        assert_eq!(mixed.iterations, full.iterations);
        assert_eq!(mixed.residual, full.residual);
    }

    #[test]
    fn mixed_batched_is_bit_identical_to_mixed_solo() {
        let sizes = [(18usize, 71u64), (30, 72), (24, 73)];
        let problems: Vec<(SymBlockMatrix, Vec<f64>)> =
            sizes.iter().map(|&(n, s)| problem(n, s)).collect();
        let hs: Vec<Hsbcsr> = problems.iter().map(|(m, _)| Hsbcsr::from_sym(m)).collect();
        let shadows: Vec<Hsbcsr32> = hs.iter().map(shadow_of).collect();
        let opts = PcgOptions::default();

        let d_solo = dev();
        let mut solo = Vec::new();
        for ((m, b), (h, h32)) in problems.iter().zip(hs.iter().zip(&shadows)) {
            let bj = BlockJacobi::new(&d_solo, h);
            let mut ws = PcgWorkspace::new();
            solo.push(pcg_fused_mixed(
                &d_solo,
                h,
                h32,
                b,
                &vec![0.0; m.dim()],
                &bj,
                opts,
                &mut ws,
            ));
        }

        let d = dev();
        let bjs: Vec<BlockJacobi> = hs.iter().map(|h| BlockJacobi::new(&d, h)).collect();
        let x0s: Vec<Vec<f64>> = problems.iter().map(|(m, _)| vec![0.0; m.dim()]).collect();
        let mut wss: Vec<PcgWorkspace> = (0..3).map(|_| PcgWorkspace::new()).collect();
        let mut entries: Vec<PcgBatchEntry> = Vec::new();
        for ((((h, h32), (_, b)), (bj, x0)), ws) in hs
            .iter()
            .zip(&shadows)
            .zip(&problems)
            .zip(bjs.iter().zip(&x0s))
            .zip(&mut wss)
        {
            entries.push(PcgBatchEntry {
                h,
                h32: Some(h32),
                b,
                x0,
                m: bj,
                opts,
                precision: SolverPrecision::Mixed,
                ws,
            });
        }
        let (batched, summary) = pcg_fused_batch(&d, &mut entries);
        for (s, f) in solo.iter().zip(&batched) {
            assert_eq!(s.x, f.x, "mixed batched iterate must be bit-identical");
            assert_eq!(s.iterations, f.iterations);
            assert_eq!(s.residual, f.residual);
        }
        assert!(summary.launches_out < summary.launches_in);
    }

    #[test]
    fn csr_operator_agrees_with_hsbcsr_operator() {
        let (m, b) = problem(20, 7);
        let h = Hsbcsr::from_sym(&m);
        let c = Csr::from_sym_full(&m);
        let d = dev();
        let r1 = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions::default(),
        );
        let r2 = pcg(
            &d,
            &CsrVectorMat { m: &c },
            &b,
            &vec![0.0; m.dim()],
            &Identity,
            PcgOptions::default(),
        );
        assert_eq!(r1.iterations, r2.iterations);
        for i in 0..m.dim() {
            assert!((r1.x[i] - r2.x[i]).abs() < 1e-7);
        }
    }
}
