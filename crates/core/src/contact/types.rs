//! Contact records and their classification taxonomy.

use serde::{Deserialize, Serialize};

/// Geometric class of a contact (the paper's first two classifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ContactKind {
    /// Vertex against edge interior.
    Ve = 0,
    /// Vertex against vertex with parallel facing edges (behaves like an
    /// edge–edge contact; expands to two springs).
    Vv1 = 1,
    /// Vertex against vertex with non-parallel edges (one spring on the
    /// shortest-exit edge).
    Vv2 = 2,
}

/// Mechanical state of a contact — "there are three contact models, namely,
/// open, slide, and lock" (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum ContactState {
    /// No springs (separated).
    Open = 0,
    /// Normal spring plus friction force (shear limit exceeded).
    Slide = 1,
    /// Normal and shear springs (sticking).
    Lock = 2,
}

impl ContactState {
    /// True when a normal spring is present.
    #[inline]
    pub fn closed(self) -> bool {
        self != ContactState::Open
    }
}

/// One contact: vertex `vertex` of block `i` against edge `edge` of block
/// `j` (for VV kinds, `edge` is the resolved target edge and `vertex2` the
/// contacted vertex).
///
/// `Copy` + flat fields so contact arrays can live in simulated device
/// buffers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Contact {
    /// Block owning the contact vertex.
    pub i: u32,
    /// Block owning the contacted edge/vertex.
    pub j: u32,
    /// Vertex index on block `i`.
    pub vertex: u32,
    /// Edge index on block `j` receiving the spring.
    pub edge: u32,
    /// Contacted vertex index on block `j` (VV kinds; `u32::MAX` for VE).
    pub vertex2: u32,
    /// Geometric class.
    pub kind: ContactKind,
    /// Current mechanical state.
    pub state: ContactState,
    /// State at the end of the previous *time step* (drives `p1`).
    pub prev_step_state: ContactState,
    /// State at the previous *open–close iteration* (drives `p2`).
    pub prev_iter_state: ContactState,
    /// Accumulated normal penetration carried across steps (transfer).
    pub normal_disp: f64,
    /// Accumulated shear displacement along the edge (transfer).
    pub shear_disp: f64,
    /// Contact edge ratio: the parameter along the contacted edge
    /// (transferred between steps, §III-B).
    pub edge_ratio: f64,
    /// Sliding direction (±1) remembered while the contact slides, so the
    /// friction force does not flicker with the sign of a near-zero shear
    /// offset. 0 until the contact first slides.
    pub slide_dir: f64,
    /// State flips within the current open–close loop. A contact that keeps
    /// alternating lock↔slide sits exactly at the Mohr–Coulomb limit; after
    /// a few flips it is frozen as sliding so the iteration can terminate
    /// (Shi's code bounds the same oscillation through its iteration cap).
    pub flips: u32,
}

impl Contact {
    /// A fresh contact in the open state.
    pub fn new(i: u32, j: u32, vertex: u32, edge: u32, vertex2: u32, kind: ContactKind) -> Contact {
        Contact {
            i,
            j,
            vertex,
            edge,
            vertex2,
            kind,
            state: ContactState::Open,
            prev_step_state: ContactState::Open,
            prev_iter_state: ContactState::Open,
            normal_disp: 0.0,
            shear_disp: 0.0,
            edge_ratio: 0.0,
            slide_dir: 0.0,
            flips: 0,
        }
    }

    /// Identity key for contact transfer: the same geometric pairing in two
    /// successive steps produces the same key. Sorted by *minor block
    /// number first*, as the paper's sorted search requires.
    pub fn key(&self) -> u64 {
        let minor = self.i.min(self.j) as u64;
        let major = self.i.max(self.j) as u64;
        let swapped = u64::from(self.j < self.i);
        (minor << 44)
            | (major << 24)
            | ((self.vertex as u64 & 0x3FF) << 14)
            | ((self.edge as u64 & 0x3FF) << 4)
            | (swapped << 3)
            | self.kind as u64
    }

    /// Normal-spring switch indicator `p1` ∈ {−1, 0, 1}: +1 when the normal
    /// spring appears relative to the previous time step, −1 when it
    /// disappears.
    pub fn p1(&self) -> i32 {
        i32::from(self.state.closed()) - i32::from(self.prev_step_state.closed())
    }

    /// Shear-spring switch indicator `p2` ∈ {−1, 0, 1} relative to the
    /// previous open–close iteration: +1 when the shear spring appears
    /// (slide→lock), −1 when it disappears (lock→slide).
    pub fn p2(&self) -> i32 {
        i32::from(self.state == ContactState::Lock)
            - i32::from(self.prev_iter_state == ContactState::Lock)
    }

    /// The paper's third classification (§III-A): categories C1–C5 select
    /// the non-diagonal building pipeline; `None` means the contact
    /// contributes nothing (open and unchanged — abandoned).
    pub fn category(&self) -> Option<u8> {
        let p1 = self.p1() != 0;
        let p2 = self.p2() != 0;
        match self.kind {
            ContactKind::Ve | ContactKind::Vv1 => {
                if p1 {
                    Some(1)
                } else if p2 {
                    Some(2)
                } else if self.state.closed() {
                    Some(3)
                } else {
                    None
                }
            }
            ContactKind::Vv2 => {
                if p1 {
                    Some(4)
                } else if p2 || self.state.closed() {
                    Some(5)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(!ContactState::Open.closed());
        assert!(ContactState::Slide.closed());
        assert!(ContactState::Lock.closed());
    }

    #[test]
    fn key_is_stable_and_discriminating() {
        let a = Contact::new(3, 7, 2, 1, u32::MAX, ContactKind::Ve);
        let b = Contact::new(3, 7, 2, 1, u32::MAX, ContactKind::Ve);
        assert_eq!(a.key(), b.key());
        let c = Contact::new(3, 7, 2, 2, u32::MAX, ContactKind::Ve);
        assert_ne!(a.key(), c.key());
        let d = Contact::new(3, 8, 2, 1, u32::MAX, ContactKind::Ve);
        assert_ne!(a.key(), d.key());
    }

    #[test]
    fn key_sorts_by_minor_block_first() {
        let a = Contact::new(5, 100, 0, 0, u32::MAX, ContactKind::Ve);
        let b = Contact::new(200, 6, 0, 0, u32::MAX, ContactKind::Ve);
        // minor(a) = 5 < minor(b) = 6 → a.key < b.key regardless of i.
        assert!(a.key() < b.key());
    }

    #[test]
    fn p1_p2_indicators() {
        let mut c = Contact::new(0, 1, 0, 0, u32::MAX, ContactKind::Ve);
        c.prev_step_state = ContactState::Open;
        c.state = ContactState::Lock;
        assert_eq!(c.p1(), 1);
        c.prev_step_state = ContactState::Lock;
        c.state = ContactState::Open;
        assert_eq!(c.p1(), -1);
        c.state = ContactState::Slide;
        assert_eq!(c.p1(), 0); // both closed

        c.prev_iter_state = ContactState::Lock;
        c.state = ContactState::Slide;
        assert_eq!(c.p2(), -1);
        c.prev_iter_state = ContactState::Slide;
        c.state = ContactState::Lock;
        assert_eq!(c.p2(), 1);
    }

    #[test]
    fn categories_follow_paper_rules() {
        let mut c = Contact::new(0, 1, 0, 0, u32::MAX, ContactKind::Ve);
        // p1 ≠ 0 → C1.
        c.prev_step_state = ContactState::Open;
        c.prev_iter_state = ContactState::Open;
        c.state = ContactState::Lock;
        assert_eq!(c.category(), Some(1));
        // p1 = 0, p2 ≠ 0 → C2.
        c.prev_step_state = ContactState::Slide;
        c.prev_iter_state = ContactState::Slide;
        c.state = ContactState::Lock;
        assert_eq!(c.category(), Some(2));
        // unchanged closed → C3.
        c.prev_step_state = ContactState::Lock;
        c.prev_iter_state = ContactState::Lock;
        assert_eq!(c.category(), Some(3));
        // unchanged open → abandoned.
        c.state = ContactState::Open;
        c.prev_step_state = ContactState::Open;
        c.prev_iter_state = ContactState::Open;
        assert_eq!(c.category(), None);
        // VV2 versions.
        c.kind = ContactKind::Vv2;
        c.state = ContactState::Lock;
        c.prev_step_state = ContactState::Open;
        assert_eq!(c.category(), Some(4));
        c.prev_step_state = ContactState::Lock;
        c.prev_iter_state = ContactState::Lock;
        assert_eq!(c.category(), Some(5));
    }
}
