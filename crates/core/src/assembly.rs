//! Global stiffness assembly — serial reference and the paper's
//! write-conflict-free GPU scheme (Fig 4).
//!
//! Blocks `i` and `j` "usually include several contact data" (§III-C), so
//! naively accumulating `k_ii`, `k_ij`, `k_jj` from concurrent threads
//! races. The GPU scheme instead:
//!
//! 1. each contact computes its sub-matrices in parallel into array `D`
//!    with a sub-matrix key (block-pair number);
//! 2. `D`'s keys are radix-sorted;
//! 3. segment boundaries are found (`di[i] = (SD[i]−SD[i−1]==0)?1:0`) and
//!    scanned;
//! 4. each distinct sub-matrix is the segmented sum of its run.
//!
//! "All the sort and scan steps act on the block number and index; the
//! data of a sub-matrix are moved only for assembly in the final step" —
//! implemented the same way here: the argsort permutes indices, and the
//! 36-value payloads are gathered once by the reduction kernel. The whole
//! path runs with the simulator's write-conflict detector armed in tests.

use crate::contact::types::Contact;
use crate::contact::GeomSoa;
use crate::params::DdaParams;
use crate::stiffness::perblock::{build_diag_gpu, build_diag_serial, BlockSoa};
use crate::stiffness::springs::contact_spring_terms;
use crate::system::BlockSystem;
use dda_geom::Vec2;
use dda_simt::primitives::{segment_starts, sort::argsort_u64};
use dda_simt::serial::CpuCounter;
use dda_simt::Device;
use dda_sparse::{Block6, SymBlockMatrix};
use std::collections::HashMap;

/// An assembled linear system `K d = F`.
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// Symmetric half-stored stiffness matrix.
    pub matrix: SymBlockMatrix,
    /// Right-hand side (6 entries per block).
    pub rhs: Vec<f64>,
}

/// Per-contact joint parameters flattened for the kernels.
fn joint_params(sys: &BlockSystem, contacts: &[Contact]) -> Vec<f64> {
    let mut out = Vec::new();
    fill_joint_params(sys, contacts, &mut out);
    out
}

/// In-place refill of the flattened joint parameters (two entries per
/// contact: `tan φ`, cohesion). Reuses the vector's capacity so a warmed
/// per-step workspace refills without heap traffic.
pub(crate) fn fill_joint_params(sys: &BlockSystem, contacts: &[Contact], out: &mut Vec<f64>) {
    out.clear();
    for c in contacts {
        let jm = sys.joint_of(c.i as usize, c.j as usize);
        out.push(jm.tan_phi());
        out.push(jm.cohesion);
    }
}

/// Serial assembly: diagonal terms plus contact springs accumulated into a
/// hash map.
pub fn assemble_serial(
    sys: &BlockSystem,
    contacts: &[Contact],
    params: &DdaParams,
    counter: &mut CpuCounter,
) -> AssembledSystem {
    let (diag, rhs) = build_diag_serial(sys, params, counter);
    assemble_contacts_serial(sys, contacts, params, diag, rhs, counter)
}

/// Non-diagonal building only: adds the contact-spring terms to
/// precomputed diagonal terms (the pipeline times the two modules
/// separately, as Tables II–III report them separately).
pub fn assemble_contacts_serial(
    sys: &BlockSystem,
    contacts: &[Contact],
    params: &DdaParams,
    mut diag: Vec<Block6>,
    mut rhs: Vec<f64>,
    counter: &mut CpuCounter,
) -> AssembledSystem {
    let mut upper: HashMap<(u32, u32), Block6> = HashMap::new();

    for c in contacts {
        let bi = &sys.blocks[c.i as usize];
        let bj = &sys.blocks[c.j as usize];
        let p1 = bi.poly.vertex(c.vertex as usize);
        let seg = bj.poly.edge(c.edge as usize);
        let jm = sys.joint_of(c.i as usize, c.j as usize);
        counter.flop(600);
        counter.bytes(200);
        let Some(t) = contact_spring_terms(
            c,
            bi.centroid(),
            bj.centroid(),
            p1,
            seg.a,
            seg.b,
            params.penalty,
            params.shear_ratio,
            jm.tan_phi(),
            jm.cohesion,
        ) else {
            continue;
        };
        diag[c.i as usize] += t.kii;
        diag[c.j as usize] += t.kjj;
        let (r, col, block) = if c.i < c.j {
            (c.i, c.j, t.kij)
        } else {
            (c.j, c.i, t.kji())
        };
        *upper.entry((r, col)).or_insert(Block6::ZERO) += block;
        for k in 0..6 {
            rhs[6 * c.i as usize + k] += t.fi[k];
            rhs[6 * c.j as usize + k] += t.fj[k];
        }
        counter.flop(36 * 3 + 12);
        counter.bytes(36 * 3 * 8);
    }

    let upper_vec: Vec<(u32, u32, Block6)> =
        upper.into_iter().map(|((r, c), b)| (r, c, b)).collect();
    AssembledSystem {
        matrix: SymBlockMatrix::new(diag, upper_vec),
        rhs,
    }
}

/// GPU assembly following Fig 4.
pub fn assemble_gpu(
    dev: &Device,
    sys: &BlockSystem,
    gsoa: &GeomSoa,
    bsoa: &BlockSoa,
    contacts: &[Contact],
    params: &DdaParams,
) -> AssembledSystem {
    let (diag, rhs) = build_diag_gpu(dev, sys, bsoa, params);
    assemble_contacts_gpu(dev, sys, gsoa, contacts, params, diag, rhs)
}

/// GPU non-diagonal building only (Fig 4), over precomputed diagonal
/// terms.
pub fn assemble_contacts_gpu(
    dev: &Device,
    sys: &BlockSystem,
    gsoa: &GeomSoa,
    contacts: &[Contact],
    params: &DdaParams,
    diag: Vec<Block6>,
    rhs: Vec<f64>,
) -> AssembledSystem {
    assemble_contacts_gpu_scheduled(dev, sys, gsoa, contacts, params, diag, rhs, None)
}

/// [`assemble_contacts_gpu`] with an optional scheduling permutation over
/// the per-contact threads of `nondiag.compute`: thread `t` computes the
/// sub-matrices of contact `sched[t]` and stores into *that contact's*
/// keyed slots, so the keyed arrays — and everything downstream of the
/// radix sort — are bitwise identical to the unscheduled path. Only the
/// warp composition at the closed/abandoned branch (site 0) changes,
/// which is what a class-sorted schedule exploits. Wrong-length schedules
/// are ignored.
#[allow(clippy::too_many_arguments)]
pub fn assemble_contacts_gpu_scheduled(
    dev: &Device,
    sys: &BlockSystem,
    gsoa: &GeomSoa,
    contacts: &[Contact],
    params: &DdaParams,
    mut diag: Vec<Block6>,
    mut rhs: Vec<f64>,
    sched: Option<&[u32]>,
) -> AssembledSystem {
    let nc = contacts.len();
    if nc == 0 {
        return AssembledSystem {
            matrix: SymBlockMatrix::new(diag, Vec::new()),
            rhs,
        };
    }
    let sched = sched.filter(|s| s.len() == nc);
    let n = sys.len() as u64;
    let jparams = joint_params(sys, contacts);

    // --- Step 1: per-contact sub-matrix computation into array D ------------
    // Three keyed 36-f64 payloads per contact (k_ii, k_jj, upper(i,j)) and
    // two keyed 6-f64 force payloads.
    let mut d_vals = vec![0.0f64; nc * 3 * 36];
    let mut d_keys = vec![u64::MAX; nc * 3];
    let mut f_vals = vec![0.0f64; nc * 2 * 6];
    let mut f_keys = vec![u64::MAX; nc * 2];
    compute_contact_stream(
        dev,
        n,
        gsoa,
        contacts,
        &jparams,
        params.penalty,
        params.shear_ratio,
        &mut d_vals,
        &mut d_keys,
        &mut f_vals,
        &mut f_keys,
        StreamPass::Full { sched },
    );

    // --- Steps 2–5: sort, boundaries, segmented reduction --------------------
    let (diag_add, upper, _) = reduce_keyed_blocks(dev, &d_keys, &d_vals, n, None);
    for (b, blk) in &diag_add {
        diag[*b as usize] += *blk;
    }
    let (f_add, _) = reduce_keyed_vec6(dev, &f_keys, &f_vals, None);
    for (b, f) in &f_add {
        for k in 0..6 {
            rhs[6 * *b as usize + k] += f[k];
        }
    }

    AssembledSystem {
        matrix: SymBlockMatrix::new(diag, upper),
        rhs,
    }
}

/// Which contacts a contribution-stream launch recomputes.
pub(crate) enum StreamPass<'a> {
    /// Every contact: thread `t` computes contact `sched[t]` (or `t`) —
    /// the paper's Fig 4 step 1, kernel `nondiag.compute`.
    Full { sched: Option<&'a [u32]> },
    /// Only the listed contacts (a compacted delta set): each thread first
    /// resets its contact's keyed slots to the abandoned sentinel, then
    /// recomputes them — kernel `nondiag.delta`. Slots of unlisted
    /// contacts keep their previous bits, so splicing a delta pass over a
    /// previously full stream reproduces the full recompute bit-for-bit.
    Delta { changed: &'a [u32] },
}

/// Launch one contribution-stream pass over the keyed arrays. The per-lane
/// body is shared between the full and delta kernels so the two can never
/// drift: a spliced stream is bitwise the stream a full recompute would
/// have produced.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_contact_stream(
    dev: &Device,
    n: u64,
    gsoa: &GeomSoa,
    contacts: &[Contact],
    jparams: &[f64],
    penalty: f64,
    shear_ratio: f64,
    d_vals: &mut [f64],
    d_keys: &mut [u64],
    f_vals: &mut [f64],
    f_keys: &mut [u64],
    pass: StreamPass<'_>,
) {
    let (name, threads) = match &pass {
        StreamPass::Full { .. } => ("nondiag.compute", contacts.len()),
        StreamPass::Delta { changed } => ("nondiag.delta", changed.len()),
    };
    if threads == 0 {
        return;
    }
    let b_c = dev.bind_ro(contacts);
    let b_vx = dev.bind_ro(&gsoa.vx);
    let b_vy = dev.bind_ro(&gsoa.vy);
    let b_vp = dev.bind_ro(&gsoa.vptr);
    let b_cx = dev.bind_ro(&gsoa.cx);
    let b_cy = dev.bind_ro(&gsoa.cy);
    let b_jp = dev.bind_ro(jparams);
    let b_dv = dev.bind(d_vals);
    let b_dk = dev.bind(d_keys);
    let b_fv = dev.bind(f_vals);
    let b_fk = dev.bind(f_keys);
    let (b_sched, b_changed) = match &pass {
        StreamPass::Full { sched } => (sched.map(|s| dev.bind_ro(s)), None),
        StreamPass::Delta { changed } => (None, Some(dev.bind_ro(changed))),
    };
    dev.launch(name, threads, |lane| {
        let t_idx = match (&b_changed, &b_sched) {
            (Some(b), _) => lane.ld(b, lane.gid) as usize,
            (None, Some(b)) => lane.ld(b, lane.gid) as usize,
            (None, None) => lane.gid,
        };
        // Delta pass: the slots may hold a stale closed contribution, so
        // an abandoned contact must rewrite its keys to the sentinel — the
        // same end state the pre-initialized full pass leaves. (One store
        // per slot per launch: the sentinel is written only on the abandon
        // paths, never as a pre-clear the recompute would overwrite.)
        let abandon = |lane: &mut dda_simt::Lane| {
            if b_changed.is_some() {
                lane.st(&b_dk, 3 * t_idx, u64::MAX);
                lane.st(&b_dk, 3 * t_idx + 1, u64::MAX);
                lane.st(&b_dk, 3 * t_idx + 2, u64::MAX);
                lane.st(&b_fk, 2 * t_idx, u64::MAX);
                lane.st(&b_fk, 2 * t_idx + 1, u64::MAX);
            }
        };
        let c = lane.ld(&b_c, t_idx);
        // Open/unchanged contacts are abandoned by the classification;
        // their slots keep (or regain) the MAX key and sort to the tail.
        if !lane.branch(0, c.state.closed()) {
            abandon(lane);
            return;
        }
        let i0 = lane.ld_tex(&b_vp, c.i as usize) as usize;
        let j0 = lane.ld_tex(&b_vp, c.j as usize) as usize;
        let nj = lane.ld_tex(&b_vp, c.j as usize + 1) as usize - j0;
        let p1 = Vec2::new(
            lane.ld_tex(&b_vx, i0 + c.vertex as usize),
            lane.ld_tex(&b_vy, i0 + c.vertex as usize),
        );
        let e = c.edge as usize;
        let p2 = Vec2::new(lane.ld_tex(&b_vx, j0 + e), lane.ld_tex(&b_vy, j0 + e));
        let e1 = (e + 1) % nj;
        let p3 = Vec2::new(lane.ld_tex(&b_vx, j0 + e1), lane.ld_tex(&b_vy, j0 + e1));
        let ci = Vec2::new(
            lane.ld_tex(&b_cx, c.i as usize),
            lane.ld_tex(&b_cy, c.i as usize),
        );
        let cj = Vec2::new(
            lane.ld_tex(&b_cx, c.j as usize),
            lane.ld_tex(&b_cy, c.j as usize),
        );
        let tan_phi = lane.ld(&b_jp, 2 * t_idx);
        let cohesion = lane.ld(&b_jp, 2 * t_idx + 1);
        lane.flop(600);
        let Some(t) = contact_spring_terms(
            &c,
            ci,
            cj,
            p1,
            p2,
            p3,
            penalty,
            shear_ratio,
            tan_phi,
            cohesion,
        ) else {
            abandon(lane);
            return;
        };

        let store_block = |lane: &mut dda_simt::Lane, slot: usize, key: u64, b: &Block6| {
            lane.st(&b_dk, slot, key);
            for r in 0..6 {
                for cc in 0..6 {
                    lane.st(&b_dv, slot * 36 + r * 6 + cc, b.0[r][cc]);
                }
            }
        };
        let (i, j) = (c.i as u64, c.j as u64);
        store_block(lane, 3 * t_idx, i * n + i, &t.kii);
        store_block(lane, 3 * t_idx + 1, j * n + j, &t.kjj);
        let (r, col, off) = if i < j {
            (i, j, t.kij)
        } else {
            (j, i, t.kji())
        };
        store_block(lane, 3 * t_idx + 2, r * n + col, &off);

        lane.st(&b_fk, 2 * t_idx, i);
        lane.st(&b_fk, 2 * t_idx + 1, j);
        for k in 0..6 {
            lane.st(&b_fv, 2 * t_idx * 6 + k, t.fi[k]);
            lane.st(&b_fv, (2 * t_idx + 1) * 6 + k, t.fj[k]);
        }
    });
}

/// A memoized keyed-reduction plan: the radix argsort and segment
/// boundaries of one keyed array (Fig 4 steps 2–4), valid for exactly the
/// unsorted key stream it was built from. Validity is checked by host-side
/// comparison against the snapshot — strictly stronger than tracking
/// pair-list/permutation epochs, and it makes plan reuse self-invalidating
/// on broad-phase rebinds (the keys change) without any wiring. The sort
/// is deterministic, so reusing a valid plan is bitwise identical to
/// re-sorting.
#[derive(Debug, Default, Clone)]
pub(crate) struct ReducePlan {
    /// Unsorted keys the plan was built from (full length, incl. MAX).
    src_keys: Vec<u64>,
    /// Sorted keys, truncated to the valid (non-MAX) prefix.
    sorted_keys: Vec<u64>,
    /// Argsort permutation over the valid prefix.
    perm: Vec<u32>,
    /// Segment starts over the valid prefix (`len = n_seg + 1`).
    starts: Vec<u32>,
}

impl ReducePlan {
    /// True when the plan matches `keys` and can be reused as-is.
    fn matches(&self, keys: &[u64]) -> bool {
        !self.src_keys.is_empty() && self.src_keys.as_slice() == keys
    }

    /// Rebuild the plan for `keys` (argsort + segment boundaries on
    /// device), reusing buffer capacity. Returns whether it was a reuse.
    fn prepare(&mut self, dev: &Device, keys: &[u64]) -> bool {
        if self.matches(keys) {
            return true;
        }
        let (sorted_keys, perm) = argsort_u64(dev, keys);
        let valid = sorted_keys.partition_point(|&k| k != u64::MAX);
        self.src_keys.clear();
        self.src_keys.extend_from_slice(keys);
        self.sorted_keys.clear();
        self.sorted_keys.extend_from_slice(&sorted_keys[..valid]);
        self.perm.clear();
        self.perm.extend_from_slice(&perm[..valid]);
        self.starts.clear();
        if valid > 0 {
            let (_, starts) = segment_starts(dev, &self.sorted_keys);
            self.starts.extend_from_slice(&starts);
        }
        false
    }
}

/// Sort + segment + reduce for 36-f64 payloads. Returns the diagonal
/// additions, the sorted upper entries, and whether a cached plan was
/// reused (always `false` without a plan). Keys of `u64::MAX` (abandoned
/// slots) are dropped.
#[allow(clippy::type_complexity)]
pub(crate) fn reduce_keyed_blocks(
    dev: &Device,
    keys: &[u64],
    vals: &[f64],
    n: u64,
    plan: Option<&mut ReducePlan>,
) -> (Vec<(u32, Block6)>, Vec<(u32, u32, Block6)>, bool) {
    let mut scratch = ReducePlan::default();
    let (plan, reused) = match plan {
        Some(p) => {
            let hit = p.prepare(dev, keys);
            (&*p, hit)
        }
        None => {
            scratch.prepare(dev, keys);
            (&scratch, false)
        }
    };
    let (sorted_keys, perm, starts) = (&plan.sorted_keys, &plan.perm, &plan.starts);
    if sorted_keys.is_empty() {
        return (Vec::new(), Vec::new(), reused);
    }
    let n_seg = starts.len() - 1;

    let mut out = vec![0.0f64; n_seg * 36];
    {
        let b_starts = dev.bind_ro(starts);
        let b_perm = dev.bind_ro(perm);
        let b_vals = dev.bind_ro(vals);
        let b_out = dev.bind(&mut out);
        dev.launch("assembly.reduce_blocks", n_seg, |lane| {
            let s = lane.gid;
            let lo = lane.ld(&b_starts, s) as usize;
            let hi = lane.ld(&b_starts, s + 1) as usize;
            let mut acc = [0.0f64; 36];
            for m in lo..hi {
                let src = lane.ld(&b_perm, m) as usize;
                for k in 0..36 {
                    acc[k] += lane.ld_tex(&b_vals, src * 36 + k);
                }
                lane.flop(36);
            }
            for (k, v) in acc.iter().enumerate() {
                lane.st(&b_out, s * 36 + k, *v);
            }
        });
    }

    let mut diag_add = Vec::new();
    let mut upper = Vec::new();
    for s in 0..n_seg {
        let key = sorted_keys[starts[s] as usize];
        let r = (key / n) as u32;
        let c = (key % n) as u32;
        let mut b = Block6::ZERO;
        for rr in 0..6 {
            for cc in 0..6 {
                b.0[rr][cc] = out[s * 36 + rr * 6 + cc];
            }
        }
        if r == c {
            diag_add.push((r, b));
        } else {
            upper.push((r, c, b));
        }
    }
    (diag_add, upper, reused)
}

/// Sort + segment + reduce for 6-f64 payloads (forces). Returns the
/// per-block force additions and whether a cached plan was reused.
pub(crate) fn reduce_keyed_vec6(
    dev: &Device,
    keys: &[u64],
    vals: &[f64],
    plan: Option<&mut ReducePlan>,
) -> (Vec<(u32, [f64; 6])>, bool) {
    let mut scratch = ReducePlan::default();
    let (plan, reused) = match plan {
        Some(p) => {
            let hit = p.prepare(dev, keys);
            (&*p, hit)
        }
        None => {
            scratch.prepare(dev, keys);
            (&scratch, false)
        }
    };
    let (sorted_keys, perm, starts) = (&plan.sorted_keys, &plan.perm, &plan.starts);
    if sorted_keys.is_empty() {
        return (Vec::new(), reused);
    }
    let n_seg = starts.len() - 1;
    let mut out = vec![0.0f64; n_seg * 6];
    {
        let b_starts = dev.bind_ro(starts);
        let b_perm = dev.bind_ro(perm);
        let b_vals = dev.bind_ro(vals);
        let b_out = dev.bind(&mut out);
        dev.launch("assembly.reduce_forces", n_seg, |lane| {
            let s = lane.gid;
            let lo = lane.ld(&b_starts, s) as usize;
            let hi = lane.ld(&b_starts, s + 1) as usize;
            let mut acc = [0.0f64; 6];
            for m in lo..hi {
                let src = lane.ld(&b_perm, m) as usize;
                for k in 0..6 {
                    acc[k] += lane.ld_tex(&b_vals, src * 6 + k);
                }
                lane.flop(6);
            }
            for (k, v) in acc.iter().enumerate() {
                lane.st(&b_out, s * 6 + k, *v);
            }
        });
    }
    let forces = (0..n_seg)
        .map(|s| {
            let b = sorted_keys[starts[s] as usize] as u32;
            let mut f = [0.0f64; 6];
            f.copy_from_slice(&out[s * 6..s * 6 + 6]);
            (b, f)
        })
        .collect();
    (forces, reused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::contact::narrow::narrow_phase_serial;
    use crate::contact::types::ContactState;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn stack() -> (BlockSystem, Vec<Contact>, DdaParams) {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0),
                Block::new(Polygon::rect(1.0, 0.0, 2.0, 1.0), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let params = DdaParams::for_model(1.0, 5e9);
        let mut cnt = CpuCounter::new();
        let mut contacts = narrow_phase_serial(
            &sys,
            &[(0, 1), (0, 2), (1, 2)],
            params.contact_range,
            &mut cnt,
        );
        crate::contact::init::init_contacts_serial(
            &sys,
            &mut contacts,
            params.touch_tol * params.max_displacement,
            &mut cnt,
        );
        assert!(contacts.iter().any(|c| c.state == ContactState::Lock));
        (sys, contacts, params)
    }

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn serial_assembly_produces_solvable_system() {
        let (sys, contacts, params) = stack();
        let mut cnt = CpuCounter::new();
        let asm = assemble_serial(&sys, &contacts, &params, &mut cnt);
        assert_eq!(asm.matrix.n_blocks(), 3);
        assert!(asm.matrix.n_upper() >= 2, "stacked blocks must couple");
        // The matrix must be SPD enough for PCG: solve and check residual.
        let mut c2 = CpuCounter::new();
        let res = dda_solver::serial::pcg_serial_bj(
            &asm.matrix,
            &asm.rhs,
            &vec![0.0; asm.matrix.dim()],
            params.pcg,
            &mut c2,
        );
        assert!(res.converged, "PCG failed: {} iters", res.iterations);
    }

    #[test]
    fn gpu_assembly_matches_serial() {
        let (sys, contacts, params) = stack();
        let mut cnt = CpuCounter::new();
        let a_serial = assemble_serial(&sys, &contacts, &params, &mut cnt);
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let a_gpu = assemble_gpu(&d, &sys, &gsoa, &bsoa, &contacts, &params);

        assert_eq!(a_serial.matrix.n_upper(), a_gpu.matrix.n_upper());
        for (s, g) in a_serial.matrix.upper.iter().zip(&a_gpu.matrix.upper) {
            assert_eq!((s.0, s.1), (g.0, g.1));
            let scale = s.2.max_abs().max(1.0);
            for r in 0..6 {
                for c in 0..6 {
                    assert!(
                        (s.2 .0[r][c] - g.2 .0[r][c]).abs() < 1e-9 * scale,
                        "upper ({},{}) entry ({r},{c})",
                        s.0,
                        s.1
                    );
                }
            }
        }
        for i in 0..sys.len() {
            let scale = a_serial.matrix.diag[i].max_abs();
            for r in 0..6 {
                for c in 0..6 {
                    assert!(
                        (a_serial.matrix.diag[i].0[r][c] - a_gpu.matrix.diag[i].0[r][c]).abs()
                            < 1e-9 * scale,
                        "diag {i} ({r},{c})"
                    );
                }
            }
        }
        for k in 0..a_serial.rhs.len() {
            assert!(
                (a_serial.rhs[k] - a_gpu.rhs[k]).abs() < 1e-6 * a_serial.rhs[k].abs().max(1.0),
                "rhs[{k}]"
            );
        }
    }

    #[test]
    fn open_contacts_contribute_nothing() {
        let (sys, mut contacts, params) = stack();
        for c in contacts.iter_mut() {
            c.state = ContactState::Open;
        }
        let mut cnt = CpuCounter::new();
        let asm = assemble_serial(&sys, &contacts, &params, &mut cnt);
        assert_eq!(asm.matrix.n_upper(), 0);
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let a_gpu = assemble_gpu(&d, &sys, &gsoa, &bsoa, &contacts, &params);
        assert_eq!(a_gpu.matrix.n_upper(), 0);
    }

    #[test]
    fn no_contacts_diag_only() {
        let (sys, _, params) = stack();
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let asm = assemble_gpu(&d, &sys, &gsoa, &bsoa, &[], &params);
        assert_eq!(asm.matrix.n_upper(), 0);
        assert_eq!(asm.matrix.n_blocks(), 3);
    }

    #[test]
    fn assembly_kernels_traced() {
        let (sys, contacts, params) = stack();
        let d = dev();
        let gsoa = GeomSoa::build(&sys);
        let bsoa = BlockSoa::build(&sys);
        let _ = assemble_gpu(&d, &sys, &gsoa, &bsoa, &contacts, &params);
        let by = d.trace().by_kernel();
        assert!(by.contains_key("diag.build"));
        assert!(by.contains_key("nondiag.compute"));
        assert!(by.contains_key("radix.histogram"));
        assert!(by.contains_key("assembly.reduce_blocks"));
        assert!(by.contains_key("assembly.reduce_forces"));
    }
}
