//! Data updating (the last module of Figs 1–2).
//!
//! Once a step's displacements are accepted, every block's geometry,
//! velocity and stress advance:
//!
//! * vertices move by the block displacement function (exact rotation for
//!   the `r0` part — see [`crate::block::Block::apply_displacement`]);
//! * velocities follow Shi's implicit update `v⁺ = (2/Δt)·d − v⁻` (scaled
//!   by the dynamics factor for static relaxation);
//! * stresses accumulate the elastic increment `Δσ = E·(Δεx, Δεy, Δγxy)`;
//! * contacts bank their accumulated normal/shear history and promote the
//!   current state to `prev_step_state` for the next step's transfer.

use crate::contact::types::Contact;
use crate::params::DdaParams;
use crate::system::BlockSystem;
use dda_simt::serial::CpuCounter;
use dda_sparse::Vec6;

/// Applies an accepted step displacement to the whole system (serial; the
/// GPU pipeline reuses this host-side commit after computing on-device —
/// the arrays it would write back are exactly these).
pub fn update_system(
    sys: &mut BlockSystem,
    d: &[f64],
    contacts: &mut [Contact],
    gaps: &crate::interpenetration::GapArrays,
    params: &DdaParams,
    counter: &mut CpuCounter,
) {
    let dt = params.dt;
    for (i, b) in sys.blocks.iter_mut().enumerate() {
        let di: &Vec6 = d[6 * i..6 * i + 6].try_into().unwrap();
        // Velocity update (before geometry, which consumes d).
        for r in 0..6 {
            b.velocity[r] = params.dynamics * (2.0 / dt * di[r] - b.velocity[r]);
        }
        // Stress increment from the strain DOFs.
        let bm = &sys.block_materials[b.material as usize];
        let e = bm.elasticity();
        let de = [di[3], di[4], di[5]];
        for r in 0..3 {
            b.stress[r] += e[r][0] * de[0] + e[r][1] * de[1] + e[r][2] * de[2];
        }
        b.apply_displacement(di);
        counter.flop(100 + 20 * b.poly.len() as u64);
        counter.bytes((16 * b.poly.len() + 80) as u64 * 8);
    }
    // Contact history banking.
    for (k, c) in contacts.iter_mut().enumerate() {
        c.normal_disp = gaps.dn.get(k).copied().unwrap_or(c.normal_disp);
        c.shear_disp += gaps.ds.get(k).copied().unwrap_or(0.0);
        c.prev_step_state = c.state;
        counter.flop(4);
        counter.bytes(48);
    }
}

/// Largest vertex displacement across all blocks — loop 2's control value.
pub fn max_displacement(sys: &BlockSystem, d: &[f64]) -> f64 {
    sys.blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let di: &Vec6 = d[6 * i..6 * i + 6].try_into().unwrap();
            b.max_vertex_displacement(di)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::interpenetration::GapArrays;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::{Polygon, Vec2};

    fn sys() -> BlockSystem {
        BlockSystem::new(
            vec![Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0)],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        )
    }

    fn no_gaps() -> GapArrays {
        GapArrays::default()
    }

    #[test]
    fn geometry_moves_and_velocity_updates() {
        let mut s = sys();
        let p = DdaParams::for_model(1.0, 5e9);
        let d = vec![0.001, -0.002, 0.0, 0.0, 0.0, 0.0];
        let mut cnt = CpuCounter::new();
        update_system(&mut s, &d, &mut [], &no_gaps(), &p, &mut cnt);
        assert!(s.blocks[0].centroid().dist(Vec2::new(0.501, 0.498)) < 1e-12);
        // v = 2d/dt − v0 with v0 = 0.
        assert!((s.blocks[0].velocity[0] - 2.0 * 0.001 / p.dt).abs() < 1e-12);
        assert!((s.blocks[0].velocity[1] + 2.0 * 0.002 / p.dt).abs() < 1e-12);
    }

    #[test]
    fn static_mode_kills_velocity() {
        let mut s = sys();
        s.blocks[0].velocity = [1.0; 6];
        let p = DdaParams::for_model(1.0, 5e9).static_analysis();
        let d = vec![0.001; 6];
        let mut cnt = CpuCounter::new();
        update_system(&mut s, &d, &mut [], &no_gaps(), &p, &mut cnt);
        assert!(s.blocks[0].velocity.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stress_accumulates_elastically() {
        let mut s = sys();
        let p = DdaParams::for_model(1.0, 5e9);
        let eps = 1e-5;
        let d = vec![0.0, 0.0, 0.0, eps, 0.0, 0.0];
        let mut cnt = CpuCounter::new();
        update_system(&mut s, &d, &mut [], &no_gaps(), &p, &mut cnt);
        let bm = BlockMaterial::rock();
        let e0 = bm.young / (1.0 - bm.poisson * bm.poisson);
        assert!((s.blocks[0].stress[0] - e0 * eps).abs() < 1e-3);
        assert!((s.blocks[0].stress[1] - e0 * bm.poisson * eps).abs() < 1e-3);
        assert_eq!(s.blocks[0].stress[2], 0.0);
    }

    #[test]
    fn contact_history_banked() {
        use crate::contact::types::{Contact, ContactKind, ContactState};
        let mut s = sys();
        let p = DdaParams::for_model(1.0, 5e9);
        let mut contacts = vec![Contact::new(0, 0, 0, 0, u32::MAX, ContactKind::Ve)];
        contacts[0].state = ContactState::Slide;
        contacts[0].shear_disp = 0.1;
        let gaps = GapArrays {
            dn: vec![0.002],
            ds: vec![0.03],
            margin: vec![0.0],
            limit: vec![1.0],
            len: vec![1.0],
        };
        let mut cnt = CpuCounter::new();
        update_system(&mut s, &[0.0; 6], &mut contacts, &gaps, &p, &mut cnt);
        assert_eq!(contacts[0].normal_disp, 0.002);
        assert!((contacts[0].shear_disp - 0.13).abs() < 1e-12);
        assert_eq!(contacts[0].prev_step_state, ContactState::Slide);
    }

    #[test]
    fn max_displacement_across_blocks() {
        let s = sys();
        let mut d = vec![0.0; 6];
        d[0] = 0.25;
        assert!((max_displacement(&s, &d) - 0.25).abs() < 1e-12);
    }
}
