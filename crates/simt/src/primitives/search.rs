//! Sorted search (vectorized binary search / lower bound).
//!
//! Contact transfer (§III-B) matches every contact of the previous step
//! against the sorted contact array of the current step: "sorted search is
//! used to execute the contact transfer on the GPU". Each query thread
//! binary-searches the sorted key array; the log₂(n) gather loads go through
//! the texture path as irregular reads.

use crate::device::Device;

/// For each query, the index of the first element of `sorted` that is
/// `>= query` (i.e. `lower_bound`), as a device kernel.
pub fn lower_bound_u64(dev: &Device, sorted: &[u64], queries: &[u64]) -> Vec<u32> {
    let nq = queries.len();
    let mut out = vec![0u32; nq];
    if nq == 0 {
        return out;
    }
    let n = sorted.len();
    {
        let b_sorted = dev.bind_ro(sorted);
        let b_q = dev.bind_ro(queries);
        let b_out = dev.bind(&mut out);
        dev.launch("sorted_search.lower_bound", nq, |lane| {
            let q = lane.ld(&b_q, lane.gid);
            let mut lo = 0usize;
            let mut hi = n;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let k = lane.ld_tex(&b_sorted, mid);
                lane.flop(2);
                if lane.branch(0, k < q) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lane.st(&b_out, lane.gid, lo as u32);
        });
    }
    out
}

/// For each query, the index of a matching element in `sorted`, or
/// `u32::MAX` when absent.
pub fn find_exact_u64(dev: &Device, sorted: &[u64], queries: &[u64]) -> Vec<u32> {
    let lb = lower_bound_u64(dev, sorted, queries);
    lb.into_iter()
        .zip(queries.iter())
        .map(|(p, &q)| {
            if (p as usize) < sorted.len() && sorted[p as usize] == q {
                p
            } else {
                u32::MAX
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40())
    }

    #[test]
    fn empty_queries() {
        let d = dev();
        assert!(lower_bound_u64(&d, &[1, 2, 3], &[]).is_empty());
    }

    #[test]
    fn empty_haystack() {
        let d = dev();
        assert_eq!(lower_bound_u64(&d, &[], &[5, 7]), vec![0, 0]);
        assert_eq!(find_exact_u64(&d, &[], &[5]), vec![u32::MAX]);
    }

    #[test]
    fn lower_bound_matches_std() {
        let d = dev();
        let sorted: Vec<u64> = vec![2, 4, 4, 4, 9, 12, 100];
        let queries: Vec<u64> = vec![0, 2, 3, 4, 5, 12, 100, 101];
        let got = lower_bound_u64(&d, &sorted, &queries);
        for (g, &q) in got.iter().zip(&queries) {
            let expect = sorted.partition_point(|&k| k < q) as u32;
            assert_eq!(*g, expect, "query {q}");
        }
    }

    #[test]
    fn find_exact_hits_and_misses() {
        let d = dev();
        let sorted: Vec<u64> = vec![10, 20, 30];
        let got = find_exact_u64(&d, &sorted, &[20, 25, 30, 5]);
        assert_eq!(got, vec![1, u32::MAX, 2, u32::MAX]);
    }

    #[test]
    fn large_scale() {
        let d = dev();
        let sorted: Vec<u64> = (0..5000).map(|i| i * 3).collect();
        let queries: Vec<u64> = (0..2000).map(|i| i * 7 + 1).collect();
        let got = lower_bound_u64(&d, &sorted, &queries);
        for (g, &q) in got.iter().zip(&queries) {
            assert_eq!(*g as usize, sorted.partition_point(|&k| k < q));
        }
        // Binary-search gathers are irregular: they should be texture-path.
        let stats = d.trace().total_stats();
        assert!(stats.tex_transactions > 0);
    }

    #[test]
    fn divergence_recorded_for_mixed_outcomes() {
        let d = dev();
        let sorted: Vec<u64> = (0..1024).collect();
        let queries: Vec<u64> = (0..256).map(|i| (i * 37) % 1024).collect();
        let _ = lower_bound_u64(&d, &sorted, &queries);
        let stats = d.trace().total_stats();
        assert!(stats.branch_groups > 0);
        assert!(stats.divergent_branch_groups > 0);
    }
}
