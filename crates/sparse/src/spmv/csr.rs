//! Scalar-CSR SpMV kernels (the cuSPARSE-style baselines).

use crate::csr::Csr;
use dda_simt::Device;

/// One thread per row. The textbook CSR kernel: adjacent threads read
/// different rows, so value/column loads are scattered — low coalescing,
/// and row-length variance shows up as SIMT inefficiency.
pub fn spmv_csr_scalar(dev: &Device, a: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.dim);
    let mut y = vec![0.0f64; a.dim];
    {
        let b_rp = dev.bind_ro(&a.row_ptr);
        let b_ci = dev.bind_ro(&a.col_idx);
        let b_v = dev.bind_ro(&a.values);
        let b_x = dev.bind_ro(x);
        let b_y = dev.bind(&mut y);
        dev.launch("spmv.csr_scalar", a.dim, |lane| {
            let row = lane.gid;
            let lo = lane.ld(&b_rp, row) as usize;
            let hi = lane.ld(&b_rp, row + 1) as usize;
            let mut acc = 0.0;
            for p in lo..hi {
                let c = lane.ld(&b_ci, p) as usize;
                let v = lane.ld(&b_v, p);
                let xv = lane.ld_tex(&b_x, c);
                lane.flop(2);
                acc += v * xv;
            }
            lane.st(&b_y, row, acc);
        });
    }
    y
}

/// One warp per row (vector kernel), block-granular: each 256-thread block
/// processes 8 rows; the 32 lanes of a warp stride the row's nonzeros
/// (coalesced value/column loads) and reduce with shuffles. This is the
/// structure of cuSPARSE's `csrmv` and the paper's *SpMV-cuSPARSE*
/// baseline.
pub fn spmv_csr_vector(dev: &Device, a: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.dim);
    let rows_per_block = 8usize;
    let n_blocks = a.dim.div_ceil(rows_per_block);
    let mut y = vec![0.0f64; a.dim];
    {
        let b_rp = dev.bind_ro(&a.row_ptr);
        let b_ci = dev.bind_ro(&a.col_idx);
        let b_v = dev.bind_ro(&a.values);
        let b_x = dev.bind_ro(x);
        let b_y = dev.bind(&mut y);
        dev.launch_blocks("spmv.csr_vector", n_blocks, 256, |blk| {
            let first_row = blk.block_id * rows_per_block;
            let rows = rows_per_block.min(a.dim.saturating_sub(first_row));
            for w in 0..rows {
                let row = first_row + w;
                let lo = blk.gld_one(&b_rp, row) as usize;
                let hi = blk.gld_one(&b_rp, row + 1) as usize;
                let nnz = hi - lo;
                if nnz == 0 {
                    blk.gst_one(&b_y, row, 0.0);
                    continue;
                }
                // Coalesced streaming of the row's values and columns.
                let cols = blk.gld_range(&b_ci, lo, nnz);
                let vals = blk.gld_range(&b_v, lo, nnz);
                // Irregular x gather through the texture cache.
                let xidx: Vec<usize> = cols.iter().map(|&c| c as usize).collect();
                let xs = blk.gld_gather_tex(&b_x, &xidx);
                blk.flop_masked(nnz.min(32), 2 * nnz.div_ceil(32) as u64);
                blk.shfl_reduce_cost(32, 32);
                let acc: f64 = vals.iter().zip(xs.iter()).map(|(v, xv)| v * xv).sum();
                blk.gst_one(&b_y, row, acc);
            }
        });
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymBlockMatrix;
    use dda_simt::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    fn check(kernel: impl Fn(&Device, &Csr, &[f64]) -> Vec<f64>) {
        for seed in [1u64, 5, 9] {
            let m = SymBlockMatrix::random_spd(30, 3.0, seed);
            let a = Csr::from_sym_full(&m);
            let x: Vec<f64> = (0..a.dim)
                .map(|i| ((i * 13 + 3) % 29) as f64 * 0.1 - 1.0)
                .collect();
            let y_ref = m.mul_vec(&x);
            let d = dev();
            let y = kernel(&d, &a, &x);
            for i in 0..a.dim {
                assert!((y[i] - y_ref[i]).abs() < 1e-9, "seed {seed} i={i}");
            }
        }
    }

    #[test]
    fn scalar_kernel_correct() {
        check(spmv_csr_scalar);
    }

    #[test]
    fn vector_kernel_correct() {
        check(spmv_csr_vector);
    }

    #[test]
    fn vector_kernel_coalesces_better_than_scalar() {
        let m = SymBlockMatrix::random_spd(200, 6.0, 2);
        let a = Csr::from_sym_full(&m);
        let x = vec![1.0; a.dim];

        let d1 = dev();
        let _ = spmv_csr_scalar(&d1, &a, &x);
        let s1 = d1.trace().total_stats();

        let d2 = dev();
        let _ = spmv_csr_vector(&d2, &a, &x);
        let s2 = d2.trace().total_stats();

        assert!(
            s2.overfetch() < s1.overfetch(),
            "vector {} should beat scalar {}",
            s2.overfetch(),
            s1.overfetch()
        );
    }

    #[test]
    fn empty_rows_handled() {
        // A matrix with a zero block row can't come from DDA (diagonals are
        // always nonzero), but the kernels must not misbehave on short rows.
        let m = SymBlockMatrix::random_spd(5, 0.0, 3); // diagonal-only
        let a = Csr::from_sym_full(&m);
        let x = vec![2.0; a.dim];
        let d = dev();
        let y = spmv_csr_vector(&d, &a, &x);
        let y_ref = m.mul_vec(&x);
        for i in 0..a.dim {
            assert!((y[i] - y_ref[i]).abs() < 1e-9);
        }
    }
}
