//! Case 1: static stability analysis of a jointed slope (§V-A).
//!
//! The cross-section is a crest bench, an inclined face, and a toe bench,
//! decomposed into convex pieces and cut by two joint sets. Blocks touching
//! the model base are fixed (the far-field rock). Five block materials are
//! assigned by depth bands and a table of joint materials provides the
//! interface strength spread the paper mentions (38 types in the original
//! survey data).

use crate::cutter::{cut_blocks, spacing_for_target, JointSet};
use dda_core::{Block, BlockMaterial, BlockSystem, DdaParams, JointMaterial};
use dda_geom::{Polygon, Vec2};
use serde::{Deserialize, Serialize};

/// Parameters of the slope model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlopeConfig {
    /// Overall width of the section (m).
    pub width: f64,
    /// Crest elevation (m).
    pub crest_height: f64,
    /// Toe bench elevation (m).
    pub toe_height: f64,
    /// x where the crest bench ends and the face begins.
    pub crest_x: f64,
    /// x where the face meets the toe bench.
    pub toe_x: f64,
    /// Target number of blocks (joint spacing is derived).
    pub target_blocks: usize,
    /// Joint set orientations (degrees).
    pub joint_angles: [f64; 2],
    /// Spacing jitter.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SlopeConfig {
    fn default() -> Self {
        SlopeConfig {
            width: 120.0,
            crest_height: 60.0,
            toe_height: 15.0,
            crest_x: 40.0,
            toe_x: 90.0,
            target_blocks: 400,
            joint_angles: [62.0, -18.0],
            jitter: 0.25,
            seed: 20170529,
        }
    }
}

impl SlopeConfig {
    /// A configuration at the paper's case-1 scale (≈4361 blocks).
    pub fn paper_scale() -> SlopeConfig {
        SlopeConfig {
            target_blocks: 4361,
            ..SlopeConfig::default()
        }
    }

    /// Scales the target block count (the harness's `--blocks` knob).
    pub fn with_target_blocks(mut self, n: usize) -> SlopeConfig {
        self.target_blocks = n;
        self
    }
}

/// Builds the case-1 block system and matching analysis parameters.
pub fn slope_case(cfg: &SlopeConfig) -> (BlockSystem, DdaParams) {
    // Convex decomposition of the section: crest column, face wedge, toe
    // column.
    let regions = vec![
        Polygon::rect(0.0, 0.0, cfg.crest_x, cfg.crest_height),
        Polygon::new(vec![
            Vec2::new(cfg.crest_x, 0.0),
            Vec2::new(cfg.toe_x, 0.0),
            Vec2::new(cfg.toe_x, cfg.toe_height),
            Vec2::new(cfg.crest_x, cfg.crest_height),
        ]),
        Polygon::rect(cfg.toe_x, 0.0, cfg.width, cfg.toe_height),
    ];
    let area: f64 = regions.iter().map(|r| r.area()).sum();
    let spacing = spacing_for_target(
        area,
        cfg.target_blocks,
        (cfg.joint_angles[0] - cfg.joint_angles[1]).abs(),
    );
    let sets = [
        JointSet {
            angle_deg: cfg.joint_angles[0],
            spacing,
            jitter: cfg.jitter,
        },
        JointSet {
            angle_deg: cfg.joint_angles[1],
            spacing: spacing * 1.15,
            jitter: cfg.jitter,
        },
    ];
    let min_area = spacing * spacing * 0.02;
    let mut polys = cut_blocks(&regions, &sets, min_area, cfg.seed);
    // Survey-data block numbering is not spatially banded; shuffle the
    // fragment order so the stiffness matrix has the paper's
    // general-sparse structure (this is what gives ILU's level scheduling
    // its — still insufficient — parallelism in Fig 10).
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x5b0c_17f3);
        polys.shuffle(&mut rng);
    }

    // Five block materials by depth band (stiffer at depth), as in the
    // paper's material table.
    let materials: Vec<BlockMaterial> = (0..5)
        .map(|k| {
            BlockMaterial::rock()
                .with_young(2e9 + 1.5e9 * k as f64)
                .with_density(2300.0 + 100.0 * k as f64)
        })
        .collect();
    // Joint material table: friction angles spread 25°–42°.
    let joints: Vec<JointMaterial> = (0..5)
        .map(|k| JointMaterial::frictional(25.0 + 4.0 * k as f64))
        .collect();

    let band = cfg.crest_height / 5.0;
    let mut blocks: Vec<Block> = polys
        .into_iter()
        .map(|p| {
            let c = p.centroid();
            let depth_band = ((cfg.crest_height - c.y) / band).clamp(0.0, 4.0) as u32;
            let fixed = p.aabb().min.y < spacing * 0.25;
            let b = Block::new(p, depth_band);
            if fixed {
                b.fixed()
            } else {
                b
            }
        })
        .collect();
    // Guarantee at least one fixed block (tiny targets could miss the base).
    if !blocks.iter().any(|b| b.fixed) {
        if let Some(lowest) = (0..blocks.len())
            .min_by(|&a, &b| blocks[a].centroid().y.total_cmp(&blocks[b].centroid().y))
        {
            blocks[lowest].fixed = true;
        }
    }

    let sys = BlockSystem {
        blocks,
        block_materials: materials,
        joint_materials: joints,
        point_loads: Vec::new(),
    };
    let params = DdaParams::for_model(spacing, 8e9).static_analysis();
    (sys, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_slope_has_expected_scale() {
        let (sys, params) = slope_case(&SlopeConfig::default());
        let n = sys.len();
        assert!(n > 200 && n < 800, "target 400 blocks, got {n}");
        assert!(sys.blocks.iter().any(|b| b.fixed), "base must be fixed");
        assert!(params.dynamics == 0.0, "case 1 is static");
        // All blocks convex, positive area.
        for b in &sys.blocks {
            assert!(b.poly.is_convex());
            assert!(b.area() > 0.0);
        }
    }

    #[test]
    fn block_count_scales_with_target() {
        let small = slope_case(&SlopeConfig::default().with_target_blocks(80)).0;
        let large = slope_case(&SlopeConfig::default().with_target_blocks(600)).0;
        assert!(large.len() > 3 * small.len());
    }

    #[test]
    fn materials_assigned_by_depth() {
        let (sys, _) = slope_case(&SlopeConfig::default());
        let used: std::collections::HashSet<u32> = sys.blocks.iter().map(|b| b.material).collect();
        assert!(used.len() >= 3, "expected several depth bands: {used:?}");
        assert!(used
            .iter()
            .all(|&m| (m as usize) < sys.block_materials.len()));
    }

    #[test]
    fn no_initial_interpenetration() {
        let (sys, _) = slope_case(&SlopeConfig::default().with_target_blocks(120));
        assert!(
            sys.total_interpenetration() < 1e-6,
            "cutter fragments must tile without overlap"
        );
    }

    #[test]
    fn deterministic() {
        let a = slope_case(&SlopeConfig::default()).0;
        let b = slope_case(&SlopeConfig::default()).0;
        assert_eq!(a.len(), b.len());
    }
}
