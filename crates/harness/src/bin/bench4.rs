//! BENCH_4 generator: overload-safe scene ingestion under churn.
//!
//! Drives a [`dda_core::BatchScheduler`] (bounded intake queue, admission
//! control, occupancy rebalancing, checkpoint/restore) through four
//! phases on the Tesla K40 model:
//!
//! * **sustained** — closed-loop traffic holding 2× the slot count in
//!   flight, with a fraction of NaN-poisoned scenes churning the
//!   quarantine/requeue path: sustained completion throughput and
//!   p50/p99 admission latency;
//! * **overload** — open-loop traffic at 2× the measured drain rate,
//!   every submission carrying a deadline: shed rate and proof that the
//!   queue bound holds;
//! * **rebalance** — the same seeded churn twice, occupancy rebalancing
//!   on vs off: the modeled-time overhead of compaction (expected ≤ 5%,
//!   and typically *negative* — dead slots cost launch segments);
//! * **recovery** — checkpoint a mid-flight fleet, encode/decode/restore
//!   onto a fresh device, and verify the restored world completes with
//!   bit-identical final states: recovery latency in wall milliseconds.
//!
//! Writes `BENCH_4.json` into the current directory and prints it.
//!
//! Usage: `bench4 [--scenes N] [--rocks N] [--seed N]`

use std::time::Instant;

use dda_core::pipeline::FleetCheckpoint;
use dda_core::{BatchScheduler, IngestConfig, SceneStatus, SceneSubmission};
use dda_harness::Args;
use dda_simt::{Device, DeviceProfile};
use dda_workloads::{
    rockfall_fleet, ClosedLoopTraffic, FleetConfig, OpenLoopTraffic, TrafficConfig,
};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn traffic_cfg(rocks: usize) -> TrafficConfig {
    TrafficConfig {
        rocks,
        run_steps_min: 2,
        run_steps_max: 5,
        nan_permille: 50, // 5% of scenes fault on arrival and churn the requeue path
        ..TrafficConfig::default()
    }
}

/// Asserts every issued ticket reached a terminal state with a structured
/// reason and returns (completed, shed, refused).
fn audit_terminal(sched: &BatchScheduler) -> (u64, u64, u64) {
    let (mut completed, mut shed, mut refused) = (0u64, 0u64, 0u64);
    for (ticket, rec) in sched.records() {
        match rec.status {
            SceneStatus::Completed => completed += 1,
            SceneStatus::Shed { .. } => shed += 1,
            SceneStatus::Refused { .. } => refused += 1,
            other => panic!("scene {ticket} ended non-terminal: {other:?}"),
        }
    }
    (completed, shed, refused)
}

fn main() {
    let a = Args::parse(0, 2, 0);
    let argv: Vec<String> = std::env::args().collect();
    let scenes = argv
        .iter()
        .position(|s| s == "--scenes")
        .and_then(|p| argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(150u64);
    let cfg = IngestConfig {
        max_slots: 8,
        queue_capacity: 32,
        rebalance_watermark: 0.3,
        ..IngestConfig::default()
    };
    eprintln!(
        "bench4: scenes={scenes} rocks={} slots={} queue={} seed={} (K40 model)",
        a.rocks, cfg.max_slots, cfg.queue_capacity, a.seed
    );

    // ---- Phase A: sustained closed-loop churn.
    let mut sched = BatchScheduler::new(k40(), cfg);
    let mut traffic = ClosedLoopTraffic::new(2 * cfg.max_slots, traffic_cfg(a.rocks), a.seed);
    let bound = (scenes as usize) * 40 + 200;
    let t = Instant::now();
    let mut ticks_a = 0usize;
    while (traffic.emitted() < scenes || sched.in_flight() > 0) && ticks_a < bound {
        if traffic.emitted() < scenes {
            for sub in traffic.arrivals(sched.now(), sched.in_flight()) {
                sched
                    .try_submit(sub)
                    .expect("closed loop stays within the bound");
            }
        }
        sched.tick();
        ticks_a += 1;
    }
    let wall_a = t.elapsed().as_secs_f64();
    assert_eq!(sched.in_flight(), 0, "sustained phase must drain");
    let (completed_a, shed_a, refused_a) = audit_terminal(&sched);
    let stats_a = sched.stats().clone();
    assert!(
        stats_a.max_queue_len <= cfg.queue_capacity,
        "queue bound violated: {} > {}",
        stats_a.max_queue_len,
        cfg.queue_capacity
    );
    let modeled_a = sched.batch().device().modeled_seconds();
    let throughput = completed_a as f64 / modeled_a;
    let p50 = stats_a.admission_latency_percentile(50.0).unwrap_or(0);
    let p99 = stats_a.admission_latency_percentile(99.0).unwrap_or(0);
    let drain_rate = completed_a as f64 / ticks_a as f64; // scenes per tick
    eprintln!(
        "  sustained: {completed_a} completed / {refused_a} refused in {ticks_a} ticks \
         | {throughput:.1} scenes/modeled-s | admission p50={p50} p99={p99} ticks \
         | {} rebalances",
        stats_a.rebalances
    );

    // ---- Phase B: open-loop overload at 2x the measured drain rate,
    // every submission deadlined.
    let mut sched_b = BatchScheduler::new(k40(), cfg);
    let overload_cfg = TrafficConfig {
        deadline_permille: 1000,
        deadline_slack: 12,
        ..traffic_cfg(a.rocks)
    };
    let mut overload = OpenLoopTraffic::new(2.0 * drain_rate, overload_cfg, a.seed + 1);
    let mut attempted = 0u64;
    let mut rejected_at_submit = 0u64;
    let overload_ticks = 300usize;
    for _ in 0..overload_ticks {
        for sub in overload.arrivals(sched_b.now()) {
            attempted += 1;
            if sched_b.try_submit(sub).is_err() {
                rejected_at_submit += 1;
            }
        }
        sched_b.tick();
    }
    sched_b.drain(bound);
    assert_eq!(sched_b.in_flight(), 0, "overload phase must drain");
    let (completed_b, shed_b, refused_b) = audit_terminal(&sched_b);
    let stats_b = sched_b.stats().clone();
    assert!(
        stats_b.max_queue_len <= cfg.queue_capacity,
        "overload must not grow the queue past its bound"
    );
    let shed_rate = (shed_b + rejected_at_submit) as f64 / attempted.max(1) as f64;
    eprintln!(
        "  overload 2x: {attempted} offered | {completed_b} completed, {shed_b} shed, \
         {rejected_at_submit} rejected at submit, {refused_b} refused \
         | shed+rejected rate {:.1}% | max queue {}/{}",
        100.0 * shed_rate,
        stats_b.max_queue_len,
        cfg.queue_capacity
    );

    // ---- Phase C: rebalance overhead — identical seeded churn with
    // compaction enabled vs disabled (watermark > 1 never trips).
    let rebalance_run = |watermark: f64| -> (f64, u64, u64) {
        let mut s = BatchScheduler::new(
            k40(),
            IngestConfig {
                rebalance_watermark: watermark,
                ..cfg
            },
        );
        let mut tr = OpenLoopTraffic::new(drain_rate.min(1.0), traffic_cfg(a.rocks), a.seed + 2);
        for _ in 0..200 {
            for sub in tr.arrivals(s.now()) {
                let _ = s.try_submit(sub);
            }
            s.tick();
        }
        s.drain(bound);
        let (done, _, _) = audit_terminal(&s);
        (
            s.batch().device().modeled_seconds(),
            s.stats().rebalances,
            done,
        )
    };
    let (modeled_on, rebalances_on, done_on) = rebalance_run(0.3);
    let (modeled_off, rebalances_off, done_off) = rebalance_run(2.0);
    assert_eq!(rebalances_off, 0, "watermark 2.0 must never trip");
    assert_eq!(
        done_on, done_off,
        "rebalancing must not change which scenes complete"
    );
    let rebalance_overhead_pct = 100.0 * (modeled_on - modeled_off) / modeled_off;
    assert!(
        rebalance_overhead_pct <= 5.0,
        "rebalance overhead {rebalance_overhead_pct:.2}% exceeds the 5% budget"
    );
    eprintln!(
        "  rebalance: {rebalances_on} compactions | modeled {modeled_on:.6e} s vs {modeled_off:.6e} s off \
         | overhead {rebalance_overhead_pct:+.2}%"
    );

    // ---- Phase D: recovery-from-checkpoint latency.
    let mut sched_d = BatchScheduler::new(k40(), cfg);
    let fleet = rockfall_fleet(&FleetConfig::default().with_scenes(8).with_rocks(a.rocks));
    let mut tickets_d = Vec::new();
    for (sys, params) in fleet {
        tickets_d.push(
            sched_d
                .try_submit(SceneSubmission::new(sys, params, 12))
                .expect("queue has room"),
        );
    }
    for _ in 0..4 {
        sched_d.tick();
    }
    let t = Instant::now();
    let snapshot = sched_d.checkpoint_fleet();
    let text = snapshot.encode();
    let encode_ms = 1e3 * t.elapsed().as_secs_f64();
    let t = Instant::now();
    let decoded = FleetCheckpoint::decode(&text).expect("fleet checkpoint decodes");
    let (mut restored, tickets_r) = BatchScheduler::restore(k40(), cfg, decoded);
    let restore_ms = 1e3 * t.elapsed().as_secs_f64();
    sched_d.drain(bound);
    restored.drain(bound);
    let mut recovery_bit_identical = true;
    for (td, tr) in tickets_d.iter().zip(&tickets_r) {
        let (od, or) = (
            sched_d.status(*td).expect("known ticket"),
            restored.status(*tr).expect("known ticket"),
        );
        let (sd, sr) = (
            od.final_sys.as_ref().expect("completed"),
            or.final_sys.as_ref().expect("completed"),
        );
        for (x, y) in sd.blocks.iter().zip(&sr.blocks) {
            let (cx, cy) = (x.centroid(), y.centroid());
            if cx.x.to_bits() != cy.x.to_bits() || cx.y.to_bits() != cy.y.to_bits() {
                recovery_bit_identical = false;
            }
            for dof in 0..6 {
                if x.velocity[dof].to_bits() != y.velocity[dof].to_bits() {
                    recovery_bit_identical = false;
                }
            }
        }
    }
    assert!(
        recovery_bit_identical,
        "restored fleet diverged from the uninterrupted run"
    );
    eprintln!(
        "  recovery: checkpoint {} bytes | encode {encode_ms:.2} ms | decode+restore {restore_ms:.2} ms \
         | bit_identical={recovery_bit_identical}",
        text.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"overload_safe_scene_ingestion\",\n  \"device\": \"tesla_k40_model\",\n  \
         \"config\": {{ \"scenes\": {scenes}, \"rocks\": {}, \"max_slots\": {}, \"queue_capacity\": {}, \"rebalance_watermark\": {}, \"nan_permille\": 50, \"seed\": {} }},\n  \
         \"units\": \"throughput = completed scenes per modeled device second; latencies in scheduler ticks; recovery in wall ms\",\n  \
         \"sustained\": {{ \"completed\": {completed_a}, \"refused\": {refused_a}, \"shed\": {shed_a}, \"requeued\": {}, \"ticks\": {ticks_a}, \"wall_s\": {wall_a:.6e}, \"modeled_s\": {modeled_a:.6e}, \"throughput_scenes_per_modeled_s\": {throughput:.3}, \"admission_p50_ticks\": {p50}, \"admission_p99_ticks\": {p99}, \"max_queue_len\": {}, \"rebalances\": {} }},\n  \
         \"overload_2x\": {{ \"offered\": {attempted}, \"completed\": {completed_b}, \"shed\": {shed_b}, \"rejected_at_submit\": {rejected_at_submit}, \"refused\": {refused_b}, \"shed_rate\": {shed_rate:.4}, \"max_queue_len\": {}, \"queue_bound_held\": true }},\n  \
         \"rebalance\": {{ \"compactions\": {rebalances_on}, \"modeled_s_on\": {modeled_on:.6e}, \"modeled_s_off\": {modeled_off:.6e}, \"overhead_pct\": {rebalance_overhead_pct:.3}, \"within_5pct_budget\": true }},\n  \
         \"recovery\": {{ \"checkpoint_bytes\": {}, \"encode_ms\": {encode_ms:.3}, \"restore_ms\": {restore_ms:.3}, \"bit_identical\": {recovery_bit_identical} }}\n}}\n",
        a.rocks,
        cfg.max_slots,
        cfg.queue_capacity,
        cfg.rebalance_watermark,
        a.seed,
        stats_a.requeued,
        stats_a.max_queue_len,
        stats_a.rebalances,
        stats_b.max_queue_len,
        text.len(),
    );

    print!("{json}");
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    eprintln!("wrote BENCH_4.json");
}
