//! Block and joint materials.
//!
//! Case 1 of the paper uses "5 different block materials and 38 types of
//! joint materials": block materials give elastic constants and density,
//! joint materials give the Mohr–Coulomb strength of the interfaces that
//! contacts obey.

use serde::{Deserialize, Serialize};

/// Elastic/inertial properties of a rock block (plane-stress continuum).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockMaterial {
    /// Mass density ρ (kg/m³ per unit thickness).
    pub density: f64,
    /// Young's modulus E (Pa).
    pub young: f64,
    /// Poisson's ratio ν.
    pub poisson: f64,
    /// Body force per unit volume (N/m³), typically `(0, -ρ·g)`.
    pub body_force: [f64; 2],
}

impl BlockMaterial {
    /// A generic hard-rock material: ρ = 2600 kg/m³, E = 5 GPa, ν = 0.25,
    /// gravity loading.
    pub fn rock() -> Self {
        let density = 2600.0;
        BlockMaterial {
            density,
            young: 5e9,
            poisson: 0.25,
            body_force: [0.0, -density * 9.81],
        }
    }

    /// Scales the stiffness (softer/ harder variants — the paper's five
    /// block materials differ mostly in modulus and density).
    pub fn with_young(mut self, young: f64) -> Self {
        self.young = young;
        self
    }

    /// Sets the density and updates gravity loading consistently.
    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density;
        self.body_force = [0.0, -density * 9.81];
        self
    }

    /// The plane-stress elasticity matrix rows `[E/(1-ν²)]·[[1,ν,0],[ν,1,0],[0,0,(1-ν)/2]]`.
    pub fn elasticity(&self) -> [[f64; 3]; 3] {
        let f = self.young / (1.0 - self.poisson * self.poisson);
        [
            [f, f * self.poisson, 0.0],
            [f * self.poisson, f, 0.0],
            [0.0, 0.0, f * (1.0 - self.poisson) / 2.0],
        ]
    }
}

/// Mohr–Coulomb strength of a joint (contact interface).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointMaterial {
    /// Friction angle φ in **degrees** (DDA input convention).
    pub friction_angle_deg: f64,
    /// Cohesion c (Pa·m along the contact length).
    pub cohesion: f64,
    /// Tensile strength (Pa·m); contacts carrying more tension open.
    pub tensile_strength: f64,
}

impl JointMaterial {
    /// A frictional joint with no cohesion (the common DDA default).
    pub fn frictional(friction_angle_deg: f64) -> Self {
        JointMaterial {
            friction_angle_deg,
            cohesion: 0.0,
            tensile_strength: 0.0,
        }
    }

    /// `tan φ`.
    pub fn tan_phi(&self) -> f64 {
        self.friction_angle_deg.to_radians().tan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rock_defaults_consistent() {
        let r = BlockMaterial::rock();
        assert!((r.body_force[1] + r.density * 9.81).abs() < 1e-9);
        assert_eq!(r.body_force[0], 0.0);
    }

    #[test]
    fn with_density_updates_gravity() {
        let r = BlockMaterial::rock().with_density(2000.0);
        assert!((r.body_force[1] + 2000.0 * 9.81).abs() < 1e-9);
    }

    #[test]
    fn elasticity_matrix_symmetric_positive() {
        let r = BlockMaterial::rock();
        let e = r.elasticity();
        assert_eq!(e[0][1], e[1][0]);
        assert!(e[0][0] > 0.0 && e[1][1] > 0.0 && e[2][2] > 0.0);
        // Shear modulus relation: e22 = E/(2(1+ν)).
        let g = r.young / (2.0 * (1.0 + r.poisson));
        assert!((e[2][2] - g).abs() / g < 1e-12);
    }

    #[test]
    fn joint_tan_phi() {
        let j = JointMaterial::frictional(45.0);
        assert!((j.tan_phi() - 1.0).abs() < 1e-12);
        assert_eq!(j.cohesion, 0.0);
    }
}
