//! Case-1-style slope stability analysis with SVG snapshots.
//!
//! Builds a jointed slope (the paper's case 1 at reduced scale), runs the
//! static GPU pipeline until the kinetic-energy proxy stops decaying, and
//! writes `slope_initial.svg` / `slope_final.svg` — the Fig 11 / Fig 12
//! analogues.
//!
//! Run with: `cargo run --release --example slope_stability -- [blocks] [steps]`

use dda_repro::core::pipeline::GpuPipeline;
use dda_repro::simt::{Device, DeviceProfile};
use dda_repro::workloads::render::{render_svg, RenderOptions};
use dda_repro::workloads::{slope_case, SlopeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(250);
    let steps: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(12);

    let cfg = SlopeConfig::default().with_target_blocks(blocks);
    let (sys, params) = slope_case(&cfg);
    println!(
        "slope model: {} blocks, {} block materials, {} joint materials",
        sys.len(),
        sys.block_materials.len(),
        sys.joint_materials.len()
    );

    std::fs::write(
        "slope_initial.svg",
        render_svg(&sys, &RenderOptions::default()),
    )
    .expect("write slope_initial.svg");

    let device = Device::new(DeviceProfile::tesla_k40());
    let mut pipe = GpuPipeline::new(sys, params, device);
    println!("\nstep | contacts | non-diag sub-matrices | max displacement (m)");
    for step in 0..steps {
        let r = pipe.step();
        println!(
            "{step:>4} | {:>8} | {:>21} | {:.3e}",
            r.n_contacts, r.n_upper, r.max_displacement
        );
    }

    std::fs::write(
        "slope_final.svg",
        render_svg(&pipe.sys, &RenderOptions::default()),
    )
    .expect("write slope_final.svg");

    println!(
        "\nwrote slope_initial.svg and slope_final.svg ({} blocks)",
        pipe.sys.len()
    );
    println!(
        "modeled K40 time: {:.1} ms over {steps} steps",
        pipe.times.total() * 1e3
    );
}
