//! Soak test for the ingestion layer (requires `--features fault-inject`;
//! `#[ignore]`d so it only runs in the dedicated CI soak job:
//! `cargo test --release --features fault-inject --test ingest_soak -- --ignored`).
//!
//! ~1000 scenes are pushed through an 8-slot [`BatchScheduler`] in two
//! halves:
//!
//! * **churn** — open-loop traffic with NaN-poisoned scenes, a 25% mix
//!   of scattered sparse fields running the grid + cache broad phase,
//!   admission deadlines, and periodic device-level fault injection
//!   against random slots. The scheduler must never panic, never grow the queue past its
//!   bound, and leave every ticket in a structured terminal state. A fleet
//!   checkpoint taken mid-churn must survive the text codec exactly.
//! * **bitwise** — injection disarmed (poisoned traffic still flows);
//!   sampled healthy scenes that complete must match a solo
//!   [`GpuPipeline`] run of the same submission bit for bit, proving the
//!   whole intake/admit/rebalance machinery never perturbs physics.

#![cfg(feature = "fault-inject")]

use dda_repro::core::pipeline::{FleetCheckpoint, GpuPipeline};
use dda_repro::core::{BatchScheduler, IngestConfig, SceneStatus, SceneSubmission, Ticket};
use dda_repro::simt::{Device, DeviceProfile, Fault};
use dda_repro::workloads::{OpenLoopTraffic, TrafficConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn cfg() -> IngestConfig {
    IngestConfig {
        max_slots: 8,
        queue_capacity: 32,
        rebalance_watermark: 0.4,
        checkpoint_interval: 16,
        ..IngestConfig::default()
    }
}

/// Every ticket must be terminal; returns (completed, shed, refused).
fn audit(sched: &BatchScheduler) -> (usize, usize, usize) {
    let (mut completed, mut shed, mut refused) = (0, 0, 0);
    for (ticket, rec) in sched.records() {
        match rec.status {
            SceneStatus::Completed => completed += 1,
            SceneStatus::Shed { .. } => shed += 1,
            SceneStatus::Refused { .. } => refused += 1,
            other => panic!("ticket {ticket} ended non-terminal: {other:?}"),
        }
    }
    (completed, shed, refused)
}

#[test]
#[ignore = "soak: run explicitly in the CI soak job"]
fn thousand_scene_soak_with_fault_churn() {
    const SOAK_SCENES: u64 = 700;
    const BITWISE_SCENES: u64 = 300;
    const FAULTS: [Fault; 2] = [Fault::NanRhs, Fault::IndefiniteOperator];

    // ---- Half 1: churn. Poisoned traffic, deadlines, injected device
    // faults against a rotating slot.
    let mut sched = BatchScheduler::new(k40(), cfg());
    let churn = TrafficConfig {
        rocks: 2,
        run_steps_min: 2,
        run_steps_max: 4,
        nan_permille: 60,
        scatter_permille: 250,
        deadline_permille: 150,
        deadline_slack: 10,
        ..TrafficConfig::default()
    };
    let mut traffic = OpenLoopTraffic::new(1.2, churn.clone(), 0xDDA);
    let mut fleet_text: Option<String> = None;
    let mut tick = 0u64;
    while (traffic.emitted() < SOAK_SCENES || sched.in_flight() > 0) && tick < 40_000 {
        if traffic.emitted() < SOAK_SCENES {
            for sub in traffic.arrivals(sched.now()) {
                let _ = sched.try_submit(sub); // QueueFull is a valid outcome here
            }
        }
        if tick % 40 == 20 {
            let slot = (tick / 40) as usize % cfg().max_slots;
            let fault = FAULTS[(tick / 40) as usize % FAULTS.len()];
            sched.batch().device().arm_fault(slot, fault, 1);
        }
        sched.tick();
        if tick == 200 {
            // Mid-churn fleet snapshot must survive the codec exactly.
            let snap = sched.checkpoint_fleet();
            let text = snap.encode();
            let redecoded = FleetCheckpoint::decode(&text).expect("fleet snapshot decodes");
            assert_eq!(text, redecoded.encode(), "fleet codec must be text-stable");
            fleet_text = Some(text);
        }
        tick += 1;
    }
    sched.batch().device().disarm_faults();
    assert_eq!(sched.in_flight(), 0, "churn half must drain");
    assert!(
        fleet_text.is_some(),
        "soak must run long enough to snapshot"
    );
    let stats = sched.stats();
    assert!(
        stats.max_queue_len <= cfg().queue_capacity,
        "queue bound violated: {} > {}",
        stats.max_queue_len,
        cfg().queue_capacity
    );
    let (completed, shed, refused) = audit(&sched);
    assert!(
        completed > 0 && refused > 0,
        "churn must exercise both paths"
    );
    eprintln!(
        "soak churn: {} submitted, {completed} completed, {shed} shed, {refused} refused, \
         {} requeued, {} rebalances, {} checkpoints, max queue {}",
        stats.submitted,
        stats.requeued,
        stats.rebalances,
        stats.checkpoints_taken,
        stats.max_queue_len
    );

    // ---- Half 2: bitwise. No injection; sampled healthy completions must
    // match solo pipeline runs exactly.
    let mut sched = BatchScheduler::new(k40(), cfg());
    let calm = TrafficConfig {
        nan_permille: 40,
        deadline_permille: 0,
        ..churn
    };
    let mut traffic = OpenLoopTraffic::new(1.0, calm, 0xF1EE7);
    let mut samples: Vec<(Ticket, SceneSubmission)> = Vec::new();
    let mut tick = 0u64;
    while (traffic.emitted() < BITWISE_SCENES || sched.in_flight() > 0) && tick < 40_000 {
        if traffic.emitted() < BITWISE_SCENES {
            for sub in traffic.arrivals(sched.now()) {
                let healthy = !sub
                    .sys
                    .blocks
                    .iter()
                    .any(|b| b.velocity.iter().any(|v| v.is_nan()));
                let keep = healthy && samples.len() < 30 && traffic.emitted().is_multiple_of(7);
                let copy = keep.then(|| {
                    SceneSubmission::new(sub.sys.clone(), sub.params.clone(), sub.run_steps)
                });
                if let Ok(ticket) = sched.try_submit(sub) {
                    if let Some(c) = copy {
                        samples.push((ticket, c));
                    }
                }
            }
        }
        sched.tick();
        tick += 1;
    }
    assert_eq!(sched.in_flight(), 0, "bitwise half must drain");
    let (_, _, _) = audit(&sched);
    assert!(samples.len() >= 10, "need a meaningful bitwise sample");
    let mut verified = 0;
    for (ticket, sub) in samples {
        let rec = sched.status(ticket).expect("sampled ticket recorded");
        assert_eq!(
            rec.status,
            SceneStatus::Completed,
            "healthy sampled scene {ticket} must complete"
        );
        let batch_sys = rec
            .final_sys
            .as_ref()
            .expect("completed scenes keep final_sys");
        let mut solo = GpuPipeline::new(sub.sys, sub.params, k40());
        solo.run(sub.run_steps as usize);
        let solo_sys = solo.scene_state().sys;
        for (i, (a, b)) in batch_sys.blocks.iter().zip(&solo_sys.blocks).enumerate() {
            let (ca, cb) = (a.centroid(), b.centroid());
            assert_eq!(
                ca.x.to_bits(),
                cb.x.to_bits(),
                "ticket {ticket} block {i} x"
            );
            assert_eq!(
                ca.y.to_bits(),
                cb.y.to_bits(),
                "ticket {ticket} block {i} y"
            );
            for dof in 0..6 {
                assert_eq!(
                    a.velocity[dof].to_bits(),
                    b.velocity[dof].to_bits(),
                    "ticket {ticket} block {i} dof {dof}"
                );
            }
        }
        verified += 1;
    }
    eprintln!("soak bitwise: {verified} sampled survivors bit-identical to solo runs");
}
