//! Narrow-phase contact detection: distance judgment, angle judgment, and
//! the VE / VV1 / VV2 classification (§III-A's first two classifications,
//! Fig 3).
//!
//! For every candidate pair, each vertex of one block is tested against the
//! edges of the other (both orientations). The *distance judgment* keeps
//! features closer than the contact range `d0` and splits them into
//! vertex–edge (projection inside the edge) and vertex–vertex (projection
//! at an endpoint). The *angle judgment* abandons candidates whose material
//! wedges cannot face each other, and splits the surviving VV contacts into
//! VV1 (the facing edges are parallel — an edge–edge contact, two springs)
//! and VV2 (a genuine corner contact — one spring on the shortest-exit
//! edge).
//!
//! The serial and GPU paths share the same pure per-pair routine
//! ([`pair_contacts`]); the GPU path loads geometry through instrumented
//! device buffers and records the judgment branches per classification
//! site, which is what experiment D1 measures.

use super::soa::GeomSoa;
use super::types::{Contact, ContactKind};
use crate::system::BlockSystem;
use dda_geom::angle::{ve_admissible, vv_admissible, Wedge};
use dda_geom::{Segment, Vec2};
use dda_simt::serial::CpuCounter;
use dda_simt::Device;

/// Angular slack for the angle judgment (radians).
const ANGLE_TOL: f64 = 0.05;
/// Angular tolerance for the VV1 parallel-edge test (radians).
const PARALLEL_TOL: f64 = 0.02;

/// Per-candidate judgment outcomes of one `(i → j)` orientation, used by
/// the GPU path to record the *actual* branch fronts.
///
/// One entry of `dist` per vertex of block `i` (distance judgment:
/// in range or abandoned). For each in-range vertex, one entry of `ve`
/// (distance judgment's VE-vs-VV classification) and one entry of
/// `accept` (angle judgment: did the candidate survive to a contact?).
/// Rejected candidates are recorded too — an always-`true` record here
/// would blind the divergence model to the very branches the
/// data-classification framework exists to remove.
#[derive(Debug, Default, Clone)]
pub struct JudgmentOutcomes {
    /// Distance judgment per vertex of `i`: `dist < d0`.
    pub dist: Vec<bool>,
    /// Per in-range candidate: classified VE (projection inside the edge).
    pub ve: Vec<bool>,
    /// Per in-range candidate: accepted by the angle judgment (produced a
    /// contact) or abandoned.
    pub accept: Vec<bool>,
}

/// Contacts of one orientation `(i → j)` of a candidate pair.
///
/// `vi`/`vj` are the CCW vertex rings of the two blocks. Returns VE
/// contacts of vertices of `i` against edges of `j`, plus VV contacts
/// resolved as described in the module docs. Pure function shared by the
/// serial and GPU paths.
pub fn pair_contacts(i: u32, j: u32, vi: &[Vec2], vj: &[Vec2], d0: f64) -> Vec<Contact> {
    pair_contacts_judged(i, j, vi, vj, d0).0
}

/// [`pair_contacts`] plus the per-candidate judgment outcomes. The contact
/// list is identical to `pair_contacts`; the outcomes only feed the
/// divergence accounting of the GPU path.
pub fn pair_contacts_judged(
    i: u32,
    j: u32,
    vi: &[Vec2],
    vj: &[Vec2],
    d0: f64,
) -> (Vec<Contact>, JudgmentOutcomes) {
    let mut out = Vec::new();
    let mut jo = JudgmentOutcomes::default();
    let nj = vj.len();
    for (v_idx, &p) in vi.iter().enumerate() {
        // Distance judgment: closest feature of block j.
        let mut best = (f64::INFINITY, 0usize, 0.0f64); // (dist, edge, t)
        for e in 0..nj {
            let seg = Segment::new(vj[e], vj[(e + 1) % nj]);
            let t = seg.closest_param(p);
            let dist = seg.point_at(t).dist(p);
            if dist < best.0 {
                best = (dist, e, t);
            }
        }
        let (dist, e, t) = best;
        jo.dist.push(dist < d0);
        if dist >= d0 {
            continue; // abandoned by the distance judgment
        }
        let seg = Segment::new(vj[e], vj[(e + 1) % nj]);
        let len = seg.length().max(1e-12);
        let band = (0.5 * d0 / len).min(0.4);

        let wedge_i = wedge_of(vi, v_idx);
        let is_ve = t > band && t < 1.0 - band;
        jo.ve.push(is_ve);
        if is_ve {
            // --- VE ---
            let admissible = ve_admissible(&wedge_i, seg.outward_normal(), ANGLE_TOL);
            jo.accept.push(admissible);
            if admissible {
                let mut c = Contact::new(i, j, v_idx as u32, e as u32, u32::MAX, ContactKind::Ve);
                c.edge_ratio = t;
                out.push(c);
            }
            continue;
        }

        // --- VV ---
        let v2 = if t <= band { e } else { (e + 1) % nj };
        let wedge_j = wedge_of(vj, v2);
        if !vv_admissible(&wedge_i, &wedge_j, ANGLE_TOL) {
            jo.accept.push(false); // abandoned by the angle judgment
            continue;
        }

        // Parallel test: the facing edges adjacent to the two vertices.
        let i_edges = adjacent_edges(vi, v_idx);
        let j_edges = adjacent_edges(vj, v2);
        let mut parallel_edge: Option<usize> = None;
        'outer: for ie in &i_edges {
            for (je_idx, je) in [(prev_edge(nj, v2), &j_edges[0]), (v2, &j_edges[1])] {
                if ie.is_parallel_to(je, PARALLEL_TOL) && ie.unit_dir().dot(je.unit_dir()) < 0.0 {
                    parallel_edge = Some(je_idx);
                    break 'outer;
                }
            }
        }

        if let Some(pe) = parallel_edge {
            // --- VV1: vertex presses the parallel facing edge ---
            let pseg = Segment::new(vj[pe], vj[(pe + 1) % nj]);
            let admissible = ve_admissible(&wedge_i, pseg.outward_normal(), ANGLE_TOL);
            jo.accept.push(admissible);
            if admissible {
                let mut c =
                    Contact::new(i, j, v_idx as u32, pe as u32, v2 as u32, ContactKind::Vv1);
                c.edge_ratio = pseg.closest_param(p);
                out.push(c);
            }
            continue;
        }

        // --- VV2: shortest-exit edge among the two adjacent to v2 ---
        let mut chosen: Option<(usize, f64, f64)> = None; // (edge, |dist|, t)
        for &cand in &[prev_edge(nj, v2), v2] {
            let cseg = Segment::new(vj[cand], vj[(cand + 1) % nj]);
            if !ve_admissible(&wedge_i, cseg.outward_normal(), ANGLE_TOL) {
                continue;
            }
            let dist = cseg.signed_line_dist(p).abs();
            if chosen.is_none_or(|(_, d, _)| dist < d) {
                chosen = Some((cand, dist, cseg.closest_param(p)));
            }
        }
        jo.accept.push(chosen.is_some());
        if let Some((ce, _, ct)) = chosen {
            let mut c = Contact::new(i, j, v_idx as u32, ce as u32, v2 as u32, ContactKind::Vv2);
            c.edge_ratio = ct;
            out.push(c);
        }
    }
    (out, jo)
}

fn wedge_of(ring: &[Vec2], v: usize) -> Wedge {
    let n = ring.len();
    Wedge::new(ring[(v + n - 1) % n], ring[v], ring[(v + 1) % n])
}

fn prev_edge(n: usize, v: usize) -> usize {
    (v + n - 1) % n
}

/// The two edges adjacent to vertex `v`: `(incoming, outgoing)`.
fn adjacent_edges(ring: &[Vec2], v: usize) -> [Segment; 2] {
    let n = ring.len();
    [
        Segment::new(ring[(v + n - 1) % n], ring[v]),
        Segment::new(ring[v], ring[(v + 1) % n]),
    ]
}

/// Deduplicates VV2 contacts discovered from both orientations of the same
/// vertex pair, keeping the `i < j` record (deterministic, matching the
/// GPU path). Returns contacts sorted by transfer key.
fn dedup_and_sort(mut contacts: Vec<Contact>) -> Vec<Contact> {
    use std::collections::HashMap;
    let mut vv2: HashMap<(u32, u32, u32, u32), usize> = HashMap::new();
    let mut keep: Vec<Contact> = Vec::with_capacity(contacts.len());
    for c in contacts.drain(..) {
        if c.kind == ContactKind::Vv2 {
            // Unordered (block, vertex) pair key.
            let a = (c.i, c.vertex);
            let b = (c.j, c.vertex2);
            let key = if a <= b {
                (a.0, a.1, b.0, b.1)
            } else {
                (b.0, b.1, a.0, a.1)
            };
            if let Some(&pos) = vv2.get(&key) {
                // Keep the record with the smaller owning block index.
                if c.i < keep[pos].i {
                    keep[pos] = c;
                }
                continue;
            }
            vv2.insert(key, keep.len());
        }
        keep.push(c);
    }
    keep.sort_by_key(|c| c.key());
    keep
}

/// Serial narrow phase over candidate pairs.
pub fn narrow_phase_serial(
    sys: &BlockSystem,
    pairs: &[(u32, u32)],
    d0: f64,
    counter: &mut CpuCounter,
) -> Vec<Contact> {
    let mut contacts = Vec::new();
    for &(a, b) in pairs {
        let va = sys.blocks[a as usize].poly.vertices();
        let vb = sys.blocks[b as usize].poly.vertices();
        contacts.extend(pair_contacts(a, b, va, vb, d0));
        contacts.extend(pair_contacts(b, a, vb, va, d0));
        let work = (va.len() * vb.len()) as u64;
        counter.flop(30 * work);
        counter.bytes(16 * (va.len() + vb.len()) as u64);
    }
    dedup_and_sort(contacts)
}

/// GPU narrow phase: one thread per (pair, orientation); geometry is loaded
/// through device buffers, judgment outcomes recorded as branch sites.
///
/// Emission uses the count → scan → emit pattern so survivors land "in a
/// successive array" without write conflicts.
pub fn narrow_phase_gpu(
    dev: &Device,
    soa: &GeomSoa,
    pairs: &[(u32, u32)],
    d0: f64,
) -> Vec<Contact> {
    narrow_phase_gpu_scheduled(dev, soa, pairs, d0, None)
}

/// [`narrow_phase_gpu`] with an optional scheduling permutation over the
/// `2 × pairs` orientation threads: thread `t` processes orientation
/// `sched[t]` but keeps writing that orientation's count/emit slots, so
/// the output array — and therefore the returned contact list — is
/// bitwise identical to the unscheduled path. Only the warp *composition*
/// changes, which is what a class-sorted schedule exploits to keep
/// judgment branches warp-uniform. A schedule of the wrong length is
/// ignored (permutations are correctness-neutral, so stale ones are
/// simply not applied).
pub fn narrow_phase_gpu_scheduled(
    dev: &Device,
    soa: &GeomSoa,
    pairs: &[(u32, u32)],
    d0: f64,
    sched: Option<&[u32]>,
) -> Vec<Contact> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let n_threads = pairs.len() * 2;
    let sched = sched.filter(|s| s.len() == n_threads);
    let pair_flat: Vec<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();

    // Shared geometry loader: pulls one orientation's vertex rings through
    // the device buffers and runs the pure pair routine.
    let run_pair = |lane: &mut dda_simt::Lane,
                    item: usize,
                    b_pairs: &dda_simt::GBuf<u32>,
                    b_vx: &dda_simt::GBuf<f64>,
                    b_vy: &dda_simt::GBuf<f64>,
                    b_vp: &dda_simt::GBuf<u32>|
     -> Vec<Contact> {
        let pair_idx = item / 2;
        let flip = item % 2 == 1;
        let a = lane.ld(b_pairs, 2 * pair_idx) as usize;
        let b = lane.ld(b_pairs, 2 * pair_idx + 1) as usize;
        let (i, j) = if flip { (b, a) } else { (a, b) };
        let load_ring = |lane: &mut dda_simt::Lane, blk: usize| -> Vec<Vec2> {
            let lo = lane.ld(b_vp, blk) as usize;
            let hi = lane.ld(b_vp, blk + 1) as usize;
            (lo..hi)
                .map(|k| Vec2::new(lane.ld_tex(b_vx, k), lane.ld_tex(b_vy, k)))
                .collect()
        };
        let vi = load_ring(lane, i);
        let vj = load_ring(lane, j);
        lane.flop(30 * (vi.len() * vj.len()) as u32);
        let (found, jo) = pair_contacts_judged(i as u32, j as u32, &vi, &vj, d0);
        // Judgment-site branches with their *actual* outcomes: distance
        // (site 0) per vertex, VE-vs-VV classification (site 1) and angle
        // acceptance (site 2) per in-range candidate — rejected candidates
        // included, so the model sees the real branch front rather than an
        // always-taken record that can never register divergence.
        for &d in &jo.dist {
            lane.branch(0, d);
        }
        for &v in &jo.ve {
            lane.branch(1, v);
        }
        for &acc in &jo.accept {
            lane.branch(2, acc);
        }
        found
    };

    // Kernel 1: count survivors per thread. Scheduled threads scatter
    // their counts back to the discovery-order slot of the orientation
    // they processed (slots stay unique: the schedule is a permutation).
    let mut counts = vec![0u32; n_threads];
    {
        let b_pairs = dev.bind_ro(&pair_flat);
        let b_vx = dev.bind_ro(&soa.vx);
        let b_vy = dev.bind_ro(&soa.vy);
        let b_vp = dev.bind_ro(&soa.vptr);
        let b_counts = dev.bind(&mut counts);
        let b_sched = sched.map(|s| dev.bind_ro(s));
        dev.launch("narrow.count", n_threads, |lane| {
            let item = match &b_sched {
                Some(b) => lane.ld(b, lane.gid) as usize,
                None => lane.gid,
            };
            let found = run_pair(lane, item, &b_pairs, &b_vx, &b_vy, &b_vp);
            lane.st(&b_counts, item, found.len() as u32);
        });
    }

    // Scan for output offsets.
    let (offsets, total) = dda_simt::primitives::scan_exclusive_u32(dev, &counts);

    // Kernel 2: emit into the successive array at the discovery-order
    // offsets, so emission order is schedule-independent.
    let mut out: Vec<Contact> =
        vec![Contact::new(0, 0, 0, 0, u32::MAX, ContactKind::Ve); total as usize];
    if total > 0 {
        let b_pairs = dev.bind_ro(&pair_flat);
        let b_vx = dev.bind_ro(&soa.vx);
        let b_vy = dev.bind_ro(&soa.vy);
        let b_vp = dev.bind_ro(&soa.vptr);
        let b_off = dev.bind_ro(&offsets);
        let b_out = dev.bind(&mut out);
        let b_sched = sched.map(|s| dev.bind_ro(s));
        dev.launch("narrow.emit", n_threads, |lane| {
            let item = match &b_sched {
                Some(b) => lane.ld(b, lane.gid) as usize,
                None => lane.gid,
            };
            let found = run_pair(lane, item, &b_pairs, &b_vx, &b_vy, &b_vp);
            let base = lane.ld(&b_off, item) as usize;
            for (k, c) in found.into_iter().enumerate() {
                lane.st(&b_out, base + k, c);
            }
        });
    }

    dedup_and_sort(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn sys_of(polys: Vec<Polygon>) -> BlockSystem {
        BlockSystem::new(
            polys.into_iter().map(|p| Block::new(p, 0)).collect(),
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        )
    }

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn block_resting_on_floor_gives_ve_contacts() {
        // A square sitting on a wide floor: its two bottom corners are VE
        // contacts against the floor's top edge.
        let sys = sys_of(vec![
            Polygon::rect(-5.0, -1.0, 5.0, 0.0), // floor
            Polygon::rect(0.0, 0.0, 1.0, 1.0),   // box
        ]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut c);
        let ve: Vec<_> = contacts
            .iter()
            .filter(|c| c.kind == ContactKind::Ve)
            .collect();
        assert_eq!(
            ve.len(),
            2,
            "two corners on the edge interior: {contacts:?}"
        );
        // Both contacts: vertex of the box (block 1) onto floor's top edge.
        for c in &ve {
            assert_eq!(c.i, 1);
            assert_eq!(c.j, 0);
            assert!(c.edge_ratio > 0.0 && c.edge_ratio < 1.0);
        }
    }

    #[test]
    fn aligned_boxes_give_vv1_corner_contacts() {
        // Two equal boxes side by side: corners meet corners with parallel
        // vertical faces → VV1.
        let sys = sys_of(vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(1.0, 0.0, 2.0, 1.0),
        ]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut c);
        assert!(!contacts.is_empty());
        assert!(
            contacts.iter().all(|c| c.kind == ContactKind::Vv1),
            "aligned corner contacts must be VV1: {contacts:?}"
        );
        // Edge–edge behaviour: springs from both sides.
        assert!(contacts.iter().any(|c| c.i == 0));
        assert!(contacts.iter().any(|c| c.i == 1));
    }

    #[test]
    fn rotated_corner_gives_vv2() {
        // A diamond (rotated square) tip approaching a box *corner* with
        // non-parallel edges.
        let diamond = Polygon::new(vec![
            Vec2::new(2.01, 1.0),
            Vec2::new(2.8, 0.2),
            Vec2::new(3.6, 1.0),
            Vec2::new(2.8, 1.8),
        ]);
        let sys = sys_of(vec![Polygon::rect(0.0, 0.0, 2.0, 1.0), diamond]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut c);
        assert!(
            contacts.iter().any(|c| c.kind == ContactKind::Vv2),
            "expected a VV2 contact: {contacts:?}"
        );
        // VV2 dedup: exactly one record per vertex pair.
        let vv2: Vec<_> = contacts
            .iter()
            .filter(|c| c.kind == ContactKind::Vv2)
            .collect();
        assert_eq!(vv2.len(), 1);
    }

    #[test]
    fn distant_blocks_abandoned() {
        let sys = sys_of(vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(3.0, 0.0, 4.0, 1.0),
        ]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut c);
        assert!(contacts.is_empty());
    }

    #[test]
    fn far_vertices_abandoned_by_distance_judgment() {
        // A tall block just above another: only the near (bottom) vertices
        // of the upper block are within d0; its top vertices must be
        // abandoned by the distance judgment.
        let sys = sys_of(vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(0.2, 1.02, 0.8, 2.0),
        ]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut c);
        assert!(!contacts.is_empty());
        for ct in &contacts {
            if ct.i == 1 {
                let v = sys.blocks[1].poly.vertex(ct.vertex as usize);
                assert!(v.y < 1.5, "far vertex {v:?} should be abandoned: {ct:?}");
            }
        }
    }

    #[test]
    fn angle_judgment_rejects_vertex_pressing_own_material_side() {
        // A flat-bottomed block whose bottom edge carries a collinear
        // midpoint vertex, hovering just above a floor: the midpoint vertex
        // has a π wedge opening downward, so pressing *down* on the floor
        // is admissible — but pressing *up* against a ceiling directly
        // above the block's top edge midpoint vertex is not when material
        // fills the upper half plane. Construct the inadmissible case: the
        // block's top edge has a collinear midpoint vertex, and a ceiling
        // sits above the *floor* block — i.e. the midpoint vertex of the
        // floor's BOTTOM edge (material above) vs a slab below it.
        let floor = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0), // collinear midpoint on the bottom edge
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(0.0, 1.0),
        ]);
        let slab = Polygon::rect(0.4, -1.0, 1.6, -0.02);
        let sys = sys_of(vec![floor, slab]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut c);
        // The floor's bottom-edge vertices may contact the slab's top edge
        // (material above pressing down is admissible), but no contact may
        // have the slab's TOP vertices pressing INTO the floor's bottom
        // edge with the approach direction inside the slab's material —
        // i.e. every emitted VE contact must satisfy the wedge test, which
        // we re-verify directly here.
        for ct in contacts.iter().filter(|c| c.kind == ContactKind::Ve) {
            let ring_i = sys.blocks[ct.i as usize].poly.vertices();
            let wedge = super::wedge_of(ring_i, ct.vertex as usize);
            let seg = sys.blocks[ct.j as usize].poly.edge(ct.edge as usize);
            assert!(
                ve_admissible(&wedge, seg.outward_normal(), 0.05),
                "inadmissible contact emitted: {ct:?}"
            );
        }
    }

    #[test]
    fn gpu_matches_serial() {
        let diamond = Polygon::new(vec![
            Vec2::new(2.01, 0.5),
            Vec2::new(2.8, -0.3),
            Vec2::new(3.6, 0.5),
            Vec2::new(2.8, 1.3),
        ]);
        let sys = sys_of(vec![
            Polygon::rect(-5.0, -1.0, 5.0, 0.0),
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(1.0, 0.0, 2.0, 1.0),
            diamond,
        ]);
        let pairs = vec![(0u32, 1u32), (0, 2), (1, 2), (2, 3)];
        let mut c = CpuCounter::new();
        let serial = narrow_phase_serial(&sys, &pairs, 0.05, &mut c);
        let d = dev();
        let soa = GeomSoa::build(&sys);
        let gpu = narrow_phase_gpu(&d, &soa, &pairs, 0.05);
        assert_eq!(serial.len(), gpu.len());
        for (a, b) in serial.iter().zip(&gpu) {
            assert_eq!(a, b);
        }
        // Divergence was observed at the judgment sites.
        let stats = d.trace().total_stats();
        assert!(stats.branch_groups > 0);
    }

    #[test]
    fn gpu_empty_pairs() {
        let sys = sys_of(vec![Polygon::rect(0.0, 0.0, 1.0, 1.0)]);
        let d = dev();
        let soa = GeomSoa::build(&sys);
        assert!(narrow_phase_gpu(&d, &soa, &[], 0.1).is_empty());
    }

    #[test]
    fn contacts_sorted_by_key() {
        let sys = sys_of(vec![
            Polygon::rect(-5.0, -1.0, 5.0, 0.0),
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(1.0, 0.0, 2.0, 1.0),
        ]);
        let mut c = CpuCounter::new();
        let contacts = narrow_phase_serial(&sys, &[(0, 1), (0, 2), (1, 2)], 0.05, &mut c);
        for w in contacts.windows(2) {
            assert!(w[0].key() <= w[1].key());
        }
    }
}
