//! The open–close iteration (loop 3 of Fig 1).
//!
//! Given the checking module's per-contact measures, each contact's state
//! is re-decided:
//!
//! * separation (negative normal measure beyond the tensile allowance) →
//!   **open**;
//! * compression with the shear force inside the Mohr–Coulomb margin →
//!   **lock**;
//! * compression with the margin exceeded → **slide**.
//!
//! The step's equations are re-assembled and re-solved until no state
//! changes ("no interpenetrations between the contacted blocks and no
//! tension between the separate blocks"). The state-change indicators
//! `p1`/`p2` computed here drive the C1…C5 categories of the non-diagonal
//! building classification.

use crate::contact::types::{Contact, ContactState};
use crate::interpenetration::GapArrays;
use dda_simt::serial::CpuCounter;
use dda_simt::Device;

/// Relative hysteresis band on the friction limit: a locked contact slides
/// only when the shear force exceeds the limit, and a sliding contact
/// re-locks only when the shear force falls below `(1 − band)` of it.
/// Without the band, marginal contacts flip lock↔slide every iteration and
/// the open–close loop cannot settle (the classical DDA remedy).
const FRICTION_HYSTERESIS: f64 = 0.1;

/// After this many state flips within one open–close loop a closed contact
/// is frozen in the slide state: it sits at the friction limit, where the
/// lock and slide models bracket the same physical answer.
pub const FREEZE_FLIPS: u32 = 2;

/// Pure state-decision rule shared by the serial and GPU paths.
///
/// `dn` — normal measure (positive = penetrating); `ds` — incremental slip
/// this iteration (the shear reference follows the slide, so `ds` measures
/// *new* slip); `margin` — Mohr–Coulomb margin (negative = shear limit
/// exceeded); `limit` — the Mohr–Coulomb limit itself; `slide_dir` — the
/// remembered sliding direction; `open_tol` — separation tolerance.
///
/// A sliding contact keeps sliding while the slip continues in its
/// direction; it re-locks only when the slip stalls or reverses *and* the
/// shear force clears the hysteresis band. Without this, a steadily
/// sliding contact would flip lock↔slide every iteration (its relaxed
/// shear spring always measures a force inside the limit) and the
/// open–close loop could never settle.
fn decide(
    state: ContactState,
    dn: f64,
    ds: f64,
    margin: f64,
    limit: f64,
    slide_dir: f64,
    open_tol: f64,
) -> ContactState {
    if dn < -open_tol {
        ContactState::Open
    } else if !state.closed() && dn <= 0.0 {
        // Not separated beyond tolerance but not penetrating either: an
        // open contact only closes once it actually penetrates.
        ContactState::Open
    } else if state == ContactState::Slide {
        let still_slipping = ds * slide_dir > 0.0;
        if !still_slipping && margin > FRICTION_HYSTERESIS * limit.abs() {
            ContactState::Lock
        } else {
            ContactState::Slide
        }
    } else if margin < 0.0 {
        ContactState::Slide
    } else {
        ContactState::Lock
    }
}

/// Tolerance on the edge-ratio saturation test in [`apply_slip`]: a
/// reference point this close to an endpoint is treated as still on the
/// edge (floating-point slop, not a real slide-off).
const EDGE_RATIO_SLACK: f64 = 1e-9;

/// Post-decision bookkeeping shared by both paths: sliding contacts
/// remember their direction and let the shear reference point slip along
/// the edge, so a later re-lock attaches the shear spring at the slid
/// position instead of yanking the block back.
///
/// A slip that carries the reference point *past* an edge endpoint means
/// the vertex has slid off this edge: the contact pair no longer exists
/// geometrically, so the contact is released to open (and reported as a
/// state change by the caller) instead of being silently pinned at the
/// endpoint — the next detection pass re-finds the vertex against its new
/// edge (or corner) and transfer drops the stale spring. Returns `true`
/// when the contact slid off.
fn apply_slip(c: &mut Contact, ds: f64, len: f64) -> bool {
    if c.state != ContactState::Slide {
        return false;
    }
    if ds.abs() > 1e-14 {
        c.slide_dir = ds.signum();
    }
    if len > 1e-12 {
        let raw = c.edge_ratio + ds / len;
        c.edge_ratio = raw.clamp(0.0, 1.0);
        if !(-EDGE_RATIO_SLACK..=1.0 + EDGE_RATIO_SLACK).contains(&raw) {
            c.state = ContactState::Open;
            return true;
        }
    }
    false
}

/// Serial open–close update: applies the decision to every contact and
/// returns the number of state changes.
pub fn open_close_serial(
    contacts: &mut [Contact],
    gaps: &GapArrays,
    open_tol: f64,
    freeze: bool,
    counter: &mut CpuCounter,
) -> usize {
    let mut changes = 0;
    for (k, c) in contacts.iter_mut().enumerate() {
        let mut new_state = decide(
            c.state,
            gaps.dn[k],
            gaps.ds[k],
            gaps.margin[k],
            gaps.limit[k],
            c.slide_dir,
            open_tol,
        );
        if (freeze || c.flips >= FREEZE_FLIPS)
            && c.state.closed()
            && new_state.closed()
            && new_state != c.state
        {
            // Terminal phase: a closed contact still flipping sits at the
            // friction limit — settle it as sliding without restarting the
            // iteration.
            new_state = ContactState::Slide;
            c.state = ContactState::Slide;
        }
        c.prev_iter_state = c.state;
        let flipped = new_state != c.state;
        if flipped {
            c.state = new_state;
            c.flips += 1;
        }
        let slid_off = apply_slip(c, gaps.ds[k], gaps.len[k]);
        if flipped || slid_off {
            // A slide-off release is a state change the loop must see, or
            // it would converge with a phantom contact still assembled.
            changes += 1;
        }
        counter.flop(8);
        counter.bytes(80);
    }
    changes
}

/// GPU open–close update: one thread per contact; the change count comes
/// back through a device flag array reduced by scan.
pub fn open_close_gpu(
    dev: &Device,
    contacts: &mut [Contact],
    gaps: &GapArrays,
    open_tol: f64,
    freeze: bool,
) -> usize {
    open_close_gpu_masked(dev, contacts, gaps, open_tol, freeze, None)
}

/// [`open_close_gpu`] that additionally OR-accumulates a per-contact
/// *contribution-delta* mask into `dirty`: entry `k` is set when contact
/// `k`'s assembly-relevant fields changed this iteration. The stiffness
/// contribution of a contact reads exactly its `state`, `edge_ratio`, and
/// `slide_dir` (plus step-constant geometry), so the mask compares those
/// bit-for-bit — note a still-sliding contact mutates `edge_ratio` via the
/// slip bookkeeping *without* counting as a state change, which is why the
/// mask cannot be derived from the flip flags. The mask is OR-accumulated
/// (not overwritten) so deltas survive across iterations until the next
/// incremental assembly consumes them. With `dirty: None` the kernel is
/// bit- and cost-identical to the historical `open_close_gpu`.
pub fn open_close_gpu_masked(
    dev: &Device,
    contacts: &mut [Contact],
    gaps: &GapArrays,
    open_tol: f64,
    freeze: bool,
    dirty: Option<&mut [u32]>,
) -> usize {
    let nc = contacts.len();
    if nc == 0 {
        return 0;
    }
    if let Some(d) = &dirty {
        assert_eq!(d.len(), nc, "dirty mask must have one entry per contact");
    }
    let mut flags = vec![0u32; nc];
    {
        let b_dn = dev.bind_ro(&gaps.dn);
        let b_ds = dev.bind_ro(&gaps.ds);
        let b_m = dev.bind_ro(&gaps.margin);
        let b_lim = dev.bind_ro(&gaps.limit);
        let b_len = dev.bind_ro(&gaps.len);
        let b_c = dev.bind(contacts);
        let b_f = dev.bind(&mut flags);
        let b_dirty = dirty.map(|d| dev.bind(d));
        dev.launch("openclose.update", nc, |lane| {
            let k = lane.gid;
            let mut c = lane.ld(&b_c, k);
            let dn = lane.ld(&b_dn, k);
            let ds = lane.ld(&b_ds, k);
            let m = lane.ld(&b_m, k);
            let lim = lane.ld(&b_lim, k);
            let l = lane.ld(&b_len, k);
            let old_state = c.state;
            let old_ratio = c.edge_ratio.to_bits();
            let old_dir = c.slide_dir.to_bits();
            lane.flop(8);
            let mut new_state = decide(c.state, dn, ds, m, lim, c.slide_dir, open_tol);
            if (freeze || c.flips >= FREEZE_FLIPS)
                && c.state.closed()
                && new_state.closed()
                && new_state != c.state
            {
                new_state = ContactState::Slide;
                c.state = ContactState::Slide;
            }
            let flipped = new_state != c.state;
            lane.branch(0, flipped);
            c.prev_iter_state = c.state;
            c.state = new_state;
            if flipped {
                c.flips += 1;
            }
            let slid_off = apply_slip(&mut c, ds, l);
            lane.st(&b_c, k, c);
            lane.st(&b_f, k, u32::from(flipped || slid_off));
            if let Some(b_d) = &b_dirty {
                let changed = c.state != old_state
                    || c.edge_ratio.to_bits() != old_ratio
                    || c.slide_dir.to_bits() != old_dir;
                let prev = lane.ld(b_d, k);
                lane.st(b_d, k, prev | u32::from(changed));
            }
        });
    }
    let (_, total) = dda_simt::primitives::scan_exclusive_u32(dev, &flags);
    total as usize
}

/// Device-side third classification (§III-A): tags every contact with its
/// non-diagonal-building category (1–5, or 0 for abandoned) and returns
/// the histogram. The categories select which per-class pipeline a contact
/// takes through non-diagonal building; the pipeline reports them per
/// step.
pub fn categorize_gpu(dev: &Device, contacts: &[Contact]) -> [usize; 6] {
    let nc = contacts.len();
    let mut codes = vec![0u32; nc.max(1)];
    if nc > 0 {
        let b_c = dev.bind_ro(contacts);
        let b_k = dev.bind(&mut codes);
        dev.launch("openclose.categorize", nc, |lane| {
            let c = lane.ld(&b_c, lane.gid);
            lane.flop(4);
            let code = c.category().unwrap_or(0);
            lane.st(&b_k, lane.gid, u32::from(code));
        });
    }
    let mut hist = [0usize; 6];
    for &k in codes.iter().take(nc) {
        hist[k as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::types::ContactKind;
    use dda_simt::DeviceProfile;

    fn contact(state: ContactState) -> Contact {
        let mut c = Contact::new(0, 1, 0, 0, u32::MAX, ContactKind::Ve);
        c.state = state;
        c.prev_iter_state = state;
        c
    }

    #[test]
    fn decision_rules() {
        let tol = 1e-6;
        // Separated beyond tolerance → open, whatever the previous state.
        assert_eq!(
            decide(ContactState::Lock, -1e-3, 0.0, 5.0, 6.0, 0.0, tol),
            ContactState::Open
        );
        assert_eq!(
            decide(ContactState::Open, -1e-3, 0.0, 5.0, 6.0, 0.0, tol),
            ContactState::Open
        );
        // Open and merely touching (dn ≤ 0) stays open.
        assert_eq!(
            decide(ContactState::Open, -1e-9, 0.0, 5.0, 6.0, 0.0, tol),
            ContactState::Open
        );
        // Penetrating with margin → lock.
        assert_eq!(
            decide(ContactState::Open, 1e-4, 0.0, 5.0, 6.0, 0.0, tol),
            ContactState::Lock
        );
        // A stalled slider with clear margin re-locks.
        assert_eq!(
            decide(ContactState::Slide, 1e-4, 0.0, 5.0, 6.0, 1.0, tol),
            ContactState::Lock
        );
        // Penetrating beyond the friction margin → slide.
        assert_eq!(
            decide(ContactState::Lock, 1e-4, 0.0, -1.0, 6.0, 0.0, tol),
            ContactState::Slide
        );
        // A closed contact within tolerance keeps its spring.
        assert_eq!(
            decide(ContactState::Lock, -1e-9, 0.0, 5.0, 6.0, 0.0, tol),
            ContactState::Lock
        );
    }

    #[test]
    fn friction_hysteresis_band() {
        let tol = 1e-6;
        // A stalled slider just inside the limit stays sliding…
        assert_eq!(
            decide(ContactState::Slide, 1e-4, 0.0, 0.05, 1.0, 1.0, tol),
            ContactState::Slide
        );
        // …but a locked one with the same margin stays locked.
        assert_eq!(
            decide(ContactState::Lock, 1e-4, 0.0, 0.05, 1.0, 0.0, tol),
            ContactState::Lock
        );
        // Clearing the band re-locks a stalled slider.
        assert_eq!(
            decide(ContactState::Slide, 1e-4, 0.0, 0.2, 1.0, 1.0, tol),
            ContactState::Lock
        );
        // A slider still slipping forward keeps sliding regardless of
        // margin.
        assert_eq!(
            decide(ContactState::Slide, 1e-4, 0.01, 5.0, 1.0, 1.0, tol),
            ContactState::Slide
        );
        // Reversed slip with margin re-locks.
        assert_eq!(
            decide(ContactState::Slide, 1e-4, -0.01, 5.0, 1.0, 1.0, tol),
            ContactState::Lock
        );
    }

    #[test]
    fn slip_reference_follows_sliding() {
        let mut c = contact(ContactState::Slide);
        c.edge_ratio = 0.5;
        apply_slip(&mut c, 0.1, 2.0); // slid 0.1 m along a 2 m edge
        assert!((c.edge_ratio - 0.55).abs() < 1e-12);
        assert_eq!(c.slide_dir, 1.0);
        // Locked contacts keep their reference.
        let mut cl = contact(ContactState::Lock);
        cl.edge_ratio = 0.5;
        apply_slip(&mut cl, 0.1, 2.0);
        assert_eq!(cl.edge_ratio, 0.5);
    }

    #[test]
    fn slide_past_edge_end_releases_contact() {
        // Regression: the pre-fix code clamped the ratio and silently kept
        // the contact sliding, pinned at the endpoint.
        let mut c = contact(ContactState::Slide);
        c.edge_ratio = 0.9;
        // Slip 0.8 m along a 2 m edge: the reference lands at ratio 1.3.
        assert!(apply_slip(&mut c, 0.8, 2.0), "must report the slide-off");
        assert_eq!(c.state, ContactState::Open, "slid-off contact releases");
        assert_eq!(c.edge_ratio, 1.0);
        // Off the start of the edge, symmetrically.
        let mut c2 = contact(ContactState::Slide);
        c2.edge_ratio = 0.05;
        assert!(apply_slip(&mut c2, -0.4, 2.0));
        assert_eq!(c2.state, ContactState::Open);
        assert_eq!(c2.edge_ratio, 0.0);
        // A slip that stays on the edge keeps sliding.
        let mut c3 = contact(ContactState::Slide);
        c3.edge_ratio = 0.5;
        assert!(!apply_slip(&mut c3, 0.2, 2.0));
        assert_eq!(c3.state, ContactState::Slide);
        // Landing exactly on the endpoint (within slack) is not a
        // slide-off.
        let mut c4 = contact(ContactState::Slide);
        c4.edge_ratio = 0.5;
        assert!(!apply_slip(&mut c4, 1.0, 2.0));
        assert_eq!(c4.state, ContactState::Slide);
        assert_eq!(c4.edge_ratio, 1.0);
    }

    #[test]
    fn slide_off_counts_as_change_and_matches_gpu() {
        // A ramp-edge slide-off seen by the loop drivers: one contact still
        // slipping forward whose accumulated slip carries it past the edge
        // end. Both paths must release it AND count a change, or loop 3
        // would converge with a phantom contact still assembled.
        let mk = || {
            let mut c = contact(ContactState::Slide);
            c.slide_dir = 1.0;
            c.edge_ratio = 0.95;
            c
        };
        let mut serial = vec![mk()];
        let mut gpu = serial.clone();
        let gaps = GapArrays {
            dn: vec![0.001],    // still pressing the edge
            ds: vec![0.3],      // slipping forward, 0.3 m on a 2 m edge
            margin: vec![-1.0], // beyond the friction limit
            limit: vec![1.0],
            len: vec![2.0],
        };
        let mut cnt = CpuCounter::new();
        let n1 = open_close_serial(&mut serial, &gaps, 1e-6, false, &mut cnt);
        assert_eq!(n1, 1, "the release must be counted as a state change");
        assert_eq!(serial[0].state, ContactState::Open);
        let dev = Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true);
        let n2 = open_close_gpu(&dev, &mut gpu, &gaps, 1e-6, false);
        assert_eq!(n1, n2);
        assert_eq!(serial, gpu);
    }

    #[test]
    fn serial_counts_changes_and_records_prev() {
        let mut contacts = vec![
            contact(ContactState::Lock), // will open
            contact(ContactState::Lock), // stays locked
            contact(ContactState::Lock), // will slide
            contact(ContactState::Open), // will lock
        ];
        let gaps = GapArrays {
            dn: vec![-0.1, 0.001, 0.001, 0.001],
            ds: vec![0.0; 4],
            margin: vec![1.0, 1.0, -1.0, 1.0],
            limit: vec![1.0; 4],
            len: vec![1.0; 4],
        };
        let mut cnt = CpuCounter::new();
        let changes = open_close_serial(&mut contacts, &gaps, 1e-6, false, &mut cnt);
        assert_eq!(changes, 3);
        assert_eq!(contacts[0].state, ContactState::Open);
        assert_eq!(contacts[1].state, ContactState::Lock);
        assert_eq!(contacts[2].state, ContactState::Slide);
        assert_eq!(contacts[3].state, ContactState::Lock);
        // prev_iter_state holds the pre-update state → p2 is defined.
        assert_eq!(contacts[2].prev_iter_state, ContactState::Lock);
        assert_eq!(contacts[2].p2(), -1);
    }

    #[test]
    fn gpu_matches_serial() {
        let states = [
            ContactState::Lock,
            ContactState::Open,
            ContactState::Slide,
            ContactState::Lock,
            ContactState::Open,
        ];
        let mut serial: Vec<Contact> = states.iter().map(|&s| contact(s)).collect();
        let mut gpu = serial.clone();
        let gaps = GapArrays {
            dn: vec![0.001, 0.002, -0.5, -0.5, -1e-9],
            ds: vec![0.01, 0.0, 0.0, 0.0, 0.0],
            margin: vec![-1.0, 3.0, 1.0, 1.0, 1.0],
            limit: vec![1.0; 5],
            len: vec![2.0; 5],
        };
        let mut cnt = CpuCounter::new();
        let n1 = open_close_serial(&mut serial, &gaps, 1e-6, false, &mut cnt);
        let dev = Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true);
        let n2 = open_close_gpu(&dev, &mut gpu, &gaps, 1e-6, false);
        assert_eq!(n1, n2);
        assert_eq!(serial, gpu);
    }

    #[test]
    fn categorize_histogram_matches_reference() {
        use crate::contact::types::ContactKind;
        let mut contacts = Vec::new();
        // One of each category plus an abandoned contact.
        let mk =
            |kind: ContactKind, prev: ContactState, prev_it: ContactState, cur: ContactState| {
                let mut c = Contact::new(0, 1, 0, 0, u32::MAX, kind);
                c.prev_step_state = prev;
                c.prev_iter_state = prev_it;
                c.state = cur;
                c
            };
        contacts.push(mk(
            ContactKind::Ve,
            ContactState::Open,
            ContactState::Open,
            ContactState::Lock,
        )); // C1
        contacts.push(mk(
            ContactKind::Ve,
            ContactState::Slide,
            ContactState::Slide,
            ContactState::Lock,
        )); // C2
        contacts.push(mk(
            ContactKind::Vv1,
            ContactState::Lock,
            ContactState::Lock,
            ContactState::Lock,
        )); // C3
        contacts.push(mk(
            ContactKind::Vv2,
            ContactState::Open,
            ContactState::Open,
            ContactState::Lock,
        )); // C4
        contacts.push(mk(
            ContactKind::Vv2,
            ContactState::Slide,
            ContactState::Slide,
            ContactState::Slide,
        )); // C5
        contacts.push(mk(
            ContactKind::Ve,
            ContactState::Open,
            ContactState::Open,
            ContactState::Open,
        )); // abandoned
        let dev = Device::new(DeviceProfile::tesla_k40());
        let hist = categorize_gpu(&dev, &contacts);
        assert_eq!(hist, [1, 1, 1, 1, 1, 1]);
        // Empty input.
        assert_eq!(categorize_gpu(&dev, &[]), [0; 6]);
    }

    #[test]
    fn converged_population_reports_zero_changes() {
        let mut contacts = vec![contact(ContactState::Lock); 10];
        let gaps = GapArrays {
            dn: vec![1e-5; 10],
            ds: vec![0.0; 10],
            margin: vec![1.0; 10],
            limit: vec![1.0; 10],
            len: vec![1.0; 10],
        };
        let mut cnt = CpuCounter::new();
        assert_eq!(
            open_close_serial(&mut contacts, &gaps, 1e-6, false, &mut cnt),
            0
        );
    }
}
