//! Leaning-tower stability: the classic block-statics demonstration.
//!
//! A column of blocks is stacked with a constant horizontal offset per
//! course. Rigid-block statics says the tower stands while the centre of
//! mass of every upper section stays over its supporting course, and
//! topples otherwise — a sharp, analytically-known threshold that DDA
//! should reproduce. This example runs both sides of the threshold.
//!
//! Run with: `cargo run --release --example leaning_tower -- [courses]`

use dda_repro::core::pipeline::GpuPipeline;
use dda_repro::core::{Block, BlockMaterial, BlockSystem, DdaParams, JointMaterial};
use dda_repro::geom::Polygon;
use dda_repro::simt::{Device, DeviceProfile};

/// Builds a tower of `courses` unit-height blocks with per-course offset.
fn tower(courses: usize, offset: f64) -> (BlockSystem, DdaParams) {
    let w = 1.0; // block width
    let mut blocks = vec![Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed()];
    for k in 0..courses {
        let x0 = k as f64 * offset;
        let y0 = k as f64 * 0.5;
        blocks.push(Block::new(Polygon::rect(x0, y0, x0 + w, y0 + 0.5), 0));
    }
    let sys = BlockSystem::new(
        blocks,
        BlockMaterial::rock(),
        JointMaterial::frictional(40.0),
    );
    let mut params = DdaParams::for_model(1.0, 5e9);
    params.dt = 1.5e-3;
    params.dt_max = 1.5e-3;
    params.dynamics = 0.995; // nearly undamped: the collapse must be free to run
    (sys, params)
}

fn run(courses: usize, offset: f64, steps: usize) -> (f64, f64) {
    let (sys, params) = tower(courses, offset);
    let y_top0 = sys.blocks[courses].centroid().y;
    let device = Device::new(DeviceProfile::tesla_k40());
    let mut pipe = GpuPipeline::new(sys, params, device);
    for _ in 0..steps {
        pipe.step();
    }
    let top = &pipe.sys.blocks[courses];
    // The robust discriminator at short horizons: a collapsing stack's top
    // *sinks* monotonically as the hinge rotation proceeds, while a stable
    // stack holds its height (it may rock elastically, but does not sink).
    let sink = y_top0 - top.centroid().y;
    (sink, top.velocity[2].abs())
}

fn main() {
    let courses: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    // For N courses of width w, a uniform offset tower stands while the
    // top-course overhang stays under ~w·(1/2)·(1/(N−1))·… — in practice a
    // small offset is safely stable and a near-half-width offset topples.
    let stable_offset = 0.02;
    let toppling_offset = 0.4;
    // Short-horizon run: the open–close iteration shrinks Δt while the
    // collapse topology churns, so the fall proceeds in slow motion — but
    // its direction is unambiguous within a few hundred steps.
    let steps = 400;

    println!("leaning tower, {courses} courses, {steps} steps each\n");
    let (sink_s, spin_s) = run(courses, stable_offset, steps);
    println!(
        "offset {stable_offset:>4} m/course → top sink {sink_s:+.4} m, |ω_top| {spin_s:.4} rad/s  (stands)"
    );
    let (sink_t, spin_t) = run(courses, toppling_offset, steps);
    println!(
        "offset {toppling_offset:>4} m/course → top sink {sink_t:+.4} m, |ω_top| {spin_t:.4} rad/s  (topples)"
    );

    assert!(
        sink_t > 5e-3 && sink_t > 4.0 * sink_s.abs().max(1e-4),
        "the leaning tower should be collapsing: sink {sink_t} vs stable {sink_s}"
    );
    println!("\nthe offset tower is collapsing while the straight tower stands — rigid-block statics reproduced.");
}
