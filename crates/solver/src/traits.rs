//! Operator abstraction: anything PCG can multiply a vector by.

use dda_simt::Device;
use dda_sparse::spmv::{spmv_csr_scalar, spmv_csr_vector, spmv_hsbcsr, Stage1Smem};
use dda_sparse::{Csr, Hsbcsr};

/// A linear operator `y = A x` executable on the simulated device.
pub trait MatVec {
    /// Scalar dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Applies the operator on the device.
    fn apply(&self, dev: &Device, x: &[f64]) -> Vec<f64>;
}

/// HSBCSR operator using the paper's two-stage SpMV (the production path).
pub struct HsbcsrMat<'a> {
    /// The matrix.
    pub m: &'a Hsbcsr,
}

impl MatVec for HsbcsrMat<'_> {
    fn dim(&self) -> usize {
        self.m.n * 6
    }
    fn apply(&self, dev: &Device, x: &[f64]) -> Vec<f64> {
        spmv_hsbcsr(dev, self.m, x, Stage1Smem::Proposed)
    }
}

/// Scalar-CSR operator with the one-thread-per-row kernel.
pub struct CsrScalarMat<'a> {
    /// The matrix (recovered full form).
    pub m: &'a Csr,
}

impl MatVec for CsrScalarMat<'_> {
    fn dim(&self) -> usize {
        self.m.dim
    }
    fn apply(&self, dev: &Device, x: &[f64]) -> Vec<f64> {
        spmv_csr_scalar(dev, self.m, x)
    }
}

/// Scalar-CSR operator with the warp-per-row kernel (the cuSPARSE-style
/// baseline).
pub struct CsrVectorMat<'a> {
    /// The matrix (recovered full form).
    pub m: &'a Csr,
}

impl MatVec for CsrVectorMat<'_> {
    fn dim(&self) -> usize {
        self.m.dim
    }
    fn apply(&self, dev: &Device, x: &[f64]) -> Vec<f64> {
        spmv_csr_vector(dev, self.m, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::DeviceProfile;
    use dda_sparse::SymBlockMatrix;

    #[test]
    fn operators_agree() {
        let sym = SymBlockMatrix::random_spd(25, 3.0, 77);
        let h = Hsbcsr::from_sym(&sym);
        let c = Csr::from_sym_full(&sym);
        let x: Vec<f64> = (0..sym.dim()).map(|i| (i as f64 * 0.31).sin()).collect();
        let dev = Device::new(DeviceProfile::tesla_k40());

        let y1 = HsbcsrMat { m: &h }.apply(&dev, &x);
        let y2 = CsrScalarMat { m: &c }.apply(&dev, &x);
        let y3 = CsrVectorMat { m: &c }.apply(&dev, &x);
        let y_ref = sym.mul_vec(&x);
        for i in 0..sym.dim() {
            assert!((y1[i] - y_ref[i]).abs() < 1e-9);
            assert!((y2[i] - y_ref[i]).abs() < 1e-9);
            assert!((y3[i] - y_ref[i]).abs() < 1e-9);
        }
        assert_eq!(HsbcsrMat { m: &h }.dim(), sym.dim());
    }
}
