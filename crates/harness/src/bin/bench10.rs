//! BENCH_10 generator: incremental re-assembly and warm-started re-solves
//! across the open–close iteration loop.
//!
//! The open–close loop re-runs the whole Fig 4 assembly every iteration,
//! yet between consecutive iterations only the state-flipped contacts
//! contribute differently. A dense stacked scatter field (every occupied
//! site a two-rock stack, rocks dropped onto a floor) keeps the loop
//! re-iterating — the workload must average ≥ 3 open–close iterations per
//! step for the re-assembly to matter — and is driven three ways on the
//! same modeled K40:
//!
//! 1. **recompute** — `AssemblyReuse::Recompute` + `PrevStep`: the
//!    always-recompute oracle.
//! 2. **incremental** — `AssemblyReuse::Incremental` + `PrevStep`: delta
//!    recompute + stream splice + memoized reduction plans. Asserted
//!    *bitwise identical* to the oracle step by step.
//! 3. **incremental+warm** — both knobs: re-solves additionally start
//!    from the previous iterate (same tolerance; tolerance-equivalent,
//!    not bitwise).
//!
//! Reported per run: modeled seconds per pipeline phase, the nondiag
//! (assembly) and solve speed-ups over the oracle, splice share on
//! non-first iterations, reduction-plan hit rate, PCG iterations, warm
//! starts, and host wall seconds. Wall time is the *simulator's* host
//! cost for the whole run — the phases interleave inside one host loop,
//! so per-phase wall time is not separately measurable and is
//! deliberately not reported; the per-phase numbers are modeled seconds
//! only, and the wall/modeled ratio quantifies how far the simulation
//! host is from the modeled device.
//!
//! At the default scale the acceptance gates are asserted in-binary:
//! ≥ 3 open–close iterations per step, bitwise parity, ≥ 1.5× modeled
//! assembly speed-up, > 90% splice share, and warm starts saving PCG
//! iterations.
//!
//! Writes `BENCH_10.json` into the current directory and prints it.
//!
//! Usage: `bench10 [--rocks N] [--steps N]`

use dda_core::pipeline::{GpuPipeline, ModuleTimes};
use dda_core::{AssemblyReuse, DdaParams, SolverWarmStart};
use dda_harness::Args;
use dda_simt::{Device, DeviceProfile};
use dda_workloads::{scatter_case, ScatterConfig};
use std::time::Instant;

const DEFAULT_ROCKS: usize = 48;
const DEFAULT_STEPS: usize = 40;

/// Minimum average open–close iterations per step for the workload to
/// count as re-solve-heavy (the regime the tentpole targets).
const MIN_AVG_OC_ITERS: f64 = 3.0;
/// Modeled nondiag-building speed-up the incremental path must clear.
const MIN_ASSEMBLY_SPEEDUP: f64 = 1.5;
/// Splice share on non-first open–close iterations in steady state.
const MIN_SPLICE_SHARE: f64 = 0.90;

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

/// Dense stacked drop: every occupied site is a two-rock stack with
/// independent velocity draws, so stacked pairs close, open, and slide
/// from step 0 and the open–close loop keeps re-iterating.
fn workload(rocks: usize) -> (dda_core::BlockSystem, DdaParams) {
    scatter_case(&ScatterConfig {
        stack_permille: 1000,
        ..ScatterConfig::default().with_rocks(rocks)
    })
}

/// Every trajectory-bearing bit of the evolving system, for the bitwise
/// parity gate.
fn sys_bits(sys: &dda_core::BlockSystem) -> Vec<u64> {
    let mut bits = Vec::new();
    for b in &sys.blocks {
        let c = b.centroid();
        bits.push(c.x.to_bits());
        bits.push(c.y.to_bits());
        for dof in 0..6 {
            bits.push(b.velocity[dof].to_bits());
        }
    }
    bits
}

struct RunRow {
    label: &'static str,
    times: ModuleTimes,
    wall_s: f64,
    steps: usize,
    oc_iters: usize,
    pcg_iters: usize,
    warm_starts: usize,
    /// Contributions recomputed on non-first open–close iterations.
    delta_recomputed: u64,
    /// Contributions spliced from the cache instead of recomputed.
    spliced: u64,
    plan_hits: u64,
    plan_rebuilds: u64,
    fingerprint: Vec<u64>,
}

fn run(
    label: &'static str,
    rocks: usize,
    steps: usize,
    reuse: AssemblyReuse,
    warm: SolverWarmStart,
) -> RunRow {
    let (sys, params) = workload(rocks);
    let params = params.with_assembly_reuse(reuse).with_warm_start(warm);
    let mut pipe = GpuPipeline::new(sys, params, k40());
    let mut row = RunRow {
        label,
        times: ModuleTimes::default(),
        wall_s: 0.0,
        steps,
        oc_iters: 0,
        pcg_iters: 0,
        warm_starts: 0,
        delta_recomputed: 0,
        spliced: 0,
        plan_hits: 0,
        plan_rebuilds: 0,
        fingerprint: Vec::new(),
    };
    let t = Instant::now();
    for _ in 0..steps {
        let r = pipe.step();
        row.oc_iters += r.oc_iterations;
        row.pcg_iters += r.pcg_iterations;
        row.warm_starts += r.warm_starts;
        // The step's first assemble per attempt rebuilds everything
        // (`full_builds` × that step's contact count); the remainder of
        // `recomputed` is genuine delta work on re-iterations.
        let full = r.assembly.full_builds * r.n_contacts as u64;
        row.delta_recomputed += r.assembly.recomputed.saturating_sub(full);
        row.spliced += r.assembly.spliced;
        row.plan_hits += r.assembly.plan_hits;
        row.plan_rebuilds += r.assembly.plan_rebuilds;
    }
    row.wall_s = t.elapsed().as_secs_f64();
    row.times = pipe.times;
    row.fingerprint = sys_bits(&pipe.sys);
    row
}

fn main() {
    let a = Args::parse(0, DEFAULT_ROCKS, DEFAULT_STEPS);
    let default_scale = a.rocks == DEFAULT_ROCKS && a.steps == DEFAULT_STEPS;
    eprintln!(
        "bench10: incremental re-assembly + warm-started re-solves, \
         rocks={} steps={} (stacked scatter drop)",
        a.rocks, a.steps
    );

    eprintln!("  recompute oracle");
    let oracle = run(
        "recompute",
        a.rocks,
        a.steps,
        AssemblyReuse::Recompute,
        SolverWarmStart::PrevStep,
    );
    eprintln!("  incremental re-assembly");
    let incr = run(
        "incremental",
        a.rocks,
        a.steps,
        AssemblyReuse::Incremental,
        SolverWarmStart::PrevStep,
    );
    eprintln!("  incremental + warm-started re-solves");
    let warm = run(
        "incremental+warm",
        a.rocks,
        a.steps,
        AssemblyReuse::Incremental,
        SolverWarmStart::PrevIterate,
    );

    // ---- Gates ----------------------------------------------------------
    let avg_oc = oracle.oc_iters as f64 / oracle.steps as f64;
    assert_eq!(
        oracle.fingerprint, incr.fingerprint,
        "incremental re-assembly must be bitwise identical to the oracle"
    );
    assert_eq!(
        oracle.pcg_iters, incr.pcg_iters,
        "same warm-start policy must solve identically"
    );
    let splice_share = incr.spliced as f64 / (incr.spliced + incr.delta_recomputed).max(1) as f64;
    let asm_speedup = oracle.times.nondiag_building / incr.times.nondiag_building.max(1e-30);
    let warm_asm_speedup = oracle.times.nondiag_building / warm.times.nondiag_building.max(1e-30);
    let solve_speedup = oracle.times.solving / warm.times.solving.max(1e-30);
    let combined_speedup = (oracle.times.nondiag_building + oracle.times.solving)
        / (warm.times.nondiag_building + warm.times.solving).max(1e-30);
    if default_scale {
        assert!(
            avg_oc >= MIN_AVG_OC_ITERS,
            "workload too tame: {avg_oc:.2} open–close iterations per step \
             (need >= {MIN_AVG_OC_ITERS})"
        );
        assert!(
            asm_speedup >= MIN_ASSEMBLY_SPEEDUP,
            "modeled assembly speed-up {asm_speedup:.3}x below the \
             {MIN_ASSEMBLY_SPEEDUP}x gate"
        );
        assert!(
            splice_share > MIN_SPLICE_SHARE,
            "splice share {splice_share:.3} below the {MIN_SPLICE_SHARE} gate"
        );
        assert!(
            warm.warm_starts > 0 && warm.pcg_iters < oracle.pcg_iters,
            "warm starts must save PCG iterations \
             (oracle {}, warm {} over {} warm starts)",
            oracle.pcg_iters,
            warm.pcg_iters,
            warm.warm_starts
        );
    }

    for r in [&oracle, &incr, &warm] {
        eprintln!(
            "    {}: nondiag {:.3e} s, solve {:.3e} s, total {:.3e} modeled s, \
             {} pcg iters, {} warm starts, wall {:.2} s ({:.0}x modeled)",
            r.label,
            r.times.nondiag_building,
            r.times.solving,
            r.times.total(),
            r.pcg_iters,
            r.warm_starts,
            r.wall_s,
            r.wall_s / r.times.total().max(1e-30),
        );
    }
    eprintln!(
        "  avg oc iters {avg_oc:.2}; assembly {asm_speedup:.2}x \
         (warm {warm_asm_speedup:.2}x), solve {solve_speedup:.2}x, \
         assembly+solve {combined_speedup:.2}x; splice share {splice_share:.3}; \
         plan hits {}/{}",
        incr.plan_hits,
        incr.plan_hits + incr.plan_rebuilds,
    );

    let phase_json = |t: &ModuleTimes| {
        format!(
            "{{ \"contact_detection\": {:.6e}, \"diag_building\": {:.6e}, \
             \"nondiag_building\": {:.6e}, \"solving\": {:.6e}, \
             \"interpenetration\": {:.6e}, \"updating\": {:.6e}, \
             \"total\": {:.6e} }}",
            t.contact_detection,
            t.diag_building,
            t.nondiag_building,
            t.solving,
            t.interpenetration,
            t.updating,
            t.total(),
        )
    };
    let row_json = |r: &RunRow| {
        format!(
            "    {{ \"label\": \"{}\", \"modeled_phase_s\": {},\n      \
             \"wall_s\": {:.6e}, \"wall_over_modeled\": {:.1}, \
             \"oc_iterations\": {}, \"pcg_iterations\": {}, \
             \"warm_starts\": {}, \"spliced\": {}, \"delta_recomputed\": {}, \
             \"plan_hits\": {}, \"plan_rebuilds\": {} }}",
            r.label,
            phase_json(&r.times),
            r.wall_s,
            r.wall_s / r.times.total().max(1e-30),
            r.oc_iters,
            r.pcg_iters,
            r.warm_starts,
            r.spliced,
            r.delta_recomputed,
            r.plan_hits,
            r.plan_rebuilds,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"incremental_reassembly_warm_resolve\",\n  \
         \"device\": \"tesla_k40_model\",\n  \
         \"config\": {{ \"rocks\": {}, \"steps\": {}, \"stack_permille\": 1000 }},\n  \
         \"units\": \"per-phase numbers are modeled device seconds; wall_s is the \
         simulator's host time for the whole run (phases interleave in one host \
         loop, so per-phase wall time is not separately measurable and is not \
         reported)\",\n  \
         \"avg_oc_iterations_per_step\": {avg_oc:.3},\n  \
         \"runs\": [\n{},\n{},\n{}\n  ],\n  \
         \"assembly_speedup\": {asm_speedup:.4},\n  \
         \"assembly_speedup_warm\": {warm_asm_speedup:.4},\n  \
         \"solve_speedup_warm\": {solve_speedup:.4},\n  \
         \"assembly_plus_solve_speedup\": {combined_speedup:.4},\n  \
         \"splice_share_reiterations\": {splice_share:.4},\n  \
         \"bitwise_identical_to_oracle\": true\n}}\n",
        a.rocks,
        a.steps,
        row_json(&oracle),
        row_json(&incr),
        row_json(&warm),
    );
    print!("{json}");
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    eprintln!("wrote BENCH_10.json");
}
