//! Scale-reduced checks of the paper's headline claims, via the harness
//! experiment runners (the binaries run the same code at full scale; see
//! `EXPERIMENTS.md` for the full-scale numbers).

use dda_harness::experiments::{
    divergence_study, preconditioner_study, run_case1, run_case2, smem_study, spmv_study,
};

/// Workload size for the claim tests: large enough for the architectural
/// effects, small enough for a debug-mode test run.
const N: usize = 150;

#[test]
fn table1_preconditioner_ordering() {
    let rows = preconditioner_study(N, 2, 9);
    let (bj, ssor, ilu) = (&rows[0], &rows[1], &rows[2]);
    // Convergence-rate ordering (paper: 93 ≤ 141 ≤ 275).
    assert!(ilu.avg_iterations <= ssor.avg_iterations + 1e-9);
    assert!(ssor.avg_iterations <= bj.avg_iterations + 1e-9);
    // Cost ordering: BJ construction cheapest, ILU most expensive
    // (paper: 0.059 ms / 0.208 ms / 31.465 ms).
    assert!(bj.construct_s <= ssor.construct_s * 1.5);
    assert!(ssor.construct_s < ilu.construct_s);
    // The headline: ILU loses end-to-end despite converging fastest.
    assert!(ilu.total_solve_s > bj.total_solve_s);
}

#[test]
fn fig10_spmv_and_tss_shape() {
    // HSBCSR's one-thread-per-sub-matrix stage 1 needs enough sub-matrices
    // to occupy the device; the crossover against the warp-per-row CSR
    // kernel sits near ~1000 blocks (see EXPERIMENTS.md), so the claim is
    // checked above it.
    let s = spmv_study(1200, 3);
    // HSBCSR wins against every full-matrix baseline (paper: 2.8× vs
    // cuSPARSE at full scale).
    assert!(
        s.t_hsbcsr < s.t_csr_vector,
        "{} vs {}",
        s.t_hsbcsr,
        s.t_csr_vector
    );
    assert!(s.t_hsbcsr < s.t_csr_scalar);
    assert!(s.t_hsbcsr < s.t_bcsr);
    // TSS costs many SpMVs (paper: ~11×).
    assert!(
        s.t_tss > 5.0 * s.t_csr_vector,
        "TSS {} vs {}",
        s.t_tss,
        s.t_csr_vector
    );
}

#[test]
fn table2_case1_module_shape() {
    let cs = run_case1(400, 2, 7);
    let s40 = cs.cpu.speedup_over(&cs.k40);
    // Every module accelerates at this scale.
    assert!(s40.contact_detection > 1.0, "{s40:?}");
    assert!(s40.solving > 1.0, "{s40:?}");
    assert!(s40.nondiag_building > 1.0, "{s40:?}");
    // Contact detection speeds up far more than non-diagonal building —
    // the Table-II signature (117.69× vs 4.38× in the paper).
    assert!(
        s40.contact_detection > 3.0 * s40.nondiag_building,
        "{s40:?}"
    );
    // Non-diagonal building is the weakest module, as in the paper.
    let rows = s40.rows();
    let min_mod = rows
        .iter()
        .filter(|(_, v)| *v > 0.0)
        .map(|&(n, v)| (n, v))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert_eq!(min_mod.0, "Non-diagonal Matrix Building", "{s40:?}");
    // K40 beats K20 (paper: 48.72× vs 41.94×).
    assert!(cs.k40.total() < cs.k20.total());
}

#[test]
fn table3_case2_smaller_speedup_than_case1() {
    // The paper's cross-case claim: the small dynamic case speeds up far
    // less than the large static one (6.26× vs 48.72×).
    let c1 = run_case1(400, 2, 7);
    let c2 = run_case2(60, 4);
    let s1 = c1.cpu.total() / c1.k40.total();
    let s2 = c2.cpu.total() / c2.k40.total();
    assert!(
        s1 > 1.5 * s2,
        "case 1 ({s1:.1}×) must outpace case 2 ({s2:.1}×)"
    );
}

#[test]
fn divergence_classification_claim() {
    let d = divergence_study(800, 11);
    // Classified kernels are divergence-free; the monolithic baseline is
    // not (paper: −11.18 % divergence, −20.576 µs).
    assert!(d.mono_divergence > 0.0);
    assert_eq!(d.class_divergence, 0.0);
}

#[test]
fn fig89_bank_conflict_claim() {
    let s = smem_study(400, 13);
    // "Minimum bank conflicts": the proposed scheme measures zero replays.
    assert_eq!(s.proposed_replays, 0);
    assert!(s.naive_replays > 0);
    assert!(s.proposed_s <= s.naive_s);
}
