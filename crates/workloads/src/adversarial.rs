//! Adversarial scenes: deliberately malformed or hostile inputs that
//! exercise the pipeline's health monitoring without any injector support.
//!
//! Production fleets ingest scene descriptions from files and upstream
//! tools; a NaN velocity or a pathological stiffness contrast *will*
//! arrive eventually. These generators produce the smallest scenes that
//! reach each failure path through the ordinary public API, so the
//! structured-error machinery ([`dda_core::StepError`], quarantine) is
//! testable from real input — no feature flags, no internal hooks.

use crate::rockfall::{rockfall_case, RockfallConfig};
use dda_core::{BlockSystem, DdaParams};

/// A rockfall scene whose rock `poison_rock` (0-based among the falling
/// rocks) carries a NaN launch velocity. The NaN propagates through
/// diagonal building into the assembled right-hand side, so the first step
/// fails with [`dda_core::StepError::NonFiniteRhs`] — the earliest health
/// check — instead of silently corrupting the trajectory.
pub fn nan_contaminated_scene(rocks: usize, poison_rock: usize) -> (BlockSystem, DdaParams) {
    assert!(poison_rock < rocks, "poisoned rock index out of range");
    let (mut sys, params) = rockfall_case(&RockfallConfig::default().with_rocks(rocks));
    // The generator lays out [slope, barrier, rock 0, rock 1, ...].
    let b = &mut sys.blocks[2 + poison_rock];
    b.velocity[0] = f64::NAN;
    (sys, params)
}

/// A rockfall scene with a pathological stiffness contrast: the rock
/// material is `contrast` times stiffer than the base. Extreme contrasts
/// push the assembled system toward ill-conditioning — the scene still
/// steps, but stresses the preconditioner ladder and Δt control rather
/// than the happy path.
pub fn stiff_contrast_scene(rocks: usize, contrast: f64) -> (BlockSystem, DdaParams) {
    assert!(contrast > 0.0, "contrast must be positive");
    let (mut sys, params) = rockfall_case(&RockfallConfig::default().with_rocks(rocks));
    for m in sys.block_materials.iter_mut() {
        *m = m.with_young(m.young * contrast);
    }
    (sys, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_scene_is_contaminated_exactly_once() {
        let (sys, _) = nan_contaminated_scene(4, 2);
        let bad: Vec<usize> = sys
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.velocity.iter().any(|v| v.is_nan()))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(bad, vec![4], "exactly the poisoned rock carries NaN");
    }

    #[test]
    fn stiff_scene_scales_modulus() {
        let (base, _) = rockfall_case(&RockfallConfig::default().with_rocks(3));
        let (stiff, _) = stiff_contrast_scene(3, 1e4);
        for (b, s) in base.block_materials.iter().zip(&stiff.block_materials) {
            assert!((s.young / b.young - 1e4).abs() < 1e-6);
        }
    }
}
