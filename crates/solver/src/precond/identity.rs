//! Identity "preconditioner" — plain CG, the control case.

use super::Preconditioner;
use dda_simt::Device;

/// No preconditioning: `z = r` (still a device copy, as a real
/// implementation would issue).
pub struct Identity;

impl Preconditioner for Identity {
    fn name(&self) -> &'static str {
        "none"
    }

    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        crate::vecops::copy(dev, r, &mut z);
        z
    }

    fn is_identity(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::DeviceProfile;

    #[test]
    fn identity_copies() {
        let dev = Device::new(DeviceProfile::tesla_k40());
        let r = vec![1.0, -2.0, 3.0];
        let z = Identity.apply(&dev, &r);
        assert_eq!(z, r);
        assert_eq!(Identity.name(), "none");
    }
}
