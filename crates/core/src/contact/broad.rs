//! Broad-phase contact detection (the paper's all-pairs sweep).
//!
//! Serial version: the classical `O(n²/2)` upper-triangular loop over
//! bounding boxes. GPU version (§III-B): "the workflow is modeled as a
//! matrix that operates on a vector… the n×n upper triangular matrix is
//! reshaped as an n×(n/2) full matrix to ensure load balance", tiled into
//! m×m sub-matrices, one per thread block, where "only 2m−1 entries are
//! different in each m×m sub-matrix — they are stored in shared memory for
//! multiple access".
//!
//! The reshape used is the round-robin pairing `j = (r + c + 1) mod n`:
//! every unordered pair appears exactly once (for even `n`, the last
//! column's second half is skipped), and within a 16×16 tile the 31
//! distinct column boxes are the paper's `2m − 1` shared entries.
//!
//! Hit flags are written at the pair's *triangular index*
//! `i·n − i(i+1)/2 + (j − i − 1)` rather than the reshaped `(r, c)`
//! position, so the device compaction emits pairs already in the
//! canonical `(i, j)` lexicographic order — no host-side sort fixup.
//!
//! These paths remain the reference oracle; the O(n + k) production
//! broad phase lives in [`super::grid`].

use super::grid::ContactWorkspace;
use super::soa::GeomSoa;
use crate::system::BlockSystem;
use dda_simt::primitives::compact_indices;
use dda_simt::serial::CpuCounter;
use dda_simt::Device;

/// Tile edge (m): a 256-thread block covers one 16×16 tile.
const TILE: usize = 16;

/// Serial reference: upper-triangular AABB sweep into the workspace's
/// pair buffer (allocation-free at steady state). Pairs `(i, j)` with
/// `i < j`, sorted.
pub fn broad_phase_serial_ws(
    sys: &BlockSystem,
    range: f64,
    counter: &mut CpuCounter,
    ws: &mut ContactWorkspace,
) {
    let n = sys.len();
    ws.boxes.clear();
    ws.boxes.reserve(4 * n);
    for b in &sys.blocks {
        let bb = b.aabb().inflate(range);
        ws.boxes
            .extend_from_slice(&[bb.min.x, bb.min.y, bb.max.x, bb.max.y]);
    }
    ws.pairs.clear();
    let boxes = &ws.boxes;
    for i in 0..n {
        for j in (i + 1)..n {
            let overlap = boxes[4 * i] <= boxes[4 * j + 2]
                && boxes[4 * j] <= boxes[4 * i + 2]
                && boxes[4 * i + 1] <= boxes[4 * j + 3]
                && boxes[4 * j + 1] <= boxes[4 * i + 3];
            if overlap {
                ws.pairs.push((i as u32, j as u32));
            }
        }
    }
    // Work model: box inflation is charged even below the pair threshold
    // (n < 2 used to charge nothing at all), then 4 flops and 8
    // coordinate reads per pair test.
    let pairs = (n * n.saturating_sub(1) / 2) as u64;
    counter.flop(4 * n as u64 + 4 * pairs);
    counter.bytes(8 * 8 * n as u64 + 8 * 8 * pairs);
}

/// Serial reference: upper-triangular AABB sweep. Returns candidate pairs
/// `(i, j)` with `i < j`, sorted. (Compatibility wrapper over
/// [`broad_phase_serial_ws`]; hot paths hold a [`ContactWorkspace`] and
/// call the workspace form directly.)
pub fn broad_phase_serial(
    sys: &BlockSystem,
    range: f64,
    counter: &mut CpuCounter,
) -> Vec<(u32, u32)> {
    let mut ws = ContactWorkspace::new();
    broad_phase_serial_ws(sys, range, counter, &mut ws);
    std::mem::take(&mut ws.pairs)
}

/// GPU broad phase over the flattened geometry, reusing the workspace's
/// box/flag/pair buffers. Pairs `(i, j)` with `i < j`, in lexicographic
/// order straight from the device compaction.
pub fn broad_phase_gpu_ws(dev: &Device, soa: &GeomSoa, range: f64, ws: &mut ContactWorkspace) {
    let n = soa.n_blocks();
    ws.pairs.clear();
    if n < 2 {
        return;
    }
    let cols = n / 2;
    let even = n.is_multiple_of(2);

    // Inflated boxes (a small device kernel, as the real pipeline keeps the
    // boxes on the device).
    ws.boxes.clear();
    ws.boxes.resize(4 * n, 0.0);
    {
        let b_in = dev.bind_ro(&soa.aabb);
        let b_out = dev.bind(&mut ws.boxes[..]);
        dev.launch("broad.inflate", n, |lane| {
            let b = lane.gid;
            let minx = lane.ld(&b_in, 4 * b);
            let miny = lane.ld(&b_in, 4 * b + 1);
            let maxx = lane.ld(&b_in, 4 * b + 2);
            let maxy = lane.ld(&b_in, 4 * b + 3);
            lane.flop(4);
            lane.st(&b_out, 4 * b, minx - range);
            lane.st(&b_out, 4 * b + 1, miny - range);
            lane.st(&b_out, 4 * b + 2, maxx + range);
            lane.st(&b_out, 4 * b + 3, maxy + range);
        });
    }

    // Tiled pair test over the reshaped n×(n/2) matrix. Hits land at the
    // pair's triangular index, so compaction order *is* pair order.
    let tri = n * (n - 1) / 2;
    ws.flags.clear();
    ws.flags.resize(tri, 0);
    if cols > 0 {
        let tiles_r = n.div_ceil(TILE);
        let tiles_c = cols.div_ceil(TILE);
        let b_boxes = dev.bind_ro(&ws.boxes);
        let b_flags = dev.bind(&mut ws.flags[..]);
        dev.launch_blocks("broad.pair_tiles", tiles_r * tiles_c, 256, |blk| {
            let tr = blk.block_id / tiles_c;
            let tc = blk.block_id % tiles_c;
            let r0 = tr * TILE;
            let c0 = tc * TILE;
            let rows = TILE.min(n - r0);
            let ccount = TILE.min(cols - c0);

            // Row boxes: m coalesced quadruples.
            let row_boxes = blk.gld_range(&b_boxes, 4 * r0, 4 * rows);
            // Column boxes: the 2m−1 distinct j values of this tile, loaded
            // once and shared (paper's shared-memory optimisation). For
            // tiny n the cache may contain repeated blocks (j wraps mod n);
            // that only costs a few duplicate loads.
            let distinct = rows + ccount - 1;
            let col_js: Vec<usize> = (0..distinct).map(|d| (r0 + c0 + 1 + d) % n).collect();
            let col_idx: Vec<usize> = col_js
                .iter()
                .flat_map(|&j| (0..4).map(move |k| 4 * j + k))
                .collect();
            let col_boxes = blk.gld_gather(&b_boxes, &col_idx);
            let words: Vec<u32> = (0..(4 * distinct) as u32).collect();
            blk.smem_access(&words);
            blk.sync();

            blk.flop_all(8);
            let mut stores: Vec<(usize, u32)> = Vec::new();
            let mut mask: Vec<bool> = Vec::with_capacity(rows * ccount);
            for r in 0..rows {
                for c in 0..ccount {
                    let gr = r0 + r;
                    let gc = c0 + c;
                    // Skip the double-counted half-column for even n.
                    if even && gc == cols - 1 && gr >= n / 2 {
                        mask.push(false);
                        continue;
                    }
                    let d = r + c; // index into the distinct-j cache
                    let rb = &row_boxes[4 * r..4 * r + 4];
                    let cb = &col_boxes[4 * d..4 * d + 4];
                    let overlap =
                        rb[0] <= cb[2] && cb[0] <= rb[2] && rb[1] <= cb[3] && cb[1] <= rb[3];
                    mask.push(overlap);
                    if overlap {
                        let gj = (gr + gc + 1) % n;
                        let (i, j) = (gr.min(gj), gr.max(gj));
                        stores.push((i * n - i * (i + 1) / 2 + (j - i - 1), 1u32));
                    }
                }
            }
            blk.branch_mask(0, &mask);
            blk.gst_scatter(&b_flags, &stores);
        });
    }

    // Compact the hit flags into a dense pair list (device scan + scatter).
    // Triangular indices ascend exactly in (i, j) lexicographic order, so
    // the O(n + k) row walk below decodes them without any sorting.
    let hits = compact_indices(dev, &ws.flags);
    ws.pairs.reserve(hits.len());
    let mut row = 0usize;
    let mut row_end = n - 1; // exclusive end of row 0's index range
    let mut row_start = 0usize;
    for h in hits {
        let h = h as usize;
        while h >= row_end {
            row += 1;
            row_start = row_end;
            row_end += n - 1 - row;
        }
        ws.pairs
            .push((row as u32, (row + 1 + h - row_start) as u32));
    }
}

/// GPU broad phase over the flattened geometry. Returns candidate pairs
/// `(i, j)` with `i < j`, sorted. (Compatibility wrapper over
/// [`broad_phase_gpu_ws`].)
pub fn broad_phase_gpu(dev: &Device, soa: &GeomSoa, range: f64) -> Vec<(u32, u32)> {
    let mut ws = ContactWorkspace::new();
    broad_phase_gpu_ws(dev, soa, range, &mut ws);
    std::mem::take(&mut ws.pairs)
}

/// All-pairs coverage check of the reshape mapping (exposed for tests and
/// the bench harness).
pub fn reshape_covers_all_pairs(n: usize) -> bool {
    let cols = n / 2;
    let even = n.is_multiple_of(2);
    let mut seen = std::collections::HashSet::new();
    for r in 0..n {
        for c in 0..cols {
            if even && c == cols - 1 && r >= n / 2 {
                continue;
            }
            let j = (r + c + 1) % n;
            let key = (r.min(j), r.max(j));
            if !seen.insert(key) {
                return false; // duplicate
            }
        }
    }
    seen.len() == n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn grid_system(nx: usize, ny: usize, gap: f64) -> BlockSystem {
        let mut blocks = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                let x0 = ix as f64 * (1.0 + gap);
                let y0 = iy as f64 * (1.0 + gap);
                blocks.push(Block::new(Polygon::rect(x0, y0, x0 + 1.0, y0 + 1.0), 0));
            }
        }
        BlockSystem::new(
            blocks,
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        )
    }

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn reshape_mapping_exact_for_odd_and_even() {
        for n in [2usize, 3, 4, 5, 8, 9, 16, 17, 33] {
            assert!(reshape_covers_all_pairs(n), "n = {n}");
        }
    }

    #[test]
    fn serial_finds_neighbours_only() {
        let sys = grid_system(3, 3, 0.5);
        let mut c = CpuCounter::new();
        // Inflation below the gap: only touching pairs... gap=0.5, inflate
        // 0.1 → no pairs overlap (0.2 < 0.5).
        let pairs = broad_phase_serial(&sys, 0.1, &mut c);
        assert!(pairs.is_empty());
        // Inflate beyond half the gap: 4-neighbour (and diagonal) pairs.
        let pairs = broad_phase_serial(&sys, 0.3, &mut c);
        assert!(!pairs.is_empty());
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 3)));
        assert!(c.flops > 0);
    }

    #[test]
    fn tiny_systems_still_charge_box_work() {
        // Regression: n < 2 used to charge zero flops/bytes despite
        // inflating the boxes.
        for n in [0usize, 1] {
            let sys = grid_system(n.max(1), 1, 0.0);
            let mut c = CpuCounter::new();
            let _ = broad_phase_serial(&sys, 0.1, &mut c);
            assert!(c.flops > 0, "n={n} must charge inflation flops");
            assert!(c.bytes > 0, "n={n} must charge box traffic");
        }
    }

    #[test]
    fn gpu_matches_serial() {
        for (nx, ny, range) in [
            (3usize, 3usize, 0.3f64),
            (4, 4, 0.3),
            (5, 3, 0.6),
            (2, 1, 0.3),
        ] {
            let sys = grid_system(nx, ny, 0.5);
            let mut c = CpuCounter::new();
            let serial = broad_phase_serial(&sys, range, &mut c);
            let d = dev();
            let soa = GeomSoa::build(&sys);
            let gpu = broad_phase_gpu(&d, &soa, range);
            assert_eq!(serial, gpu, "{nx}x{ny} range {range}");
        }
    }

    #[test]
    fn device_compaction_order_is_already_sorted() {
        // The triangular flag layout must hand back lexicographically
        // ordered pairs with no host-side sort.
        let sys = grid_system(6, 5, 0.1);
        let d = dev();
        let soa = GeomSoa::build(&sys);
        let pairs = broad_phase_gpu(&d, &soa, 0.3);
        assert!(!pairs.is_empty());
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted, "compaction order must be pair order");
    }

    #[test]
    fn touching_blocks_detected() {
        let sys = grid_system(2, 1, 0.0); // exactly touching
        let d = dev();
        let soa = GeomSoa::build(&sys);
        let pairs = broad_phase_gpu(&d, &soa, 0.01);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn single_block_no_pairs() {
        let sys = grid_system(1, 1, 0.0);
        let d = dev();
        let soa = GeomSoa::build(&sys);
        assert!(broad_phase_gpu(&d, &soa, 1.0).is_empty());
    }

    #[test]
    fn kernels_recorded() {
        let sys = grid_system(4, 4, 0.1);
        let d = dev();
        let soa = GeomSoa::build(&sys);
        let _ = broad_phase_gpu(&d, &soa, 0.2);
        let by = d.trace().by_kernel();
        assert!(by.contains_key("broad.inflate"));
        assert!(by.contains_key("broad.pair_tiles"));
        assert!(by["broad.pair_tiles"].0.smem_accesses > 0);
    }
}
