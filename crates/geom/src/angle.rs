//! Contact-angle judgment helpers.
//!
//! DDA's narrow phase does not accept every close vertex/edge pair as a
//! contact: the *angle judgment* (the paper's second classification step)
//! checks that the vertex wedges actually face each other, so blocks sliding
//! past one another are not glued together by phantom springs.
//!
//! For a vertex `v` with adjacent vertices `(prev, next)` on a CCW block,
//! the material of the block occupies the angular sector from `v → next`
//! CCW around to `v → prev`. A vertex–edge contact is admissible when the
//! edge's inward normal lies inside (or near) the *complement* of the wedge,
//! and a vertex–vertex contact when the two wedges can be separated.

use crate::vec2::Vec2;

/// Normalises an angle to `[0, 2π)`.
#[inline]
pub fn wrap_angle(a: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut r = a % tau;
    if r < 0.0 {
        r += tau;
    }
    r
}

/// CCW angular span from direction `from` to direction `to`, in `[0, 2π)`.
#[inline]
pub fn ccw_span(from: Vec2, to: Vec2) -> f64 {
    wrap_angle(to.angle() - from.angle())
}

/// The material wedge of a block vertex: the CCW angular sector occupied by
/// block material around the vertex.
#[derive(Debug, Clone, Copy)]
pub struct Wedge {
    /// Direction from the vertex toward the next vertex (CCW start of the
    /// material sector).
    pub start: Vec2,
    /// Direction from the vertex toward the previous vertex (CCW end of the
    /// material sector).
    pub end: Vec2,
}

impl Wedge {
    /// Builds the wedge of vertex `v` with CCW neighbours `prev` and `next`.
    pub fn new(prev: Vec2, v: Vec2, next: Vec2) -> Self {
        Wedge {
            start: (next - v).normalized(),
            end: (prev - v).normalized(),
        }
    }

    /// Interior angle of the wedge in radians (`< π` for convex vertices).
    pub fn interior_angle(&self) -> f64 {
        ccw_span(self.start, self.end)
    }

    /// True when direction `d` (from the vertex outward) points into block
    /// material, within angular slack `tol` radians.
    pub fn contains_dir(&self, d: Vec2, tol: f64) -> bool {
        let span = self.interior_angle();
        let a = ccw_span(self.start, d);
        a <= span + tol || a >= std::f64::consts::TAU - tol
    }
}

/// Vertex–edge angle admissibility: can vertex `v` (wedge `w`) press against
/// an edge whose **outward** unit normal (pointing away from the contacted
/// block) is `edge_outward_normal`?
///
/// The contact pushes the vertex in the `edge_outward_normal` direction, so
/// the vertex's material must *not* already occupy the half space behind it:
/// the direction `-edge_outward_normal` (from the vertex toward the edge)
/// must not be interior to the wedge by more than the slack.
pub fn ve_admissible(w: &Wedge, edge_outward_normal: Vec2, tol: f64) -> bool {
    // Direction from the vertex toward the contacted edge.
    let toward = -edge_outward_normal;
    // Admissible when material does not fully surround the approach
    // direction; allow grazing contact within `tol`.
    !w.contains_dir(toward, -tol)
}

/// Vertex–vertex angle admissibility: two wedges may form a contact when the
/// sum of their interior angles leaves room for a separating line
/// (`< 2π` with slack). Overlapping material (`sum ≥ 2π`) means the
/// configuration is already interpenetrating beyond vertex contact.
pub fn vv_admissible(a: &Wedge, b: &Wedge, tol: f64) -> bool {
    a.interior_angle() + b.interior_angle() < std::f64::consts::TAU + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(-0.1) - (std::f64::consts::TAU - 0.1)).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
        assert!((wrap_angle(7.0) - (7.0 - std::f64::consts::TAU)).abs() < 1e-12);
    }

    #[test]
    fn ccw_span_quarters() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert!((ccw_span(e1, e2) - FRAC_PI_2).abs() < 1e-12);
        assert!((ccw_span(e2, e1) - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn square_corner_wedge() {
        // Bottom-left corner of a CCW unit square: prev=(0,1), v=(0,0), next=(1,0).
        let w = Wedge::new(Vec2::new(0.0, 1.0), Vec2::ZERO, Vec2::new(1.0, 0.0));
        assert!((w.interior_angle() - FRAC_PI_2).abs() < 1e-12);
        // The material sector is the first quadrant.
        assert!(w.contains_dir(Vec2::new(1.0, 1.0).normalized(), 1e-9));
        assert!(!w.contains_dir(Vec2::new(-1.0, -1.0).normalized(), 1e-9));
    }

    #[test]
    fn ve_admissibility_square_on_floor() {
        // Square corner resting on a floor whose outward normal is +y.
        let w = Wedge::new(Vec2::new(0.0, 1.0), Vec2::ZERO, Vec2::new(1.0, 0.0));
        let floor_normal = Vec2::new(0.0, 1.0);
        // Approach direction is -y which is NOT in the first-quadrant wedge:
        // admissible.
        assert!(ve_admissible(&w, floor_normal, 0.01));
        // A wall pushing from +x: approach -x not in wedge: admissible.
        assert!(ve_admissible(&w, Vec2::new(1.0, 0.0), 0.01));
        // A ceiling pushing from below (-y outward normal): the approach
        // direction +y is wedge-interior-adjacent (boundary), still
        // admissible only within slack — boundary case:
        let ceiling = Vec2::new(0.0, -1.0);
        // Approach +y is on the wedge boundary; with negative slack inside
        // contains_dir it is rejected as interior.
        assert!(ve_admissible(&w, ceiling, 0.01));
    }

    #[test]
    fn ve_inadmissible_when_material_behind() {
        // A very obtuse vertex (interior angle near 2π would be non-convex);
        // use a half-plane vertex: prev=(-1,0), v=(0,0), next=(1,0) →
        // interior angle π (flat). Material fills y>0 side.
        let w = Wedge::new(Vec2::new(-1.0, 0.0), Vec2::ZERO, Vec2::new(1.0, 0.0));
        // Edge below pushing up: approach direction -y, not in material: ok.
        assert!(ve_admissible(&w, Vec2::new(0.0, 1.0), 0.01));
        // Edge above pushing down: approach +y is strictly inside material:
        // inadmissible.
        assert!(!ve_admissible(&w, Vec2::new(0.0, -1.0), 0.01));
    }

    #[test]
    fn vv_admissibility() {
        let quarter = Wedge::new(Vec2::new(0.0, 1.0), Vec2::ZERO, Vec2::new(1.0, 0.0));
        assert!((quarter.interior_angle() - FRAC_PI_2).abs() < 1e-12);
        // Two square corners: π/2 + π/2 < 2π → admissible.
        assert!(vv_admissible(&quarter, &quarter, 1e-9));
        // Two nearly-flat wedges of angle ~π each still admissible
        // (π + π = 2π boundary, needs slack).
        let flat = Wedge::new(Vec2::new(-1.0, 0.0), Vec2::ZERO, Vec2::new(1.0, 0.0));
        assert!((flat.interior_angle() - PI).abs() < 1e-12);
        assert!(vv_admissible(&flat, &flat, 0.01));
    }
}
