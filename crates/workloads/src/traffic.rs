//! Traffic generators for the ingestion layer: deterministic streams of
//! [`SceneSubmission`]s that exercise a
//! [`BatchScheduler`](dda_core::BatchScheduler) the way a production
//! intake would — mixed priorities, deadlines, a configurable fraction of
//! poisoned scenes, and either a fixed arrival rate (open loop, for
//! overload studies) or a fixed concurrency target (closed loop, for
//! sustained-throughput studies).
//!
//! Everything is seeded: the same seed yields the same submission stream,
//! so soak results and benchmark reports are reproducible.

use crate::adversarial::nan_contaminated_scene;
use crate::rockfall::{rockfall_case, RockfallConfig};
use crate::scatter::{scatter_case, ScatterConfig};
use dda_core::pipeline::fleet::FleetSubmission;
use dda_core::{Priority, SceneSubmission};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the generated traffic: what each submitted scene looks like.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Falling rocks per scene (scene size).
    pub rocks: usize,
    /// Minimum requested steps per scene.
    pub run_steps_min: u64,
    /// Maximum requested steps per scene (inclusive).
    pub run_steps_max: u64,
    /// Per-mille of scenes carrying a NaN launch velocity (they fault on
    /// their first step and walk the quarantine/requeue path).
    pub nan_permille: usize,
    /// Per-mille of healthy scenes drawn from the scattered sparse field
    /// ([`scatter_case`]) instead of the rockfall case. Scatter scenes
    /// ship with the grid + cache broad phase enabled, so a non-zero mix
    /// soaks that path under scheduler churn.
    pub scatter_permille: usize,
    /// Per-mille of scenes submitted at [`Priority::High`].
    pub high_permille: usize,
    /// Per-mille of scenes submitted at [`Priority::Low`].
    pub low_permille: usize,
    /// Per-mille of scenes carrying an admission deadline.
    pub deadline_permille: usize,
    /// Deadline slack in ticks for deadline-carrying scenes
    /// (`deadline = now + slack`).
    pub deadline_slack: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            rocks: 2,
            run_steps_min: 2,
            run_steps_max: 5,
            nan_permille: 0,
            scatter_permille: 0,
            high_permille: 100,
            low_permille: 200,
            deadline_permille: 0,
            deadline_slack: 8,
        }
    }
}

impl TrafficConfig {
    /// Draws one submission. Healthy scenes perturb the base rockfall
    /// case (±20% release speed, ±4% rock size) so the stream samples
    /// distinct trajectories; poisoned scenes come from
    /// [`nan_contaminated_scene`].
    fn sample(&self, rng: &mut StdRng, now: u64) -> SceneSubmission {
        let poisoned = rng.gen_range(0..1000) < self.nan_permille;
        let (sys, params) = if poisoned {
            nan_contaminated_scene(self.rocks, rng.gen_range(0..self.rocks))
        } else if rng.gen_range(0..1000) < self.scatter_permille {
            let c = ScatterConfig {
                n_rocks: self.rocks,
                seed: rng.gen(),
                ..ScatterConfig::default()
            };
            scatter_case(&c)
        } else {
            let mut c = RockfallConfig::default().with_rocks(self.rocks);
            let u = (rng.gen_range(0..401) as f64 - 200.0) / 1000.0;
            c.initial_speed *= 1.0 + u;
            c.rock_size *= 1.0 + 0.2 * u;
            rockfall_case(&c)
        };
        let span = (self.run_steps_max - self.run_steps_min + 1) as usize;
        let run_steps = self.run_steps_min + rng.gen_range(0..span) as u64;
        let mut sub = SceneSubmission::new(sys, params, run_steps);
        let roll = rng.gen_range(0..1000);
        if roll < self.high_permille {
            sub = sub.with_priority(Priority::High);
        } else if roll < self.high_permille + self.low_permille {
            sub = sub.with_priority(Priority::Low);
        }
        if rng.gen_range(0..1000) < self.deadline_permille {
            sub = sub.with_deadline(now + self.deadline_slack);
        }
        sub
    }
}

/// Open-loop generator: submits at a fixed average rate regardless of how
/// the scheduler is coping — the tool for overload and shed-rate studies.
/// Fractional rates accumulate credit, so e.g. 0.5 scenes/tick arrives as
/// one scene every second tick.
#[derive(Debug)]
pub struct OpenLoopTraffic {
    cfg: TrafficConfig,
    rate_permille: usize,
    credit: usize,
    rng: StdRng,
    emitted: u64,
}

impl OpenLoopTraffic {
    /// A generator arriving at `rate` scenes per tick on average,
    /// deterministic in `seed`.
    pub fn new(rate: f64, cfg: TrafficConfig, seed: u64) -> OpenLoopTraffic {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite");
        OpenLoopTraffic {
            cfg,
            rate_permille: (rate * 1000.0).round() as usize,
            credit: 0,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        }
    }

    /// The submissions arriving this tick (`now` stamps deadlines).
    pub fn arrivals(&mut self, now: u64) -> Vec<SceneSubmission> {
        self.credit += self.rate_permille;
        let n = self.credit / 1000;
        self.credit %= 1000;
        let subs: Vec<SceneSubmission> = (0..n)
            .map(|_| self.cfg.sample(&mut self.rng, now))
            .collect();
        self.emitted += subs.len() as u64;
        subs
    }

    /// Total submissions generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Closed-loop generator: each tick it tops the scheduler back up to a
/// target number of in-flight scenes — the tool for sustained-throughput
/// measurements, where the intake matches the drain by construction.
#[derive(Debug)]
pub struct ClosedLoopTraffic {
    cfg: TrafficConfig,
    target: usize,
    rng: StdRng,
    emitted: u64,
}

impl ClosedLoopTraffic {
    /// A generator holding `target` scenes in flight, deterministic in
    /// `seed`.
    pub fn new(target: usize, cfg: TrafficConfig, seed: u64) -> ClosedLoopTraffic {
        ClosedLoopTraffic {
            cfg,
            target,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        }
    }

    /// The submissions needed to restore the concurrency target given the
    /// scheduler's current `in_flight` count.
    pub fn arrivals(&mut self, now: u64, in_flight: usize) -> Vec<SceneSubmission> {
        let n = self.target.saturating_sub(in_flight);
        let subs: Vec<SceneSubmission> = (0..n)
            .map(|_| self.cfg.sample(&mut self.rng, now))
            .collect();
        self.emitted += subs.len() as u64;
        subs
    }

    /// Total submissions generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Shape of fleet-addressed churn traffic: open-loop arrivals plus
/// periodic bursts, every submission tagged with a locality key drawn
/// from a skewed population (a few hot kinematic families, a long tail
/// of cold ones) so the router's locality-aware placement has structure
/// to exploit.
#[derive(Debug, Clone)]
pub struct FleetChurnConfig {
    /// Per-scene shape (size, steps, priorities, poison mix).
    pub traffic: TrafficConfig,
    /// Number of distinct locality keys in the population.
    pub localities: u64,
    /// Baseline arrival rate in scenes per tick (open loop).
    pub rate: f64,
    /// Every this many ticks, a burst arrives on top of the baseline
    /// (0 disables bursts).
    pub burst_every: u64,
    /// Scenes per burst.
    pub burst_size: usize,
    /// Per-mille of submissions whose locality key is forced to key 0 on
    /// top of the baseline min-of-two-draws skew. 0 keeps the historical
    /// stream byte-for-byte (no extra RNG draws); crank it up to pile a
    /// hot kinematic family onto one device and give the router's
    /// load-feedback rebalancer something to undo.
    pub hot_key_permille: usize,
}

impl Default for FleetChurnConfig {
    fn default() -> Self {
        FleetChurnConfig {
            traffic: TrafficConfig::default(),
            localities: 8,
            rate: 1.0,
            burst_every: 16,
            burst_size: 4,
            hot_key_permille: 0,
        }
    }
}

/// Fleet-addressed churn generator: deterministic in its seed, it emits
/// [`FleetSubmission`]s for a [`FleetRouter`](dda_core::pipeline::fleet::FleetRouter)
/// the way [`OpenLoopTraffic`] feeds a single scheduler — but with
/// locality keys and arrival bursts, the access pattern multi-device
/// placement actually has to cope with.
#[derive(Debug)]
pub struct FleetChurnTraffic {
    cfg: FleetChurnConfig,
    rate_permille: usize,
    credit: usize,
    rng: StdRng,
    emitted: u64,
}

impl FleetChurnTraffic {
    /// A generator over `cfg`, deterministic in `seed`.
    pub fn new(cfg: FleetChurnConfig, seed: u64) -> FleetChurnTraffic {
        assert!(
            cfg.rate >= 0.0 && cfg.rate.is_finite(),
            "rate must be finite"
        );
        assert!(cfg.localities > 0, "need at least one locality key");
        let rate_permille = (cfg.rate * 1000.0).round() as usize;
        FleetChurnTraffic {
            cfg,
            rate_permille,
            credit: 0,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        }
    }

    /// Locality keys are the min of two uniform draws: key 0 is the
    /// hottest family and heat falls off linearly — enough skew that
    /// sticky placement matters, without a Zipf table. On top of that,
    /// `hot_key_permille` of submissions collapse onto key 0 outright
    /// (the draw happens only when the knob is non-zero, so the default
    /// stream is unchanged).
    fn locality(&mut self) -> u64 {
        if self.cfg.hot_key_permille > 0 && self.rng.gen_range(0..1000) < self.cfg.hot_key_permille
        {
            return 0;
        }
        let a = self.rng.gen_range(0..self.cfg.localities as usize);
        let b = self.rng.gen_range(0..self.cfg.localities as usize);
        a.min(b) as u64
    }

    /// The fleet submissions arriving this tick: the open-loop baseline
    /// plus, on burst ticks, the burst.
    pub fn arrivals(&mut self, now: u64) -> Vec<FleetSubmission> {
        self.credit += self.rate_permille;
        let mut n = self.credit / 1000;
        self.credit %= 1000;
        if self.cfg.burst_every > 0 && now > 0 && now.is_multiple_of(self.cfg.burst_every) {
            n += self.cfg.burst_size;
        }
        let subs: Vec<FleetSubmission> = (0..n)
            .map(|_| {
                let locality = self.locality();
                FleetSubmission {
                    submission: self.cfg.traffic.sample(&mut self.rng, now),
                    locality,
                }
            })
            .collect();
        self.emitted += subs.len() as u64;
        subs
    }

    /// Total submissions generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_rate_accounting() {
        let mut t = OpenLoopTraffic::new(0.5, TrafficConfig::default(), 7);
        let counts: Vec<usize> = (0..8).map(|now| t.arrivals(now).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 4, "0.5/tick over 8 ticks");
        assert_eq!(t.emitted(), 4);
        let mut burst = OpenLoopTraffic::new(3.0, TrafficConfig::default(), 7);
        assert_eq!(burst.arrivals(0).len(), 3);
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let cfg = TrafficConfig {
            nan_permille: 300,
            deadline_permille: 500,
            ..TrafficConfig::default()
        };
        let mut a = OpenLoopTraffic::new(2.0, cfg.clone(), 42);
        let mut b = OpenLoopTraffic::new(2.0, cfg, 42);
        for now in 0..6 {
            let (sa, sb) = (a.arrivals(now), b.arrivals(now));
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(&sb) {
                assert_eq!(x.run_steps, y.run_steps);
                assert_eq!(x.priority, y.priority);
                assert_eq!(x.deadline, y.deadline);
                for (bx, by) in x.sys.blocks.iter().zip(&y.sys.blocks) {
                    for dof in 0..6 {
                        assert_eq!(
                            bx.velocity[dof].to_bits(),
                            by.velocity[dof].to_bits(),
                            "streams diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fleet_churn_is_deterministic_and_bursty() {
        let cfg = FleetChurnConfig {
            rate: 0.5,
            burst_every: 4,
            burst_size: 3,
            localities: 4,
            ..FleetChurnConfig::default()
        };
        let mut a = FleetChurnTraffic::new(cfg.clone(), 11);
        let mut b = FleetChurnTraffic::new(cfg, 11);
        let mut burst_seen = false;
        for now in 0..12 {
            let (sa, sb) = (a.arrivals(now), b.arrivals(now));
            assert_eq!(sa.len(), sb.len());
            if now % 4 == 0 && now > 0 {
                assert!(sa.len() >= 3, "burst ticks carry the burst");
                burst_seen = true;
            }
            for (x, y) in sa.iter().zip(&sb) {
                assert_eq!(x.locality, y.locality, "locality stream diverged");
                assert!(x.locality < 4);
                assert_eq!(x.submission.run_steps, y.submission.run_steps);
            }
        }
        assert!(burst_seen);
        assert_eq!(a.emitted(), b.emitted());
    }

    #[test]
    fn hot_key_skew_piles_onto_key_zero() {
        let cfg = FleetChurnConfig {
            rate: 4.0,
            burst_every: 0,
            localities: 8,
            hot_key_permille: 900,
            ..FleetChurnConfig::default()
        };
        let mut t = FleetChurnTraffic::new(cfg, 5);
        let (mut hot, mut total) = (0usize, 0usize);
        for now in 0..16 {
            for sub in t.arrivals(now) {
                total += 1;
                if sub.locality == 0 {
                    hot += 1;
                }
            }
        }
        assert!(total >= 32);
        assert!(
            hot * 10 >= total * 8,
            "900 permille skew must land most scenes on key 0 ({hot}/{total})"
        );
    }

    #[test]
    fn closed_loop_tops_up_to_target() {
        let mut t = ClosedLoopTraffic::new(6, TrafficConfig::default(), 1);
        assert_eq!(t.arrivals(0, 0).len(), 6);
        assert_eq!(t.arrivals(1, 4).len(), 2);
        assert_eq!(t.arrivals(2, 6).len(), 0);
        assert_eq!(t.arrivals(3, 9).len(), 0, "over target submits nothing");
        assert_eq!(t.emitted(), 8);
    }

    #[test]
    fn scatter_mix_carries_grid_cached_params() {
        use dda_core::contact::BroadPhaseMode;
        let cfg = TrafficConfig {
            scatter_permille: 1000,
            ..TrafficConfig::default()
        };
        let mut t = OpenLoopTraffic::new(1.0, cfg, 9);
        for now in 0..4 {
            for sub in t.arrivals(now) {
                assert_eq!(
                    sub.params.broad_phase,
                    BroadPhaseMode::GridCached,
                    "scatter scenes must run the grid + cache broad phase"
                );
            }
        }
    }

    #[test]
    fn poison_fraction_is_respected() {
        let cfg = TrafficConfig {
            nan_permille: 1000,
            ..TrafficConfig::default()
        };
        let mut t = OpenLoopTraffic::new(1.0, cfg, 3);
        for now in 0..4 {
            for sub in t.arrivals(now) {
                let poisoned = sub
                    .sys
                    .blocks
                    .iter()
                    .any(|b| b.velocity.iter().any(|v| v.is_nan()));
                assert!(poisoned, "nan_permille=1000 must poison every scene");
            }
        }
    }
}
