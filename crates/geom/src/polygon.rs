//! Convex polygons: the geometric representation of a DDA block.
//!
//! Beyond the obvious queries (area, centroid, point containment) this
//! module provides the two integrals the DDA stiffness terms need —
//! [`Polygon::second_moments`] feeds the inertia matrix `∫ Tᵀ T dA` — and
//! the constructive operations the workload generators need (half-plane
//! split, convex clipping) to cut a slope region into a jointed block
//! system.

use crate::aabb::Aabb;
use crate::predicates::orient2d;
use crate::segment::Segment;
use crate::vec2::Vec2;
use crate::GEOM_EPS;
use serde::{Deserialize, Serialize};

/// Area-weighted second moments of a polygon about its own centroid.
///
/// With `(xc, yc)` the centroid, the fields are
/// `sxx = ∫ (x - xc)² dA`, `syy = ∫ (y - yc)² dA`,
/// `sxy = ∫ (x - xc)(y - yc) dA`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SecondMoments {
    /// `∫ (x - xc)² dA`
    pub sxx: f64,
    /// `∫ (y - yc)² dA`
    pub syy: f64,
    /// `∫ (x - xc)(y - yc) dA`
    pub sxy: f64,
}

/// A simple polygon stored as CCW-ordered vertices.
///
/// The constructors normalise orientation to counter-clockwise, which the
/// contact kernels rely on ([`Segment::outward_normal`] assumes CCW
/// traversal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Vec2>,
}

impl Polygon {
    /// Builds a polygon from vertices, normalising the winding to CCW.
    ///
    /// # Panics
    /// Panics when fewer than 3 vertices are supplied.
    pub fn new(mut vertices: Vec<Vec2>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        if signed_area(&vertices) < 0.0 {
            vertices.reverse();
        }
        Polygon { vertices }
    }

    /// Axis-aligned rectangle `[x0, x1] × [y0, y1]`.
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Polygon::new(vec![
            Vec2::new(x0, y0),
            Vec2::new(x1, y0),
            Vec2::new(x1, y1),
            Vec2::new(x0, y1),
        ])
    }

    /// Regular `n`-gon centred at `c` with circumradius `r`.
    pub fn regular(c: Vec2, r: f64, n: usize) -> Self {
        assert!(n >= 3);
        let verts = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                c + Vec2::new(a.cos(), a.sin()) * r
            })
            .collect();
        Polygon::new(verts)
    }

    /// The CCW-ordered vertices.
    #[inline]
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false (polygons have ≥ 3 vertices); present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Vertex `i` (no wrapping).
    #[inline]
    pub fn vertex(&self, i: usize) -> Vec2 {
        self.vertices[i]
    }

    /// Edge from vertex `i` to vertex `i + 1` (wrapping).
    #[inline]
    pub fn edge(&self, i: usize) -> Segment {
        let n = self.vertices.len();
        Segment::new(self.vertices[i], self.vertices[(i + 1) % n])
    }

    /// Iterator over all edges in CCW order.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.vertices.len()).map(move |i| self.edge(i))
    }

    /// The vertices before and after vertex `i` — the "wedge" used by the
    /// narrow phase's contact-angle judgment.
    pub fn wedge(&self, i: usize) -> (Vec2, Vec2, Vec2) {
        let n = self.vertices.len();
        (
            self.vertices[(i + n - 1) % n],
            self.vertices[i],
            self.vertices[(i + 1) % n],
        )
    }

    /// Polygon area (positive — vertices are CCW).
    pub fn area(&self) -> f64 {
        signed_area(&self.vertices)
    }

    /// Area centroid.
    pub fn centroid(&self) -> Vec2 {
        let a = self.area();
        if a.abs() < GEOM_EPS * GEOM_EPS {
            // Degenerate: fall back to vertex average.
            let sum = self.vertices.iter().fold(Vec2::ZERO, |s, &v| s + v);
            return sum / self.vertices.len() as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Vec2::new(cx, cy) / (6.0 * a)
    }

    /// Second moments about the centroid (see [`SecondMoments`]).
    ///
    /// These are exactly the integrals appearing in the DDA inertia
    /// sub-matrix `ρ ∫ Tᵀ(x, y) T(x, y) dA`: after the first moments about
    /// the centroid vanish, only area and these three second moments remain.
    pub fn second_moments(&self) -> SecondMoments {
        let n = self.vertices.len();
        let c = self.centroid();
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for i in 0..n {
            // Work in centroid-relative coordinates for numerical stability
            // (coordinates up to 1e3 would otherwise lose digits in the
            // x²·cross products).
            let p = self.vertices[i] - c;
            let q = self.vertices[(i + 1) % n] - c;
            let w = p.cross(q);
            sxx += (p.x * p.x + p.x * q.x + q.x * q.x) * w;
            syy += (p.y * p.y + p.y * q.y + q.y * q.y) * w;
            sxy += (2.0 * p.x * p.y + p.x * q.y + q.x * p.y + 2.0 * q.x * q.y) * w;
        }
        SecondMoments {
            sxx: sxx / 12.0,
            syy: syy / 12.0,
            sxy: sxy / 24.0,
        }
    }

    /// Bounding box of the polygon.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(&self.vertices)
    }

    /// True when the polygon is convex (CCW with no right turns).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            if orient2d(a, b, c) < -GEOM_EPS {
                return false;
            }
        }
        true
    }

    /// Point-in-convex-polygon test (boundary counts as inside).
    ///
    /// Only valid for convex polygons; DDA blocks in this repository are
    /// convex by construction.
    pub fn contains(&self, p: Vec2) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if orient2d(a, b, p) < -GEOM_EPS * (b - a).norm().max(1.0) {
                return false;
            }
        }
        true
    }

    /// Translates every vertex by `d`.
    pub fn translated(&self, d: Vec2) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&v| v + d).collect(),
        }
    }

    /// Splits a **convex** polygon by the infinite line through `p` with
    /// direction `dir`. Returns `(left, right)` pieces, either of which may
    /// be `None` when the line misses the polygon.
    ///
    /// This is the workhorse of the joint-set block cutter: each joint line
    /// splits every block it crosses.
    pub fn split_by_line(&self, p: Vec2, dir: Vec2) -> (Option<Polygon>, Option<Polygon>) {
        let n = self.vertices.len();
        let side = |v: Vec2| dir.cross(v - p);
        let mut left: Vec<Vec2> = Vec::with_capacity(n + 2);
        let mut right: Vec<Vec2> = Vec::with_capacity(n + 2);
        let scale = dir.norm().max(GEOM_EPS);
        let eps = GEOM_EPS * scale;

        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let sc = side(cur);
            let sn = side(nxt);
            if sc >= -eps {
                left.push(cur);
            }
            if sc <= eps {
                right.push(cur);
            }
            // Edge crosses the line strictly: insert the intersection point
            // into both pieces.
            if (sc > eps && sn < -eps) || (sc < -eps && sn > eps) {
                let t = sc / (sc - sn);
                let x = cur.lerp(nxt, t);
                left.push(x);
                right.push(x);
            }
        }

        let finish = |mut vs: Vec<Vec2>| -> Option<Polygon> {
            dedup_ring(&mut vs);
            if vs.len() >= 3 && signed_area(&vs).abs() > GEOM_EPS {
                Some(Polygon::new(vs))
            } else {
                None
            }
        };
        (finish(left), finish(right))
    }

    /// Clips this polygon against a **convex** clip polygon
    /// (Sutherland–Hodgman). Returns `None` when the intersection is empty
    /// or degenerate.
    pub fn clip_convex(&self, clip: &Polygon) -> Option<Polygon> {
        let mut subject: Vec<Vec2> = self.vertices.clone();
        for ce in clip.edges() {
            if subject.is_empty() {
                return None;
            }
            let mut out: Vec<Vec2> = Vec::with_capacity(subject.len() + 1);
            let inside =
                |v: Vec2| orient2d(ce.a, ce.b, v) >= -GEOM_EPS * (ce.b - ce.a).norm().max(1.0);
            let m = subject.len();
            for i in 0..m {
                let cur = subject[i];
                let nxt = subject[(i + 1) % m];
                let ci = inside(cur);
                let ni = inside(nxt);
                if ci {
                    out.push(cur);
                }
                if ci != ni {
                    if let Some(x) = Segment::new(cur, nxt).line_intersection(&ce) {
                        out.push(x);
                    }
                }
            }
            subject = out;
        }
        dedup_ring(&mut subject);
        if subject.len() >= 3 && signed_area(&subject).abs() > GEOM_EPS {
            Some(Polygon::new(subject))
        } else {
            None
        }
    }

    /// Maximum distance from the centroid to a vertex (circumradius).
    pub fn circumradius(&self) -> f64 {
        let c = self.centroid();
        self.vertices.iter().map(|v| v.dist(c)).fold(0.0, f64::max)
    }
}

/// Shoelace signed area of a vertex ring (positive for CCW).
fn signed_area(vertices: &[Vec2]) -> f64 {
    let n = vertices.len();
    let mut a = 0.0;
    for i in 0..n {
        a += vertices[i].cross(vertices[(i + 1) % n]);
    }
    0.5 * a
}

/// Removes consecutive (near-)duplicate vertices from a ring in place.
fn dedup_ring(vs: &mut Vec<Vec2>) {
    if vs.is_empty() {
        return;
    }
    let mut out: Vec<Vec2> = Vec::with_capacity(vs.len());
    for &v in vs.iter() {
        if out
            .last()
            .is_none_or(|&l| l.dist_sq(v) > GEOM_EPS * GEOM_EPS)
        {
            out.push(v);
        }
    }
    while out.len() > 1
        && out
            .first()
            .zip(out.last())
            .is_some_and(|(&f, &l)| f.dist_sq(l) <= GEOM_EPS * GEOM_EPS)
    {
        out.pop();
    }
    *vs = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rect(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn winding_is_normalised_to_ccw() {
        // Clockwise input.
        let p = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 0.0),
        ]);
        assert!(p.area() > 0.0);
    }

    #[test]
    fn rect_area_centroid() {
        let p = Polygon::rect(1.0, 2.0, 4.0, 6.0);
        assert!((p.area() - 12.0).abs() < 1e-12);
        assert!(p.centroid().dist(Vec2::new(2.5, 4.0)) < 1e-12);
    }

    #[test]
    fn second_moments_of_rectangle() {
        // For a w×h rectangle about its centroid:
        //   sxx = h w³ / 12, syy = w h³ / 12, sxy = 0.
        let (w, h) = (3.0, 2.0);
        let p = Polygon::rect(10.0, -5.0, 10.0 + w, -5.0 + h);
        let m = p.second_moments();
        assert!((m.sxx - h * w.powi(3) / 12.0).abs() < 1e-9);
        assert!((m.syy - w * h.powi(3) / 12.0).abs() < 1e-9);
        assert!(m.sxy.abs() < 1e-9);
    }

    #[test]
    fn second_moments_translation_invariant() {
        let p = Polygon::regular(Vec2::ZERO, 2.0, 7);
        let q = p.translated(Vec2::new(123.0, -456.0));
        let mp = p.second_moments();
        let mq = q.second_moments();
        assert!((mp.sxx - mq.sxx).abs() < 1e-7);
        assert!((mp.syy - mq.syy).abs() < 1e-7);
        assert!((mp.sxy - mq.sxy).abs() < 1e-7);
    }

    #[test]
    fn regular_polygon_is_convex() {
        for n in 3..12 {
            assert!(Polygon::regular(Vec2::new(1.0, 1.0), 2.0, n).is_convex());
        }
    }

    #[test]
    fn nonconvex_detected() {
        let p = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(1.0, 0.5), // reflex
            Vec2::new(0.0, 2.0),
        ]);
        assert!(!p.is_convex());
    }

    #[test]
    fn containment() {
        let p = unit_square();
        assert!(p.contains(Vec2::new(0.5, 0.5)));
        assert!(p.contains(Vec2::new(0.0, 0.5))); // boundary
        assert!(p.contains(Vec2::new(1.0, 1.0))); // corner
        assert!(!p.contains(Vec2::new(1.5, 0.5)));
    }

    #[test]
    fn edges_and_wedge() {
        let p = unit_square();
        assert_eq!(p.edges().count(), 4);
        let (prev, v, next) = p.wedge(0);
        assert_eq!(v, Vec2::new(0.0, 0.0));
        assert_eq!(prev, Vec2::new(0.0, 1.0));
        assert_eq!(next, Vec2::new(1.0, 0.0));
    }

    #[test]
    fn split_square_in_half() {
        let p = unit_square();
        let (l, r) = p.split_by_line(Vec2::new(0.5, 0.0), Vec2::new(0.0, 1.0));
        let l = l.unwrap();
        let r = r.unwrap();
        assert!((l.area() - 0.5).abs() < 1e-12);
        assert!((r.area() - 0.5).abs() < 1e-12);
        assert!((l.area() + r.area() - p.area()).abs() < 1e-12);
        // Left piece lies left of the vertical line x = 0.5.
        assert!(l.centroid().x < 0.5);
        assert!(r.centroid().x > 0.5);
    }

    #[test]
    fn split_line_missing_polygon() {
        let p = unit_square();
        let (l, r) = p.split_by_line(Vec2::new(5.0, 0.0), Vec2::new(0.0, 1.0));
        // The whole square is on the left of the upward line at x=5.
        assert!(l.is_some() != r.is_some());
        let piece = l.or(r).unwrap();
        assert!((piece.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_through_vertex() {
        // Diagonal of the unit square passes through two vertices.
        let p = unit_square();
        let (l, r) = p.split_by_line(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0));
        let l = l.unwrap();
        let r = r.unwrap();
        assert!((l.area() - 0.5).abs() < 1e-12);
        assert!((r.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_area_fuzz() {
        let p = Polygon::regular(Vec2::new(0.3, -0.2), 1.7, 9);
        let total = p.area();
        for k in 0..24 {
            let ang = k as f64 * 0.261;
            let (l, r) = p.split_by_line(Vec2::new(0.2, 0.1), Vec2::new(ang.cos(), ang.sin()));
            let sum = l.map_or(0.0, |q| q.area()) + r.map_or(0.0, |q| q.area());
            assert!((sum - total).abs() < 1e-9, "k={k}: {sum} vs {total}");
        }
    }

    #[test]
    fn clip_overlapping_squares() {
        let a = unit_square();
        let b = Polygon::rect(0.5, 0.5, 1.5, 1.5);
        let c = a.clip_convex(&b).unwrap();
        assert!((c.area() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clip_disjoint_is_none() {
        let a = unit_square();
        let b = Polygon::rect(2.0, 2.0, 3.0, 3.0);
        assert!(a.clip_convex(&b).is_none());
    }

    #[test]
    fn clip_contained_returns_inner() {
        let outer = Polygon::rect(-5.0, -5.0, 5.0, 5.0);
        let inner = unit_square();
        let c = inner.clip_convex(&outer).unwrap();
        assert!((c.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circumradius_of_regular_polygon() {
        let p = Polygon::regular(Vec2::new(2.0, 3.0), 1.5, 16);
        assert!((p.circumradius() - 1.5).abs() < 1e-9);
    }
}
