//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no route to crates.io, so the real crate
//! cannot be fetched. This shim keeps the property tests in
//! `tests/proptest_invariants.rs` running unmodified: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` header), `Strategy`
//! implementations for scalar ranges, tuples, and
//! `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design: case generation is a fixed
//! deterministic stream per test (seeded from the test's module path and
//! name), and there is no shrinking — a failing case panics immediately
//! with its case index so it can be replayed by re-running the test.

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
pub mod test_runner {
    /// How many generated cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this suite always overrides via
            // `with_cases`, so the default only matters for new tests.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a over the test path so every property gets its own stream.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Value-generation strategies (mirrors `proptest::strategy`).
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates one value per call from the deterministic stream.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// `Just(v)` — always yields a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy yielding `Vec`s with length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current case (upstream records it for shrinking; here it
/// panics immediately, which the surrounding harness reports with the
/// case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `assert_eq!` reported as a property failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// `assert_ne!` reported as a property failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Declares property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal: expands each property into a plain `#[test]` running
/// `cfg.cases` deterministic cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __base = $crate::test_runner::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases as u64 {
                let __run = || {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __base ^ __case.wrapping_mul(0xA076_1D64_78BD_642F),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                };
                if let Err(__payload) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run))
                {
                    eprintln!(
                        "proptest shim: property '{}' failed at case {} of {}",
                        stringify!($name), __case, __cfg.cases,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..5.0), &mut rng);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_len_and_element_ranges() {
        let mut rng = TestRng::new(7);
        let s = crate::collection::vec(0u64..50, 2..9);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(a in 0u32..10, mut v in crate::collection::vec(0u64..5, 0..20)) {
            prop_assert!(a < 10);
            v.push(0);
            prop_assert!(v.len() <= 20);
        }

        #[test]
        fn tuples_work(pair in (0u64..50, 1usize..8)) {
            prop_assert!(pair.0 < 50);
            prop_assert!((1..8).contains(&pair.1));
        }
    }
}
