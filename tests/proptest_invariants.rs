//! Property-based tests over the core data structures and kernels.
//!
//! Strategies generate random-but-valid inputs; each property is an
//! invariant the paper's pipeline relies on: format round-trips, kernel
//! equivalence to serial references, primitive equivalence to std, and
//! geometric conservation laws.

use dda_repro::geom::{Polygon, Vec2};
use dda_repro::simt::primitives::{
    compact_indices, lower_bound_u64, scan_exclusive_u32, segment_starts, segmented_sum_f64,
    sort::sort_pairs_u64,
};
use dda_repro::simt::{Device, DeviceProfile};
use dda_repro::solver::precond::{BlockJacobi, SsorAi};
use dda_repro::solver::traits::HsbcsrMat;
use dda_repro::solver::{pcg, PcgOptions};
use dda_repro::sparse::ell::spmv_ell;
use dda_repro::sparse::spmv::{
    spmv_bcsr, spmv_csr_scalar, spmv_csr_vector, spmv_hsbcsr, Stage1Smem,
};
use dda_repro::sparse::{BlockCsr, Csr, Ell, Hsbcsr, SymBlockMatrix};
use proptest::prelude::*;

fn dev() -> Device {
    Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- SIMT primitives vs std -------------------------------------------

    #[test]
    fn scan_matches_prefix_sum(input in proptest::collection::vec(0u32..100, 0..2000)) {
        let d = dev();
        let (scan, total) = scan_exclusive_u32(&d, &input);
        let mut acc = 0u32;
        for (i, &v) in input.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn radix_sort_matches_std_sort(keys in proptest::collection::vec(0u64..1_000_000, 0..1500)) {
        let d = dev();
        let idx: Vec<u32> = (0..keys.len() as u32).collect();
        let (sorted, perm) = sort_pairs_u64(&d, &keys, &idx);
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(&sorted, &expect);
        // The permutation actually maps inputs to outputs.
        for (pos, &src) in perm.iter().enumerate() {
            prop_assert_eq!(keys[src as usize], sorted[pos]);
        }
    }

    #[test]
    fn compact_matches_filter(flags in proptest::collection::vec(0u32..2, 0..1500)) {
        let d = dev();
        let got = compact_indices(&d, &flags);
        let expect: Vec<u32> = flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f != 0)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn lower_bound_matches_partition_point(
        mut haystack in proptest::collection::vec(0u64..10_000, 0..800),
        queries in proptest::collection::vec(0u64..10_000, 0..200),
    ) {
        haystack.sort_unstable();
        let d = dev();
        let got = lower_bound_u64(&d, &haystack, &queries);
        for (g, &q) in got.iter().zip(&queries) {
            prop_assert_eq!(*g as usize, haystack.partition_point(|&k| k < q));
        }
    }

    #[test]
    fn segmented_sum_matches_grouped_sum(
        runs in proptest::collection::vec((0u64..50, 1usize..8), 1..100)
    ) {
        // Build sorted keys with controlled run lengths.
        let mut keys: Vec<u64> = Vec::new();
        let mut key = 0u64;
        for &(gap, len) in &runs {
            key += gap + 1;
            keys.extend(std::iter::repeat_n(key, len));
        }
        let vals: Vec<f64> = (0..keys.len()).map(|i| (i % 7) as f64 - 3.0).collect();
        let d = dev();
        let (_, starts) = segment_starts(&d, &keys);
        let sums = segmented_sum_f64(&d, &vals, &starts);
        // Reference with a BTreeMap.
        let mut expect: std::collections::BTreeMap<u64, f64> = Default::default();
        for (&k, &v) in keys.iter().zip(&vals) {
            *expect.entry(k).or_insert(0.0) += v;
        }
        let expect: Vec<f64> = expect.into_values().collect();
        prop_assert_eq!(sums.len(), expect.len());
        for (a, b) in sums.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    // ---- Sparse formats ----------------------------------------------------

    #[test]
    fn all_spmv_kernels_agree(n in 2usize..40, neighbors in 0.5f64..6.0, seed in 0u64..500) {
        let m = SymBlockMatrix::random_spd(n, neighbors, seed);
        let x: Vec<f64> = (0..m.dim()).map(|i| ((i * 31 + seed as usize) % 23) as f64 * 0.1 - 1.0).collect();
        let reference = m.mul_vec(&x);

        let h = Hsbcsr::from_sym(&m);
        let csr = Csr::from_sym_full(&m);
        let bcsr = BlockCsr::from_sym_full(&m);

        let ell = Ell::from_csr(&csr);
        let d = dev();
        let y1 = spmv_hsbcsr(&d, &h, &x, Stage1Smem::Proposed);
        let y2 = spmv_csr_scalar(&d, &csr, &x);
        let y3 = spmv_csr_vector(&d, &csr, &x);
        let y4 = spmv_bcsr(&d, &bcsr, &x);
        let y5 = h.mul_vec_serial(&x);
        let y6 = spmv_ell(&d, &ell, &x);
        for i in 0..m.dim() {
            let scale = reference[i].abs().max(1.0);
            prop_assert!((y1[i] - reference[i]).abs() < 1e-8 * scale);
            prop_assert!((y2[i] - reference[i]).abs() < 1e-8 * scale);
            prop_assert!((y3[i] - reference[i]).abs() < 1e-8 * scale);
            prop_assert!((y4[i] - reference[i]).abs() < 1e-8 * scale);
            prop_assert!((y5[i] - reference[i]).abs() < 1e-8 * scale);
            prop_assert!((y6[i] - reference[i]).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn hsbcsr_roundtrip_preserves_blocks(n in 1usize..30, seed in 0u64..500) {
        let m = SymBlockMatrix::random_spd(n, 3.0, seed);
        let h = Hsbcsr::from_sym(&m);
        prop_assert_eq!(h.n_nd, m.n_upper());
        for (k, &(r, c, ref b)) in m.upper.iter().enumerate() {
            prop_assert_eq!(h.row_of(k), r);
            prop_assert_eq!(h.col_of(k), c);
            prop_assert_eq!(h.nd_block(k), *b);
        }
    }

    // ---- Solver -------------------------------------------------------------

    #[test]
    fn pcg_solves_random_spd_systems(n in 2usize..25, seed in 0u64..300) {
        let m = SymBlockMatrix::random_spd(n, 3.0, seed);
        let h = Hsbcsr::from_sym(&m);
        let b: Vec<f64> = (0..m.dim()).map(|i| ((i * 13 + 5) % 17) as f64 - 8.0).collect();
        let d = dev();
        let bj = BlockJacobi::new(&d, &h);
        let res = pcg(
            &d,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &bj,
            PcgOptions { tol: 1e-10, max_iters: 600 },
        );
        prop_assert!(res.converged, "iters {}", res.iterations);
        let back = m.mul_vec(&res.x);
        let err: f64 = back.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(err < 1e-6 * bn.max(1.0));
    }

    #[test]
    fn ssor_preconditioner_stays_symmetric(n in 2usize..15, omega in 0.3f64..1.7, seed in 0u64..200) {
        let m = SymBlockMatrix::random_spd(n, 3.0, seed);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let ssor = SsorAi::new(&d, &h, omega);
        let u: Vec<f64> = (0..m.dim()).map(|i| ((i * 3 + 1) % 11) as f64 - 5.0).collect();
        let v: Vec<f64> = (0..m.dim()).map(|i| ((i * 7 + 2) % 13) as f64 - 6.0).collect();
        use dda_repro::solver::Preconditioner;
        let mu = ssor.apply(&d, &u);
        let mv = ssor.apply(&d, &v);
        let a: f64 = mu.iter().zip(&v).map(|(x, y)| x * y).sum();
        let b: f64 = u.iter().zip(&mv).map(|(x, y)| x * y).sum();
        prop_assert!((a - b).abs() < 1e-7 * a.abs().max(1.0));
    }

    // ---- Geometry ------------------------------------------------------------

    #[test]
    fn polygon_split_conserves_area(
        cx in -10.0f64..10.0, cy in -10.0f64..10.0,
        r in 0.5f64..5.0, sides in 3usize..10,
        px in -3.0f64..3.0, py in -3.0f64..3.0, angle in 0.0f64..6.2,
    ) {
        let p = Polygon::regular(Vec2::new(cx, cy), r, sides);
        let dir = Vec2::new(angle.cos(), angle.sin());
        let (l, rr) = p.split_by_line(Vec2::new(cx + px, cy + py), dir);
        let sum = l.as_ref().map_or(0.0, |q| q.area()) + rr.as_ref().map_or(0.0, |q| q.area());
        prop_assert!((sum - p.area()).abs() < 1e-7 * p.area());
        for piece in [l, rr].into_iter().flatten() {
            prop_assert!(piece.is_convex());
        }
    }

    #[test]
    fn second_moments_rotation_trace_invariant(
        r in 0.5f64..4.0, sides in 3usize..9, angle in 0.0f64..3.1,
    ) {
        // sxx + syy (the polar moment) is invariant under rotation.
        let p = Polygon::regular(Vec2::ZERO, r, sides);
        let rotated = Polygon::new(
            p.vertices().iter().map(|v| v.rotated(angle)).collect(),
        );
        let a = p.second_moments();
        let b = rotated.second_moments();
        prop_assert!(((a.sxx + a.syy) - (b.sxx + b.syy)).abs() < 1e-7 * (a.sxx + a.syy));
    }
}
