//! SpMV kernels on the SIMT simulator.
//!
//! Four GPU implementations, mirroring the paper's Fig 10 comparison:
//!
//! * [`csr::spmv_csr_scalar`] — one thread per scalar row (the naive CSR
//!   kernel);
//! * [`csr::spmv_csr_vector`] — one warp per scalar row with a shuffle
//!   reduction (the cuSPARSE `csrmv`-style baseline the paper calls
//!   *SpMV-cuSPARSE*; it requires the recovered **full** matrix);
//! * [`bcsr_kernel::spmv_bcsr`] — 6×6 block CSR on the full matrix;
//! * [`hsbcsr::spmv_hsbcsr`] — the paper's two-stage half-stored SpMV
//!   (§IV-B, Figs 8–9): never recovers the full matrix, reads the upper
//!   triangle once with perfectly-coalesced sliced loads, and reduces
//!   per-row with the proposed conflict-aware shared-memory scheme.
//!
//! Every kernel is verified against [`crate::SymBlockMatrix::mul_vec`].

pub mod bcsr_kernel;
pub mod csr;
pub mod hsbcsr;
pub mod multi;

pub use bcsr_kernel::spmv_bcsr;
pub use csr::{spmv_csr_scalar, spmv_csr_vector};
pub use hsbcsr::{
    spmv_hsbcsr, spmv_hsbcsr_fused_pq, spmv_hsbcsr_fused_pq_f32, spmv_hsbcsr_fused_pq_f32v,
    spmv_hsbcsr_into, spmv_hsbcsr_into_f32, spmv_hsbcsr_into_f32v, SpmvWorkspace, Stage1Smem,
};
pub use multi::{MultiGpuSpmv, MultiSpmvReport};
