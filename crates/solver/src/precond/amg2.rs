//! Two-level block-AMG preconditioner over the HSBCSR contact graph.
//!
//! The paper's preconditioner study stops at ILU0/SSOR-AI/Block-Jacobi;
//! stiff contact systems (AGIPC, StiffGIPC) reward in-solve algebraic
//! coarsening. This rung builds the cheapest useful hierarchy directly
//! from the DDA structure:
//!
//! * **Aggregation** — greedy aggregation of 6×6 *blocks* over the
//!   contact-graph sparsity (the `rc` upper listing): each unaggregated
//!   block row seeds an aggregate and absorbs its unaggregated neighbours
//!   up to a size cap. Piecewise-constant-per-aggregate prolongation `P`
//!   (block identity into the owning aggregate) needs no extra storage
//!   beyond the aggregate map.
//! * **Smoother** — damped block-Jacobi `S = ω·D⁻¹`, reusing the
//!   Block-Jacobi inverses scaled once at construction so every smoothing
//!   application is a single fused block-diagonal launch. `ω = 4/(3λ̂)`
//!   with `λ̂` a safeguarded power-iteration estimate of `λmax(D⁻¹A)`,
//!   which keeps `ω·λmax < 2` — the symmetric V(1,1) cycle then defines an
//!   SPD operator, as PCG requires.
//! * **Coarse operator** — Galerkin `Aᶜ = PᵀAP`, assembled dense
//!   (`6·n_agg` square) and Cholesky-factored at construction with a pivot
//!   guard: a non-positive pivot reports
//!   [`PrecondError::SingularCoarse`] and the fallback ladder descends to
//!   ILU0. A valid SPD fine operator cannot trip the guard (`PᵀAP`
//!   inherits definiteness), so that branch is exercised by
//!   `Fault::CoarseSingular` injection.
//!
//! One application is the symmetric V(1,1) cycle
//! `z₁ = S r`, `z₂ = z₁ + P Aᶜ⁻¹ Pᵀ (r − A z₁)`,
//! `z = z₂ + S (r − A z₂)` — two fused smoother launches, two SpMVs, a
//! restriction and a prolongation launch, and a host-side coarse
//! back-substitution charged to the cost model as an external record.

#![deny(clippy::float_cmp)]

use super::block_jacobi::{block_diag_apply, BlockJacobi};
use super::{PrecondError, Preconditioner};
use crate::vecops::axpy;
use dda_simt::{Device, KernelStats};
use dda_sparse::spmv::{spmv_hsbcsr_into, SpmvWorkspace, Stage1Smem};
use dda_sparse::Hsbcsr;
use std::cell::RefCell;

/// Aggregate size cap: a seed absorbs at most this many block rows
/// (itself included). Contact-graph degrees are small, so 8 keeps the
/// coarse space near `n/4`–`n/2` without starving the smoother.
const AGG_CAP: usize = 8;

/// Power-iteration count for the `λmax(D⁻¹A)` estimate.
const POWER_ITERS: usize = 8;

/// Headroom on the spectral estimate: power iteration converges from
/// below, so the damping uses `1.1·λ̂` to keep `ω·λmax` safely under 2.
const LAMBDA_SAFETY: f64 = 1.1;

/// The two-level block-AMG preconditioner.
pub struct Amg2<'m> {
    h: &'m Hsbcsr,
    n: usize,
    n_agg: usize,
    /// Aggregate id per fine block row.
    agg_of: Vec<u32>,
    /// Member lists per aggregate: `agg_members[agg_ptr[a]..agg_ptr[a+1]]`
    /// are the fine block rows of aggregate `a`, ascending. The restriction
    /// kernel gathers over these so no two lanes write one coarse slot.
    agg_ptr: Vec<u32>,
    agg_members: Vec<u32>,
    /// ω-scaled Block-Jacobi inverses (flat 36 per block): the smoother.
    sdinv: Vec<f64>,
    /// Damping factor actually used (diagnostics).
    omega: f64,
    /// Dense lower Cholesky factor of the Galerkin coarse operator,
    /// row-major `nc×nc` with `nc = 6·n_agg`.
    chol: Vec<f64>,
    scratch: RefCell<ApplyScratch>,
}

#[derive(Default)]
struct ApplyScratch {
    spmv: SpmvWorkspace,
    /// SpMV output `A z`.
    q: Vec<f64>,
    /// Fine-level residual `r − A z`.
    t: Vec<f64>,
    /// Coarse right-hand side / solution (length `6·n_agg`).
    e: Vec<f64>,
}

impl<'m> Amg2<'m> {
    /// Builds the two-level hierarchy.
    ///
    /// # Panics
    /// Panics when construction fails; use [`Amg2::try_new`] for untrusted
    /// scene input (the pipeline's fallback ladder does).
    pub fn new(dev: &Device, h: &'m Hsbcsr) -> Amg2<'m> {
        Amg2::try_new(dev, h).unwrap_or_else(|e| panic!("AMG2 construction failed: {e}"))
    }

    /// Fallible construction: a singular diagonal sub-matrix (smoother) or
    /// a non-SPD Galerkin coarse operator reports a structured
    /// [`PrecondError`] for the ladder to act on.
    pub fn try_new(dev: &Device, h: &'m Hsbcsr) -> Result<Amg2<'m>, PrecondError> {
        let n = h.n;
        let bj = BlockJacobi::try_new(dev, h)?;

        // λmax(D⁻¹A) estimate → smoother damping ω = 4/(3·λ̂·safety).
        let lambda = power_lambda_max(h, bj.dinv());
        let omega = 4.0 / (3.0 * LAMBDA_SAFETY * lambda.max(1e-12));
        let sdinv: Vec<f64> = bj.dinv().iter().map(|v| omega * v).collect();

        // Greedy aggregation over the contact-graph adjacency.
        let (agg_of, n_agg) = aggregate(h);
        // Counting-sort member lists for the conflict-free restriction.
        let mut agg_ptr = vec![0u32; n_agg + 1];
        for &a in &agg_of {
            agg_ptr[a as usize + 1] += 1;
        }
        for a in 0..n_agg {
            agg_ptr[a + 1] += agg_ptr[a];
        }
        let mut fill = agg_ptr.clone();
        let mut agg_members = vec![0u32; n];
        for (i, &a) in agg_of.iter().enumerate() {
            agg_members[fill[a as usize] as usize] = i as u32;
            fill[a as usize] += 1;
        }

        // Injected fault: declare the coarse operator singular before
        // factoring, exercising the AMG2 → ILU0 ladder descent on demand.
        #[cfg(feature = "fault-inject")]
        if dev.fault_fires(dda_simt::Fault::CoarseSingular) {
            return Err(PrecondError::SingularCoarse { row: 0 });
        }

        // Galerkin Aᶜ = PᵀAP, dense, then in-place Cholesky with a pivot
        // guard.
        let nc = 6 * n_agg;
        let mut chol = galerkin_dense(h, &agg_of, n_agg);
        cholesky_in_place(&mut chol, nc)?;

        // Host-side construction cost (aggregation + Galerkin + Cholesky),
        // charged to the cost model like the ILU factorization is.
        let nnz_blocks = (n + 2 * h.n_nd) as u64;
        dev.record_external(
            "precond.amg2.construct",
            KernelStats {
                launches: 1,
                threads: nc as u64,
                warps: (nc as u64).div_ceil(32).max(1),
                flops: nnz_blocks * 36
                    + (nc as u64).pow(3) / 3
                    + 36 * n as u64 * POWER_ITERS as u64,
                warp_flops: nnz_blocks * 36 + (nc as u64).pow(3) / 3,
                gmem_bytes: nnz_blocks * 36 * 8 + (nc * nc * 8) as u64,
                gmem_transactions: (nnz_blocks * 36 * 8 + (nc * nc * 8) as u64) / 128,
                ..Default::default()
            },
        );

        Ok(Amg2 {
            h,
            n,
            n_agg,
            agg_of,
            agg_ptr,
            agg_members,
            sdinv,
            omega,
            chol,
            scratch: RefCell::new(ApplyScratch::default()),
        })
    }

    /// Number of aggregates (coarse block rows).
    pub fn n_aggregates(&self) -> usize {
        self.n_agg
    }

    /// The smoother damping factor chosen at construction.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// `t ← r − A z` via the device SpMV plus one subtraction launch.
    fn residual_into(
        &self,
        dev: &Device,
        z: &[f64],
        r: &[f64],
        spmv: &mut SpmvWorkspace,
        q: &mut Vec<f64>,
        t: &mut Vec<f64>,
    ) {
        let dim = self.n * 6;
        q.clear();
        q.resize(dim, 0.0);
        spmv_hsbcsr_into(dev, self.h, z, Stage1Smem::Proposed, spmv, q);
        t.clear();
        t.resize(dim, 0.0);
        let b_r = dev.bind_ro(r);
        let b_q = dev.bind_ro(q.as_slice());
        let b_t = dev.bind(t.as_mut_slice());
        dev.launch("precond.amg2.residual", dim, |lane| {
            let rv = lane.ld(&b_r, lane.gid);
            let qv = lane.ld(&b_q, lane.gid);
            lane.flop(1);
            lane.st(&b_t, lane.gid, rv - qv);
        });
    }

    /// `z ← z + P Aᶜ⁻¹ Pᵀ t`: restriction launch, host coarse
    /// back-substitution (externally charged), prolongation launch.
    fn coarse_correct(&self, dev: &Device, t: &[f64], e: &mut Vec<f64>, z: &mut [f64]) {
        let nc = 6 * self.n_agg;
        e.clear();
        e.resize(nc, 0.0);
        // Pᵀ t: one thread per *coarse* dof gathering its aggregate's
        // members — every lane owns exactly one output slot, so the kernel
        // is write-conflict-free and its sum order is deterministic
        // (members ascend).
        {
            let b_t = dev.bind_ro(t);
            let b_ptr = dev.bind_ro(&self.agg_ptr);
            let b_mem = dev.bind_ro(&self.agg_members);
            let b_e = dev.bind(e.as_mut_slice());
            dev.launch("precond.amg2.restrict", nc, |lane| {
                let a = lane.gid / 6;
                let d = lane.gid % 6;
                let lo = lane.ld(&b_ptr, a) as usize;
                let hi = lane.ld(&b_ptr, a + 1) as usize;
                let mut acc = 0.0;
                for p in lo..hi {
                    let i = lane.ld(&b_mem, p) as usize;
                    let v = lane.ld_tex(&b_t, i * 6 + d);
                    lane.flop(1);
                    acc += v;
                }
                lane.st(&b_e, lane.gid, acc);
            });
        }
        // Coarse solve L Lᵀ e = Pᵀt on the host, charged externally
        // (nc² multiply-adds of forward + backward substitution).
        chol_solve_in_place(&self.chol, nc, e);
        dev.record_external(
            "precond.amg2.coarse_solve",
            KernelStats {
                launches: 1,
                threads: nc as u64,
                warps: (nc as u64).div_ceil(32).max(1),
                flops: 2 * (nc as u64).pow(2),
                warp_flops: 2 * (nc as u64).pow(2),
                gmem_bytes: (nc * nc * 8) as u64,
                gmem_transactions: ((nc * nc * 8) as u64).div_ceil(128),
                ..Default::default()
            },
        );
        // z += P e.
        {
            let b_e = dev.bind_ro(e.as_slice());
            let b_agg = dev.bind_ro(&self.agg_of);
            let b_z = dev.bind(&mut *z);
            let dim = self.n * 6;
            dev.launch("precond.amg2.prolong", dim, |lane| {
                let g = lane.gid;
                let a = lane.ld(&b_agg, g / 6) as usize;
                let ev = lane.ld_tex(&b_e, a * 6 + g % 6);
                let zv = lane.ld(&b_z, g);
                lane.flop(1);
                lane.st(&b_z, g, zv + ev);
            });
        }
    }
}

impl Preconditioner for Amg2<'_> {
    fn name(&self) -> &'static str {
        "AMG2"
    }

    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64> {
        assert_eq!(r.len(), self.n * 6);
        let mut s = self.scratch.borrow_mut();
        let ApplyScratch { spmv, q, t, e } = &mut *s;
        // Pre-smooth: z₁ = ω D⁻¹ r (one fused block-diagonal launch).
        let mut z = block_diag_apply(dev, "precond.amg2.smooth", &self.sdinv, r);
        // Coarse correction: z₂ = z₁ + P Aᶜ⁻¹ Pᵀ (r − A z₁).
        self.residual_into(dev, &z, r, spmv, q, t);
        self.coarse_correct(dev, t, e, &mut z);
        // Post-smooth: z = z₂ + ω D⁻¹ (r − A z₂) — symmetric cycle.
        self.residual_into(dev, &z, r, spmv, q, t);
        let dz = block_diag_apply(dev, "precond.amg2.smooth", &self.sdinv, t);
        axpy(dev, 1.0, &dz, &mut z);
        z
    }
}

/// Greedy aggregation over the upper-listing adjacency: every unaggregated
/// block row (in order) seeds an aggregate and absorbs its unaggregated
/// neighbours up to [`AGG_CAP`]. Every row ends up aggregated (isolated
/// rows form singletons), so the prolongation has full column rank.
fn aggregate(h: &Hsbcsr) -> (Vec<u32>, usize) {
    let n = h.n;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &rc in &h.rc {
        let r = (rc >> 32) as usize;
        let c = (rc & 0xffff_ffff) as usize;
        adj[r].push(c as u32);
        adj[c].push(r as u32);
    }
    let mut agg_of = vec![u32::MAX; n];
    let mut n_agg = 0u32;
    for i in 0..n {
        if agg_of[i] != u32::MAX {
            continue;
        }
        agg_of[i] = n_agg;
        let mut size = 1;
        for &j in &adj[i] {
            if size >= AGG_CAP {
                break;
            }
            if agg_of[j as usize] == u32::MAX {
                agg_of[j as usize] = n_agg;
                size += 1;
            }
        }
        n_agg += 1;
    }
    (agg_of, n_agg as usize)
}

/// Reads 6×6 block `(r_, c_)` of the sliced array at `slot`.
fn sliced_block(data: &[f64], pad: usize, slot: usize) -> [[f64; 6]; 6] {
    let mut b = [[0.0f64; 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            b[r][c] = data[Hsbcsr::sliced_index(pad, slot, r, c)];
        }
    }
    b
}

/// Host serial `y = A v` over the HSBCSR arrays (diag + upper + mirrored
/// lower) — construction-time only, used by the spectral estimate.
fn mul_host(h: &Hsbcsr, v: &[f64], y: &mut [f64]) {
    y.iter_mut().for_each(|t| *t = 0.0);
    for i in 0..h.n {
        let b = sliced_block(&h.d_data, h.pad_d, i);
        for r in 0..6 {
            let mut acc = 0.0;
            for c in 0..6 {
                acc += b[r][c] * v[i * 6 + c];
            }
            y[i * 6 + r] += acc;
        }
    }
    for k in 0..h.n_nd {
        let rc = h.rc[k];
        let br = (rc >> 32) as usize;
        let bc = (rc & 0xffff_ffff) as usize;
        let b = sliced_block(&h.nd_data_up, h.pad_nd, k);
        for r in 0..6 {
            for c in 0..6 {
                y[br * 6 + r] += b[r][c] * v[bc * 6 + c];
                y[bc * 6 + c] += b[r][c] * v[br * 6 + r];
            }
        }
    }
}

/// Safeguarded power-iteration estimate of `λmax(D⁻¹A)` (deterministic
/// start vector, [`POWER_ITERS`] passes, host arithmetic).
fn power_lambda_max(h: &Hsbcsr, dinv: &[f64]) -> f64 {
    let dim = h.n * 6;
    let mut v: Vec<f64> = (0..dim).map(|j| 1.0 + 0.1 * ((j % 7) as f64)).collect();
    let mut av = vec![0.0f64; dim];
    let mut w = vec![0.0f64; dim];
    let mut lambda = 1.0f64;
    for _ in 0..POWER_ITERS {
        mul_host(h, &v, &mut av);
        // w = D⁻¹ (A v)
        for i in 0..h.n {
            for r in 0..6 {
                let mut acc = 0.0;
                for c in 0..6 {
                    acc += dinv[i * 36 + r * 6 + c] * av[i * 6 + c];
                }
                w[i * 6 + r] = acc;
            }
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if !norm.is_finite() || norm <= 0.0 {
            // Degenerate operator: fall back to a conservative bound so
            // construction proceeds and the solve (not the smoother)
            // reports the real problem.
            return 2.0;
        }
        lambda = norm / v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
        let inv = 1.0 / norm;
        v.iter_mut().zip(&w).for_each(|(t, s)| *t = s * inv);
    }
    lambda.max(1.0)
}

/// Dense Galerkin coarse operator `Aᶜ = PᵀAP`, row-major `nc×nc`.
fn galerkin_dense(h: &Hsbcsr, agg_of: &[u32], n_agg: usize) -> Vec<f64> {
    let nc = 6 * n_agg;
    let mut a = vec![0.0f64; nc * nc];
    let mut add = |ar: usize, ac: usize, b: &[[f64; 6]; 6], transpose: bool| {
        for r in 0..6 {
            for c in 0..6 {
                let v = if transpose { b[c][r] } else { b[r][c] };
                a[(ar * 6 + r) * nc + ac * 6 + c] += v;
            }
        }
    };
    for i in 0..h.n {
        let ai = agg_of[i] as usize;
        let b = sliced_block(&h.d_data, h.pad_d, i);
        add(ai, ai, &b, false);
    }
    for k in 0..h.n_nd {
        let rc = h.rc[k];
        let br = agg_of[(rc >> 32) as usize] as usize;
        let bc = agg_of[(rc & 0xffff_ffff) as usize] as usize;
        let b = sliced_block(&h.nd_data_up, h.pad_nd, k);
        add(br, bc, &b, false);
        add(bc, br, &b, true);
    }
    a
}

/// In-place lower Cholesky of a row-major `nc×nc` matrix with a pivot
/// guard: reports the first non-positive or non-finite pivot.
fn cholesky_in_place(a: &mut [f64], nc: usize) -> Result<(), PrecondError> {
    let scale = a.iter().fold(
        0.0f64,
        |m, v| if v.is_finite() { m.max(v.abs()) } else { m },
    );
    let floor = scale.max(1.0) * 1e-14;
    for j in 0..nc {
        let mut d = a[j * nc + j];
        for k in 0..j {
            d -= a[j * nc + k] * a[j * nc + k];
        }
        if !d.is_finite() || d <= floor {
            return Err(PrecondError::SingularCoarse { row: j });
        }
        let dj = d.sqrt();
        a[j * nc + j] = dj;
        let inv = 1.0 / dj;
        for i in (j + 1)..nc {
            let mut s = a[i * nc + j];
            for k in 0..j {
                s -= a[i * nc + k] * a[j * nc + k];
            }
            a[i * nc + j] = s * inv;
        }
    }
    // Zero the strict upper triangle so the factor is self-describing.
    for r in 0..nc {
        for c in (r + 1)..nc {
            a[r * nc + c] = 0.0;
        }
    }
    Ok(())
}

/// Solves `L Lᵀ x = b` in place given the lower factor.
fn chol_solve_in_place(l: &[f64], nc: usize, b: &mut [f64]) {
    for i in 0..nc {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * nc + k] * b[k];
        }
        b[i] = s / l[i * nc + i];
    }
    for i in (0..nc).rev() {
        let mut s = b[i];
        for k in (i + 1)..nc {
            s -= l[k * nc + i] * b[k];
        }
        b[i] = s / l[i * nc + i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::{pcg_fused, PcgOptions, PcgWorkspace};
    use crate::vecops::dot;
    use dda_simt::DeviceProfile;
    use dda_sparse::SymBlockMatrix;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40())
    }

    #[test]
    fn aggregation_covers_every_block_row() {
        let m = SymBlockMatrix::random_spd(60, 4.0, 5);
        let h = Hsbcsr::from_sym(&m);
        let (agg_of, n_agg) = aggregate(&h);
        assert!(agg_of.iter().all(|&a| (a as usize) < n_agg));
        assert!(n_agg < 60, "a connected contact graph must coarsen");
        // Every aggregate is non-empty.
        let mut seen = vec![false; n_agg];
        for &a in &agg_of {
            seen[a as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cholesky_roundtrip_solves() {
        // Small SPD system: factor + solve reproduces a known solution.
        let nc = 12;
        let mut a = vec![0.0f64; nc * nc];
        for i in 0..nc {
            for j in 0..nc {
                a[i * nc + j] = if i == j {
                    8.0 + i as f64
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
            }
        }
        let x_true: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0f64; nc];
        for i in 0..nc {
            for j in 0..nc {
                b[i] += a[i * nc + j] * x_true[j];
            }
        }
        cholesky_in_place(&mut a, nc).unwrap();
        chol_solve_in_place(&a, nc, &mut b);
        for i in 0..nc {
            assert!((b[i] - x_true[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn cholesky_guards_non_spd() {
        let nc = 6;
        let mut a = vec![0.0f64; nc * nc];
        for i in 0..nc {
            a[i * nc + i] = 1.0;
        }
        a[3 * nc + 3] = -2.0;
        assert_eq!(
            cholesky_in_place(&mut a, nc),
            Err(PrecondError::SingularCoarse { row: 3 })
        );
    }

    #[test]
    fn apply_is_symmetric_and_positive() {
        // PCG needs M⁻¹ SPD: check symmetry ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ and
        // positivity ⟨M⁻¹u, u⟩ > 0 on sample vectors.
        let m = SymBlockMatrix::random_spd(25, 3.0, 8);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let amg = Amg2::new(&d, &h);
        let dim = m.dim();
        let u: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let v: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.53).cos()).collect();
        let mu = amg.apply(&d, &u);
        let mv = amg.apply(&d, &v);
        let uv = dot(&d, &mu, &v);
        let vu = dot(&d, &u, &mv);
        let scale = uv.abs().max(vu.abs()).max(1.0);
        assert!((uv - vu).abs() <= 1e-10 * scale, "asymmetry: {uv} vs {vu}");
        let uu = dot(&d, &mu, &u);
        assert!(uu > 0.0, "non-positive energy {uu}");
    }

    #[test]
    fn amg2_beats_block_jacobi_iterations() {
        // The point of the top rung: fewer PCG iterations than BJ on a
        // sizeable contact system.
        let m = SymBlockMatrix::random_spd(120, 4.0, 17);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let b: Vec<f64> = (0..m.dim())
            .map(|i| ((i * 13 + 5) % 23) as f64 - 11.0)
            .collect();
        let x0 = vec![0.0; m.dim()];
        let opts = PcgOptions {
            tol: 1e-10,
            max_iters: 500,
        };
        let mut ws = PcgWorkspace::new();

        let bj = BlockJacobi::new(&d, &h);
        let r_bj = pcg_fused(&d, &h, &b, &x0, &bj, opts, &mut ws);
        let amg = Amg2::new(&d, &h);
        let r_amg = pcg_fused(&d, &h, &b, &x0, &amg, opts, &mut ws);

        assert!(r_bj.converged && r_amg.converged);
        assert!(
            r_amg.iterations < r_bj.iterations,
            "AMG2 {} vs BJ {} iterations",
            r_amg.iterations,
            r_bj.iterations
        );
    }

    #[test]
    fn construction_records_external_costs() {
        let m = SymBlockMatrix::random_spd(30, 3.0, 21);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        d.reset_trace();
        let amg = Amg2::new(&d, &h);
        let by = d.trace().by_kernel();
        assert!(by.contains_key("precond.amg2.construct"));
        assert!(by.contains_key("precond.bj.construct"));
        assert!(
            amg.omega() > 0.0 && amg.omega() < 2.0,
            "ω = {}",
            amg.omega()
        );
        assert!(amg.n_aggregates() >= 1 && amg.n_aggregates() < 30);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn armed_coarse_singular_fault_fails_construction() {
        use dda_simt::Fault;
        let m = SymBlockMatrix::random_spd(15, 3.0, 33);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        // Faults only fire inside a batch region with a current segment.
        d.arm_fault(0, Fault::CoarseSingular, 1);
        d.batch_begin(1);
        d.batch_segment(0);
        let res = Amg2::try_new(&d, &h);
        let _ = d.batch_end();
        assert_eq!(res.err(), Some(PrecondError::SingularCoarse { row: 0 }));
        // Budget consumed: the next construction succeeds.
        d.batch_begin(1);
        d.batch_segment(0);
        let ok = Amg2::try_new(&d, &h);
        let _ = d.batch_end();
        assert!(ok.is_ok());
    }
}
