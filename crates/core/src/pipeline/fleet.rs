//! Multi-device fleet routing with crash-durable failover.
//!
//! One [`BatchScheduler`] drives one device. This module adds the layer
//! the paper's cluster deployments imply but never specify: a
//! [`FleetRouter`] that shards scenes across *several* devices with
//! heterogeneous profiles (Tesla K20s next to K40s next to a serial CPU
//! fallback), journals every accepted scene to the write-ahead log in
//! [`super::wal`], and survives the death of any device — or of the whole
//! process — without losing accepted work or perturbing a single bit of
//! any trajectory.
//!
//! ## Placement
//!
//! Submissions carry an opaque *locality key* ([`FleetSubmission`]).
//! Scenes sharing a key are routed to the device that last hosted that
//! key (kinematic families tend to share contact topology, so co-locating
//! them keeps batch divergence low — the same argument the class-sorted
//! contact ordering makes within a batch). New keys, and keys whose
//! preferred device is saturated or dead, fall back to the device
//! maximizing `dp_gflops / (1 + in_flight)` — a greedy heterogeneous
//! load-balance that keeps a K40 roughly 20% busier than a K20 and only
//! spills onto the serial fallback when the GPUs are loaded. Placement is
//! deterministic: ties break toward the lower device id.
//!
//! ## Durability discipline
//!
//! * **Submit**: the scene's initial state is appended to the WAL and
//!   fsynced *before* the submission is acknowledged. An acked scene is
//!   durable, full stop.
//! * **Step boundary**: every `wal_snap_interval` ticks the router
//!   journals every in-flight scene's full resumable state as one group
//!   commit (one fsync for the whole burst, not one per scene).
//! * **Terminal**: completions/refusals/sheds append a terminal record
//!   with the final state's fingerprint, so a recovered process knows
//!   both *that* a scene finished and *what* it produced.
//!
//! ## Failure model
//!
//! Devices die in two shapes (arm with
//! `Device::arm_device_death`, behind the `fault-inject` feature):
//! *crash* (fail-stop — the device reports itself dead, detected at the
//! next step boundary) and *hang* (fail-silent — launches stop returning;
//! a watchdog declares death after `watchdog_ticks` stale ticks). Either
//! way recovery is the same: replay the WAL, re-place the dead device's
//! scenes on survivors (locality-aware, never dropping accepted work),
//! and continue. Because kernels execute host-exact and trajectories are
//! batch-composition-independent, a migrated scene's continued evolution
//! is **bit-identical** to the run where its device never died — the
//! property the recovery tests assert fingerprint-for-fingerprint.

use std::collections::BTreeMap;

use dda_simt::Device;

use crate::system::BlockSystem;

use super::ingest::{
    BatchScheduler, FleetCheckpoint, FleetScene, IngestConfig, IngestError, SceneStatus,
    SceneSubmission, Ticket,
};
use super::wal::{WalConfig, WalError, WalOutcome, WalRecordKind, WalReplay, WalStats, WalWriter};

/// Fleet-wide scene identifier, stable across devices, migrations, and
/// process restarts (unlike per-scheduler [`Ticket`]s, which are reissued
/// on every adoption).
pub type SceneId = u64;

/// Knobs for the [`FleetRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-device scheduler configuration (cloned for every device).
    pub ingest: IngestConfig,
    /// Ticks a device may go without completing a step before the
    /// watchdog declares it dead (fail-silent hang detection).
    pub watchdog_ticks: u64,
    /// Journal every in-flight scene each time this many ticks elapse
    /// (0 disables periodic snapshots; recovery then replays from the
    /// submit records).
    pub wal_snap_interval: u64,
    /// Write-ahead log placement and cost model.
    pub wal: WalConfig,
    /// Delete segments wholly superseded by a snapshot burst. Disable to
    /// keep the full history (the crash-injection tests do, so every
    /// prefix of the log remains a valid recovery point).
    pub prune: bool,
}

impl RouterConfig {
    /// Defaults around a WAL rooted at `dir`: scheduler defaults,
    /// watchdog of 3 ticks, snapshots every 4 ticks, pruning on.
    pub fn new(wal_dir: impl Into<std::path::PathBuf>) -> RouterConfig {
        RouterConfig {
            ingest: IngestConfig::default(),
            watchdog_ticks: 3,
            wal_snap_interval: 4,
            wal: WalConfig::new(wal_dir),
            prune: true,
        }
    }
}

/// A submission addressed to the fleet rather than to one device.
#[derive(Debug, Clone)]
pub struct FleetSubmission {
    /// The scene itself (system, parameters, priority, deadline, steps).
    pub submission: SceneSubmission,
    /// Opaque locality key: scenes sharing a key prefer the same device.
    pub locality: u64,
}

/// Structured failure from the fleet layer.
#[derive(Debug)]
pub enum FleetError {
    /// Every live device rejected the submission (queues full) — the
    /// payload is the last rejection.
    Ingest(IngestError),
    /// The write-ahead log failed; the submission was *not* acked.
    Wal(WalError),
    /// No device in the fleet is alive.
    NoSurvivors,
}

impl From<WalError> for FleetError {
    fn from(e: WalError) -> FleetError {
        FleetError::Wal(e)
    }
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Ingest(e) => write!(f, "fleet ingest rejection: {e:?}"),
            FleetError::Wal(e) => write!(f, "fleet wal failure: {e}"),
            FleetError::NoSurvivors => write!(f, "no surviving devices in the fleet"),
        }
    }
}

/// A finished scene's durable outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOutcome {
    /// How the scene ended.
    pub outcome: WalOutcome,
    /// FNV-1a fingerprint of the final block system
    /// ([`system_fingerprint`]); 0 for scenes shed before ever running.
    pub fingerprint: u64,
}

/// What one [`FleetRouter::tick`] did, summed across devices.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetTickReport {
    /// Scenes admitted into batches this tick.
    pub admitted: usize,
    /// Scenes completed this tick.
    pub completed: usize,
    /// Scenes permanently refused this tick.
    pub refused: usize,
    /// Queued scenes shed for missed deadlines this tick.
    pub shed: usize,
    /// Devices declared dead this tick.
    pub devices_lost: usize,
    /// Scenes migrated off dead devices this tick.
    pub migrated: usize,
    /// Whether a periodic snapshot burst was journaled this tick.
    pub snapped: bool,
}

/// Lifetime counters for a [`FleetRouter`].
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Router ticks executed.
    pub ticks: u64,
    /// Submissions acked (durable in the WAL).
    pub submitted: u64,
    /// Scenes that completed their requested steps.
    pub completed: u64,
    /// Scenes permanently refused.
    pub refused: u64,
    /// Scenes shed for missed deadlines.
    pub shed: u64,
    /// Device deaths detected and recovered from.
    pub recoveries: u64,
    /// Scenes migrated off dead devices.
    pub migrated: u64,
    /// Ticks from a device's last completed step to its death being
    /// declared, one entry per recovery (crash = 1, hang ≈ watchdog).
    pub detection_latencies: Vec<u64>,
}

/// One device plus its scheduler and liveness bookkeeping.
struct Worker {
    sched: BatchScheduler,
    /// False once declared dead; the slot stays (ids are indices) but
    /// placement and ticking skip it forever after.
    alive: bool,
    /// Last router tick at which the device completed a step.
    heartbeat: u64,
    /// Fleet ids of the scenes this worker currently owns, by ticket.
    scenes: BTreeMap<Ticket, SceneId>,
}

/// Routes scenes across a fleet of devices, journaling to a WAL so that
/// any device death — or whole-process death — recovers without losing
/// accepted work and without perturbing any trajectory. See the module
/// docs for the placement and durability disciplines.
pub struct FleetRouter {
    cfg: RouterConfig,
    workers: Vec<Worker>,
    wal: WalWriter,
    now: u64,
    next_scene: SceneId,
    /// Live scene locations: fleet id → device index.
    placements: BTreeMap<SceneId, u32>,
    /// Locality keys → device that last hosted the key.
    locality: BTreeMap<u64, u32>,
    /// Locality key of each live scene (for re-placement on migration).
    scene_locality: BTreeMap<SceneId, u64>,
    /// Durable outcomes, with the WAL segment their terminal record was
    /// last journaled in (pruning re-journals outcomes that would fall
    /// below the barrier).
    outcomes: BTreeMap<SceneId, (FleetOutcome, u64)>,
    /// Scenes whose device died with no survivor to adopt them. They
    /// remain durable in the WAL; a later [`FleetRouter::recover`] with
    /// fresh devices picks them up.
    stranded: Vec<SceneId>,
    stats: FleetStats,
}

impl FleetRouter {
    /// A fresh fleet over `devices` with a fresh WAL. Refuses to open a
    /// directory that already holds segments — that log belongs to a
    /// previous fleet and must go through [`FleetRouter::recover`].
    pub fn new(devices: Vec<Device>, cfg: RouterConfig) -> Result<FleetRouter, FleetError> {
        let wal = WalWriter::create(cfg.wal.clone())?;
        Ok(FleetRouter {
            workers: devices
                .into_iter()
                .map(|d| Worker {
                    sched: BatchScheduler::new(d, cfg.ingest),
                    alive: true,
                    heartbeat: 0,
                    scenes: BTreeMap::new(),
                })
                .collect(),
            cfg,
            wal,
            now: 0,
            next_scene: 0,
            placements: BTreeMap::new(),
            locality: BTreeMap::new(),
            scene_locality: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            stranded: Vec::new(),
            stats: FleetStats::default(),
        })
    }

    /// Rebuilds a fleet from the WAL left by a dead process: replays the
    /// log, re-places every live scene on the new devices (preferring
    /// each scene's recorded device index when it exists), restores the
    /// terminal outcomes, and re-journals everything into a fresh segment
    /// so the recovered log is self-contained. Continued trajectories are
    /// bit-identical to the run the process death interrupted.
    pub fn recover(devices: Vec<Device>, cfg: RouterConfig) -> Result<FleetRouter, FleetError> {
        let replay = WalReplay::load(&cfg.wal.dir)?;
        let wal = WalWriter::resume(cfg.wal.clone(), &replay)?;
        let mut router = FleetRouter {
            workers: devices
                .into_iter()
                .map(|d| Worker {
                    sched: BatchScheduler::new(d, cfg.ingest),
                    alive: true,
                    heartbeat: replay.last_tick,
                    scenes: BTreeMap::new(),
                })
                .collect(),
            cfg,
            wal,
            now: replay.last_tick,
            next_scene: 0,
            placements: BTreeMap::new(),
            locality: BTreeMap::new(),
            scene_locality: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            stranded: Vec::new(),
            stats: FleetStats::default(),
        };
        let mut max_id = None::<SceneId>;
        for (&id, ro) in &replay.terminal {
            max_id = Some(max_id.map_or(id, |m| m.max(id)));
            let outcome = FleetOutcome {
                outcome: ro.outcome,
                fingerprint: ro.fingerprint,
            };
            // Re-journal into the fresh segment so pruning the old ones
            // can never lose a finished scene's result.
            let seg = router.wal.segment_index();
            router
                .wal
                .append(WalRecordKind::Terminal, id, 0, outcome.encode().as_bytes())?;
            router.outcomes.insert(id, (outcome, seg));
        }
        for (&id, rs) in &replay.live {
            max_id = Some(max_id.map_or(id, |m| m.max(id)));
            let preferred = (rs.device as usize) < router.workers.len();
            let target = if preferred {
                rs.device as usize
            } else {
                match router.place(None) {
                    Some(t) => t,
                    None => {
                        router.stranded.push(id);
                        continue;
                    }
                }
            };
            router.adopt_scene(target, id, rs.scene.clone(), rs.taken_at)?;
        }
        router.wal.sync()?;
        if router.cfg.prune {
            let barrier = router.wal.segment_index();
            router.wal.prune_before(barrier)?;
        }
        router.next_scene = max_id.map_or(0, |m| m + 1);
        Ok(router)
    }

    /// Submits a scene to the fleet. The scene is journaled and fsynced
    /// *before* this returns: an `Ok(id)` is a durability promise. The
    /// preferred device comes from the locality map; a saturated or dead
    /// preference falls back through the remaining devices in score
    /// order, and only when every live device rejects does the fleet
    /// reject.
    pub fn submit(&mut self, fs: FleetSubmission) -> Result<SceneId, FleetError> {
        let FleetSubmission {
            submission,
            locality,
        } = fs;
        let mut order = self.placement_order(Some(locality));
        if order.is_empty() {
            return Err(FleetError::NoSurvivors);
        }
        // The WAL payload snapshots the state exactly as try_submit will
        // construct it, so replaying a Submit record is indistinguishable
        // from resubmitting.
        let mut last_err = None;
        let mut placed = None;
        for dev in order.drain(..) {
            match self.workers[dev].sched.try_submit(submission.clone()) {
                Ok(ticket) => {
                    placed = Some((dev, ticket));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some((dev, ticket)) = placed else {
            return Err(FleetError::Ingest(
                last_err.expect("at least one device was tried"),
            ));
        };
        let id = self.next_scene;
        self.next_scene += 1;
        let snapshot = self.workers[dev]
            .sched
            .snapshot_inflight()
            .into_iter()
            .find(|(t, _)| *t == ticket)
            .map(|(_, s)| s)
            .expect("freshly submitted scene is in flight");
        let payload = FleetCheckpoint {
            taken_at_step: self.now,
            scenes: vec![snapshot],
        }
        .encode();
        self.wal
            .append(WalRecordKind::Submit, id, dev as u32, payload.as_bytes())?;
        self.wal.sync()?;
        self.workers[dev].scenes.insert(ticket, id);
        self.placements.insert(id, dev as u32);
        self.locality.insert(locality, dev as u32);
        self.scene_locality.insert(id, locality);
        self.stats.submitted += 1;
        Ok(id)
    }

    /// Advances the fleet one step: polls device liveness, recovers any
    /// dead device (replaying its scenes from the WAL onto survivors),
    /// ticks every responsive device, journals terminal outcomes, and
    /// takes the periodic snapshot burst under one group commit.
    pub fn tick(&mut self) -> Result<FleetTickReport, FleetError> {
        self.now += 1;
        self.stats.ticks += 1;
        let mut rep = FleetTickReport::default();

        // 1. Step-boundary liveness polls, then fail-stop detection: a
        // crashed device says so when asked (its driver calls error out).
        for w in self.workers.iter().filter(|w| w.alive) {
            w.sched.batch().device().poll_step_boundary();
        }
        for i in 0..self.workers.len() {
            if self.workers[i].alive && !self.workers[i].sched.batch().device().is_alive() {
                let latency = self.now - self.workers[i].heartbeat;
                rep.devices_lost += 1;
                rep.migrated += self.recover_worker(i, latency)?;
            }
        }

        // 2. Step every responsive device. An unresponsive (hung) device
        // is modeled by skipping its tick: in reality the launch would
        // never return, so no progress happens and its heartbeat stalls.
        for w in self.workers.iter_mut().filter(|w| w.alive) {
            if w.sched.batch().device().is_responsive() {
                let r = w.sched.tick();
                w.heartbeat = self.now;
                rep.admitted += r.admitted;
            }
        }

        // 3. Watchdog: declare a device dead once it has gone
        // `watchdog_ticks` without completing a step.
        for i in 0..self.workers.len() {
            if self.workers[i].alive {
                let stale = self.now - self.workers[i].heartbeat;
                if stale >= self.cfg.watchdog_ticks {
                    rep.devices_lost += 1;
                    rep.migrated += self.recover_worker(i, stale)?;
                }
            }
        }

        // 4. Journal terminal transitions.
        for i in 0..self.workers.len() {
            if !self.workers[i].alive {
                continue;
            }
            let tickets: Vec<Ticket> = self.workers[i].scenes.keys().copied().collect();
            for ticket in tickets {
                let Some(status) = self.workers[i].sched.status(ticket).map(|r| r.status) else {
                    continue;
                };
                let outcome = match status {
                    SceneStatus::Completed => WalOutcome::Completed,
                    SceneStatus::Refused { .. } => WalOutcome::Refused,
                    SceneStatus::Shed { .. } => WalOutcome::Shed,
                    SceneStatus::Queued | SceneStatus::Running { .. } => continue,
                };
                let fingerprint = self.workers[i]
                    .sched
                    .take_final_sys(ticket)
                    .map_or(0, |sys| system_fingerprint(&sys));
                let id = self.workers[i]
                    .scenes
                    .remove(&ticket)
                    .expect("iterated key");
                self.placements.remove(&id);
                self.scene_locality.remove(&id);
                let seg = self.wal.segment_index();
                let out = FleetOutcome {
                    outcome,
                    fingerprint,
                };
                self.wal.append(
                    WalRecordKind::Terminal,
                    id,
                    i as u32,
                    out.encode().as_bytes(),
                )?;
                self.outcomes.insert(id, (out, seg));
                match outcome {
                    WalOutcome::Completed => {
                        rep.completed += 1;
                        self.stats.completed += 1;
                    }
                    WalOutcome::Refused => {
                        rep.refused += 1;
                        self.stats.refused += 1;
                    }
                    WalOutcome::Shed => {
                        rep.shed += 1;
                        self.stats.shed += 1;
                    }
                }
            }
        }

        // 5. Periodic snapshot burst: every in-flight scene, one group
        // commit. Pruning first re-journals any terminal outcome whose
        // record would fall below the barrier.
        let snap_due =
            self.cfg.wal_snap_interval > 0 && self.now.is_multiple_of(self.cfg.wal_snap_interval);
        // Segment holding the first record of this burst: pruning keeps
        // it and everything after (a mid-burst rotation moves later burst
        // records forward, never backward).
        let mut burst_barrier = None;
        if snap_due {
            let barrier = self.wal.segment_index();
            burst_barrier = Some(barrier);
            for i in 0..self.workers.len() {
                if !self.workers[i].alive {
                    continue;
                }
                for (ticket, fs) in self.workers[i].sched.snapshot_inflight() {
                    let Some(&id) = self.workers[i].scenes.get(&ticket) else {
                        continue;
                    };
                    let payload = FleetCheckpoint {
                        taken_at_step: self.now,
                        scenes: vec![fs],
                    }
                    .encode();
                    self.wal
                        .append(WalRecordKind::Snap, id, i as u32, payload.as_bytes())?;
                }
            }
            if self.cfg.prune {
                let ids: Vec<SceneId> = self.outcomes.keys().copied().collect();
                for id in ids {
                    let (out, seg) = self.outcomes[&id];
                    if seg < barrier {
                        let new_seg = self.wal.segment_index();
                        self.wal
                            .append(WalRecordKind::Terminal, id, 0, out.encode().as_bytes())?;
                        self.outcomes.insert(id, (out, new_seg));
                    }
                }
            }
            rep.snapped = true;
        }

        // 6. One barrier covers the whole tick's records (group commit);
        // only then is the boundary committed and pruning safe.
        self.wal.sync()?;
        // Stranded scenes live only in old segments, so their presence
        // vetoes pruning outright.
        if let (Some(barrier), true) = (burst_barrier, self.cfg.prune && self.stranded.is_empty()) {
            // Every live scene was just re-journaled at or above the
            // burst barrier, and every outcome sits at or above the
            // lowest journaled-outcome segment; strictly older segments
            // hold nothing the fleet still needs.
            let keep_from = self
                .outcomes
                .values()
                .map(|(_, seg)| *seg)
                .min()
                .unwrap_or(barrier)
                .min(barrier);
            self.wal.prune_before(keep_from)?;
        }
        Ok(rep)
    }

    /// Ticks until nothing is in flight or `max_ticks` elapse; returns
    /// the ticks taken.
    pub fn drain(&mut self, max_ticks: usize) -> Result<usize, FleetError> {
        for t in 0..max_ticks {
            if self.in_flight() == 0 {
                return Ok(t);
            }
            self.tick()?;
        }
        Ok(max_ticks)
    }

    /// Replays a dead worker's scenes from the WAL onto survivors.
    /// Returns how many scenes migrated.
    fn recover_worker(&mut self, dead: usize, latency: u64) -> Result<usize, FleetError> {
        self.workers[dead].alive = false;
        self.stats.recoveries += 1;
        self.stats.detection_latencies.push(latency);
        // Only durable state exists for recovery: the device's memory is
        // gone, and with it the scheduler's working set. Sync staged
        // records (they describe *other* devices' boundaries) and replay.
        self.wal.sync()?;
        let replay = WalReplay::load(self.wal.dir())?;
        let ids: Vec<SceneId> = self.workers[dead].scenes.values().copied().collect();
        self.workers[dead].scenes.clear();
        let mut migrated = 0;
        for id in ids {
            let Some(rs) = replay.live.get(&id) else {
                // Terminal'd between snapshots — its outcome is already
                // durable; nothing to migrate.
                continue;
            };
            let locality = self.scene_locality.get(&id).copied();
            let Some(target) = self.place(locality) else {
                self.placements.remove(&id);
                self.stranded.push(id);
                continue;
            };
            self.adopt_scene(target, id, rs.scene.clone(), rs.taken_at)?;
            if let Some(key) = locality {
                self.locality.insert(key, target as u32);
            }
            migrated += 1;
            self.stats.migrated += 1;
        }
        self.wal.sync()?;
        Ok(migrated)
    }

    /// Places one replayed scene on `target`, journaling its new home.
    fn adopt_scene(
        &mut self,
        target: usize,
        id: SceneId,
        scene: FleetScene,
        taken_at: u64,
    ) -> Result<(), FleetError> {
        let payload = FleetCheckpoint {
            taken_at_step: taken_at,
            scenes: vec![scene.clone()],
        }
        .encode();
        self.wal
            .append(WalRecordKind::Snap, id, target as u32, payload.as_bytes())?;
        let ticket = self.workers[target].sched.adopt(scene);
        self.workers[target].scenes.insert(ticket, id);
        self.placements.insert(id, target as u32);
        Ok(())
    }

    /// Best live device for a (possibly keyed) placement, or `None` when
    /// the fleet has no survivors.
    fn place(&self, locality: Option<u64>) -> Option<usize> {
        self.placement_order(locality).first().copied()
    }

    /// Live devices in placement-preference order: the locality-preferred
    /// device first (when alive and its queue has room), then the rest by
    /// descending `dp_gflops / (1 + in_flight)`, ties toward lower ids.
    fn placement_order(&self, locality: Option<u64>) -> Vec<usize> {
        let preferred = locality
            .and_then(|k| self.locality.get(&k))
            .map(|&d| d as usize)
            .filter(|&d| {
                self.workers[d].alive
                    && self.workers[d].sched.queue_len() < self.cfg.ingest.queue_capacity
            });
        let mut scored: Vec<(f64, usize)> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive)
            .map(|(i, w)| {
                let gflops = w.sched.batch().device().profile().dp_gflops;
                (gflops / (1.0 + w.sched.in_flight() as f64), i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let mut order: Vec<usize> = Vec::with_capacity(scored.len());
        if let Some(p) = preferred {
            order.push(p);
        }
        order.extend(
            scored
                .into_iter()
                .map(|(_, i)| i)
                .filter(|&i| Some(i) != preferred),
        );
        order
    }

    // -- Observability ----------------------------------------------------

    /// The router clock: ticks since construction (or since the replayed
    /// snapshot, for a recovered router).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of devices the fleet was built with (dead ones included;
    /// device ids are stable indices).
    pub fn n_devices(&self) -> usize {
        self.workers.len()
    }

    /// Live devices remaining.
    pub fn n_alive(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Device `i` (for arming faults and reading traces).
    pub fn device(&self, i: usize) -> &Device {
        self.workers[i].sched.batch().device()
    }

    /// Device `i`'s scheduler (read-only).
    pub fn scheduler(&self, i: usize) -> &BatchScheduler {
        &self.workers[i].sched
    }

    /// Scenes not yet in a terminal state, across the whole fleet
    /// (stranded scenes count: they are still owed a result).
    pub fn in_flight(&self) -> usize {
        self.placements.len() + self.stranded.len()
    }

    /// Where each live scene currently runs: fleet id → device index.
    pub fn placements(&self) -> &BTreeMap<SceneId, u32> {
        &self.placements
    }

    /// Durable outcomes of finished scenes.
    pub fn outcomes(&self) -> BTreeMap<SceneId, FleetOutcome> {
        self.outcomes
            .iter()
            .map(|(&id, &(out, _))| (id, out))
            .collect()
    }

    /// Scenes stranded by a total-fleet loss, still durable in the WAL.
    pub fn stranded(&self) -> &[SceneId] {
        &self.stranded
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// WAL accounting (records, bytes, syncs, modeled seconds).
    pub fn wal_stats(&self) -> &WalStats {
        self.wal.stats()
    }

    /// Fleet modeled execution time: the *maximum* modeled seconds across
    /// devices — devices run concurrently, so the slowest one sets the
    /// fleet's wall-clock analogue.
    pub fn fleet_modeled_seconds(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.sched.batch().device().modeled_seconds())
            .fold(0.0, f64::max)
    }

    /// Aggregate modeled compute: the *sum* of modeled seconds across
    /// devices — the total step work the fleet performed, and the natural
    /// denominator for overheads that tax the whole fleet's output (the
    /// WAL budget is stated against this, not against the parallel
    /// wall-clock analogue).
    pub fn fleet_aggregate_seconds(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.sched.batch().device().modeled_seconds())
            .sum()
    }
}

impl FleetOutcome {
    fn encode(&self) -> String {
        self.outcome.encode(self.fingerprint)
    }
}

/// FNV-1a fingerprint of a block system's kinematic state (centroid and
/// velocity bit patterns) — the same construction the batch compaction
/// assertion uses, exposed so recovery tests can compare final states
/// across runs without serializing whole systems.
pub fn system_fingerprint(sys: &BlockSystem) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: &mut u64, bits: u64| {
        *h ^= bits;
        *h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in &sys.blocks {
        let c = b.centroid();
        eat(&mut h, c.x.to_bits());
        eat(&mut h, c.y.to_bits());
        for dof in 0..6 {
            eat(&mut h, b.velocity[dof].to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use crate::params::DdaParams;
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dda-fleet-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn scene(offset: f64) -> (BlockSystem, DdaParams) {
        let mut params = DdaParams::for_model(1.0, 5e9);
        params.dt = 0.002;
        params.dt_max = 0.002;
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(-0.5 + offset, 0.005, 0.5 + offset, 1.005), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(35.0),
        );
        (sys, params)
    }

    fn submission(offset: f64, run_steps: u64, locality: u64) -> FleetSubmission {
        let (sys, params) = scene(offset);
        FleetSubmission {
            submission: SceneSubmission::new(sys, params, run_steps),
            locality,
        }
    }

    fn fleet(n: usize, tag: &str) -> (FleetRouter, PathBuf) {
        let dir = temp_dir(tag);
        let devices = (0..n)
            .map(|_| Device::new(DeviceProfile::tesla_k40()))
            .collect();
        let router = FleetRouter::new(devices, RouterConfig::new(&dir)).unwrap();
        (router, dir)
    }

    #[test]
    fn fleet_runs_scenes_to_completion() {
        let (mut r, dir) = fleet(2, "complete");
        let a = r.submit(submission(0.0, 3, 1)).unwrap();
        let b = r.submit(submission(0.3, 3, 2)).unwrap();
        let ticks = r.drain(64).unwrap();
        assert!(ticks < 64, "fleet must drain");
        let outs = r.outcomes();
        assert_eq!(outs[&a].outcome, WalOutcome::Completed);
        assert_eq!(outs[&b].outcome, WalOutcome::Completed);
        assert_ne!(outs[&a].fingerprint, 0);
        assert_eq!(r.in_flight(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heterogeneous_placement_prefers_fast_idle_devices() {
        let dir = temp_dir("placement");
        let devices = vec![
            Device::new(DeviceProfile::xeon_e5620_serial()),
            Device::new(DeviceProfile::tesla_k40()),
            Device::new(DeviceProfile::tesla_k20()),
        ];
        let mut r = FleetRouter::new(devices, RouterConfig::new(&dir)).unwrap();
        let id = r.submit(submission(0.0, 2, 7)).unwrap();
        assert_eq!(
            r.placements()[&id],
            1,
            "idle K40 outranks K20 and the serial fallback"
        );
        // Same locality key sticks to the same device.
        let id2 = r.submit(submission(0.2, 2, 7)).unwrap();
        assert_eq!(r.placements()[&id2], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn process_recovery_resumes_bit_identical() {
        let dir = temp_dir("proc-recover");
        // Baseline: run two scenes to completion undisturbed.
        let mk = || {
            vec![
                Device::new(DeviceProfile::tesla_k40()),
                Device::new(DeviceProfile::tesla_k20()),
            ]
        };
        let base_dir = temp_dir("proc-recover-base");
        let mut base = FleetRouter::new(mk(), RouterConfig::new(&base_dir)).unwrap();
        let a = base.submit(submission(0.0, 6, 1)).unwrap();
        let b = base.submit(submission(0.4, 6, 2)).unwrap();
        base.drain(64).unwrap();
        let base_outs = base.outcomes();

        // Interrupted: same submissions, killed (dropped) after 3 ticks,
        // recovered from the WAL in a "new process", drained.
        let mut cfg = RouterConfig::new(&dir);
        cfg.prune = false;
        let mut r = FleetRouter::new(mk(), cfg.clone()).unwrap();
        let a2 = r.submit(submission(0.0, 6, 1)).unwrap();
        let b2 = r.submit(submission(0.4, 6, 2)).unwrap();
        assert_eq!((a, b), (a2, b2), "scene ids are deterministic");
        for _ in 0..3 {
            r.tick().unwrap();
        }
        drop(r);
        let mut rec = FleetRouter::recover(mk(), cfg).unwrap();
        rec.drain(64).unwrap();
        let rec_outs = rec.outcomes();
        assert_eq!(
            base_outs[&a].fingerprint, rec_outs[&a].fingerprint,
            "recovered trajectory must be bit-identical"
        );
        assert_eq!(base_outs[&b].fingerprint, rec_outs[&b].fingerprint);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&base_dir).unwrap();
    }

    #[test]
    fn total_fleet_loss_strands_rather_than_drops() {
        let (mut r, dir) = fleet(1, "strand");
        let _ = r.submit(submission(0.0, 50, 1)).unwrap();
        // Declare the only device dead via the watchdog path by faking a
        // stalled heartbeat: without fault injection we can't kill the
        // device, so drive the watchdog directly.
        r.workers[0].alive = false;
        r.stranded.push(0);
        r.placements.remove(&0);
        assert_eq!(r.in_flight(), 1, "stranded scenes still count");
        assert!(r.place(None).is_none());
        match r.submit(submission(0.1, 1, 2)) {
            Err(FleetError::NoSurvivors) => {}
            other => panic!("expected NoSurvivors, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
