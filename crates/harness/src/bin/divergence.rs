//! §III-A data-classification study: contact initialization with and
//! without per-class kernels.
//!
//! The paper: "the data classification saves 20.576 µs and reduces 11.18%
//! branch divergence in the process of contact initialization, which is
//! tested by Nsight."
//!
//! Usage: `divergence [--blocks N] [--seed N] [--full]`

use dda_harness::experiments::divergence_study;
use dda_harness::table::{fmt_time, Table};
use dda_harness::Args;

fn main() {
    let mut a = Args::parse(1200, 0, 0);
    if a.full {
        a.blocks = 4361;
    }
    println!(
        "Contact-initialization divergence study (case 1, {} target blocks)\n",
        a.blocks
    );
    let d = divergence_study(a.blocks, a.seed);
    println!("contacts processed: {}\n", d.contacts);

    let mut t = Table::new(vec!["Path", "Modeled time (K40)", "Branch divergence"]);
    t.row(vec![
        "Monolithic kernel".to_string(),
        fmt_time(d.mono_s),
        format!("{:.2} %", d.mono_divergence * 100.0),
    ]);
    t.row(vec![
        "Classified kernels".to_string(),
        fmt_time(d.class_s),
        format!("{:.2} %", d.class_divergence * 100.0),
    ]);
    t.print();
    println!(
        "\n(classification machinery itself: {} — produced once by the narrow\n         phase's scan/radix sort and reused by every classified module)",
        fmt_time(d.classification_overhead_s)
    );

    println!(
        "\ntime saved by classification:  {:.3} µs   (paper: 20.576 µs)",
        d.saved_us()
    );
    println!(
        "divergence reduction:          {:.2} %   (paper: 11.18 %)",
        d.divergence_reduction_pct()
    );
}
