//! No-op `Serialize` / `Deserialize` derives.
//!
//! The build environment has no network access to crates.io, so the real
//! `serde_derive` cannot be fetched. Nothing in the workspace serializes
//! through serde at runtime (reports are written as hand-formatted text /
//! JSON), so empty derive expansions are sufficient and keep every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling unchanged.

use proc_macro::TokenStream;

/// Expands to nothing: no `Serialize` impl is generated or needed.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: no `Deserialize` impl is generated or needed.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
