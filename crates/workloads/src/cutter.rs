//! Joint-set block cutter.
//!
//! Rock masses are jointed by families of roughly parallel discontinuities.
//! The cutter reproduces the classical DDA block-generation step: starting
//! from convex region pieces, every joint line of every set splits every
//! polygon it crosses. Spacing jitter makes the pattern irregular (38 joint
//! materials in the paper's case 1 correspond to heterogeneous joint
//! properties; here jitter plus per-set materials stand in).

use dda_geom::{Polygon, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A family of parallel joints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointSet {
    /// Dip angle of the joint lines, degrees from the +x axis.
    pub angle_deg: f64,
    /// Mean perpendicular spacing between joints (m).
    pub spacing: f64,
    /// Relative jitter of each joint's offset (0 = perfectly periodic).
    pub jitter: f64,
}

/// Cuts `regions` by every line of every joint set. Returns the resulting
/// convex fragments, dropping slivers below `min_area`.
pub fn cut_blocks(
    regions: &[Polygon],
    sets: &[JointSet],
    min_area: f64,
    seed: u64,
) -> Vec<Polygon> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut blocks: Vec<Polygon> = regions.to_vec();

    // Overall bounding box determines each set's line range.
    let bb = regions
        .iter()
        .fold(dda_geom::Aabb::EMPTY, |acc, p| acc.union(p.aabb()));
    let diag = bb.extent().norm();
    let center = bb.center();

    for set in sets {
        let dir = Vec2::new(
            set.angle_deg.to_radians().cos(),
            set.angle_deg.to_radians().sin(),
        );
        let normal = dir.perp();
        let n_lines = (diag / set.spacing).ceil() as i64 + 1;
        for k in -n_lines..=n_lines {
            let jitter = (rng.gen::<f64>() - 0.5) * 2.0 * set.jitter * set.spacing;
            let offset = k as f64 * set.spacing + jitter;
            let p0 = center + normal * offset;
            let mut next: Vec<Polygon> = Vec::with_capacity(blocks.len() + 8);
            for b in blocks.drain(..) {
                // Quick reject: line misses the polygon's bounding circle.
                let d = normal.dot(b.centroid() - p0);
                if d.abs() > b.circumradius() {
                    next.push(b);
                    continue;
                }
                let (l, r) = b.split_by_line(p0, dir);
                match (l, r) {
                    (Some(a), Some(c)) => {
                        if a.area() >= min_area {
                            next.push(a);
                        }
                        if c.area() >= min_area {
                            next.push(c);
                        }
                    }
                    (Some(a), None) | (None, Some(a)) => next.push(a),
                    (None, None) => {}
                }
            }
            blocks = next;
        }
    }
    blocks.retain(|b| b.area() >= min_area);
    blocks
}

/// Picks joint spacings that yield roughly `target` blocks over `area`
/// given two joint sets crossing at `angle_between` degrees.
pub fn spacing_for_target(area: f64, target: usize, angle_between_deg: f64) -> f64 {
    // Each cell of a rhombic lattice has area s² / sin(θ).
    let s2 = area * angle_between_deg.to_radians().sin().abs() / target as f64;
    s2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(side: f64) -> Polygon {
        Polygon::rect(0.0, 0.0, side, side)
    }

    #[test]
    fn cutting_preserves_total_area() {
        let region = square(10.0);
        let total = region.area();
        let sets = [
            JointSet {
                angle_deg: 65.0,
                spacing: 2.0,
                jitter: 0.2,
            },
            JointSet {
                angle_deg: -20.0,
                spacing: 2.5,
                jitter: 0.2,
            },
        ];
        let blocks = cut_blocks(&[region], &sets, 1e-9, 7);
        let sum: f64 = blocks.iter().map(|b| b.area()).sum();
        assert!((sum - total).abs() < 1e-6, "area lost: {sum} vs {total}");
        assert!(blocks.len() > 20, "only {} blocks", blocks.len());
    }

    #[test]
    fn fragments_are_convex_ccw() {
        let sets = [JointSet {
            angle_deg: 45.0,
            spacing: 1.5,
            jitter: 0.3,
        }];
        let blocks = cut_blocks(&[square(8.0)], &sets, 1e-9, 3);
        for b in &blocks {
            assert!(b.is_convex());
            assert!(b.area() > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sets = [JointSet {
            angle_deg: 30.0,
            spacing: 1.0,
            jitter: 0.4,
        }];
        let a = cut_blocks(&[square(5.0)], &sets, 1e-9, 11);
        let b = cut_blocks(&[square(5.0)], &sets, 1e-9, 11);
        assert_eq!(a.len(), b.len());
        let c = cut_blocks(&[square(5.0)], &sets, 1e-9, 12);
        // Different jitter → (almost surely) different fragment count.
        assert!(a.len() != c.len() || a[0] != c[0]);
    }

    #[test]
    fn spacing_heuristic_hits_target_scale() {
        let area = 100.0;
        let s = spacing_for_target(area, 100, 90.0);
        let sets = [
            JointSet {
                angle_deg: 0.0,
                spacing: s,
                jitter: 0.0,
            },
            JointSet {
                angle_deg: 90.0,
                spacing: s,
                jitter: 0.0,
            },
        ];
        let blocks = cut_blocks(&[square(10.0)], &sets, 1e-9, 1);
        let n = blocks.len();
        assert!(
            n > 60 && n < 180,
            "expected ~100 blocks, got {n} (spacing {s})"
        );
    }

    #[test]
    fn min_area_drops_slivers() {
        let sets = [JointSet {
            angle_deg: 0.1,
            spacing: 0.5,
            jitter: 0.45,
        }];
        let all = cut_blocks(&[square(4.0)], &sets, 1e-9, 3);
        let filtered = cut_blocks(&[square(4.0)], &sets, 0.05, 3);
        assert!(filtered.len() <= all.len());
        assert!(filtered.iter().all(|b| b.area() >= 0.05));
    }
}
