//! Ablation benches for the design choices `DESIGN.md` calls out:
//! shared-memory reduction scheme (Figs 8–9), classified vs monolithic
//! contact initialization (§III-A), branch-restructured vs naive
//! interpenetration checking (§III-D), and HSBCSR slice padding.
//!
//! Each bench reports host wall time; the corresponding *modeled* device
//! effects are asserted by the test suite and reported by the harness
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use dda_bench::SMALL_BLOCKS;
use dda_core::contact::init::{init_contacts_classified, init_contacts_monolithic};
use dda_core::contact::{broad_phase_serial, narrow_phase_serial, GeomSoa};
use dda_core::interpenetration::{check_gpu, BranchScheme};
use dda_simt::serial::CpuCounter;
use dda_simt::{Device, DeviceProfile};
use dda_sparse::spmv::{spmv_hsbcsr, Stage1Smem};
use dda_sparse::{Hsbcsr, SymBlockMatrix};
use dda_workloads::{slope_case, SlopeConfig};
use std::hint::black_box;

fn dev() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn bench_smem_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_smem_scheme");
    g.sample_size(15);
    let m = SymBlockMatrix::random_spd(800, 4.3, 3);
    let h = Hsbcsr::from_sym(&m);
    let x = vec![1.0; m.dim()];
    g.bench_function("proposed_fig8", |b| {
        let d = dev();
        b.iter(|| spmv_hsbcsr(&d, black_box(&h), &x, Stage1Smem::Proposed))
    });
    g.bench_function("naive_row_major", |b| {
        let d = dev();
        b.iter(|| spmv_hsbcsr(&d, black_box(&h), &x, Stage1Smem::NaiveRowMajor))
    });
    g.finish();
}

#[allow(clippy::type_complexity)]
fn slope_contacts() -> (
    dda_core::BlockSystem,
    dda_core::DdaParams,
    Vec<dda_core::contact::Contact>,
    GeomSoa,
) {
    let (sys, params) = slope_case(&SlopeConfig::default().with_target_blocks(SMALL_BLOCKS));
    let mut cnt = CpuCounter::new();
    let pairs = broad_phase_serial(&sys, params.contact_range, &mut cnt);
    let contacts = narrow_phase_serial(&sys, &pairs, params.contact_range, &mut cnt);
    let soa = GeomSoa::build(&sys);
    (sys, params, contacts, soa)
}

fn bench_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_init_classification");
    g.sample_size(15);
    let (_sys, params, contacts, soa) = slope_contacts();
    let touch = params.touch_tol * params.max_displacement;
    g.bench_function("monolithic", |b| {
        let d = dev();
        b.iter_batched(
            || contacts.clone(),
            |mut cs| init_contacts_monolithic(&d, &soa, &mut cs, touch),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("classified", |b| {
        let d = dev();
        b.iter_batched(
            || contacts.clone(),
            |mut cs| init_contacts_classified(&d, &soa, &mut cs, touch),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_branch_restructuring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_branch_restructuring");
    g.sample_size(15);
    let (sys, params, contacts, soa) = slope_contacts();
    let d0 = vec![0.0; sys.len() * 6];
    g.bench_function("naive_branches", |b| {
        let d = dev();
        b.iter(|| {
            check_gpu(
                &d,
                &soa,
                black_box(&sys),
                &contacts,
                &d0,
                params.penalty,
                params.shear_ratio,
                BranchScheme::Naive,
            )
        })
    });
    g.bench_function("restructured", |b| {
        let d = dev();
        b.iter(|| {
            check_gpu(
                &d,
                &soa,
                black_box(&sys),
                &contacts,
                &d0,
                params.penalty,
                params.shear_ratio,
                BranchScheme::Restructured,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_smem_schemes,
    bench_classification,
    bench_branch_restructuring
);
criterion_main!(benches);
