//! Contact penalty-spring sub-matrices and forces (Shi's formulation).
//!
//! For a contact vertex `P1` (block `i`) against edge `P2→P3` (block `j`,
//! CCW so material lies left of the edge), with `ℓ = |P3−P2|` and
//! `S0 = orient2d(P2, P3, P1)` (twice the signed triangle area, positive
//! when `P1` penetrates):
//!
//! * the first-order normal gap is `dn = (S0 + e·dᵢ + g·dⱼ)/ℓ` with
//!   `e = Tᵢ(P1)ᵀ(y2−y3, x3−x2)` and
//!   `g = Tⱼ(P2)ᵀ(y3−y1, x1−x3) + Tⱼ(P3)ᵀ(y1−y2, x2−x1)`;
//! * the normal spring `Π = p/2·dn²` contributes `p/ℓ²·e eᵀ` to `K_ii`,
//!   `p/ℓ²·e gᵀ` to `K_ij`, `p/ℓ²·g gᵀ` to `K_jj`, and `−p·S0/ℓ²·(e|g)` to
//!   the forces;
//! * the shear spring (lock state) does the same along the edge direction
//!   with the contact point `P0 = P2 + ratio·(P3−P2)` as reference;
//! * sliding contacts replace the shear spring by a friction force
//!   `±(N·tanφ + c·ℓ)` along the edge (Mohr–Coulomb).

use super::super::contact::types::{Contact, ContactState};
use crate::block::t_rows_at;
use dda_geom::predicates::orient2d;
use dda_geom::Vec2;
use dda_sparse::{Block6, Vec6};

/// The four stiffness sub-matrices and two force vectors one contact
/// contributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpringTerms {
    /// Contribution to `K[i][i]`.
    pub kii: Block6,
    /// Contribution to `K[i][j]`.
    pub kij: Block6,
    /// Contribution to `K[j][j]`.
    pub kjj: Block6,
    /// Force on block `i`.
    pub fi: Vec6,
    /// Force on block `j`.
    pub fj: Vec6,
}

impl SpringTerms {
    fn zero() -> SpringTerms {
        SpringTerms {
            kii: Block6::ZERO,
            kij: Block6::ZERO,
            kjj: Block6::ZERO,
            fi: [0.0; 6],
            fj: [0.0; 6],
        }
    }

    /// `K[j][i]` is always `K[i][j]ᵀ` (the springs are energy-derived).
    pub fn kji(&self) -> Block6 {
        self.kij.transpose()
    }
}

/// Computes the spring terms of one contact, or `None` for open contacts.
///
/// `ci`/`cj` are the block centroids, `p1` the contact vertex, `p2`/`p3`
/// the contacted edge endpoints — all in the *current* configuration.
#[allow(clippy::too_many_arguments)]
pub fn contact_spring_terms(
    c: &Contact,
    ci: Vec2,
    cj: Vec2,
    p1: Vec2,
    p2: Vec2,
    p3: Vec2,
    penalty: f64,
    shear_ratio: f64,
    tan_phi: f64,
    cohesion: f64,
) -> Option<SpringTerms> {
    if !c.state.closed() {
        return None;
    }
    let l = p2.dist(p3);
    if l < 1e-12 {
        return None;
    }
    let mut out = SpringTerms::zero();
    let inv_l2 = 1.0 / (l * l);

    // ---- Normal spring ------------------------------------------------------
    let s0 = orient2d(p2, p3, p1);
    let (tx1, ty1) = t_rows_at(ci, p1);
    let (tx2, ty2) = t_rows_at(cj, p2);
    let (tx3, ty3) = t_rows_at(cj, p3);

    let mut e = [0.0f64; 6];
    let mut g = [0.0f64; 6];
    for r in 0..6 {
        e[r] = tx1[r] * (p2.y - p3.y) + ty1[r] * (p3.x - p2.x);
        g[r] = tx2[r] * (p3.y - p1.y)
            + ty2[r] * (p1.x - p3.x)
            + tx3[r] * (p1.y - p2.y)
            + ty3[r] * (p2.x - p1.x);
    }
    let pn = penalty * inv_l2;
    out.kii += Block6::outer(&e, &e).scale(pn);
    out.kij += Block6::outer(&e, &g).scale(pn);
    out.kjj += Block6::outer(&g, &g).scale(pn);
    let fn_scale = -penalty * s0 * inv_l2;
    for r in 0..6 {
        out.fi[r] += fn_scale * e[r];
        out.fj[r] += fn_scale * g[r];
    }

    // ---- Shear: spring (lock) or friction (slide) ---------------------------
    let p0 = p2.lerp(p3, c.edge_ratio.clamp(0.0, 1.0));
    let (tx0, ty0) = t_rows_at(cj, p0);
    let ex = p3.x - p2.x;
    let ey = p3.y - p2.y;
    let mut es = [0.0f64; 6];
    let mut gs = [0.0f64; 6];
    for r in 0..6 {
        es[r] = tx1[r] * ex + ty1[r] * ey;
        gs[r] = -(tx0[r] * ex + ty0[r] * ey);
    }
    let s0s = (p1 - p0).dot(Vec2::new(ex, ey));

    match c.state {
        ContactState::Lock => {
            let ps = penalty * shear_ratio * inv_l2;
            out.kii += Block6::outer(&es, &es).scale(ps);
            out.kij += Block6::outer(&es, &gs).scale(ps);
            out.kjj += Block6::outer(&gs, &gs).scale(ps);
            let fs_scale = -penalty * shear_ratio * s0s * inv_l2;
            for r in 0..6 {
                out.fi[r] += fs_scale * es[r];
                out.fj[r] += fs_scale * gs[r];
            }
        }
        ContactState::Slide => {
            // Normal force magnitude from the current penetration.
            let penetration = s0 / l; // > 0 when penetrating
            let n_force = (penalty * penetration).max(0.0);
            let f_mag = n_force * tan_phi + cohesion * l;
            // Friction opposes the sliding direction; the remembered
            // direction keeps the force from flickering when the
            // instantaneous offset is near zero.
            let sigma = if c.slide_dir != 0.0 {
                c.slide_dir
            } else if s0s >= 0.0 {
                1.0
            } else {
                -1.0
            };
            let scale = -sigma * f_mag / l;
            for r in 0..6 {
                out.fi[r] += scale * es[r];
                out.fj[r] += scale * gs[r];
            }
        }
        ContactState::Open => unreachable!("filtered above"),
    }

    Some(out)
}

/// First-order normal and shear measures of a contact under tentative
/// generalised displacements `di`, `dj` (the post-solve evaluation used by
/// interpenetration checking and the open–close iteration):
/// `dn = (S0 + e·di + g·dj)/ℓ` (positive = penetrating) and
/// `ds = (S0s + es·di + gs·dj)/ℓ` (positive = vertex ahead of the
/// reference point along the edge).
#[allow(clippy::too_many_arguments)]
pub fn contact_gap_under(
    c: &Contact,
    ci: Vec2,
    cj: Vec2,
    p1: Vec2,
    p2: Vec2,
    p3: Vec2,
    di: &Vec6,
    dj: &Vec6,
) -> (f64, f64) {
    let l = p2.dist(p3).max(1e-12);
    let (tx1, ty1) = t_rows_at(ci, p1);
    let (tx2, ty2) = t_rows_at(cj, p2);
    let (tx3, ty3) = t_rows_at(cj, p3);
    let s0 = orient2d(p2, p3, p1);
    let mut dn = s0;
    for r in 0..6 {
        let e = tx1[r] * (p2.y - p3.y) + ty1[r] * (p3.x - p2.x);
        let g = tx2[r] * (p3.y - p1.y)
            + ty2[r] * (p1.x - p3.x)
            + tx3[r] * (p1.y - p2.y)
            + ty3[r] * (p2.x - p1.x);
        dn += e * di[r] + g * dj[r];
    }
    dn /= l;

    let p0 = p2.lerp(p3, c.edge_ratio.clamp(0.0, 1.0));
    let (tx0, ty0) = t_rows_at(cj, p0);
    let ex = p3.x - p2.x;
    let ey = p3.y - p2.y;
    let mut ds = (p1 - p0).dot(Vec2::new(ex, ey));
    for r in 0..6 {
        let es = tx1[r] * ex + ty1[r] * ey;
        let gs = -(tx0[r] * ex + ty0[r] * ey);
        ds += es * di[r] + gs * dj[r];
    }
    ds /= l;
    (dn, ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::types::ContactKind;

    /// A unit setup: vertex at origin pressing the edge of a "floor" block
    /// whose top edge runs from (−1, −0.01) to (1, −0.01) (CCW floor:
    /// material below, left of the direction +x → the penetration of the
    /// origin vertex is +0.01... orient2d((−1,−.01),(1,−.01),(0,0)) =
    /// 2·0.01 > 0? Let's verify in the test).
    fn setup(state: ContactState) -> (Contact, Vec2, Vec2, Vec2, Vec2, Vec2) {
        let mut c = Contact::new(0, 1, 0, 0, u32::MAX, ContactKind::Ve);
        c.state = state;
        c.prev_iter_state = state;
        c.edge_ratio = 0.5;
        let ci = Vec2::new(0.0, 0.5); // upper block centroid
        let cj = Vec2::new(0.0, -0.5); // floor centroid
        let p1 = Vec2::new(0.0, 0.0);
        let p2 = Vec2::new(-1.0, -0.01);
        let p3 = Vec2::new(1.0, -0.01);
        (c, ci, cj, p1, p2, p3)
    }

    #[test]
    fn open_contact_contributes_nothing() {
        let (c, ci, cj, p1, p2, p3) = setup(ContactState::Open);
        assert!(contact_spring_terms(&c, ci, cj, p1, p2, p3, 1e9, 1.0, 0.5, 0.0).is_none());
    }

    #[test]
    fn normal_spring_pushes_blocks_apart() {
        let (c, ci, cj, p1, p2, p3) = setup(ContactState::Slide);
        // With zero friction the slide state has only the normal spring.
        let t = contact_spring_terms(&c, ci, cj, p1, p2, p3, 1e6, 1.0, 0.0, 0.0).unwrap();
        // P1 is 0.01 above the edge → penetrating (floor material is below
        // the edge, i.e. the CCW edge of the floor runs −x…+x with material
        // left = below? For this test the sign that matters: the force on
        // block i must push +y (out of the floor) when S0 > 0.
        let s0 = orient2d(p2, p3, p1);
        assert!(s0 > 0.0, "vertex should be on the material side: {s0}");
        assert!(t.fi[1] != 0.0); // force exists
                                 // Energy symmetry: K_jj, K_ii symmetric, K_ij arbitrary.
        assert!(t.kii.is_symmetric(1e-9 * t.kii.max_abs()));
        assert!(t.kjj.is_symmetric(1e-9 * t.kjj.max_abs()));
        // The normal force on i is along −S0 gradient: direction of e.
        // e = T1ᵀ(y2−y3, x3−x2) = T1ᵀ(0, 2) → fi ∝ −S0·(0,2)·p/l² < 0 in y?
        // S0 = 2·0.01 → fi[1] = −p·S0/l²·e[1] with e[1] = 2 → negative.
        assert!(t.fi[1] < 0.0);
        // Newton's third law at the translational DOFs.
        assert!((t.fi[1] + t.fj[1]).abs() < 1e-9 * t.fi[1].abs());
        assert!((t.fi[0] + t.fj[0]).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_when_vertex_on_edge() {
        let (mut c, ci, cj, _, p2, p3) = setup(ContactState::Lock);
        c.edge_ratio = 0.5;
        // Vertex exactly on the edge at the reference point: no forces.
        let p1 = Vec2::new(0.0, -0.01);
        let t = contact_spring_terms(&c, ci, cj, p1, p2, p3, 1e6, 1.0, 0.5, 0.0).unwrap();
        for r in 0..6 {
            assert!(t.fi[r].abs() < 1e-9, "fi[{r}] = {}", t.fi[r]);
            assert!(t.fj[r].abs() < 1e-9);
        }
        // Stiffness is still present (springs are attached).
        assert!(t.kii.max_abs() > 0.0);
    }

    #[test]
    fn lock_state_has_shear_stiffness_slide_does_not() {
        let (cl, ci, cj, p1, p2, p3) = setup(ContactState::Lock);
        let tl = contact_spring_terms(&cl, ci, cj, p1, p2, p3, 1e6, 1.0, 0.5, 0.0).unwrap();
        let (cs, ..) = setup(ContactState::Slide);
        let ts = contact_spring_terms(&cs, ci, cj, p1, p2, p3, 1e6, 1.0, 0.5, 0.0).unwrap();
        // The x-direction (edge-aligned) stiffness only exists with the
        // shear spring.
        assert!(tl.kii.0[0][0] > 0.0);
        assert!(ts.kii.0[0][0] < 1e-9 * tl.kii.0[0][0]);
    }

    #[test]
    fn friction_opposes_shear_offset() {
        let (mut c, ci, cj, _, p2, p3) = setup(ContactState::Slide);
        c.edge_ratio = 0.5; // reference point at x = 0
                            // Vertex penetrating (on the material side, S0 > 0) and shifted +x
                            // from the reference point.
        let p1 = Vec2::new(0.3, 0.0);
        let t = contact_spring_terms(&c, ci, cj, p1, p2, p3, 1e6, 1.0, 0.5, 0.0).unwrap();
        // Friction force on block i must act in −x.
        assert!(t.fi[0] < 0.0, "friction must oppose +x offset: {}", t.fi[0]);
        // And the mirrored force on j in +x (through gs).
        assert!(t.fj[0] > 0.0);
        // No friction without penetration (vertex on the open side).
        let p1_sep = Vec2::new(0.3, -0.5);
        let t2 = contact_spring_terms(&c, ci, cj, p1_sep, p2, p3, 1e6, 1.0, 0.5, 0.0).unwrap();
        assert_eq!(t2.fi[0], 0.0);
    }

    #[test]
    fn kji_is_transpose_of_kij() {
        let (c, ci, cj, p1, p2, p3) = setup(ContactState::Lock);
        let t = contact_spring_terms(&c, ci, cj, p1, p2, p3, 1e6, 1.0, 0.5, 0.0).unwrap();
        assert_eq!(t.kji(), t.kij.transpose());
    }

    #[test]
    fn degenerate_edge_rejected() {
        let (c, ci, cj, p1, p2, _) = setup(ContactState::Lock);
        assert!(contact_spring_terms(&c, ci, cj, p1, p2, p2, 1e6, 1.0, 0.5, 0.0).is_none());
    }

    #[test]
    fn gap_under_zero_displacement_is_geometric() {
        let (c, ci, cj, p1, p2, p3) = setup(ContactState::Lock);
        let z = [0.0; 6];
        let (dn, ds) = contact_gap_under(&c, ci, cj, p1, p2, p3, &z, &z);
        // Geometric penetration: S0/ℓ = 2·area/ℓ. The vertex sits 0.01
        // above the edge, edge length 2 → dn = 0.01.
        assert!((dn - 0.01).abs() < 1e-12, "dn = {dn}");
        // Vertex x = 0, reference point x = 0 → no shear offset.
        assert!(ds.abs() < 1e-12);
    }

    #[test]
    fn gap_under_translation_is_first_order_exact() {
        let (c, ci, cj, p1, p2, p3) = setup(ContactState::Lock);
        // Move block i down by 0.005 and right by 0.2.
        let di = [0.2, -0.005, 0.0, 0.0, 0.0, 0.0];
        let dj = [0.0; 6];
        let (dn, ds) = contact_gap_under(&c, ci, cj, p1, p2, p3, &di, &dj);
        assert!((dn - 0.005).abs() < 1e-12, "dn = {dn}");
        assert!((ds - 0.2).abs() < 1e-12, "ds = {ds}");
        // Moving block j the same way cancels both measures.
        let (dn2, ds2) = contact_gap_under(&c, ci, cj, p1, p2, p3, &di, &di);
        assert!((dn2 - 0.01).abs() < 1e-12);
        assert!(ds2.abs() < 1e-12);
    }
}
