//! Offline stand-in for the subset of `criterion` 0.5 the benches use.
//!
//! The build environment has no route to crates.io. This shim keeps every
//! `harness = false` bench target compiling and running: it executes each
//! registered benchmark a configurable number of times and prints a
//! median/min/max wall-clock summary — no statistical regression analysis,
//! plots, or HTML reports. The bench sources are unchanged, so pointing
//! the workspace back at real criterion restores the full harness.

use std::time::{Duration, Instant};

/// How many timed samples a group collects per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("[bench group] {name}");
        BenchmarkGroup {
            _parent: self,
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLES, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.samples, f);
        self
    }

    /// Runs one parameterized benchmark; the input is passed through to the
    /// closure (the shim does not record it separately).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.label, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim prints as
    /// it goes, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, like upstream's report path.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id for single-function groups.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortizes setup (sizing is irrelevant to the shim's
/// simple timer, so the variants only document intent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }

    /// Times `routine` on a fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        drop(out);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    eprintln!(
        "  {name}: median {:?} (min {:?}, max {:?}, n={samples})",
        median,
        times.first().copied().unwrap_or_default(),
        times.last().copied().unwrap_or_default(),
    );
}

/// Collects benchmark functions into a runner (mirrors
/// `criterion::criterion_group!`; only the simple form is supported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    criterion_group!(smoke, spin);

    #[test]
    fn group_macro_and_harness_run() {
        smoke();
    }
}
