//! Persistent host-thread pool backing large simulated launches.
//!
//! Large launches distribute warps (or blocks) over host cores purely as a
//! host-side execution detail — modeled time is identical either way. The
//! pool is spawned once per process and reused by every launch, so the hot
//! loop pays no thread-spawn cost and no per-launch heap allocation beyond
//! each worker's lazily-created thread-local scratch.
//!
//! One job runs at a time (`run` serializes callers); workers pull item
//! indices from a shared atomic counter, call `task(i)` per item, then call
//! `finish()` once — the hook launch code uses to fold thread-local
//! accumulators into the launch total. Counters are summed commutatively,
//! so results are deterministic regardless of which worker handles which
//! item.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The process-wide pool, spawned on first use.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1); // the caller participates too
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                generation: 0,
                job: None,
                remaining: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("simt-pool-{i}"))
                .spawn(move || worker_loop(&sh))
                .expect("failed to spawn simt pool worker");
        }
        Pool {
            shared,
            run_lock: Mutex::new(()),
            workers,
        }
    })
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    /// Serializes concurrent `run` callers (e.g. parallel test threads);
    /// one launch already saturates the pool.
    run_lock: Mutex<()>,
    workers: usize,
}

struct Shared {
    slot: Mutex<JobSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
}

struct JobSlot {
    /// Bumped per job so sleeping workers can tell new work from old.
    generation: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current generation.
    remaining: usize,
}

/// Borrows of the caller's closures with lifetimes erased. Sound because
/// `Pool::run` does not return until every worker has finished the
/// generation, so the pointees strictly outlive all uses.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    finish: *const (dyn Fn() + Sync),
    counter: *const AtomicUsize,
    n_items: usize,
}

// SAFETY: the raw pointers are only dereferenced between job publication
// and the completion handshake in `run`, during which the pointees are
// alive and `Sync`.
unsafe impl Send for Job {}

impl Pool {
    /// Runs `task(0..n_items)` across the workers plus the calling thread,
    /// then `finish()` once on every participating thread.
    pub(crate) fn run<'a>(
        &self,
        n_items: usize,
        task: &'a (dyn Fn(usize) + Sync),
        finish: &'a (dyn Fn() + Sync),
    ) {
        let _serial = self.run_lock.lock().unwrap();
        let counter = AtomicUsize::new(0);
        // SAFETY: erases the borrow lifetimes to the `'static`-bounded
        // pointers `Job` carries; see `Job` for why the pointees outlive
        // every use.
        let job = unsafe {
            Job {
                task: std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + 'a),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task),
                finish: std::mem::transmute::<
                    *const (dyn Fn() + Sync + 'a),
                    *const (dyn Fn() + Sync + 'static),
                >(finish),
                counter: &counter,
                n_items,
            }
        };
        {
            let mut slot = self.shared.slot.lock().unwrap();
            debug_assert!(slot.job.is_none() && slot.remaining == 0);
            slot.generation += 1;
            slot.job = Some(job);
            slot.remaining = self.workers;
            self.shared.work_cv.notify_all();
        }
        // The caller is a full participant.
        // SAFETY: the job's pointees are the arguments of this very call.
        unsafe { drain(&job) };
        let mut slot = self.shared.slot.lock().unwrap();
        while slot.remaining > 0 {
            slot = self.shared.done_cv.wait(slot).unwrap();
        }
        slot.job = None;
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.generation != last_gen {
                    if let Some(job) = slot.job {
                        last_gen = slot.generation;
                        break job;
                    }
                }
                slot = shared.work_cv.wait(slot).unwrap();
            }
        };
        // SAFETY: `run` is blocked on `remaining > 0` until we decrement
        // below, so the job's pointees are still alive here.
        unsafe { drain(&job) };
        let mut slot = shared.slot.lock().unwrap();
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Pulls items until the counter runs dry, then runs the epilogue.
///
/// # Safety
/// The job's pointers must still be alive (guaranteed by the `run`
/// completion handshake).
unsafe fn drain(job: &Job) {
    let task = unsafe { &*job.task };
    let finish = unsafe { &*job.finish };
    let counter = unsafe { &*job.counter };
    loop {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_items {
            break;
        }
        task(i);
    }
    finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_item_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let task = |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        let finish = || {};
        global().run(n, &task, &finish);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn finish_runs_once_per_participant() {
        let calls = AtomicU64::new(0);
        let task = |_i: usize| {};
        let finish = || {
            calls.fetch_add(1, Ordering::Relaxed);
        };
        global().run(64, &task, &finish);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            global().workers as u64 + 1,
            "every worker plus the caller runs the epilogue"
        );
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        for round in 0..50u64 {
            let sum = AtomicU64::new(0);
            let task = |i: usize| {
                sum.fetch_add(i as u64 + round, Ordering::Relaxed);
            };
            let finish = || {};
            global().run(100, &task, &finish);
            let expect: u64 = (0..100u64).map(|i| i + round).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expect);
        }
    }
}
