//! Fault-isolation suite (requires `--features fault-inject`).
//!
//! The tentpole contract of the scene lifecycle: a poisoned scene is
//! detected, degraded, and quarantined by the batched runtime, while every
//! batch-mate's trajectory stays **bit-identical** to an unpoisoned run of
//! the same fleet. Each test drives one injected failure mode end to end
//! through `SceneBatch` using the deterministic device injector.

#![cfg(feature = "fault-inject")]

use dda_repro::core::pipeline::SceneBatch;
use dda_repro::core::{BlockSystem, DdaParams, HealthPolicy, SlotState, StepError};
use dda_repro::simt::{Device, DeviceProfile, Fault};
use dda_repro::workloads::{rockfall_fleet, FleetConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn fleet(n: usize) -> Vec<(BlockSystem, DdaParams)> {
    rockfall_fleet(&FleetConfig::default().with_scenes(n).with_rocks(3))
}

/// Bitwise snapshot of every block's centroid and velocity in scene `i`.
fn snapshot(batch: &SceneBatch, i: usize) -> Vec<u64> {
    let mut bits = Vec::new();
    for b in &batch.sys(i).expect("slot still holds its scene").blocks {
        let c = b.centroid();
        bits.push(c.x.to_bits());
        bits.push(c.y.to_bits());
        for dof in 0..6 {
            bits.push(b.velocity[dof].to_bits());
        }
    }
    bits
}

/// Runs the poisoned fleet against an unpoisoned baseline and asserts the
/// isolation contract: `poison` quarantines, survivors stay bit-identical.
fn assert_isolated(fault: Fault, steps: usize) {
    const N: usize = 8;
    const POISON: usize = 3;

    let mut baseline = SceneBatch::new(k40(), fleet(N));
    baseline.run(steps);

    let dev = k40();
    dev.arm_fault(POISON, fault, usize::MAX);
    let mut poisoned = SceneBatch::new(dev, fleet(N));
    let init = snapshot(&poisoned, POISON);
    poisoned.run(steps);

    // The poisoned scene is quarantined within the retry budget...
    let h = poisoned.health(POISON);
    assert_eq!(
        h.state,
        SlotState::Quarantined,
        "poisoned scene must quarantine (health: {h:?})"
    );
    let latency = h.quarantined_at_step.expect("quarantine records its step");
    assert!(
        latency as usize <= poisoned.policy().retry_budget + 1,
        "quarantine latency {latency} exceeds budget"
    );
    assert!(
        h.last_error.is_some(),
        "diagnostics must survive quarantine"
    );
    // ...frozen at its last accepted state (here: never accepted a step)...
    assert_eq!(
        snapshot(&poisoned, POISON),
        init,
        "faulted steps must not commit"
    );
    // ...and every survivor's trajectory is bitwise unchanged.
    for i in 0..N {
        if i == POISON {
            continue;
        }
        assert_eq!(
            poisoned.health(i).state,
            SlotState::Running,
            "survivor {i} must stay healthy"
        );
        assert_eq!(poisoned.health(i).total_faults, 0);
        assert_eq!(
            snapshot(&poisoned, i),
            snapshot(&baseline, i),
            "survivor {i} trajectory diverged from the unpoisoned run"
        );
    }
}

#[test]
fn nan_rhs_quarantines_scene_and_isolates_survivors() {
    assert_isolated(Fault::NanRhs, 6);
}

#[test]
fn pcg_breakdown_quarantines_scene_and_isolates_survivors() {
    assert_isolated(Fault::IndefiniteOperator, 6);
}

#[test]
fn nan_rhs_reports_structured_error() {
    let dev = k40();
    dev.arm_fault(0, Fault::NanRhs, usize::MAX);
    let mut batch = SceneBatch::new(dev, fleet(2));
    batch.step();
    match batch.health(0).last_error {
        Some(StepError::NonFiniteRhs { oc_iteration }) => {
            assert_eq!(oc_iteration, 1, "poison lands on the first assembly")
        }
        other => panic!("expected NonFiniteRhs, got {other:?}"),
    }
    assert_eq!(batch.health(0).state, SlotState::Degraded);
    assert_eq!(batch.health(0).consecutive_failures, 1);
}

#[test]
fn breakdown_reports_solver_error_after_failed_rescue() {
    let dev = k40();
    dev.arm_fault(0, Fault::IndefiniteOperator, usize::MAX);
    let mut batch = SceneBatch::new(dev, fleet(2));
    batch.step();
    match batch.health(0).last_error {
        Some(StepError::SolverBreakdown { .. }) => {}
        other => panic!("expected SolverBreakdown, got {other:?}"),
    }
}

#[test]
fn transient_fault_recovers_without_quarantine() {
    // One poisoned step, then clean input again: the scene degrades, backs
    // off Δt, and is promoted back to Running by its next committed step.
    let dev = k40();
    dev.arm_fault(1, Fault::NanRhs, 1);
    let mut batch = SceneBatch::new(dev, fleet(3));
    let dt0 = batch.params(1).expect("live scene").dt;
    batch.step();
    assert_eq!(batch.health(1).state, SlotState::Degraded);
    assert!(
        batch.params(1).expect("live scene").dt < dt0,
        "fault must back off Δt"
    );
    batch.step();
    assert_eq!(batch.health(1).state, SlotState::Running);
    assert_eq!(batch.health(1).consecutive_failures, 0);
    assert_eq!(batch.health(1).total_faults, 1, "history is preserved");
}

#[test]
fn pinned_open_close_loop_trips_stall_detector() {
    let dev = k40();
    dev.arm_fault(0, Fault::OcPin, usize::MAX);
    let mut batch = SceneBatch::new(dev, fleet(2)).with_policy(HealthPolicy {
        retry_budget: 1,
        oc_stall_limit: 2,
        divergence_factor: 1e4,
    });
    // Dirty steps accumulate the stall streak, then faults drain the
    // (small) retry budget into quarantine.
    for _ in 0..6 {
        batch.step();
        if batch.health(0).state == SlotState::Quarantined {
            break;
        }
    }
    assert_eq!(batch.health(0).state, SlotState::Quarantined);
    match batch.health(0).last_error {
        Some(StepError::OcStalled { streak }) => assert!(streak >= 2),
        other => panic!("expected OcStalled, got {other:?}"),
    }
    // The batch-mate kept stepping normally throughout.
    assert_eq!(batch.health(1).state, SlotState::Running);
    assert_eq!(batch.health(1).total_faults, 0);
}

#[test]
fn quarantined_slot_can_be_retired_and_reused() {
    let dev = k40();
    dev.arm_fault(0, Fault::NanRhs, usize::MAX);
    let mut batch = SceneBatch::new(dev, fleet(2));
    batch.run(6);
    assert_eq!(batch.health(0).state, SlotState::Quarantined);
    // Post-mortem: retire the quarantined slot, admit a fresh scene into
    // it, and disarm the injector — the batch is healthy again.
    let corpse = batch.retire(0).expect("quarantined slot still holds state");
    assert!(!corpse.blocks.is_empty());
    batch.device().disarm_faults();
    let (sys, params) = fleet(3).pop().expect("fleet is non-empty");
    assert_eq!(batch.admit(sys, params), 0, "retired slot is reused");
    batch.step();
    assert_eq!(batch.health(0).state, SlotState::Running);
    assert!(batch.health(0).consecutive_failures == 0);
}
