//! Structure-of-arrays geometry mirror for device kernels.
//!
//! Simulated kernels read geometry through device buffers so their memory
//! traffic is modeled; polygons (variable-length, pointer-rich) therefore
//! get flattened once per step into plain arrays: vertex coordinates in
//! CSR-style layout plus per-block centroids and bounding boxes. Rebuilding
//! this mirror is part of the data-updating module's cost.

use crate::system::BlockSystem;

/// Flat geometry arrays for one configuration of the block system.
#[derive(Debug, Clone)]
pub struct GeomSoa {
    /// Vertex x coordinates, all blocks concatenated.
    pub vx: Vec<f64>,
    /// Vertex y coordinates.
    pub vy: Vec<f64>,
    /// CSR pointer: vertices of block `b` are `vptr[b]..vptr[b+1]`.
    pub vptr: Vec<u32>,
    /// Block centroid x.
    pub cx: Vec<f64>,
    /// Block centroid y.
    pub cy: Vec<f64>,
    /// Bounding boxes, one `(min_x, min_y, max_x, max_y)` quadruple per
    /// block, flattened for coalesced loads.
    pub aabb: Vec<f64>,
}

impl GeomSoa {
    /// Flattens the current geometry of `sys`.
    pub fn build(sys: &BlockSystem) -> GeomSoa {
        let n = sys.len();
        let total: usize = sys.blocks.iter().map(|b| b.poly.len()).sum();
        let mut vx = Vec::with_capacity(total);
        let mut vy = Vec::with_capacity(total);
        let mut vptr = Vec::with_capacity(n + 1);
        let mut cx = Vec::with_capacity(n);
        let mut cy = Vec::with_capacity(n);
        let mut aabb = Vec::with_capacity(4 * n);
        vptr.push(0u32);
        for b in &sys.blocks {
            for v in b.poly.vertices() {
                vx.push(v.x);
                vy.push(v.y);
            }
            vptr.push(vx.len() as u32);
            let c = b.centroid();
            cx.push(c.x);
            cy.push(c.y);
            let bb = b.aabb();
            aabb.extend_from_slice(&[bb.min.x, bb.min.y, bb.max.x, bb.max.y]);
        }
        GeomSoa {
            vx,
            vy,
            vptr,
            cx,
            cy,
            aabb,
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.cx.len()
    }

    /// Vertex count of block `b`.
    pub fn n_verts(&self, b: usize) -> usize {
        (self.vptr[b + 1] - self.vptr[b]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;

    #[test]
    fn flattening_roundtrip() {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0),
                Block::new(Polygon::regular(dda_geom::Vec2::new(5.0, 5.0), 1.0, 5), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let soa = GeomSoa::build(&sys);
        assert_eq!(soa.n_blocks(), 2);
        assert_eq!(soa.n_verts(0), 4);
        assert_eq!(soa.n_verts(1), 5);
        assert_eq!(soa.vx.len(), 9);
        // First vertex of block 1 matches the polygon.
        let p0 = sys.blocks[1].poly.vertex(0);
        let off = soa.vptr[1] as usize;
        assert_eq!(soa.vx[off], p0.x);
        assert_eq!(soa.vy[off], p0.y);
        // AABB quadruple of block 0.
        assert_eq!(&soa.aabb[0..4], &[0.0, 0.0, 1.0, 1.0]);
        // Centroids.
        assert!((soa.cx[0] - 0.5).abs() < 1e-12);
    }
}
