//! Interpenetration checking (§III-D).
//!
//! After each solve, every contact's first-order normal and shear measures
//! are evaluated under the tentative displacements, together with its
//! Mohr–Coulomb limit. These feed the open–close iteration, which demands
//! "no interpenetrations between the contacted blocks and no tension
//! between the separate blocks".
//!
//! "The bottleneck of interpenetration checking on the GPU is branch
//! divergence." The paper's §III-D listing shows the cure: hoist the
//! common sub-expressions (`tan`, `fabs`) out of the state branches and
//! reduce the branches to predicated register writes. Both variants are
//! implemented here — [`BranchScheme::Naive`] keeps the nested
//! per-state branching, [`BranchScheme::Restructured`] computes the unified
//! form — and the harness compares their divergence counters.

use crate::contact::types::{Contact, ContactState};
use crate::contact::GeomSoa;
use crate::stiffness::springs::contact_gap_under;
use crate::system::BlockSystem;
use dda_geom::Vec2;
use dda_simt::serial::CpuCounter;
use dda_simt::Device;
use dda_sparse::Vec6;

/// Kernel structure of the checking module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchScheme {
    /// Per-state nested branching (the direct CPU port — divergent).
    Naive,
    /// Branch-restructured unified computation (§III-D listing).
    Restructured,
}

/// Per-contact evaluation results.
#[derive(Debug, Clone, Default)]
pub struct GapArrays {
    /// Normal measure (positive = penetrating).
    pub dn: Vec<f64>,
    /// Shear measure along the edge.
    pub ds: Vec<f64>,
    /// Friction margin `|N|·tanφ + c·ℓ − |T|` (negative ⇒ sliding); its
    /// computation is the branchy §III-D code.
    pub margin: Vec<f64>,
    /// Mohr–Coulomb limit `|N|·tanφ + c·ℓ` (for the open–close hysteresis
    /// band).
    pub limit: Vec<f64>,
    /// Contacted edge length (the slip-reference update needs it).
    pub len: Vec<f64>,
}

impl GapArrays {
    /// True when every gap measure is finite — the health check the step
    /// drivers run before trusting the open–close update with the values.
    pub fn all_finite(&self) -> bool {
        let fin = |v: &[f64]| v.iter().all(|x| x.is_finite());
        fin(&self.dn) && fin(&self.ds) && fin(&self.margin) && fin(&self.limit) && fin(&self.len)
    }

    /// Largest penetration across all *open* contacts — the quantity the
    /// checker must drive to ~0 (open contacts must not interpenetrate).
    pub fn max_open_penetration(&self, contacts: &[Contact]) -> f64 {
        self.dn
            .iter()
            .zip(contacts)
            .filter(|(_, c)| !c.state.closed())
            .map(|(&dn, _)| dn.max(0.0))
            .fold(0.0, f64::max)
    }
}

/// The §III-D friction-margin computation, naive branching form. `state`
/// switches the formula exactly like the paper's `a == 0 / a == 2`
/// example; `tension` is the nested branch.
fn margin_naive(
    state: ContactState,
    n_force: f64,
    t_force: f64,
    tan_phi: f64,
    coh_l: f64,
) -> (f64, f64) {
    let limit = match state {
        ContactState::Slide => n_force.abs() * tan_phi + coh_l,
        ContactState::Lock => {
            let mut b = tan_phi;
            if n_force < 0.0 {
                b = 0.0; // tension: no frictional resistance
            }
            n_force.abs() * b + coh_l
        }
        ContactState::Open => coh_l,
    };
    (limit - t_force.abs(), limit)
}

/// The restructured form: unified arithmetic, branches reduced to
/// predicated coefficient selection (all paths execute the same ops).
fn margin_restructured(
    state: ContactState,
    n_force: f64,
    t_force: f64,
    tan_phi: f64,
    coh_l: f64,
) -> (f64, f64) {
    let closed = f64::from(u8::from(state.closed()));
    let compressed = f64::from(u8::from(n_force >= 0.0 || state == ContactState::Slide));
    let b = tan_phi * closed * compressed;
    let limit = n_force.abs() * b + coh_l;
    (limit - t_force.abs(), limit)
}

/// Serial checking: returns the gap arrays.
pub fn check_serial(
    sys: &BlockSystem,
    contacts: &[Contact],
    d: &[f64],
    penalty: f64,
    shear_ratio: f64,
    counter: &mut CpuCounter,
) -> GapArrays {
    let mut out = GapArrays {
        dn: Vec::with_capacity(contacts.len()),
        ds: Vec::with_capacity(contacts.len()),
        margin: Vec::with_capacity(contacts.len()),
        limit: Vec::with_capacity(contacts.len()),
        len: Vec::with_capacity(contacts.len()),
    };
    for c in contacts {
        let bi = &sys.blocks[c.i as usize];
        let bj = &sys.blocks[c.j as usize];
        let p1 = bi.poly.vertex(c.vertex as usize);
        let seg = bj.poly.edge(c.edge as usize);
        let di: &Vec6 = d[6 * c.i as usize..6 * c.i as usize + 6]
            .try_into()
            .unwrap();
        let dj: &Vec6 = d[6 * c.j as usize..6 * c.j as usize + 6]
            .try_into()
            .unwrap();
        let (dn, ds) = contact_gap_under(c, bi.centroid(), bj.centroid(), p1, seg.a, seg.b, di, dj);
        let jm = sys.joint_of(c.i as usize, c.j as usize);
        let l = seg.length();
        let n_force = penalty * dn;
        let t_force = penalty * shear_ratio * ds;
        out.dn.push(dn);
        out.ds.push(ds);
        let (m, lim) = margin_naive(c.state, n_force, t_force, jm.tan_phi(), jm.cohesion * l);
        out.margin.push(m);
        out.limit.push(lim);
        out.len.push(l);
        counter.flop(150);
        counter.special(1);
        counter.bytes(30 * 8);
    }
    out
}

/// GPU checking kernel with the selected branch scheme.
#[allow(clippy::too_many_arguments)]
pub fn check_gpu(
    dev: &Device,
    soa: &GeomSoa,
    sys: &BlockSystem,
    contacts: &[Contact],
    d: &[f64],
    penalty: f64,
    shear_ratio: f64,
    scheme: BranchScheme,
) -> GapArrays {
    let nc = contacts.len();
    let mut dn = vec![0.0f64; nc];
    let mut ds = vec![0.0f64; nc];
    let mut margin = vec![0.0f64; nc];
    let mut limit = vec![0.0f64; nc];
    let mut len = vec![0.0f64; nc];
    if nc == 0 {
        return GapArrays {
            dn,
            ds,
            margin,
            limit,
            len,
        };
    }
    // Per-contact joint params (tanφ, cohesion·ℓ precomputed without ℓ —
    // the kernel has ℓ).
    let jp: Vec<f64> = contacts
        .iter()
        .flat_map(|c| {
            let jm = sys.joint_of(c.i as usize, c.j as usize);
            [jm.tan_phi(), jm.cohesion]
        })
        .collect();
    {
        let b_c = dev.bind_ro(contacts);
        let b_vx = dev.bind_ro(&soa.vx);
        let b_vy = dev.bind_ro(&soa.vy);
        let b_vp = dev.bind_ro(&soa.vptr);
        let b_cx = dev.bind_ro(&soa.cx);
        let b_cy = dev.bind_ro(&soa.cy);
        let b_d = dev.bind_ro(d);
        let b_jp = dev.bind_ro(&jp);
        let b_dn = dev.bind(&mut dn);
        let b_ds = dev.bind(&mut ds);
        let b_m = dev.bind(&mut margin);
        let b_lim = dev.bind(&mut limit);
        let b_len = dev.bind(&mut len);
        let name = match scheme {
            BranchScheme::Naive => "interp.check_naive",
            BranchScheme::Restructured => "interp.check_restructured",
        };
        dev.launch(name, nc, |lane| {
            let t = lane.gid;
            let c = lane.ld(&b_c, t);
            let i0 = lane.ld_tex(&b_vp, c.i as usize) as usize;
            let j0 = lane.ld_tex(&b_vp, c.j as usize) as usize;
            let nj = lane.ld_tex(&b_vp, c.j as usize + 1) as usize - j0;
            let p1 = Vec2::new(
                lane.ld_tex(&b_vx, i0 + c.vertex as usize),
                lane.ld_tex(&b_vy, i0 + c.vertex as usize),
            );
            let e = c.edge as usize;
            let p2 = Vec2::new(lane.ld_tex(&b_vx, j0 + e), lane.ld_tex(&b_vy, j0 + e));
            let e1 = (e + 1) % nj;
            let p3 = Vec2::new(lane.ld_tex(&b_vx, j0 + e1), lane.ld_tex(&b_vy, j0 + e1));
            let ci = Vec2::new(
                lane.ld_tex(&b_cx, c.i as usize),
                lane.ld_tex(&b_cy, c.i as usize),
            );
            let cj = Vec2::new(
                lane.ld_tex(&b_cx, c.j as usize),
                lane.ld_tex(&b_cy, c.j as usize),
            );
            let mut di = [0.0f64; 6];
            let mut dj = [0.0f64; 6];
            for r in 0..6 {
                di[r] = lane.ld_tex(&b_d, 6 * c.i as usize + r);
                dj[r] = lane.ld_tex(&b_d, 6 * c.j as usize + r);
            }
            let tan_phi = lane.ld(&b_jp, 2 * t);
            let coh = lane.ld(&b_jp, 2 * t + 1);
            lane.flop(150);
            let (dnv, dsv) = contact_gap_under(&c, ci, cj, p1, p2, p3, &di, &dj);
            let l = p2.dist(p3);
            let n_force = penalty * dnv;
            let t_force = penalty * shear_ratio * dsv;
            let (m, lim) = match scheme {
                BranchScheme::Naive => {
                    // Divergent per-state branching, as on the CPU.
                    let slide = lane.branch(0, c.state == ContactState::Slide);
                    let lock = lane.branch(1, c.state == ContactState::Lock);
                    if slide || lock {
                        lane.special(1); // tan inside each branch
                        if lock {
                            lane.branch(2, n_force < 0.0);
                        }
                    }
                    margin_naive(c.state, n_force, t_force, tan_phi, coh * l)
                }
                BranchScheme::Restructured => {
                    // Unified arithmetic; only predicated writes remain.
                    lane.special(1);
                    lane.flop(6);
                    margin_restructured(c.state, n_force, t_force, tan_phi, coh * l)
                }
            };
            lane.st(&b_dn, t, dnv);
            lane.st(&b_ds, t, dsv);
            lane.st(&b_m, t, m);
            lane.st(&b_lim, t, lim);
            lane.st(&b_len, t, l);
        });
    }
    GapArrays {
        dn,
        ds,
        margin,
        limit,
        len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::contact::narrow::narrow_phase_serial;
    use crate::contact::types::ContactKind;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn stack() -> (BlockSystem, Vec<Contact>) {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let mut cnt = CpuCounter::new();
        let mut contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.05, &mut cnt);
        for c in contacts.iter_mut() {
            c.state = ContactState::Lock;
            c.prev_iter_state = ContactState::Lock;
        }
        (sys, contacts)
    }

    #[test]
    fn zero_displacement_zero_gaps_on_resting_stack() {
        let (sys, contacts) = stack();
        let d = vec![0.0; 12];
        let mut cnt = CpuCounter::new();
        let gaps = check_serial(&sys, &contacts, &d, 1e9, 1.0, &mut cnt);
        for (k, &dn) in gaps.dn.iter().enumerate() {
            assert!(dn.abs() < 1e-9, "contact {k}: dn = {dn}");
        }
    }

    #[test]
    fn downward_motion_penetrates() {
        let (sys, contacts) = stack();
        let mut d = vec![0.0; 12];
        d[7] = -0.001; // block 1 moves down
        let mut cnt = CpuCounter::new();
        let gaps = check_serial(&sys, &contacts, &d, 1e9, 1.0, &mut cnt);
        for &dn in &gaps.dn {
            assert!(dn > 0.0009, "must penetrate: {dn}");
        }
    }

    #[test]
    fn margin_schemes_agree() {
        for state in [ContactState::Open, ContactState::Slide, ContactState::Lock] {
            for n in [-5.0, 0.0, 3.0] {
                for t in [-2.0, 0.0, 4.0] {
                    let (a, la) = margin_naive(state, n, t, 0.5, 1.0);
                    let (b, lb) = margin_restructured(state, n, t, 0.5, 1.0);
                    assert!(
                        (a - b).abs() < 1e-12 && (la - lb).abs() < 1e-12,
                        "{state:?} n={n} t={t}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn gpu_matches_serial_both_schemes() {
        let (sys, contacts) = stack();
        let mut d = vec![0.0; 12];
        d[6] = 0.0004;
        d[7] = -0.0007;
        d[8] = 0.0001;
        let mut cnt = CpuCounter::new();
        let serial = check_serial(&sys, &contacts, &d, 1e9, 1.0, &mut cnt);
        let soa = GeomSoa::build(&sys);
        for scheme in [BranchScheme::Naive, BranchScheme::Restructured] {
            let dev = Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true);
            let gpu = check_gpu(&dev, &soa, &sys, &contacts, &d, 1e9, 1.0, scheme);
            for k in 0..contacts.len() {
                assert!((serial.dn[k] - gpu.dn[k]).abs() < 1e-12);
                assert!((serial.ds[k] - gpu.ds[k]).abs() < 1e-12);
                assert!(
                    (serial.margin[k] - gpu.margin[k]).abs()
                        < 1e-9 * serial.margin[k].abs().max(1.0),
                    "scheme {scheme:?} contact {k}"
                );
            }
        }
    }

    #[test]
    fn restructuring_reduces_divergence() {
        // Mixed states force the naive kernel's branches to diverge.
        let (sys, mut contacts) = stack();
        // Need enough contacts to fill warps meaningfully: duplicate the
        // contact population with alternating states.
        let base = contacts.clone();
        for k in 0..200 {
            let mut c = base[k % base.len()];
            c.state = match k % 3 {
                0 => ContactState::Open,
                1 => ContactState::Slide,
                _ => ContactState::Lock,
            };
            contacts.push(c);
        }
        let d = vec![0.0; 12];
        let soa = GeomSoa::build(&sys);

        let d1 = Device::new(DeviceProfile::tesla_k40());
        let _ = check_gpu(
            &d1,
            &soa,
            &sys,
            &contacts,
            &d,
            1e9,
            1.0,
            BranchScheme::Naive,
        );
        let naive = d1.trace().total_stats();

        let d2 = Device::new(DeviceProfile::tesla_k40());
        let _ = check_gpu(
            &d2,
            &soa,
            &sys,
            &contacts,
            &d,
            1e9,
            1.0,
            BranchScheme::Restructured,
        );
        let restructured = d2.trace().total_stats();

        assert!(naive.divergent_branch_groups > 0);
        assert_eq!(restructured.divergent_branch_groups, 0);
        assert!(naive.divergence_fraction() > restructured.divergence_fraction());
    }

    #[test]
    fn max_open_penetration_only_counts_open() {
        let mut contacts = vec![
            Contact::new(0, 1, 0, 0, u32::MAX, ContactKind::Ve),
            Contact::new(0, 1, 1, 0, u32::MAX, ContactKind::Ve),
        ];
        contacts[1].state = ContactState::Lock;
        let gaps = GapArrays {
            dn: vec![0.5, 2.0],
            ds: vec![0.0, 0.0],
            margin: vec![0.0, 0.0],
            limit: vec![1.0, 1.0],
            len: vec![1.0, 1.0],
        };
        // Only the open contact's dn counts.
        assert_eq!(gaps.max_open_penetration(&contacts), 0.5);
    }
}
