//! # dda-workloads — the paper's evaluation models
//!
//! Case 1 (§V-A) is a static stability analysis of a realistic jointed
//! slope: 4361 blocks, 5 block materials, 38 joint materials, 40 000 steps
//! to rest. Case 2 (§V-B) is a dynamic rockfall: 1683 ~2×2 m blocks
//! descending a 700 m slope over 80 000 steps. The original geometries are
//! survey data the paper does not publish; these generators produce
//! parametric equivalents that match what the experiments actually depend
//! on — block count, contact density, matrix structure, and the
//! static/dynamic split (see `DESIGN.md`, substitution table).
//!
//! * [`adversarial`] — malformed/hostile scenes (NaN contamination,
//!   stiffness contrast) for the health-monitoring and quarantine paths;
//! * [`cutter`] — joint-set block cutter: convex regions split by families
//!   of parallel joint lines;
//! * [`slope`] — case-1 generator (jointed slope cross-section);
//! * [`rockfall`] — case-2 generator (rock column on a steep slope);
//! * [`scatter`] — scattered sparse rock field (broad-phase stressor:
//!   O(1) contacts per block, O(n²) all-pairs candidates);
//! * [`fleet`] — N distinct rockfall scenes for the batched multi-scene
//!   runtime's throughput studies;
//! * [`traffic`] — open/closed-loop submission streams for the ingestion
//!   layer's overload and soak studies;
//! * [`render`] — SVG snapshots (the Figs 11–13 analogues).

#![deny(missing_docs)]

pub mod adversarial;
pub mod cutter;
pub mod fleet;
pub mod render;
pub mod rockfall;
pub mod scatter;
pub mod slope;
pub mod traffic;

pub use adversarial::{nan_contaminated_scene, stiff_contrast_scene};
pub use fleet::{rockfall_fleet, FleetConfig};
pub use rockfall::{rockfall_case, RockfallConfig};
pub use scatter::{scatter_case, ScatterConfig};
pub use slope::{slope_case, SlopeConfig};
pub use traffic::{
    ClosedLoopTraffic, FleetChurnConfig, FleetChurnTraffic, OpenLoopTraffic, TrafficConfig,
};
