//! BENCH_9 generator: load-feedback rebalancing — live-migration gain on
//! a skewed heterogeneous fleet, and the migration protocol's WAL cost.
//!
//! One seeded churn stream with a deliberately *hot* locality key
//! (most submissions share one kinematic family, so sticky locality
//! placement piles them onto a single device) is driven twice into the
//! same heterogeneous fleet (one K40, two K20s):
//!
//! 1. **Static** — the rebalancer off: placement happens at submit time
//!    and on device death only, the pre-migration behavior. The hot
//!    device becomes the fleet's critical path while the others idle.
//! 2. **Rebalanced** — the load-feedback rebalancer on: per-device
//!    modeled-seconds-per-scene EWMAs drive live, WAL-journaled
//!    two-phase scene migrations off the hot device, subject to a
//!    hysteresis band, a per-tick budget, and per-scene cooldowns.
//!
//! Reported: scenes completed per modeled second for both runs (fleet
//! time = max across devices, since they run concurrently), the gain
//! ratio, live migrations committed, and the migration records' modeled
//! WAL cost as a percentage of *aggregate* modeled step time — asserted
//! under 1%: exactly-once handoff must be cheap enough to use under
//! load. Outcome fingerprints are asserted identical between the two
//! runs — migration must never perturb a trajectory.
//!
//! Writes `BENCH_9.json` into the current directory and prints it.
//!
//! Usage: `bench9 [--rocks N] [--steps N] [--seed N]`
//! (`--steps` is the churn window in router ticks.)

use dda_core::pipeline::{FleetError, FleetOutcome, FleetRouter, RouterConfig, SceneId};
use dda_harness::Args;
use dda_simt::{Device, DeviceProfile};
use dda_workloads::{FleetChurnConfig, FleetChurnTraffic, TrafficConfig};
use std::collections::BTreeMap;

/// Budget for the migration records' modeled WAL cost, as a percentage
/// of aggregate modeled step time.
const MIGRATION_OVERHEAD_BUDGET_PCT: f64 = 1.0;

fn wal_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("dda-bench9-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The skewed stream: 80% of submissions land on locality key 0, so
/// sticky placement concentrates them on one device.
fn churn_config(rocks: usize) -> FleetChurnConfig {
    FleetChurnConfig {
        traffic: TrafficConfig {
            rocks,
            run_steps_min: 4,
            run_steps_max: 8,
            ..TrafficConfig::default()
        },
        localities: 6,
        rate: 2.0,
        burst_every: 8,
        burst_size: 3,
        hot_key_permille: 800,
    }
}

/// One K40 pulling against two slower K20s: the hot key parks on one
/// device and the imbalance is worth correcting.
fn hetero_devices() -> Vec<Device> {
    vec![
        Device::new(DeviceProfile::tesla_k40()),
        Device::new(DeviceProfile::tesla_k20()),
        Device::new(DeviceProfile::tesla_k20()),
    ]
}

struct RunRow {
    label: String,
    submitted: u64,
    rejected: u64,
    completed: u64,
    ticks: u64,
    fleet_modeled_s: f64,
    aggregate_modeled_s: f64,
    scenes_per_modeled_s: f64,
    rebalanced: u64,
    migration_wal_s: f64,
    migration_overhead_pct: f64,
    outcomes: BTreeMap<SceneId, FleetOutcome>,
}

fn run(label: &str, rebalance: bool, rocks: usize, window: u64, seed: u64) -> RunRow {
    let dir = wal_dir(&format!("run-{}", label.replace(' ', "-")));
    let mut cfg = RouterConfig::new(&dir);
    cfg.rebalance.enabled = rebalance;
    let mut r = FleetRouter::new(hetero_devices(), cfg).expect("fresh fleet");
    let mut traffic = FleetChurnTraffic::new(churn_config(rocks), seed);
    let mut rejected = 0u64;
    for now in 0..window {
        for sub in traffic.arrivals(now) {
            match r.submit(sub) {
                Ok(_) => {}
                Err(FleetError::Ingest(_)) => rejected += 1,
                Err(e) => panic!("unexpected fleet error: {e}"),
            }
        }
        r.tick().expect("tick");
    }
    let drained = r.drain(1024).expect("drain");
    assert!(drained < 1024, "{label}: churn window must drain");
    let fleet_s = r.fleet_modeled_seconds();
    let agg_s = r.fleet_aggregate_seconds();
    let stats = r.stats().clone();
    let migration_overhead_pct = if agg_s > 0.0 {
        100.0 * stats.migration_wal_seconds / agg_s
    } else {
        0.0
    };
    let outcomes = r.outcomes();
    let _ = std::fs::remove_dir_all(&dir);
    RunRow {
        label: label.to_string(),
        submitted: stats.submitted,
        rejected,
        completed: stats.completed,
        ticks: stats.ticks,
        fleet_modeled_s: fleet_s,
        aggregate_modeled_s: agg_s,
        scenes_per_modeled_s: if fleet_s > 0.0 {
            stats.completed as f64 / fleet_s
        } else {
            0.0
        },
        rebalanced: stats.rebalanced,
        migration_wal_s: stats.migration_wal_seconds,
        migration_overhead_pct,
        outcomes,
    }
}

fn main() {
    let a = Args::parse(0, 2, 48);
    let window = a.steps as u64;
    eprintln!(
        "bench9: load-feedback rebalancing on a skewed hetero fleet, \
         rocks={} window={window} seed={}",
        a.rocks, a.seed
    );

    eprintln!("  static placement (rebalancer off)");
    let stat = run("static", false, a.rocks, window, a.seed);
    eprintln!("  load-feedback rebalancing (rebalancer on)");
    let live = run("rebalanced", true, a.rocks, window, a.seed);

    assert!(
        live.rebalanced >= 1,
        "the skewed stream must trigger live migrations"
    );
    assert_eq!(
        stat.outcomes.len(),
        live.outcomes.len(),
        "both runs must finish the same scene set"
    );
    for (id, out) in &live.outcomes {
        assert_eq!(
            out.fingerprint, stat.outcomes[id].fingerprint,
            "scene {id}: live migration must not perturb the trajectory"
        );
    }
    assert!(
        live.migration_overhead_pct <= MIGRATION_OVERHEAD_BUDGET_PCT,
        "migration WAL cost {:.3}% blows the {MIGRATION_OVERHEAD_BUDGET_PCT}% budget",
        live.migration_overhead_pct
    );

    let gain = live.scenes_per_modeled_s / stat.scenes_per_modeled_s.max(1e-12);
    for row in [&stat, &live] {
        eprintln!(
            "    {}: {} completed over {} ticks, {:.3} modeled s, \
             {:.1} scenes/modeled-s, {} live migrations \
             (wal {:.3e} s = {:.4}% of aggregate)",
            row.label,
            row.completed,
            row.ticks,
            row.fleet_modeled_s,
            row.scenes_per_modeled_s,
            row.rebalanced,
            row.migration_wal_s,
            row.migration_overhead_pct,
        );
    }
    eprintln!("  rebalancer gain: {gain:.3}x (bit-identical outcomes)");

    let row_json = |r: &RunRow| {
        format!(
            "    {{ \"label\": \"{}\", \"submitted\": {}, \"rejected\": {}, \
             \"completed\": {}, \"ticks\": {}, \"fleet_modeled_s\": {:.6e}, \
             \"aggregate_modeled_s\": {:.6e}, \"scenes_per_modeled_s\": {:.3},\n      \
             \"migrations\": {{ \"committed\": {}, \"wal_modeled_s\": {:.6e}, \
             \"overhead_pct\": {:.4} }} }}",
            r.label,
            r.submitted,
            r.rejected,
            r.completed,
            r.ticks,
            r.fleet_modeled_s,
            r.aggregate_modeled_s,
            r.scenes_per_modeled_s,
            r.rebalanced,
            r.migration_wal_s,
            r.migration_overhead_pct,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"fleet_live_migration\",\n  \
         \"config\": {{ \"rocks\": {}, \"window_ticks\": {window}, \"seed\": {}, \
         \"devices\": \"K40 + 2x K20\", \"hot_key_permille\": 800, \
         \"hysteresis\": 0.5, \"max_migrations_per_tick\": 1, \"cooldown_ticks\": 8 }},\n  \
         \"units\": \"throughput in scenes per modeled second (fleet time = max over \
         devices); migration overhead = modeled WAL seconds spent on intent/commit \
         records / aggregate modeled step seconds\",\n  \
         \"migration_overhead_budget_pct\": {MIGRATION_OVERHEAD_BUDGET_PCT},\n  \
         \"runs\": [\n{},\n{}\n  ],\n  \
         \"rebalancer_gain\": {gain:.4},\n  \
         \"bitwise_identical_outcomes\": true\n}}\n",
        a.rocks,
        a.seed,
        row_json(&stat),
        row_json(&live),
    );
    print!("{json}");
    std::fs::write("BENCH_9.json", &json).expect("write BENCH_9.json");
    eprintln!("wrote BENCH_9.json");
}
