//! Criterion benches for a full pipeline time step (host cost of the CPU
//! reference vs the simulated-GPU pipeline, at two workload scales and for
//! both evaluation cases).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dda_bench::SMALL_BLOCKS;
use dda_core::pipeline::{CpuPipeline, GpuPipeline};
use dda_simt::{Device, DeviceProfile};
use dda_workloads::{rockfall_case, slope_case, RockfallConfig, SlopeConfig};

fn bench_case1_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("case1_step");
    g.sample_size(10);
    for n in [SMALL_BLOCKS, 400] {
        let (sys, params) = slope_case(&SlopeConfig::default().with_target_blocks(n));
        g.bench_with_input(BenchmarkId::new("cpu", n), &n, |b, _| {
            b.iter_batched(
                || CpuPipeline::new(sys.clone(), params.clone()),
                |mut pipe| pipe.step(),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            b.iter_batched(
                || {
                    GpuPipeline::new(
                        sys.clone(),
                        params.clone(),
                        Device::new(DeviceProfile::tesla_k40()),
                    )
                },
                |mut pipe| pipe.step(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_case2_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("case2_step");
    g.sample_size(10);
    let (sys, params) = rockfall_case(&RockfallConfig::default().with_rocks(60));
    g.bench_function("cpu", |b| {
        b.iter_batched(
            || CpuPipeline::new(sys.clone(), params.clone()),
            |mut pipe| pipe.step(),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("gpu_sim", |b| {
        b.iter_batched(
            || {
                GpuPipeline::new(
                    sys.clone(),
                    params.clone(),
                    Device::new(DeviceProfile::tesla_k40()),
                )
            },
            |mut pipe| pipe.step(),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_case1_step, bench_case2_step);
criterion_main!(benches);
