//! # dda-sparse — block-sparse symmetric matrices for DDA
//!
//! The DDA global stiffness matrix is "naturally blocky and symmetric"
//! (§III-C): every entry is a 6×6 sub-matrix (one per block-pair sharing a
//! contact), all diagonal sub-matrices are nonzero, and only the upper
//! triangle is computed and stored. This crate provides:
//!
//! * [`block6::Block6`] — dense 6×6 sub-matrix arithmetic (the DOF block of
//!   one DDA block: `u0, v0, r0, εx, εy, γxy`);
//! * [`sym::SymBlockMatrix`] — the canonical half-stored symmetric matrix
//!   produced by stiffness assembly;
//! * [`csr::Csr`], [`bcsr::BlockCsr`] and [`ell::Ell`] — scalar CSR,
//!   block CSR and ELLPACK-R views (the recovered-full-matrix formats the
//!   paper's baselines and related work use);
//! * [`hsbcsr::Hsbcsr`] — the paper's **half slice block compressed sparse
//!   row** format (Figs 6–7): sub-matrices sliced by local row, slices
//!   padded to 32-multiples for coalescing, with the `rc`, `row-up-i`,
//!   `row-low-i`, `row-low-p` index arrays;
//! * [`spmv`] — SpMV kernels on the SIMT simulator: the cuSPARSE-like CSR
//!   scalar/vector baselines, full-matrix BCSR, and the paper's two-stage
//!   HSBCSR SpMV (Figs 8–9), plus instrumented serial references.

#![deny(missing_docs)]
// Index-based loops over fixed 6-DOF arrays mirror the paper's kernel
// notation (row r, column c); iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod bcsr;
pub mod block6;
pub mod csr;
pub mod ell;
pub mod hsbcsr;
pub mod spmv;
pub mod sym;

pub use bcsr::BlockCsr;
pub use block6::{Block6, Vec6, BLOCK_DOF};
pub use csr::Csr;
pub use ell::Ell;
pub use hsbcsr::{Hsbcsr, Hsbcsr32};
pub use sym::SymBlockMatrix;
