//! Offline stand-in for `serde`.
//!
//! The container has no route to crates.io, so the real serde cannot be
//! vendored. The workspace uses serde only as `#[derive(Serialize,
//! Deserialize)]` markers on plain data types — nothing calls a serializer —
//! so this shim provides the two trait names and re-exports the no-op
//! derives from the sibling `serde_derive` shim. Swapping the workspace
//! back to real serde is a two-line `Cargo.toml` change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// does not implement it and nothing in the workspace requires it).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (lifetime parameter kept for
/// signature compatibility).
pub trait Deserialize<'de>: Sized {}
