//! # dda-simt — a SIMT GPU execution simulator
//!
//! The paper runs the entire DDA pipeline as CUDA kernels on Tesla K20/K40
//! GPUs. Its performance claims are *architectural*: branch divergence
//! reduced by data classification, memory write conflicts avoided by
//! sort/scan assembly, coalesced global-memory access in the HSBCSR layout,
//! bank-conflict-free shared-memory reductions, and kernel-launch/occupancy
//! costs that make level-scheduled triangular solves uncompetitive.
//!
//! No GPU is available to this reproduction (and Rust GPU crates cannot
//! express the custom SpMV kernels anyway — see `DESIGN.md`), so this crate
//! provides the substitute substrate: a **SIMT execution simulator** that
//!
//! 1. **executes kernels for real** — a kernel is a plain Rust closure run
//!    for every simulated thread, with warps of large launches distributed
//!    over a persistent host-thread pool, so all numerical results are
//!    exact; and
//! 2. **models the architecture** — every kernel reports
//!    [`stats::KernelStats`]: global-memory transactions under 128-byte
//!    coalescing rules, texture-path transactions, shared-memory bank
//!    conflicts (32 banks), per-site branch-divergence groups, warp-level
//!    SIMT work (idle lanes cost), and barrier counts. A roofline-style
//!    [`timing::TimingModel`] converts the report into modeled seconds under
//!    a named [`profile::DeviceProfile`] — Tesla K20, Tesla K40, or a serial
//!    Xeon E5620 profile for the paper's CPU baseline.
//!
//! Speedups quoted by the reproduction harness are ratios of modeled times
//! under these profiles — the honest analogue of the paper's cross-hardware
//! comparison — never wall-clock of the host container.
//!
//! ## Two kernel granularities
//!
//! * [`device::Device::launch`] — one closure per *thread* ([`lane::Lane`]),
//!   for map-style kernels (distance judgment, sub-matrix products,
//!   interpenetration checks). Divergence and coalescing are measured from
//!   the actual per-lane traces.
//! * [`device::Device::launch_blocks`] — one closure per *thread block*
//!   ([`block::Block`]), for cooperative kernels (scan, radix sort,
//!   segmented reductions) where threads communicate through shared memory
//!   and barriers. The block context instruments the canonical access
//!   patterns analytically while the closure computes real results.
//!
//! ## Write-conflict detection
//!
//! The paper devotes a section to avoiding memory write conflicts in global
//! stiffness assembly. [`device::Device::with_conflict_checking`] arms a
//! per-buffer epoch detector: two lanes storing to the same element within
//! one launch panics with a diagnostic. The DDA assembly tests run with the
//! detector armed, turning the paper's correctness argument into an
//! executable invariant.
//!
//! ## Device-wide primitives
//!
//! [`primitives`] implements the GPU building blocks the paper relies on
//! (Merrill-style scan and LSD radix sort, segmented reduction, stream
//! compaction, sorted search) as sequences of simulated kernel launches, so
//! classification and assembly inherit both correct results and modeled
//! costs.

#![deny(missing_docs)]
// Index-based loops over fixed 6-DOF arrays mirror the paper's kernel
// notation (row r, column c); iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod block;
pub mod buffer;
pub mod device;
#[cfg(feature = "fault-inject")]
pub mod inject;
pub mod lane;
pub(crate) mod pool;
pub mod primitives;
pub mod profile;
pub mod serial;
pub mod stats;
pub mod timing;

pub use batch::BatchSummary;
pub use block::Block;
pub use buffer::GBuf;
pub use device::Device;
#[cfg(feature = "fault-inject")]
pub use inject::{DeathMode, Fault};
pub use lane::Lane;
pub use profile::DeviceProfile;
pub use stats::{DeviceTrace, KernelStats};
pub use timing::TimingModel;

/// Number of lanes in a warp. Fixed at 32, as on every CUDA-capable GPU the
/// paper targets.
pub const WARP_SIZE: usize = 32;

/// Global-memory transaction size in bytes (L1/L2 cache-line granularity on
/// Kepler).
pub const TRANSACTION_BYTES: u64 = 128;

/// Texture-path transaction size in bytes (texture cache granularity used
/// for the irregular vector reads in HSBCSR SpMV).
pub const TEX_TRANSACTION_BYTES: u64 = 32;

/// Number of shared-memory banks on Kepler.
pub const SMEM_BANKS: usize = 32;
