//! Incremental re-assembly and warm-started re-solves: the parity
//! contracts.
//!
//! `AssemblyReuse::Incremental` memoizes the per-contact contribution
//! stream and the keyed-reduction plans across open–close iterations,
//! recomputing only the contacts the open–close update actually changed.
//! The contract is *bitwise* equality with the always-recompute oracle:
//! pair lists, contact histories, assembled solutions, and trajectories
//! must match `AssemblyReuse::Recompute` exactly — on the solo GPU
//! pipeline under every broad-phase mode and contact order, in the
//! batched runtime, through the checkpoint codec, and (knob-inert) on the
//! CPU reference. Fault-injected runs (a pinned open–close loop, an
//! indefinite operator driving the fallback ladder) must keep the same
//! parity, because the delta tracking rides the open–close kernel itself.
//!
//! `SolverWarmStart::PrevIterate` is the *tolerance-equivalent* knob: the
//! re-solve starts from the previous iterate but is driven to the same
//! tolerance, so trajectories may differ in the last bits while every
//! solve still converges — and the warm starts must actually save PCG
//! iterations on a churn workload.

use dda_repro::core::contact::{BroadPhaseMode, ContactOrder};
use dda_repro::core::pipeline::{CpuPipeline, GpuPipeline, SceneBatch, SceneCheckpoint};
use dda_repro::core::{AssemblyReuse, BlockSystem, DdaParams, SolverWarmStart};
use dda_repro::simt::{Device, DeviceProfile};
use dda_repro::workloads::{rockfall_case, RockfallConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
}

fn rockfall(rocks: usize) -> (BlockSystem, DdaParams) {
    rockfall_case(&RockfallConfig::default().with_rocks(rocks))
}

/// Every trajectory-bearing bit of one system, flattened for `assert_eq`.
fn sys_bits(sys: &BlockSystem) -> Vec<u64> {
    let mut bits = Vec::new();
    for b in &sys.blocks {
        let c = b.centroid();
        bits.push(c.x.to_bits());
        bits.push(c.y.to_bits());
        for dof in 0..6 {
            bits.push(b.velocity[dof].to_bits());
        }
        for k in 0..3 {
            bits.push(b.stress[k].to_bits());
        }
    }
    bits
}

/// Contact identity and history, flattened. The splice predicate keys on
/// `(state, edge_ratio, slide_dir)`, so these bits are exactly what a
/// stale cache would corrupt first.
fn contact_bits(contacts: &[dda_repro::core::contact::Contact]) -> Vec<u64> {
    let mut bits = Vec::new();
    for c in contacts {
        bits.push(c.key());
        bits.push(c.state as u64);
        bits.push(c.normal_disp.to_bits());
        bits.push(c.shear_disp.to_bits());
        bits.push(c.edge_ratio.to_bits());
        bits.push(c.slide_dir.to_bits());
    }
    bits
}

#[test]
fn incremental_is_bitwise_identical_across_broad_phase_modes() {
    for mode in [
        BroadPhaseMode::AllPairs,
        BroadPhaseMode::Grid,
        BroadPhaseMode::GridCached,
    ] {
        let (sys, params) = rockfall(14);
        let params = params.with_broad_phase(mode);
        let mut oracle = GpuPipeline::new(sys.clone(), params.clone(), k40());
        let mut incr = GpuPipeline::new(
            sys,
            params.with_assembly_reuse(AssemblyReuse::Incremental),
            k40(),
        );
        let mut multi_iter_steps = 0;
        for step in 0..8 {
            let ro = oracle.step();
            let ri = incr.step();
            assert_eq!(ro.n_contacts, ri.n_contacts, "{mode:?} step {step}");
            assert_eq!(ro.oc_iterations, ri.oc_iterations, "{mode:?} step {step}");
            assert_eq!(ro.pcg_iterations, ri.pcg_iterations, "{mode:?} step {step}");
            assert_eq!(ro.retries, ri.retries, "{mode:?} step {step}");
            assert_eq!(ro.categories, ri.categories, "{mode:?} step {step}");
            assert_eq!(
                contact_bits(oracle.contacts()),
                contact_bits(incr.contacts()),
                "{mode:?} step {step}: contact stream diverged"
            );
            assert_eq!(
                sys_bits(&oracle.sys),
                sys_bits(&incr.sys),
                "{mode:?} step {step}: trajectory diverged"
            );
            // The oracle never touches the cache; the incremental run
            // reports exactly one full build per attempt and splices the
            // rest.
            assert_eq!(
                ro.assembly,
                Default::default(),
                "{mode:?} step {step}: Recompute must not touch the cache"
            );
            if ri.oc_iterations > 1 {
                multi_iter_steps += 1;
                assert!(
                    ri.assembly.spliced > 0,
                    "{mode:?} step {step}: re-iterations must splice"
                );
            }
        }
        assert!(
            multi_iter_steps > 0,
            "{mode:?}: workload never re-iterated; the splice path went untested"
        );
        let stats = incr.assembly_cache_stats();
        assert!(
            stats.plan_hits > 0,
            "{mode:?}: reduction plans never reused"
        );
    }
}

#[test]
fn incremental_composes_with_class_sorted_scheduling() {
    let (sys, params) = rockfall(12);
    let params = params.with_contact_order(ContactOrder::ClassSorted);
    let mut oracle = GpuPipeline::new(sys.clone(), params.clone(), k40());
    let mut incr = GpuPipeline::new(
        sys,
        params.with_assembly_reuse(AssemblyReuse::Incremental),
        k40(),
    );
    for step in 0..8 {
        oracle.step();
        incr.step();
        assert_eq!(
            sys_bits(&oracle.sys),
            sys_bits(&incr.sys),
            "step {step}: class-sorted + incremental diverged"
        );
        assert_eq!(
            contact_bits(oracle.contacts()),
            contact_bits(incr.contacts()),
            "step {step}: contact stream diverged"
        );
    }
}

#[test]
fn incremental_batch_matches_solo_bitwise() {
    let scenes: Vec<_> = (0..3)
        .map(|k| {
            let (sys, params) = rockfall(6 + 2 * k);
            (sys, params.with_assembly_reuse(AssemblyReuse::Incremental))
        })
        .collect();
    let mut solos: Vec<_> = scenes
        .iter()
        .map(|(sys, params)| GpuPipeline::new(sys.clone(), params.clone(), k40()))
        .collect();
    let mut batch = SceneBatch::new(k40(), scenes);
    for step in 0..6 {
        let rb = batch.step();
        for (i, solo) in solos.iter_mut().enumerate() {
            let rs = solo.step();
            assert_eq!(rs.n_contacts, rb[i].n_contacts, "scene {i} step {step}");
            assert_eq!(
                rs.assembly, rb[i].assembly,
                "scene {i} step {step}: batch and solo reuse stats must agree"
            );
            assert_eq!(
                sys_bits(&solo.sys),
                sys_bits(batch.sys(i).expect("scene runs")),
                "scene {i} step {step}: batch trajectory diverged from solo"
            );
        }
    }
}

#[test]
fn knobs_round_trip_through_checkpoint() {
    let (sys, params) = rockfall(8);
    let params = params
        .with_assembly_reuse(AssemblyReuse::Incremental)
        .with_warm_start(SolverWarmStart::PrevIterate);
    let mut original = GpuPipeline::new(sys, params, k40());
    original.run(3);
    let text = SceneCheckpoint {
        state: original.scene_state(),
        taken_at_step: 3,
    }
    .encode();
    let decoded = SceneCheckpoint::decode(&text).expect("checkpoint decodes");
    assert_eq!(
        decoded.state.params.assembly_reuse,
        AssemblyReuse::Incremental,
        "the reuse knob must survive the codec"
    );
    assert_eq!(
        decoded.state.params.warm_start,
        SolverWarmStart::PrevIterate,
        "the warm-start knob must survive the codec"
    );
    let mut restored = GpuPipeline::from_state(decoded.state, k40());
    for step in 0..4 {
        original.step();
        restored.step();
        assert_eq!(
            sys_bits(&original.sys),
            sys_bits(&restored.sys),
            "step {step} after restore: trajectory diverged"
        );
    }
}

#[test]
fn cpu_pipeline_ignores_the_knobs_bitwise() {
    let (sys, params) = rockfall(8);
    let mut plain = CpuPipeline::new(sys.clone(), params.clone());
    let mut knobs = CpuPipeline::new(
        sys,
        params
            .with_assembly_reuse(AssemblyReuse::Incremental)
            .with_warm_start(SolverWarmStart::PrevIterate),
    );
    for step in 0..6 {
        plain.step();
        knobs.step();
        assert_eq!(
            sys_bits(&plain.sys),
            sys_bits(&knobs.sys),
            "step {step}: the serial reference must be knob-inert"
        );
    }
}

#[test]
fn warm_start_is_tolerance_equivalent_and_saves_iterations() {
    let (sys, params) = rockfall(14);
    let params = params.with_assembly_reuse(AssemblyReuse::Incremental);
    let mut cold = GpuPipeline::new(sys.clone(), params.clone(), k40());
    let mut warm = GpuPipeline::new(
        sys,
        params.with_warm_start(SolverWarmStart::PrevIterate),
        k40(),
    );
    let steps = 10;
    let (mut cold_iters, mut warm_iters, mut warm_starts) = (0usize, 0usize, 0usize);
    for step in 0..steps {
        let rc = cold.step();
        let rw = warm.step();
        cold_iters += rc.pcg_iterations;
        warm_iters += rw.pcg_iterations;
        warm_starts += rw.warm_starts;
        // Same tolerance on both sides: every solve the cold run converges
        // the warm run must converge too, and the physics must stay
        // equivalent (not bitwise — the iterate path differs).
        assert_eq!(rc.oc_converged, rw.oc_converged, "step {step}");
        assert_eq!(rc.n_contacts, rw.n_contacts, "step {step}");
        let denom = rc.max_displacement.abs().max(1e-12);
        assert!(
            (rc.max_displacement - rw.max_displacement).abs() / denom < 1e-3,
            "step {step}: warm start changed the physics \
             (cold {:.3e}, warm {:.3e})",
            rc.max_displacement,
            rw.max_displacement
        );
    }
    assert!(
        warm_starts > 0,
        "a settling rockfall must re-solve within steps (warm starts = 0)"
    );
    assert!(
        warm_iters < cold_iters,
        "warm starts must save PCG iterations (cold {cold_iters}, warm {warm_iters})"
    );
}

/// Fault-injected parity: the delta tracking rides the open–close kernel,
/// so a pinned open–close loop (forced extra iterations, maximal splice
/// pressure) and an indefinite operator (rescue solves, ladder descents)
/// must leave Incremental bitwise equal to the oracle — both runs armed
/// identically.
#[cfg(feature = "fault-inject")]
mod faulted {
    use super::*;
    use dda_repro::simt::Fault;

    fn scenes(reuse: AssemblyReuse) -> Vec<(BlockSystem, DdaParams)> {
        (0..4)
            .map(|k| {
                let (sys, params) = rockfall(4 + k);
                (sys, params.with_assembly_reuse(reuse))
            })
            .collect()
    }

    fn assert_faulted_parity(fault: Fault, steps: usize) {
        const VICTIM: usize = 1;
        let dev_o = k40();
        dev_o.arm_fault(VICTIM, fault, usize::MAX);
        let mut oracle = SceneBatch::new(dev_o, scenes(AssemblyReuse::Recompute));

        let dev_i = k40();
        dev_i.arm_fault(VICTIM, fault, usize::MAX);
        let mut incr = SceneBatch::new(dev_i, scenes(AssemblyReuse::Incremental));

        for step in 0..steps {
            let ro = oracle.step();
            let ri = incr.step();
            for i in 0..4 {
                assert_eq!(
                    ro[i].oc_iterations, ri[i].oc_iterations,
                    "{fault:?} scene {i} step {step}"
                );
                assert_eq!(
                    ro[i].retries, ri[i].retries,
                    "{fault:?} scene {i} step {step}"
                );
                match (oracle.sys(i), incr.sys(i)) {
                    (Some(a), Some(b)) => assert_eq!(
                        sys_bits(a),
                        sys_bits(b),
                        "{fault:?} scene {i} step {step}: trajectory diverged"
                    ),
                    (a, b) => assert_eq!(
                        a.is_some(),
                        b.is_some(),
                        "{fault:?} scene {i} step {step}: lifecycle diverged"
                    ),
                }
            }
        }
        for i in 0..4 {
            assert_eq!(
                oracle.health(i).state,
                incr.health(i).state,
                "{fault:?} scene {i}: health must agree"
            );
        }
    }

    #[test]
    fn ocpin_churn_keeps_bitwise_parity() {
        assert_faulted_parity(Fault::OcPin, 6);
    }

    #[test]
    fn indefinite_operator_rescues_keep_bitwise_parity() {
        assert_faulted_parity(Fault::IndefiniteOperator, 6);
    }

    #[test]
    fn warm_started_ladder_descent_is_deterministic() {
        // Two identical warm-started runs under an indefinite operator:
        // descents cold-start deterministically, so the runs must be
        // bitwise identical to each other.
        let mk = || {
            let dev = k40();
            dev.arm_fault(0, Fault::IndefiniteOperator, usize::MAX);
            let scenes: Vec<_> = (0..2)
                .map(|k| {
                    let (sys, params) = rockfall(5 + k);
                    (
                        sys,
                        params
                            .with_assembly_reuse(AssemblyReuse::Incremental)
                            .with_warm_start(SolverWarmStart::PrevIterate),
                    )
                })
                .collect();
            SceneBatch::new(dev, scenes)
        };
        let mut a = mk();
        let mut b = mk();
        for step in 0..6 {
            a.step();
            b.step();
            for i in 0..2 {
                match (a.sys(i), b.sys(i)) {
                    (Some(x), Some(y)) => assert_eq!(
                        sys_bits(x),
                        sys_bits(y),
                        "scene {i} step {step}: repeat run diverged"
                    ),
                    (x, y) => assert_eq!(x.is_some(), y.is_some()),
                }
            }
        }
    }
}
