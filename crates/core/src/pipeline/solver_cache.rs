//! Cached equation-solving state, shared by the GPU pipeline and the
//! batched multi-scene runtime.

use dda_simt::{Device, KernelStats};
use dda_solver::precond::BlockJacobi;
use dda_solver::{PcgWorkspace, PrecondError};
use dda_sparse::{Hsbcsr, SymBlockMatrix};

/// Cached equation-solving state, reused across open–close iterations and
/// time steps. The open–close loop usually toggles no contacts between
/// consecutive solves, so the HSBCSR symbolic structure (index arrays,
/// padding) is stable: the cache then refills values in place instead of
/// rebuilding, reuses the Block-Jacobi storage (refactoring values with the
/// same single launch), and keeps the PCG/SpMV workspace warm so the whole
/// solve path stops allocating.
#[derive(Default)]
pub(crate) struct SolverCache {
    h: Option<Hsbcsr>,
    bj: Option<BlockJacobi>,
    pub(crate) pcg_ws: PcgWorkspace,
    /// Diagnostics: how many solves reused the symbolic structure.
    pub(crate) refills: usize,
    /// Diagnostics: how many solves rebuilt the format from scratch.
    pub(crate) rebuilds: usize,
}

impl SolverCache {
    /// Refreshes the cached format (and, when `want_bj`, the Block-Jacobi
    /// factorization) for `matrix`, charging the format-building traffic on
    /// `dev`, and hands back disjoint borrows of everything a fused PCG
    /// call needs.
    ///
    /// Format building is charged as part of the solving module's time via
    /// an explicit record — the paper's pipeline equally pays it on device.
    /// When the sparsity pattern matches the cached format, only the value
    /// arrays are rewritten; the index derivation and its traffic are
    /// skipped.
    ///
    /// A singular diagonal sub-matrix (malformed scene input) surfaces as
    /// a structured [`PrecondError`] so the caller's fallback ladder can
    /// degrade instead of panicking inside the factorization kernel.
    pub(crate) fn try_prepare(
        &mut self,
        dev: &Device,
        matrix: &SymBlockMatrix,
        want_bj: bool,
    ) -> Result<(&Hsbcsr, Option<&BlockJacobi>, &mut PcgWorkspace), PrecondError> {
        let SolverCache {
            h: h_slot,
            bj: bj_slot,
            pcg_ws,
            refills,
            rebuilds,
        } = self;

        let refilled = match h_slot.as_mut() {
            Some(h) => h.refill_values(matrix),
            None => false,
        };
        if !refilled {
            *h_slot = Some(Hsbcsr::from_sym(matrix));
            *rebuilds += 1;
        } else {
            *refills += 1;
        }
        let h = h_slot.as_ref().expect("cache holds a format after refill");
        let bytes = h.data_bytes() as u64;
        let charged = if refilled { bytes } else { 2 * bytes };
        dev.record_external(
            "format.hsbcsr",
            KernelStats {
                launches: 1,
                threads: (h.n + h.n_nd) as u64,
                warps: ((h.n + h.n_nd) as u64).div_ceil(32),
                gmem_bytes: charged,
                gmem_transactions: charged.div_ceil(128),
                ..Default::default()
            },
        );

        let bj = if want_bj {
            // Values change every solve (contact springs); the cache keeps
            // the storage and refactors in place.
            match bj_slot.as_mut() {
                Some(bj) => bj.try_refactor(dev, h)?,
                None => *bj_slot = Some(BlockJacobi::try_new(dev, h)?),
            }
            Some(bj_slot.as_ref().expect("cache holds a factorization"))
        } else {
            None
        };
        Ok((h, bj, pcg_ws))
    }
}
