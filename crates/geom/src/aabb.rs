//! Axis-aligned bounding boxes for broad-phase contact detection.
//!
//! The broad phase in the paper tests every block pair's bounding boxes,
//! inflated by the contact search radius `d0` (twice the maximum allowed
//! per-step displacement), in a tiled O(n²/2) kernel. [`Aabb`] is the data
//! each lane of that kernel loads.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

impl Aabb {
    /// An empty box (inverted bounds) that unions correctly with anything.
    pub const EMPTY: Aabb = Aabb {
        min: Vec2 {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Vec2 {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a box from min/max corners.
    #[inline]
    pub const fn new(min: Vec2, max: Vec2) -> Self {
        Aabb { min, max }
    }

    /// Smallest box containing all `points`. Returns [`Aabb::EMPTY`] for an
    /// empty slice.
    pub fn from_points(points: &[Vec2]) -> Aabb {
        points.iter().fold(Aabb::EMPTY, |acc, &p| acc.include(p))
    }

    /// Box grown to contain `p`.
    #[inline]
    pub fn include(self, p: Vec2) -> Aabb {
        Aabb::new(self.min.min(p), self.max.max(p))
    }

    /// Union of two boxes.
    #[inline]
    pub fn union(self, other: Aabb) -> Aabb {
        Aabb::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// Box inflated by `r` on every side.
    ///
    /// Broad phase inflates block boxes by the contact search radius so
    /// blocks *about to* touch within the step are still detected.
    #[inline]
    pub fn inflate(self, r: f64) -> Aabb {
        Aabb::new(self.min - Vec2::new(r, r), self.max + Vec2::new(r, r))
    }

    /// True when the two boxes overlap (touching counts).
    #[inline]
    pub fn overlaps(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True when `p` lies inside or on the box.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Box centre.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Width and height as a vector.
    #[inline]
    pub fn extent(&self) -> Vec2 {
        self.max - self.min
    }

    /// True for a box with no points (inverted bounds).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_and_contains() {
        let b = Aabb::from_points(&[
            Vec2::new(1.0, 2.0),
            Vec2::new(-1.0, 5.0),
            Vec2::new(3.0, 0.0),
        ]);
        assert_eq!(b.min, Vec2::new(-1.0, 0.0));
        assert_eq!(b.max, Vec2::new(3.0, 5.0));
        assert!(b.contains(Vec2::new(0.0, 3.0)));
        assert!(!b.contains(Vec2::new(4.0, 3.0)));
    }

    #[test]
    fn empty_box() {
        let e = Aabb::from_points(&[]);
        assert!(e.is_empty());
        let b = e.include(Vec2::new(1.0, 1.0));
        assert!(!b.is_empty());
        assert_eq!(b.min, b.max);
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0));
        let b = Aabb::new(Vec2::new(2.0, -1.0), Vec2::new(3.0, 0.5));
        let u = a.union(b);
        assert_eq!(u.min, Vec2::new(0.0, -1.0));
        assert_eq!(u.max, Vec2::new(3.0, 1.0));
    }

    #[test]
    fn overlap_cases() {
        let a = Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 2.0));
        let b = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        let c = Aabb::new(Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0));
        let d = Aabb::new(Vec2::new(2.0, 0.0), Vec2::new(3.0, 1.0)); // touching edge
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&d));
    }

    #[test]
    fn inflate_enables_proximity_detection() {
        let a = Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0));
        let b = Aabb::new(Vec2::new(1.5, 0.0), Vec2::new(2.5, 1.0));
        assert!(!a.overlaps(&b));
        assert!(a.inflate(0.3).overlaps(&b.inflate(0.3)));
    }

    #[test]
    fn center_and_extent() {
        let a = Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(4.0, 2.0));
        assert_eq!(a.center(), Vec2::new(2.0, 1.0));
        assert_eq!(a.extent(), Vec2::new(4.0, 2.0));
    }
}
