//! # dda-harness — reproduction of every table and figure
//!
//! One binary per paper artifact (see `DESIGN.md` §4 and `EXPERIMENTS.md`):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I — preconditioner iterations/construction/apply/total |
//! | `fig5` | Fig 5 — sampled per-step PCG iterations per preconditioner |
//! | `fig10` | Fig 10 — SpMV (cuSPARSE CSR / BCSR / HSBCSR) and TSS times |
//! | `table2` | Table II — case-1 per-module times and speed-ups |
//! | `table3` | Table III — case-2 per-module times and speed-ups |
//! | `divergence` | §III-A claim — classified vs monolithic contact init |
//! | `fig89` | Figs 8–9 — shared-memory scheme bank-conflict ablation |
//!
//! All "GPU" times are the SIMT simulator's modeled seconds under the named
//! Tesla profile; "CPU" times are the same work tallies under the serial
//! E5620 profile (see `dda-simt` docs). Each binary prints both the paper's
//! reported value and the reproduction's, so the comparison is explicit.

#![deny(missing_docs)]

pub mod args;
pub mod experiments;
pub mod table;

pub use args::Args;
pub use table::Table;
