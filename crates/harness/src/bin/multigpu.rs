//! Extension exhibit (§VI future work): HSBCSR SpMV scaling across
//! multiple simulated GPUs.
//!
//! Usage: `multigpu [--blocks N] [--seed N]`

use dda_harness::experiments::case1_matrix;
use dda_harness::table::{fmt_time, Table};
use dda_harness::Args;
use dda_simt::DeviceProfile;
use dda_sparse::spmv::MultiGpuSpmv;

fn main() {
    let a = Args::parse(4361, 0, 0);
    println!(
        "Multi-GPU HSBCSR SpMV scaling (paper §VI future work), case-1 matrix, {} target blocks\n",
        a.blocks
    );
    let m = case1_matrix(a.blocks, 2, a.seed);
    println!(
        "matrix: {} block rows, {} upper sub-matrices\n",
        m.n_blocks(),
        m.n_upper()
    );
    let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.13).sin()).collect();

    let mut t = Table::new(vec![
        "GPUs",
        "Kernel (slowest device)",
        "All-reduce",
        "Total",
        "Speed-up vs 1 GPU",
    ]);
    let mut base = 0.0;
    for p in [1usize, 2, 4, 8] {
        let multi = MultiGpuSpmv::new(DeviceProfile::tesla_k40(), p, &m);
        let (_, r) = multi.mul(&x);
        let kmax = r.per_device.iter().copied().fold(0.0, f64::max);
        if p == 1 {
            base = r.total_s;
        }
        t.row(vec![
            p.to_string(),
            fmt_time(kmax),
            fmt_time(r.transfer_s),
            fmt_time(r.total_s),
            format!("{:.2}×", base / r.total_s),
        ]);
    }
    t.print();
    println!(
        "\nShape: kernel time divides with devices while the PCIe all-reduce\n\
         does not — the communication wall the paper's future work would face."
    );
}
