//! Stream compaction: keep the flagged elements, densely packed.
//!
//! The narrow phase "abandons" candidate pairs that fail the distance or
//! angle judgment and stores the survivors "in a successive array" (§III-B).
//! That is exactly scan-based compaction: scan the keep-flags for output
//! positions, then scatter the survivors.

use super::scan::scan_exclusive_u32;
use crate::device::Device;

/// Returns the indices of elements whose flag is nonzero, densely packed in
/// input order, using a flag-scan + scatter pair of kernels.
pub fn compact_indices(dev: &Device, flags: &[u32]) -> Vec<u32> {
    let n = flags.len();
    if n == 0 {
        return Vec::new();
    }
    let (positions, total) = scan_exclusive_u32(dev, flags);
    let mut out = vec![0u32; total as usize];
    if total == 0 {
        return out;
    }
    {
        let b_flags = dev.bind_ro(flags);
        let b_pos = dev.bind_ro(&positions);
        let b_out = dev.bind(&mut out);
        dev.launch("compact.scatter", n, |lane| {
            let i = lane.gid;
            let f = lane.ld(&b_flags, i);
            if lane.branch(0, f != 0) {
                let p = lane.ld(&b_pos, i);
                lane.st(&b_out, p as usize, i as u32);
            }
        });
    }
    out
}

/// Compacts `values` by `flags` (generic gather on the host side after a
/// device compaction of indices).
pub fn compact_by_flags<T: Copy>(dev: &Device, values: &[T], flags: &[u32]) -> Vec<T> {
    assert_eq!(values.len(), flags.len());
    compact_indices(dev, flags)
        .into_iter()
        .map(|i| values[i as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn empty() {
        let d = dev();
        assert!(compact_indices(&d, &[]).is_empty());
    }

    #[test]
    fn keeps_flagged_in_order() {
        let d = dev();
        let flags = vec![0u32, 1, 0, 1, 1, 0, 0, 1];
        assert_eq!(compact_indices(&d, &flags), vec![1, 3, 4, 7]);
    }

    #[test]
    fn all_kept_and_none_kept() {
        let d = dev();
        let all = vec![1u32; 100];
        assert_eq!(compact_indices(&d, &all).len(), 100);
        let none = vec![0u32; 100];
        assert!(compact_indices(&d, &none).is_empty());
    }

    #[test]
    fn compact_values() {
        let d = dev();
        let values = vec![10.0f64, 20.0, 30.0, 40.0];
        let flags = vec![1u32, 0, 0, 1];
        assert_eq!(compact_by_flags(&d, &values, &flags), vec![10.0, 40.0]);
    }

    #[test]
    fn large_input() {
        let d = dev();
        let n = 10_000;
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 3 == 0)).collect();
        let out = compact_indices(&d, &flags);
        let expected: Vec<u32> = (0..n as u32).filter(|i| i % 3 == 0).collect();
        assert_eq!(out, expected);
    }
}
