//! Cached equation-solving state, shared by the GPU pipeline and the
//! batched multi-scene runtime.

use dda_simt::{Device, KernelStats};
use dda_solver::precond::BlockJacobi;
use dda_solver::{PcgWorkspace, PrecondError};
use dda_sparse::{Hsbcsr, Hsbcsr32, SymBlockMatrix};

/// Cached equation-solving state, reused across open–close iterations and
/// time steps. The open–close loop usually toggles no contacts between
/// consecutive solves, so the HSBCSR symbolic structure (index arrays,
/// padding) is stable: the cache then refills values in place instead of
/// rebuilding, reuses the Block-Jacobi storage (refactoring values with the
/// same single launch), and keeps the PCG/SpMV workspace warm so the whole
/// solve path stops allocating. Mixed-precision scenes additionally keep an
/// fp32 value shadow, refreshed in the *same* refill sweep as the fp64
/// values (zero extra passes over the matrix).
#[derive(Default)]
pub(crate) struct SolverCache {
    h: Option<Hsbcsr>,
    h32: Option<Hsbcsr32>,
    bj: Option<BlockJacobi>,
    pub(crate) pcg_ws: PcgWorkspace,
    /// Diagnostics: how many solves reused the symbolic structure.
    pub(crate) refills: usize,
    /// Diagnostics: how many solves rebuilt the format from scratch.
    pub(crate) rebuilds: usize,
    /// The previous healthy iterate of the current step's open–close loop
    /// (capacity-reused; `warm_valid` gates it). Used as the PCG starting
    /// point under `SolverWarmStart::PrevIterate`, reset at every attempt
    /// start and on fallback-ladder descent.
    warm: Vec<f64>,
    warm_valid: bool,
}

impl SolverCache {
    /// The warm iterate, if one is armed.
    pub(crate) fn warm_iterate(&self) -> Option<&[f64]> {
        self.warm_valid.then_some(self.warm.as_slice())
    }

    /// Record `x` as the warm starting point for the next re-solve
    /// (in-place copy; no steady-state allocation once warmed).
    pub(crate) fn set_warm(&mut self, x: &[f64]) {
        self.warm.clear();
        self.warm.extend_from_slice(x);
        self.warm_valid = true;
    }

    /// Drop the warm iterate (attempt start, ladder descent, rescue).
    pub(crate) fn clear_warm(&mut self) {
        self.warm_valid = false;
    }

    /// Refreshes the cached format (and, when `want_bj`, the Block-Jacobi
    /// factorization; when `want_f32`, the fp32 value shadow) for `matrix`,
    /// charging the format-building traffic on `dev`, and hands back
    /// disjoint borrows of everything a fused PCG call needs.
    ///
    /// Format building is charged as part of the solving module's time via
    /// an explicit record — the paper's pipeline equally pays it on device.
    /// When the sparsity pattern matches the cached format, only the value
    /// arrays are rewritten; the index derivation and its traffic are
    /// skipped. The shadow rides the same sweep, adding only its own
    /// half-width store traffic.
    ///
    /// A singular diagonal sub-matrix (malformed scene input) surfaces as
    /// a structured [`PrecondError`] so the caller's fallback ladder can
    /// degrade instead of panicking inside the factorization kernel.
    #[allow(clippy::type_complexity)]
    pub(crate) fn try_prepare(
        &mut self,
        dev: &Device,
        matrix: &SymBlockMatrix,
        want_bj: bool,
        want_f32: bool,
    ) -> Result<
        (
            &Hsbcsr,
            Option<&Hsbcsr32>,
            Option<&BlockJacobi>,
            &mut PcgWorkspace,
        ),
        PrecondError,
    > {
        let SolverCache {
            h: h_slot,
            h32: h32_slot,
            bj: bj_slot,
            pcg_ws,
            refills,
            rebuilds,
            ..
        } = self;

        if want_f32 && h32_slot.is_none() {
            *h32_slot = Some(Hsbcsr32::new());
        }
        let refilled = match h_slot.as_mut() {
            Some(h) => match h32_slot.as_mut().filter(|_| want_f32) {
                // Steady state: one sweep writes both precisions.
                Some(sh) => h.refill_values_with_shadow(matrix, sh),
                None => h.refill_values(matrix),
            },
            None => false,
        };
        if !refilled {
            let h = Hsbcsr::from_sym(matrix);
            if let Some(sh) = h32_slot.as_mut().filter(|_| want_f32) {
                sh.refill_from(&h);
            }
            *h_slot = Some(h);
            *rebuilds += 1;
        } else {
            *refills += 1;
        }
        let h = h_slot.as_ref().expect("cache holds a format after refill");
        let h32 = if want_f32 {
            let sh = h32_slot.as_ref().expect("want_f32 installed a shadow");
            debug_assert!(sh.matches(h), "shadow refreshed alongside the format");
            Some(sh)
        } else {
            None
        };
        let bytes = h.data_bytes() as u64;
        // Rebuilds pay the symbolic derivation (2×); the fp32 shadow adds
        // its half-width stores on top of whichever path ran.
        let mut charged = if refilled { bytes } else { 2 * bytes };
        if want_f32 {
            charged += bytes / 2;
        }
        dev.record_external(
            "format.hsbcsr",
            KernelStats {
                launches: 1,
                threads: (h.n + h.n_nd) as u64,
                warps: ((h.n + h.n_nd) as u64).div_ceil(32),
                gmem_bytes: charged,
                gmem_transactions: charged.div_ceil(128),
                ..Default::default()
            },
        );

        let bj = if want_bj {
            // Values change every solve (contact springs); the cache keeps
            // the storage and refactors in place.
            match bj_slot.as_mut() {
                Some(bj) => bj.try_refactor(dev, h)?,
                None => *bj_slot = Some(BlockJacobi::try_new(dev, h)?),
            }
            Some(bj_slot.as_ref().expect("cache holds a factorization"))
        } else {
            None
        };
        Ok((h, h32, bj, pcg_ws))
    }
}
