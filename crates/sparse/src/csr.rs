//! Scalar compressed sparse row storage.
//!
//! The cuSPARSE baseline in the paper operates on the scalar CSR expansion
//! of the (recovered full) stiffness matrix, and ILU(0) factors it. This is
//! that format, with an instrumented serial SpMV used by the E5620 baseline
//! model.

use crate::bcsr::BlockCsr;
use crate::block6::BLOCK_DOF;
use crate::sym::SymBlockMatrix;
use dda_simt::serial::CpuCounter;
use serde::{Deserialize, Serialize};

/// A scalar CSR matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// Row pointers, length `dim + 1`.
    pub row_ptr: Vec<u32>,
    /// Column index per nonzero.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<f64>,
    /// Dimension (square).
    pub dim: usize,
}

impl Csr {
    /// Expands a block-CSR matrix to scalar CSR, dropping explicit zeros
    /// inside stored sub-matrices? — **No**: zeros inside a stored 6×6
    /// sub-matrix are kept, as cuSPARSE sees them when fed a BCSR-expanded
    /// matrix. (DDA sub-matrices are essentially dense anyway.)
    pub fn from_bcsr(b: &BlockCsr) -> Csr {
        let dim = b.dim();
        let mut row_ptr = vec![0u32; dim + 1];
        for brow in 0..b.n {
            let blocks_in_row = (b.row_ptr[brow + 1] - b.row_ptr[brow]) as usize;
            for r in 0..BLOCK_DOF {
                row_ptr[brow * 6 + r + 1] =
                    row_ptr[brow * 6 + r] + (blocks_in_row * BLOCK_DOF) as u32;
            }
        }
        let nnz = row_ptr[dim] as usize;
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        for brow in 0..b.n {
            let lo = b.row_ptr[brow] as usize;
            let hi = b.row_ptr[brow + 1] as usize;
            for r in 0..BLOCK_DOF {
                let mut p = row_ptr[brow * 6 + r] as usize;
                for bp in lo..hi {
                    let bcol = b.col_idx[bp] as usize;
                    for c in 0..BLOCK_DOF {
                        col_idx[p] = (bcol * 6 + c) as u32;
                        values[p] = b.blocks[bp].0[r][c];
                        p += 1;
                    }
                }
            }
        }
        Csr {
            row_ptr,
            col_idx,
            values,
            dim,
        }
    }

    /// Scalar CSR of the recovered full symmetric matrix.
    pub fn from_sym_full(m: &SymBlockMatrix) -> Csr {
        Csr::from_bcsr(&BlockCsr::from_sym_full(m))
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Serial SpMV `y = A x`, tallying the E5620 work model into `counter`:
    /// 2 flops per nonzero, plus traffic for values, column indices, the
    /// gathered `x` entries, and the streamed `y`.
    pub fn mul_vec_counted(&self, x: &[f64], counter: &mut CpuCounter) -> Vec<f64> {
        assert_eq!(x.len(), self.dim);
        let mut y = vec![0.0; self.dim];
        for row in 0..self.dim {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let mut acc = 0.0;
            for p in lo..hi {
                acc += self.values[p] * x[self.col_idx[p] as usize];
            }
            y[row] = acc;
        }
        let nnz = self.nnz() as u64;
        counter.flop(2 * nnz);
        counter.bytes(nnz * (8 + 4 + 8) + self.dim as u64 * (8 + 4));
        y
    }

    /// Serial SpMV without instrumentation.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut c = CpuCounter::new();
        self.mul_vec_counted(x, &mut c)
    }

    /// Value at `(row, col)` if stored.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        self.col_idx[lo..hi]
            .binary_search(&(col as u32))
            .ok()
            .map(|off| self.values[lo + off])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym() -> SymBlockMatrix {
        SymBlockMatrix::random_spd(15, 3.0, 5)
    }

    #[test]
    fn expansion_matches_reference() {
        let m = sym();
        let csr = Csr::from_sym_full(&m);
        assert_eq!(csr.dim, m.dim());
        let x: Vec<f64> = (0..m.dim()).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let y_ref = m.mul_vec(&x);
        let y = csr.mul_vec(&x);
        for i in 0..m.dim() {
            assert!((y[i] - y_ref[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn nnz_accounting() {
        let m = sym();
        let full = BlockCsr::from_sym_full(&m);
        let csr = Csr::from_bcsr(&full);
        assert_eq!(csr.nnz(), full.nnz_blocks() * 36);
    }

    #[test]
    fn rows_sorted_by_column() {
        let csr = Csr::from_sym_full(&sym());
        for r in 0..csr.dim {
            let seg = &csr.col_idx[csr.row_ptr[r] as usize..csr.row_ptr[r + 1] as usize];
            for w in seg.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn get_returns_stored_entries() {
        let m = sym();
        let csr = Csr::from_sym_full(&m);
        let dense = m.to_dense();
        // Diagonal entries are always stored.
        for i in 0..csr.dim {
            assert!((csr.get(i, i).unwrap() - dense[i][i]).abs() < 1e-12);
        }
        // A definitely-absent entry (first and last block unconnected in a
        // band matrix of this size).
        assert!(csr.get(0, csr.dim - 1).is_none());
    }

    #[test]
    fn counter_tallies_work() {
        let m = sym();
        let csr = Csr::from_sym_full(&m);
        let x = vec![1.0; csr.dim];
        let mut c = CpuCounter::new();
        let _ = csr.mul_vec_counted(&x, &mut c);
        assert_eq!(c.flops, 2 * csr.nnz() as u64);
        assert!(c.bytes > 20 * csr.nnz() as u64);
    }

    #[test]
    fn symmetric_dense_equivalence() {
        let m = sym();
        let csr = Csr::from_sym_full(&m);
        let dense = m.to_dense();
        for r in 0..csr.dim {
            for p in csr.row_ptr[r] as usize..csr.row_ptr[r + 1] as usize {
                let c = csr.col_idx[p] as usize;
                assert!((csr.values[p] - dense[r][c]).abs() < 1e-12);
            }
        }
    }
}
