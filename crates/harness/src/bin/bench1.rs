//! BENCH_1 generator: before/after measurements for the fused-kernel PCG
//! and allocation-free SpMV optimisation.
//!
//! Three probes, each timed two ways — modeled device seconds (the roofline
//! timing model, deterministic) and host wall-clock (the host-overhead the
//! allocation-free paths remove):
//!
//! * **spmv** — one HSBCSR SpMV: the allocating `spmv_hsbcsr` wrapper vs
//!   the warmed workspace `spmv_hsbcsr_into`;
//! * **pcg_solve** — one Block-Jacobi PCG solve: the unfused textbook loop
//!   (`pcg`, ~12 launches/iteration) vs the fused loop (`pcg_fused`,
//!   ≤5 launches/iteration) with a warmed workspace;
//! * **pipeline_step** — one full GPU pipeline time step: the legacy
//!   equation-solving module (fresh format + preconditioner every solve,
//!   unfused PCG) vs the cached/fused module.
//!
//! Writes `BENCH_1.json` into the current directory and prints it.
//!
//! Usage: `bench1 [--blocks N] [--steps N] [--seed N]`

use std::time::Instant;

use dda_core::pipeline::GpuPipeline;
use dda_harness::experiments::{case1_matrix, case1_system};
use dda_harness::Args;
use dda_simt::{Device, DeviceProfile};
use dda_solver::precond::BlockJacobi;
use dda_solver::{pcg, pcg_fused, HsbcsrMat, PcgOptions, PcgWorkspace};
use dda_sparse::spmv::{spmv_hsbcsr, spmv_hsbcsr_into, SpmvWorkspace, Stage1Smem};
use dda_sparse::Hsbcsr;

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

/// One before/after pair: per-operation modeled and wall seconds.
struct Pair {
    before_modeled: f64,
    before_wall: f64,
    after_modeled: f64,
    after_wall: f64,
}

impl Pair {
    fn json(&self, indent: &str) -> String {
        let speedup = |b: f64, a: f64| if a > 0.0 { b / a } else { f64::NAN };
        format!(
            "{{\n{indent}  \"before\": {{ \"modeled_s\": {:.6e}, \"wall_s\": {:.6e} }},\n\
             {indent}  \"after\":  {{ \"modeled_s\": {:.6e}, \"wall_s\": {:.6e} }},\n\
             {indent}  \"modeled_speedup\": {:.3},\n\
             {indent}  \"wall_speedup\": {:.3}\n{indent}}}",
            self.before_modeled,
            self.before_wall,
            self.after_modeled,
            self.after_wall,
            speedup(self.before_modeled, self.after_modeled),
            speedup(self.before_wall, self.after_wall),
        )
    }
}

fn bench_spmv(blocks: usize, seed: u64) -> Pair {
    let m = case1_matrix(blocks, 2, seed);
    let h = Hsbcsr::from_sym(&m);
    let x: Vec<f64> = (0..m.dim())
        .map(|i| ((i % 17) as f64) * 0.1 - 0.8)
        .collect();
    const REPS: u32 = 40;

    // Before: the allocating wrapper, a fresh result vector every call.
    let dev = k40();
    let _ = spmv_hsbcsr(&dev, &h, &x, Stage1Smem::Proposed); // warm trace
    dev.reset_trace();
    let t = Instant::now();
    for _ in 0..REPS {
        let _ = spmv_hsbcsr(&dev, &h, &x, Stage1Smem::Proposed);
    }
    let before_wall = t.elapsed().as_secs_f64() / REPS as f64;
    let before_modeled = dev.modeled_seconds() / REPS as f64;

    // After: warmed workspace, zero steady-state allocations.
    let dev = k40();
    let mut ws = SpmvWorkspace::new();
    let mut y = vec![0.0f64; m.dim()];
    for _ in 0..2 {
        spmv_hsbcsr_into(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    }
    dev.reset_trace();
    let t = Instant::now();
    for _ in 0..REPS {
        spmv_hsbcsr_into(&dev, &h, &x, Stage1Smem::Proposed, &mut ws, &mut y);
    }
    let after_wall = t.elapsed().as_secs_f64() / REPS as f64;
    let after_modeled = dev.modeled_seconds() / REPS as f64;

    Pair {
        before_modeled,
        before_wall,
        after_modeled,
        after_wall,
    }
}

fn bench_pcg(blocks: usize, seed: u64) -> (Pair, usize, usize) {
    let m = case1_matrix(blocks, 2, seed);
    let h = Hsbcsr::from_sym(&m);
    let b: Vec<f64> = (0..m.dim())
        .map(|i| ((i % 23) as f64) * 0.13 - 1.1)
        .collect();
    let x0 = vec![0.0f64; m.dim()];
    let opts = PcgOptions::default();
    const REPS: u32 = 8;

    // Before: the unfused textbook loop.
    let dev = k40();
    let bj = BlockJacobi::new(&dev, &h);
    let _ = pcg(&dev, &HsbcsrMat { m: &h }, &b, &x0, &bj, opts);
    dev.reset_trace();
    let t = Instant::now();
    let mut iters_before = 0;
    for _ in 0..REPS {
        iters_before = pcg(&dev, &HsbcsrMat { m: &h }, &b, &x0, &bj, opts).iterations;
    }
    let before_wall = t.elapsed().as_secs_f64() / REPS as f64;
    let before_modeled = dev.modeled_seconds() / REPS as f64;

    // After: the fused ≤5-launch loop with a warmed workspace.
    let dev = k40();
    let bj = BlockJacobi::new(&dev, &h);
    let mut ws = PcgWorkspace::new();
    let _ = pcg_fused(&dev, &h, &b, &x0, &bj, opts, &mut ws);
    dev.reset_trace();
    let t = Instant::now();
    let mut iters_after = 0;
    for _ in 0..REPS {
        iters_after = pcg_fused(&dev, &h, &b, &x0, &bj, opts, &mut ws).iterations;
    }
    let after_wall = t.elapsed().as_secs_f64() / REPS as f64;
    let after_modeled = dev.modeled_seconds() / REPS as f64;

    (
        Pair {
            before_modeled,
            before_wall,
            after_modeled,
            after_wall,
        },
        iters_before,
        iters_after,
    )
}

/// Runs one pipeline (legacy or fused), returning per-step equation-solving
/// modeled seconds, per-step total modeled seconds, and per-step wall
/// seconds over `steps` measured steps after one warm-up step.
fn run_pipeline(
    blocks: usize,
    steps: usize,
    seed: u64,
    legacy: bool,
) -> (f64, f64, f64, usize, usize) {
    let (sys, params) = case1_system(blocks, seed);
    let mut pipe = GpuPipeline::new(sys, params, k40()).with_legacy_solver(legacy);
    pipe.step(); // warm: first solve always builds the format
    let solve0 = pipe.times.solving;
    let total0 = pipe.times.total();
    let t = Instant::now();
    pipe.run(steps);
    let wall = t.elapsed().as_secs_f64() / steps.max(1) as f64;
    let solving = (pipe.times.solving - solve0) / steps.max(1) as f64;
    let total = (pipe.times.total() - total0) / steps.max(1) as f64;
    let (refills, rebuilds) = pipe.format_cache_stats();
    (solving, total, wall, refills, rebuilds)
}

fn main() {
    let a = Args::parse(400, 0, 4);
    eprintln!(
        "bench1: blocks={} steps={} seed={} (K40 model)",
        a.blocks, a.steps, a.seed
    );

    let spmv = bench_spmv(a.blocks, a.seed);
    eprintln!("  spmv done");
    let (pcg_pair, it_b, it_a) = bench_pcg(a.blocks, a.seed);
    eprintln!("  pcg done ({it_b} vs {it_a} iterations)");

    let (solve_b, total_b, wall_b, _, _) = run_pipeline(a.blocks, a.steps, a.seed, true);
    eprintln!("  legacy pipeline done");
    let (solve_a, total_a, wall_a, refills, rebuilds) =
        run_pipeline(a.blocks, a.steps, a.seed, false);
    eprintln!("  fused pipeline done ({refills} refills, {rebuilds} rebuilds)");

    let step_pair = Pair {
        before_modeled: solve_b,
        before_wall: wall_b,
        after_modeled: solve_a,
        after_wall: wall_a,
    };

    let json = format!(
        "{{\n  \"bench\": \"fused_pcg_alloc_free_spmv\",\n  \"device\": \"tesla_k40_model\",\n  \
         \"config\": {{ \"blocks\": {}, \"steps\": {}, \"seed\": {} }},\n  \
         \"spmv\": {},\n  \
         \"pcg_solve\": {},\n  \
         \"pcg_iterations\": {{ \"before\": {}, \"after\": {} }},\n  \
         \"pipeline_step_units\": \"modeled_s = equation-solving modeled seconds per step; wall_s = full-step host wall seconds per step\",\n  \
         \"pipeline_step\": {},\n  \
         \"pipeline_step_total_modeled_s\": {{ \"before\": {:.6e}, \"after\": {:.6e} }},\n  \
         \"format_cache\": {{ \"refills\": {}, \"rebuilds\": {} }}\n}}\n",
        a.blocks,
        a.steps,
        a.seed,
        spmv.json("  "),
        pcg_pair.json("  "),
        it_b,
        it_a,
        step_pair.json("  "),
        total_b,
        total_a,
        refills,
        rebuilds,
    );

    print!("{json}");
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    eprintln!("wrote BENCH_1.json");
}
