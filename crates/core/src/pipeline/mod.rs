//! The two end-to-end drivers and their per-module accounting.
//!
//! [`CpuPipeline`] is Fig 1: the serial reference implementation, timed
//! under the Xeon E5620 model. [`GpuPipeline`] is Fig 2: every module runs
//! as simulated kernels on a Tesla profile. Both expose the per-module
//! times Tables II–III report: contact detection, diagonal building,
//! non-diagonal building, equation solving, interpenetration checking,
//! data updating.

pub mod batch;
pub mod cpu;
pub(crate) mod driver;
pub mod fleet;
pub mod gpu;
pub mod health;
pub mod ingest;
pub(crate) mod solver_cache;
pub mod wal;

pub use batch::{SceneBatch, SceneState};
pub use cpu::CpuPipeline;
pub use driver::StepOutcome;
pub use fleet::{
    system_fingerprint, FleetError, FleetOutcome, FleetRouter, FleetStats, FleetSubmission,
    FleetTickReport, RebalanceConfig, RouterConfig, SceneId,
};
#[cfg(feature = "fault-inject")]
pub use fleet::{MigrationPhase, MigrationVictim};
pub use gpu::{GpuPipeline, PrecondKind};
pub use health::{HealthPolicy, SceneHealth, SlotState, StepError};
pub use ingest::{
    BatchScheduler, CheckpointError, FleetCheckpoint, FleetScene, IngestConfig, IngestError,
    IngestStats, IntakeQueue, Priority, QueuedScene, SceneCheckpoint, SceneRecord, SceneStatus,
    SceneSubmission, TickReport, Ticket,
};
#[cfg(feature = "fault-inject")]
pub use wal::WalIoOp;
pub use wal::{
    PendingMigration, RecordSpan, WalConfig, WalError, WalOutcome, WalRecordKind, WalReplay,
    WalStats, WalWriter,
};

use serde::{Deserialize, Serialize};

/// Accumulated modeled seconds per pipeline module (the rows of
/// Tables II–III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleTimes {
    /// Broad + narrow phase, transfer, initialization.
    pub contact_detection: f64,
    /// Per-block diagonal terms.
    pub diag_building: f64,
    /// Contact-spring terms + global assembly.
    pub nondiag_building: f64,
    /// Preconditioner construction/application + PCG.
    pub solving: f64,
    /// Gap evaluation + open–close updates.
    pub interpenetration: f64,
    /// Geometry/velocity/stress commit.
    pub updating: f64,
}

impl ModuleTimes {
    /// Total across modules.
    pub fn total(&self) -> f64 {
        self.contact_detection
            + self.diag_building
            + self.nondiag_building
            + self.solving
            + self.interpenetration
            + self.updating
    }

    /// Per-module speed-up of `self` (baseline) over `other` (accelerated):
    /// the Tables II–III columns.
    pub fn speedup_over(&self, other: &ModuleTimes) -> ModuleTimes {
        let r = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
        ModuleTimes {
            contact_detection: r(self.contact_detection, other.contact_detection),
            diag_building: r(self.diag_building, other.diag_building),
            nondiag_building: r(self.nondiag_building, other.nondiag_building),
            solving: r(self.solving, other.solving),
            interpenetration: r(self.interpenetration, other.interpenetration),
            updating: r(self.updating, other.updating),
        }
    }

    /// Modeled seconds accumulated since an earlier snapshot — the
    /// per-step phase breakdown `StepReport` carries.
    pub fn delta_since(&self, earlier: &ModuleTimes) -> ModuleTimes {
        ModuleTimes {
            contact_detection: self.contact_detection - earlier.contact_detection,
            diag_building: self.diag_building - earlier.diag_building,
            nondiag_building: self.nondiag_building - earlier.nondiag_building,
            solving: self.solving - earlier.solving,
            interpenetration: self.interpenetration - earlier.interpenetration,
            updating: self.updating - earlier.updating,
        }
    }

    /// Named rows in table order.
    pub fn rows(&self) -> [(&'static str, f64); 6] {
        [
            ("Contact Detection", self.contact_detection),
            ("Diagonal Matrix Building", self.diag_building),
            ("Non-diagonal Matrix Building", self.nondiag_building),
            ("Equation Solving", self.solving),
            ("Interpenetration Checking", self.interpenetration),
            ("Data Updating", self.updating),
        ]
    }
}

/// Outcome of one time step.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StepReport {
    /// Open–close iterations executed (final attempt).
    pub oc_iterations: usize,
    /// Total PCG iterations across the step's solves.
    pub pcg_iterations: usize,
    /// PCG iterations of the final solve (Fig 5 samples this).
    pub last_solve_iterations: usize,
    /// Contacts in the step.
    pub n_contacts: usize,
    /// Non-diagonal (upper) sub-matrices in the final system.
    pub n_upper: usize,
    /// Physical time-step size used.
    pub dt: f64,
    /// Times the step was redone with a reduced Δt.
    pub retries: usize,
    /// Largest vertex displacement of the accepted solution.
    pub max_displacement: f64,
    /// Whether the open–close iteration converged.
    pub oc_converged: bool,
    /// Final contact-category histogram (index 0 = abandoned, 1–5 = the
    /// paper's C1…C5 classification; populated by the GPU pipeline).
    pub categories: [usize; 6],
    /// Largest first-order penetration among *open* contacts after the
    /// accepted solve — the checker's "no interpenetrations" criterion
    /// (should sit at the numerical-noise scale once loop 3 converges).
    pub max_open_penetration: f64,
    /// Deepest preconditioner fallback rung any solve of this step needed
    /// (0 = the configured preconditioner; each +1 is one rung down the
    /// AMG2 → ILU0 → SSOR-AI → Block-Jacobi → Jacobi ladder).
    pub fallback_level: usize,
    /// The ladder rung that depth lands on — the preconditioner the
    /// deepest-degraded solve of this step actually used (its name via
    /// [`PrecondKind::name`]). Defaults to Block-Jacobi, matching the
    /// default configuration, for steps that never solve.
    pub fallback_rung: PrecondKind,
    /// Modeled seconds this step added to each pipeline module — the
    /// per-phase breakdown (broad/narrow under `contact_detection`,
    /// assembly under `diag_building`/`nondiag_building`, solve, check,
    /// update), so benches read phase costs directly instead of diffing
    /// kernel traces.
    pub phase_times: ModuleTimes,
    /// Assembly-reuse counters this step added (all zero under
    /// `AssemblyReuse::Recompute`).
    pub assembly: crate::assembly_cache::AssemblyStats,
    /// Solves of this step that warm-started from a previous open–close
    /// iterate (only under `SolverWarmStart::PrevIterate`).
    pub warm_starts: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_speedups() {
        let cpu = ModuleTimes {
            contact_detection: 100.0,
            diag_building: 10.0,
            nondiag_building: 20.0,
            solving: 400.0,
            interpenetration: 30.0,
            updating: 5.0,
        };
        let gpu = ModuleTimes {
            contact_detection: 1.0,
            diag_building: 0.1,
            nondiag_building: 5.0,
            solving: 8.0,
            interpenetration: 1.0,
            updating: 0.1,
        };
        assert!((cpu.total() - 565.0).abs() < 1e-12);
        let s = cpu.speedup_over(&gpu);
        assert!((s.contact_detection - 100.0).abs() < 1e-12);
        assert!((s.solving - 50.0).abs() < 1e-12);
        assert_eq!(cpu.rows()[3].0, "Equation Solving");
    }

    #[test]
    fn zero_baseline_guarded() {
        let a = ModuleTimes::default();
        let s = a.speedup_over(&a);
        assert_eq!(s.total(), 0.0);
    }
}
