//! Stiffness and force terms of the DDA energy minimisation.
//!
//! The global system `K d = F` collects, per time step and open–close
//! iteration:
//!
//! * **per-block (diagonal) terms** ([`perblock`]): elastic strain energy,
//!   inertia `(2/Δt²)·M` (plus its velocity force `(2/Δt)·M·v`), body and
//!   point loads, initial stress, and fixity penalty springs — the paper's
//!   *global stiffness matrix diagonal building module*;
//! * **contact-spring terms** ([`springs`]): normal and shear penalty
//!   springs and friction forces for every non-open contact, contributing
//!   `k_ii`, `k_ij`, `k_ji`, `k_jj` sub-matrices — the inputs of the
//!   *non-diagonal building module* and its sort/scan assembly (Fig 4).

pub mod perblock;
pub mod springs;

pub use perblock::{build_diag_gpu, build_diag_serial, BlockSoa};
pub use springs::{contact_spring_terms, SpringTerms};
