//! Fig 10 reproduction: SpMV and TSS times on the case-1 matrix.
//!
//! The paper's matrix snapshot has 4361 diagonal and 18731 non-diagonal
//! sub-matrices; SpMV-HSBCSR beats SpMV-cuSPARSE by 2.8×, and TSS costs
//! about 11× one cuSPARSE SpMV.
//!
//! Usage: `fig10 [--blocks N] [--seed N] [--full]`

use dda_harness::experiments::spmv_study;
use dda_harness::table::{fmt_time, Table};
use dda_harness::Args;

fn main() {
    let mut a = Args::parse(1200, 0, 0);
    if a.full {
        a.blocks = 4361;
    }
    println!(
        "Fig 10 — SpMV and TSS on the case-1 matrix ({} target blocks)\n",
        a.blocks
    );
    let s = spmv_study(a.blocks, a.seed);
    println!(
        "matrix: {} diagonal, {} non-diagonal sub-matrices (paper: 4361 / 18731)\n",
        s.n_diag, s.n_nondiag
    );

    let mut t = Table::new(vec!["Kernel", "Modeled time (K40)", "vs HSBCSR"]);
    let rel = |x: f64| format!("{:.2}×", x / s.t_hsbcsr);
    t.row(vec![
        "SpMV-HSBCSR (ours)".into(),
        fmt_time(s.t_hsbcsr),
        rel(s.t_hsbcsr),
    ]);
    t.row(vec![
        "SpMV-cuSPARSE (CSR vector)".into(),
        fmt_time(s.t_csr_vector),
        rel(s.t_csr_vector),
    ]);
    t.row(vec![
        "SpMV CSR scalar".into(),
        fmt_time(s.t_csr_scalar),
        rel(s.t_csr_scalar),
    ]);
    t.row(vec![
        "SpMV BCSR (full matrix)".into(),
        fmt_time(s.t_bcsr),
        rel(s.t_bcsr),
    ]);
    t.row(vec![
        "SpMV ELLPACK-R (full matrix)".into(),
        fmt_time(s.t_ell),
        rel(s.t_ell),
    ]);
    t.row(vec![
        "TSS (ILU triangular solves)".into(),
        fmt_time(s.t_tss),
        rel(s.t_tss),
    ]);
    t.print();

    println!("\nPaper's claims at this matrix:");
    println!(
        "  HSBCSR vs cuSPARSE speed-up: measured {:.2}× (paper: 2.8×)",
        s.t_csr_vector / s.t_hsbcsr
    );
    println!(
        "  TSS vs cuSPARSE SpMV:        measured {:.2}× (paper: ~11×)",
        s.t_tss / s.t_csr_vector
    );
}
