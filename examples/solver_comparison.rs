//! Stand-alone solver workbench: compare SpMV formats and preconditioners
//! on a DDA-shaped matrix without running the pipeline.
//!
//! Useful as a template for using `dda-sparse` / `dda-solver` on your own
//! symmetric 6×6-block systems.
//!
//! Run with: `cargo run --release --example solver_comparison -- [block_rows]`

use dda_repro::simt::{Device, DeviceProfile};
use dda_repro::solver::precond::{BlockJacobi, Identity, Ilu0, Jacobi, SsorAi};
use dda_repro::solver::traits::HsbcsrMat;
use dda_repro::solver::{pcg, PcgOptions};
use dda_repro::sparse::spmv::{spmv_csr_vector, spmv_hsbcsr, Stage1Smem};
use dda_repro::sparse::{Csr, Hsbcsr, SymBlockMatrix};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);

    // A reproducible DDA-shaped SPD matrix (block-sparse, symmetric,
    // diagonally boosted like the inertia term does).
    let m = SymBlockMatrix::random_spd(n, 4.0, 42);
    let h = Hsbcsr::from_sym(&m);
    let csr = Csr::from_sym_full(&m);
    println!(
        "matrix: {} block rows, {} upper sub-matrices, dim {}",
        m.n_blocks(),
        m.n_upper(),
        m.dim()
    );

    // --- SpMV formats --------------------------------------------------------
    let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.37).sin()).collect();
    let d1 = Device::new(DeviceProfile::tesla_k40());
    let _ = spmv_hsbcsr(&d1, &h, &x, Stage1Smem::Proposed);
    let d2 = Device::new(DeviceProfile::tesla_k40());
    let _ = spmv_csr_vector(&d2, &csr, &x);
    println!("\nSpMV (modeled K40):");
    println!(
        "  HSBCSR (half-stored):  {:>10.2} µs",
        d1.modeled_seconds() * 1e6
    );
    println!(
        "  CSR vector (full):     {:>10.2} µs",
        d2.modeled_seconds() * 1e6
    );

    // --- Preconditioned solves -----------------------------------------------
    let b: Vec<f64> = (0..m.dim()).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
    let x0 = vec![0.0; m.dim()];
    let opts = PcgOptions {
        tol: 1e-10,
        max_iters: 1000,
    };

    println!("\nPCG (tol 1e-10):");
    println!(
        "  {:<14} {:>10} {:>16}",
        "precond", "iterations", "modeled time"
    );
    let run = |name: &str, f: &dyn Fn(&Device) -> dda_repro::solver::SolveResult| {
        let dev = Device::new(DeviceProfile::tesla_k40());
        let res = f(&dev);
        assert!(res.converged, "{name} did not converge");
        println!(
            "  {:<14} {:>10} {:>13.2} ms",
            name,
            res.iterations,
            dev.modeled_seconds() * 1e3
        );
    };
    run("none", &|dev| {
        pcg(dev, &HsbcsrMat { m: &h }, &b, &x0, &Identity, opts)
    });
    run("Jacobi (scalar)", &|dev| {
        let p = Jacobi::new(dev, &h);
        pcg(dev, &HsbcsrMat { m: &h }, &b, &x0, &p, opts)
    });
    run("Block-Jacobi", &|dev| {
        let p = BlockJacobi::new(dev, &h);
        pcg(dev, &HsbcsrMat { m: &h }, &b, &x0, &p, opts)
    });
    run("SSOR-AI", &|dev| {
        let p = SsorAi::new(dev, &h, 1.0);
        pcg(dev, &HsbcsrMat { m: &h }, &b, &x0, &p, opts)
    });
    run("ILU(0)", &|dev| {
        let p = Ilu0::new(dev, &csr);
        pcg(dev, &HsbcsrMat { m: &h }, &b, &x0, &p, opts)
    });

    println!("\n(the Table-I trade-off: fewer iterations ≠ less time)");
}
