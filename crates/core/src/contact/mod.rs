//! Contact detection (§III-B): broad phase, narrow phase with VE/VV1/VV2
//! classification, contact transfer, and contact initialization.
//!
//! The GPU pipeline (Fig 2) restructures this module around *data
//! classification*: the narrow phase's distance judgment splits candidates
//! into vertex–edge (VE) and vertex–vertex (VV); the angle judgment
//! abandons non-facing candidates and splits VV into VV1 (parallel edges)
//! and VV2; each class then runs uniform kernels, removing the branch
//! divergence a monolithic kernel would pay (measured by experiment D1).

pub mod broad;
pub mod grid;
pub mod init;
pub mod narrow;
pub mod order;
pub mod soa;
pub mod transfer;
pub mod types;

pub use broad::{broad_phase_gpu, broad_phase_gpu_ws, broad_phase_serial, broad_phase_serial_ws};
pub use grid::{
    cached_broad_phase_gpu, cached_broad_phase_serial, detect_broad_gpu, detect_broad_serial,
    grid_broad_phase_gpu, grid_broad_phase_serial, BroadPhaseCache, BroadPhaseMode,
    ContactWorkspace, GridSpec,
};
pub use init::{init_contacts_classified, init_contacts_monolithic};
pub use narrow::{narrow_phase_gpu, narrow_phase_gpu_scheduled, narrow_phase_serial};
pub use order::{ContactOrder, ContactOrderCache};
pub use soa::GeomSoa;
pub use transfer::{
    transfer_contacts_gpu, transfer_contacts_gpu_scheduled, transfer_contacts_serial,
};
pub use types::{Contact, ContactKind, ContactState};
