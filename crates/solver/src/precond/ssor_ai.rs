//! SSOR approximate-inverse preconditioner (Helfenstein & Koko, 2012).
//!
//! The classical SSOR preconditioner
//! `M = (D/ω + L) (ω/(2−ω))⁻¹? …` requires two triangular *solves* per
//! application — exactly what GPUs are bad at. The approximate-inverse form
//! the paper adopts ([36]) replaces each triangular inverse by its
//! first-order Neumann expansion:
//!
//! ```text
//! M⁻¹ ≈ ω(2−ω) · (I − ω D⁻¹Lᵀ) · (I − ω D⁻¹L) · D⁻¹
//! ```
//!
//! so one application is: a block-diagonal product, a lower-triangular
//! SpMV, another block-diagonal product, an upper-triangular SpMV, and a
//! scaling — all matrix-vector shaped, all parallel. Construction reuses
//! the Block-Jacobi inverses, hence the paper's tiny 0.208 ms construction
//! time.
//!
//! The triangular SpMVs traverse the HSBCSR listings: `Lᵀ` (strict upper)
//! via the `row-up-i` segments and `L` (strict lower) via the
//! `row-low-i`/`row-low-p` mapping — one thread per block row, no write
//! conflicts.

use super::block_jacobi::{block_diag_apply, BlockJacobi};
use super::{PrecondError, Preconditioner};
use dda_simt::Device;
use dda_sparse::Hsbcsr;

/// The SSOR-AI preconditioner.
pub struct SsorAi<'m> {
    m: &'m Hsbcsr,
    bj: BlockJacobi,
    omega: f64,
}

impl<'m> SsorAi<'m> {
    /// Builds the preconditioner. `omega ∈ (0, 2)`; the paper's reference
    /// uses values near 1.
    ///
    /// # Panics
    /// Panics on a bad `omega` or a singular diagonal sub-matrix (the
    /// construction reuses Block-Jacobi's inverses). Use
    /// [`SsorAi::try_new`] for untrusted scene input.
    pub fn new(dev: &Device, m: &'m Hsbcsr, omega: f64) -> SsorAi<'m> {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SSOR relaxation must be in (0,2)"
        );
        SsorAi {
            m,
            bj: BlockJacobi::new(dev, m),
            omega,
        }
    }

    /// Fallible construction: reports a singular diagonal sub-matrix as a
    /// structured [`PrecondError`] (a bad `omega` still panics — that is a
    /// programming error, not a property of the scene).
    pub fn try_new(dev: &Device, m: &'m Hsbcsr, omega: f64) -> Result<SsorAi<'m>, PrecondError> {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SSOR relaxation must be in (0,2)"
        );
        Ok(SsorAi {
            m,
            bj: BlockJacobi::try_new(dev, m)?,
            omega,
        })
    }

    /// `y_c = Σ_{k : col(k) = c} B_kᵀ x_{row(k)}` — the strict-lower product
    /// `L x`, one thread per block row via the lower listing.
    fn mul_lower(&self, dev: &Device, x: &[f64]) -> Vec<f64> {
        let h = self.m;
        let mut y = vec![0.0f64; h.n * 6];
        let b_nd = dev.bind_ro(&h.nd_data_up);
        let b_rc = dev.bind_ro(&h.rc);
        let b_rli = dev.bind_ro(&h.row_low_i);
        let b_rlp = dev.bind_ro(&h.row_low_p);
        let b_x = dev.bind_ro(x);
        let b_y = dev.bind(&mut y);
        let pad = h.pad_nd;
        dev.launch("precond.ssor.mul_lower", h.n, |lane| {
            let i = lane.gid;
            let lo = if i == 0 { 0 } else { lane.ld(&b_rli, i - 1) } as usize;
            let hi = lane.ld(&b_rli, i) as usize;
            let mut acc = [0.0f64; 6];
            for l in lo..hi {
                let k = lane.ld(&b_rlp, l) as usize;
                let rc = lane.ld_tex(&b_rc, k);
                let row = (rc >> 32) as usize;
                for c in 0..6 {
                    let xr = lane.ld_tex(&b_x, row * 6 + c);
                    for r in 0..6 {
                        let a = lane.ld_tex(&b_nd, Hsbcsr::sliced_index(pad, k, c, r));
                        lane.flop(2);
                        acc[r] += a * xr;
                    }
                }
            }
            for r in 0..6 {
                lane.st(&b_y, i * 6 + r, acc[r]);
            }
        });
        drop(b_y);
        y
    }

    /// `y_r = Σ_{k : row(k) = r} B_k x_{col(k)}` — the strict-upper product
    /// `Lᵀ x`, one thread per block row via the upper listing.
    fn mul_upper(&self, dev: &Device, x: &[f64]) -> Vec<f64> {
        let h = self.m;
        let mut y = vec![0.0f64; h.n * 6];
        let b_nd = dev.bind_ro(&h.nd_data_up);
        let b_rc = dev.bind_ro(&h.rc);
        let b_rui = dev.bind_ro(&h.row_up_i);
        let b_x = dev.bind_ro(x);
        let b_y = dev.bind(&mut y);
        let pad = h.pad_nd;
        dev.launch("precond.ssor.mul_upper", h.n, |lane| {
            let i = lane.gid;
            let lo = if i == 0 { 0 } else { lane.ld(&b_rui, i - 1) } as usize;
            let hi = lane.ld(&b_rui, i) as usize;
            let mut acc = [0.0f64; 6];
            for k in lo..hi {
                let rc = lane.ld(&b_rc, k);
                let col = (rc & 0xFFFF_FFFF) as usize;
                for c in 0..6 {
                    let xc = lane.ld_tex(&b_x, col * 6 + c);
                    for r in 0..6 {
                        let a = lane.ld(&b_nd, Hsbcsr::sliced_index(pad, k, r, c));
                        lane.flop(2);
                        acc[r] += a * xc;
                    }
                }
            }
            for r in 0..6 {
                lane.st(&b_y, i * 6 + r, acc[r]);
            }
        });
        drop(b_y);
        y
    }

    /// `out = a − ω·Dinv·b` fused kernel.
    fn sub_scaled_dinv(
        &self,
        dev: &Device,
        name: &'static str,
        a: &[f64],
        b: &[f64],
        scale: f64,
    ) -> Vec<f64> {
        let tmp = block_diag_apply(dev, name, self.bj.dinv(), b);
        let n = a.len();
        let mut out = vec![0.0f64; n];
        let b_a = dev.bind_ro(a);
        let b_t = dev.bind_ro(&tmp);
        let b_o = dev.bind(&mut out);
        let omega = self.omega;
        dev.launch("precond.ssor.fuse", n, |lane| {
            let i = lane.gid;
            let av = lane.ld(&b_a, i);
            let tv = lane.ld(&b_t, i);
            lane.flop(3);
            lane.st(&b_o, i, (av - omega * tv) * scale);
        });
        drop(b_o);
        out
    }
}

impl Preconditioner for SsorAi<'_> {
    fn name(&self) -> &'static str {
        "SSOR"
    }

    /// `z = ω(2−ω) (I − ωD⁻¹Lᵀ)(I − ωD⁻¹L) D⁻¹ r`.
    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64> {
        let t = block_diag_apply(dev, "precond.ssor.dinv", self.bj.dinv(), r);
        let lt = self.mul_lower(dev, &t);
        let u = self.sub_scaled_dinv(dev, "precond.ssor.dinv2", &t, &lt, 1.0);
        let ltu = self.mul_upper(dev, &u);
        let c = self.omega * (2.0 - self.omega);
        self.sub_scaled_dinv(dev, "precond.ssor.dinv3", &u, &ltu, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::DeviceProfile;
    use dda_sparse::SymBlockMatrix;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    /// Dense reference of the approximate inverse.
    fn dense_reference(m: &SymBlockMatrix, omega: f64, r: &[f64]) -> Vec<f64> {
        let dim = m.dim();
        let dense = m.to_dense();
        // Extract block-diagonal inverse, strict lower, strict upper.
        let mut dinv = vec![vec![0.0; dim]; dim];
        for i in 0..m.n_blocks() {
            let inv = m.diag[i].inverse().unwrap();
            for a in 0..6 {
                for b in 0..6 {
                    dinv[i * 6 + a][i * 6 + b] = inv.0[a][b];
                }
            }
        }
        let matvec = |mat: &Vec<Vec<f64>>, x: &[f64]| -> Vec<f64> {
            (0..dim)
                .map(|i| (0..dim).map(|j| mat[i][j] * x[j]).sum())
                .collect()
        };
        let lower_mul = |x: &[f64]| -> Vec<f64> {
            (0..dim)
                .map(|i| {
                    (0..dim)
                        .filter(|&j| j / 6 < i / 6)
                        .map(|j| dense[i][j] * x[j])
                        .sum()
                })
                .collect()
        };
        let upper_mul = |x: &[f64]| -> Vec<f64> {
            (0..dim)
                .map(|i| {
                    (0..dim)
                        .filter(|&j| j / 6 > i / 6)
                        .map(|j| dense[i][j] * x[j])
                        .sum()
                })
                .collect()
        };
        let t = matvec(&dinv, r);
        let lt = lower_mul(&t);
        let dlt = matvec(&dinv, &lt);
        let u: Vec<f64> = (0..dim).map(|i| t[i] - omega * dlt[i]).collect();
        let ltu = upper_mul(&u);
        let dltu = matvec(&dinv, &ltu);
        let c = omega * (2.0 - omega);
        (0..dim).map(|i| c * (u[i] - omega * dltu[i])).collect()
    }

    #[test]
    fn matches_dense_reference() {
        let m = SymBlockMatrix::random_spd(12, 3.0, 31);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let ssor = SsorAi::new(&d, &h, 1.2);
        let r: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.17).sin()).collect();
        let z = ssor.apply(&d, &r);
        let z_ref = dense_reference(&m, 1.2, &r);
        for i in 0..m.dim() {
            assert!(
                (z[i] - z_ref[i]).abs() < 1e-9,
                "i={i}: {} vs {}",
                z[i],
                z_ref[i]
            );
        }
    }

    #[test]
    fn diagonal_matrix_reduces_to_scaled_jacobi() {
        // With L = 0: z = ω(2−ω) D⁻¹ r.
        let m = SymBlockMatrix::random_spd(6, 0.0, 8);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let omega = 0.9;
        let ssor = SsorAi::new(&d, &h, omega);
        let r = vec![1.0; m.dim()];
        let z = ssor.apply(&d, &r);
        let bj = BlockJacobi::new(&d, &h);
        let zj = bj.apply(&d, &r);
        let c = omega * (2.0 - omega);
        for i in 0..m.dim() {
            assert!((z[i] - c * zj[i]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "relaxation")]
    fn rejects_bad_omega() {
        let m = SymBlockMatrix::random_spd(3, 1.0, 2);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let _ = SsorAi::new(&d, &h, 2.5);
    }

    #[test]
    fn preconditioner_is_symmetric() {
        // PCG requires a symmetric M⁻¹: check ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩.
        let m = SymBlockMatrix::random_spd(10, 3.0, 5);
        let h = Hsbcsr::from_sym(&m);
        let d = dev();
        let ssor = SsorAi::new(&d, &h, 1.0);
        let u: Vec<f64> = (0..m.dim())
            .map(|i| ((i * 13 + 1) % 7) as f64 - 3.0)
            .collect();
        let v: Vec<f64> = (0..m.dim())
            .map(|i| ((i * 5 + 2) % 11) as f64 - 5.0)
            .collect();
        let mu = ssor.apply(&d, &u);
        let mv = ssor.apply(&d, &v);
        let a: f64 = mu.iter().zip(&v).map(|(x, y)| x * y).sum();
        let b: f64 = u.iter().zip(&mv).map(|(x, y)| x * y).sum();
        assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "{a} vs {b}");
    }
}
