//! The DDA block: geometry plus kinematic state and the displacement
//! function `T(x, y)`.
//!
//! First-order DDA approximates the displacement of any point of a block by
//! six generalised unknowns `d = (u0, v0, r0, εx, εy, γxy)` measured at the
//! block centroid `(x0, y0)`:
//!
//! ```text
//! u(x,y) = u0 − (y−y0)·r0 + (x−x0)·εx            + (y−y0)/2·γxy
//! v(x,y) = v0 + (x−x0)·r0            + (y−y0)·εy + (x−x0)/2·γxy
//! ```
//!
//! i.e. `(u, v)ᵀ = T(x, y) · d` with `T` a 2×6 matrix. Every stiffness term
//! in the method is assembled from rows of `T` evaluated at block vertices,
//! contact points, load points, or integrated over the block area.

use dda_geom::{Aabb, Polygon, Vec2};
use dda_sparse::Vec6;
use serde::{Deserialize, Serialize};

/// One polygonal block with its kinematic and stress state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    /// Current geometry (convex, CCW).
    pub poly: Polygon,
    /// Index into the system's block-material table.
    pub material: u32,
    /// Generalised velocity `ḋ` carried between steps (dynamics).
    pub velocity: Vec6,
    /// Current stress `(σx, σy, τxy)` (accumulated from strain increments).
    pub stress: [f64; 3],
    /// Fixed blocks are anchored by penalty springs at their vertices.
    pub fixed: bool,
    // Cached geometry (recomputed on update).
    centroid: Vec2,
    area: f64,
    moments: dda_geom::polygon::SecondMoments,
}

impl Block {
    /// Creates a block at rest.
    pub fn new(poly: Polygon, material: u32) -> Block {
        let centroid = poly.centroid();
        let area = poly.area();
        let moments = poly.second_moments();
        Block {
            poly,
            material,
            velocity: [0.0; 6],
            stress: [0.0; 3],
            fixed: false,
            centroid,
            area,
            moments,
        }
    }

    /// Marks the block as fixed (anchored by penalty springs).
    pub fn fixed(mut self) -> Block {
        self.fixed = true;
        self
    }

    /// Block centroid (cached).
    #[inline]
    pub fn centroid(&self) -> Vec2 {
        self.centroid
    }

    /// Block area (cached).
    #[inline]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Second moments about the centroid (cached).
    #[inline]
    pub fn moments(&self) -> dda_geom::polygon::SecondMoments {
        self.moments
    }

    /// Bounding box of the current geometry.
    pub fn aabb(&self) -> Aabb {
        self.poly.aabb()
    }

    /// Rows of the displacement function at point `p`: returns `(tx, ty)`
    /// with `u = tx·d`, `v = ty·d`.
    pub fn t_rows(&self, p: Vec2) -> (Vec6, Vec6) {
        t_rows_at(self.centroid, p)
    }

    /// Displacement of point `p` under generalised displacement `d`.
    pub fn displacement_at(&self, p: Vec2, d: &Vec6) -> Vec2 {
        let (tx, ty) = self.t_rows(p);
        Vec2::new(
            dda_sparse::block6::vec6_dot(&tx, d),
            dda_sparse::block6::vec6_dot(&ty, d),
        )
    }

    /// Applies a generalised displacement increment to the geometry.
    ///
    /// The rigid-rotation part uses the exact rotation (sin/cos) rather than
    /// the first-order `r0` mapping, the standard DDA post-correction that
    /// prevents blocks from inflating under sustained rotation.
    pub fn apply_displacement(&mut self, d: &Vec6) {
        let c = self.centroid;
        let (u0, v0, r0) = (d[0], d[1], d[2]);
        let (ex, ey, gxy) = (d[3], d[4], d[5]);
        let (s, co) = r0.sin_cos();
        let verts: Vec<Vec2> = self
            .poly
            .vertices()
            .iter()
            .map(|&p| {
                let rel = p - c;
                // Exact rigid rotation.
                let rot = Vec2::new(co * rel.x - s * rel.y, s * rel.x + co * rel.y);
                // First-order strain displacement.
                let strain = Vec2::new(
                    ex * rel.x + 0.5 * gxy * rel.y,
                    ey * rel.y + 0.5 * gxy * rel.x,
                );
                c + rot + strain + Vec2::new(u0, v0)
            })
            .collect();
        self.poly = Polygon::new(verts);
        self.refresh_geometry();
    }

    /// Recomputes the cached centroid/area/moments after a geometry change.
    pub fn refresh_geometry(&mut self) {
        self.centroid = self.poly.centroid();
        self.area = self.poly.area();
        self.moments = self.poly.second_moments();
    }

    /// Largest vertex displacement magnitude under `d` — the quantity the
    /// maximum-displacement loop (loop 2) bounds.
    pub fn max_vertex_displacement(&self, d: &Vec6) -> f64 {
        self.poly
            .vertices()
            .iter()
            .map(|&p| self.displacement_at(p, d).norm())
            .fold(0.0, f64::max)
    }
}

/// `T(x, y)` rows for a block with centroid `c` — free function so contact
/// kernels can evaluate it without holding a `Block`.
#[inline]
pub fn t_rows_at(c: Vec2, p: Vec2) -> (Vec6, Vec6) {
    let dx = p.x - c.x;
    let dy = p.y - c.y;
    (
        [1.0, 0.0, -dy, dx, 0.0, dy * 0.5],
        [0.0, 1.0, dx, 0.0, dy, dx * 0.5],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_block() -> Block {
        Block::new(Polygon::rect(0.0, 0.0, 2.0, 2.0), 0)
    }

    #[test]
    fn cached_geometry() {
        let b = unit_block();
        assert!((b.area() - 4.0).abs() < 1e-12);
        assert!(b.centroid().dist(Vec2::new(1.0, 1.0)) < 1e-12);
    }

    #[test]
    fn translation_moves_every_point_equally() {
        let b = unit_block();
        let d = [0.5, -0.25, 0.0, 0.0, 0.0, 0.0];
        for &p in b.poly.vertices() {
            let u = b.displacement_at(p, &d);
            assert!((u.x - 0.5).abs() < 1e-15);
            assert!((u.y + 0.25).abs() < 1e-15);
        }
    }

    #[test]
    fn rotation_displacement_is_first_order_tangential() {
        let b = unit_block();
        let d = [0.0, 0.0, 0.01, 0.0, 0.0, 0.0];
        // Point right of centroid moves up.
        let u = b.displacement_at(Vec2::new(2.0, 1.0), &d);
        assert!(u.x.abs() < 1e-15);
        assert!((u.y - 0.01).abs() < 1e-15);
        // Point above centroid moves left.
        let u2 = b.displacement_at(Vec2::new(1.0, 2.0), &d);
        assert!((u2.x + 0.01).abs() < 1e-15);
        assert!(u2.y.abs() < 1e-15);
    }

    #[test]
    fn strain_displacement() {
        let b = unit_block();
        // Pure εx = 0.1: point at dx=1 moves 0.1 in x.
        let d = [0.0, 0.0, 0.0, 0.1, 0.0, 0.0];
        let u = b.displacement_at(Vec2::new(2.0, 1.0), &d);
        assert!((u.x - 0.1).abs() < 1e-15 && u.y.abs() < 1e-15);
        // Pure shear γxy = 0.2: point at dy=1 gets u = 0.1.
        let d2 = [0.0, 0.0, 0.0, 0.0, 0.0, 0.2];
        let u2 = b.displacement_at(Vec2::new(1.0, 2.0), &d2);
        assert!((u2.x - 0.1).abs() < 1e-15);
    }

    #[test]
    fn centroid_displacement_is_translation_only() {
        let b = unit_block();
        let d = [0.3, 0.4, 0.2, 0.1, -0.1, 0.05];
        let u = b.displacement_at(b.centroid(), &d);
        assert!((u.x - 0.3).abs() < 1e-15 && (u.y - 0.4).abs() < 1e-15);
    }

    #[test]
    fn apply_translation_moves_polygon() {
        let mut b = unit_block();
        b.apply_displacement(&[1.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(b.centroid().dist(Vec2::new(2.0, 3.0)) < 1e-12);
        assert!((b.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exact_rotation_preserves_area() {
        let mut b = unit_block();
        // Many large rotation increments must not inflate the block.
        for _ in 0..100 {
            b.apply_displacement(&[0.0, 0.0, 0.1, 0.0, 0.0, 0.0]);
        }
        assert!(
            (b.area() - 4.0).abs() < 1e-9,
            "area drifted to {}",
            b.area()
        );
        assert!(b.centroid().dist(Vec2::new(1.0, 1.0)) < 1e-9);
    }

    #[test]
    fn strain_changes_area_consistently() {
        let mut b = unit_block();
        b.apply_displacement(&[0.0, 0.0, 0.0, 0.1, 0.1, 0.0]);
        // Area scales by (1+εx)(1+εy) = 1.21.
        assert!((b.area() - 4.0 * 1.21).abs() < 1e-9);
    }

    #[test]
    fn max_vertex_displacement_bounds() {
        let b = unit_block();
        let d = [0.0, 0.0, 0.01, 0.0, 0.0, 0.0];
        // Farthest vertex is √2 from centroid → |u| ≈ 0.01·√2.
        let m = b.max_vertex_displacement(&d);
        assert!((m - 0.01 * 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn t_rows_match_definition() {
        let (tx, ty) = t_rows_at(Vec2::new(1.0, 1.0), Vec2::new(3.0, 0.0));
        // dx = 2, dy = -1.
        assert_eq!(tx, [1.0, 0.0, 1.0, 2.0, 0.0, -0.5]);
        assert_eq!(ty, [0.0, 1.0, 2.0, 0.0, -1.0, 1.0]);
    }
}
