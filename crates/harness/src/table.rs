//! Plain-text table printing for the harness binaries.

/// A simple right-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders to a string. Widths are computed in characters (the cells
    /// contain `×` and `µ`), so alignment survives multi-byte glyphs.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let chars = |s: &String| s.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(chars).collect();
        for row in &self.rows {
            for (k, c) in row.iter().enumerate() {
                widths[k] = widths[k].max(chars(c));
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for k in 0..ncol {
                let pad = widths[k].saturating_sub(cells[k].chars().count());
                if k == 0 {
                    line.push_str(&cells[k]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str("  ");
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[k]);
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} µs", seconds * 1e6)
    }
}

/// Formats a speed-up factor.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["Module", "Time", "Speed-up"]);
        t.row(vec!["Contact Detection", "12.1 ms", "93.2×"]);
        t.row(vec!["Solve", "1.2 s", "46.4×"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Module"));
        assert!(lines[1].starts_with('-'));
        // Columns align: all lines have equal character count.
        assert_eq!(lines[0].chars().count(), lines[2].chars().count());
        assert_eq!(lines[2].chars().count(), lines[3].chars().count());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn time_units() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(0.0021), "2.10 ms");
        assert_eq!(fmt_time(2.1e-5), "21.00 µs");
        assert_eq!(fmt_speedup(48.72), "48.72×");
    }
}
