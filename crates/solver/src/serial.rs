//! Serial PCG for the Xeon E5620 baseline model.
//!
//! The paper's CPU baseline runs "the original CPU-based serial
//! implementation"; its equation-solving module is a serial preconditioned
//! CG. This module implements that solver over the half-stored symmetric
//! matrix with [`CpuCounter`] instrumentation, so the harness can convert
//! the same algorithmic work into modeled E5620 seconds.

use crate::pcg::{PcgOptions, SolveError, SolveResult};
use dda_simt::serial::CpuCounter;
use dda_sparse::{Block6, SymBlockMatrix};

/// Serial Block-Jacobi-preconditioned CG on the half-stored matrix.
///
/// Work accounting per iteration: one symmetric SpMV (4 flops per stored
/// off-diagonal scalar — used twice — plus 2 per diagonal scalar), the BJ
/// apply (72 flops per block), two dots and three axpys (2 flops per
/// element each), and the matching memory traffic.
pub fn pcg_serial_bj(
    m: &SymBlockMatrix,
    b: &[f64],
    x0: &[f64],
    opts: PcgOptions,
    counter: &mut CpuCounter,
) -> SolveResult {
    let dim = m.dim();
    assert_eq!(b.len(), dim);
    assert_eq!(x0.len(), dim);

    // Preconditioner construction: invert the diagonal blocks. A singular
    // block (malformed scene input: zero-mass block, degenerate geometry)
    // is reported as a structured breakdown instead of panicking.
    let mut dinv: Vec<Block6> = Vec::with_capacity(m.n_blocks());
    for (i, d) in m.diag.iter().enumerate() {
        match d.inverse() {
            Some(inv) => dinv.push(inv),
            None => {
                return SolveResult {
                    x: x0.to_vec(),
                    iterations: 0,
                    converged: false,
                    residual: f64::NAN,
                    error: Some(SolveError::SingularPreconditioner { block: i }),
                }
            }
        }
    }
    counter.flop(430 * m.n_blocks() as u64);
    counter.bytes(2 * 36 * 8 * m.n_blocks() as u64);

    let spmv_flops = (m.n_blocks() * 72 + m.n_upper() * 144) as u64;
    let spmv_bytes = ((m.n_blocks() + m.n_upper()) * 36 * 8 + dim * 24) as u64;
    let apply_bj = |r: &[f64], counter: &mut CpuCounter| -> Vec<f64> {
        let mut z = vec![0.0; dim];
        for (i, inv) in dinv.iter().enumerate() {
            let ri: &[f64; 6] = r[i * 6..i * 6 + 6].try_into().unwrap();
            let zi = inv.mul_vec(ri);
            z[i * 6..i * 6 + 6].copy_from_slice(&zi);
        }
        counter.flop(72 * dinv.len() as u64);
        counter.bytes((36 + 12) * 8 * dinv.len() as u64);
        z
    };
    let dot = |a: &[f64], b: &[f64], counter: &mut CpuCounter| -> f64 {
        counter.flop(2 * dim as u64);
        counter.bytes(16 * dim as u64);
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    };

    let b_norm_sq = dot(b, b, counter);
    if !b_norm_sq.is_finite() {
        return SolveResult {
            x: x0.to_vec(),
            iterations: 0,
            converged: false,
            residual: f64::NAN,
            error: Some(SolveError::NonFinite { iteration: 0 }),
        };
    }
    let threshold_sq = if b_norm_sq > 0.0 {
        opts.tol * opts.tol * b_norm_sq
    } else {
        opts.tol * opts.tol
    };

    let mut x = x0.to_vec();
    let ax = m.mul_vec(&x);
    counter.flop(spmv_flops);
    counter.bytes(spmv_bytes);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bv, av)| bv - av).collect();
    counter.flop(dim as u64);

    let mut r_norm_sq = dot(&r, &r, counter);
    if r_norm_sq <= threshold_sq {
        return SolveResult {
            x,
            iterations: 0,
            converged: true,
            residual: r_norm_sq.sqrt(),
            error: None,
        };
    }

    let mut z = apply_bj(&r, counter);
    let mut p = z.clone();
    let mut rz = dot(&r, &z, counter);
    let mut iterations = 0;
    let mut converged = false;
    let mut error = None;

    while iterations < opts.max_iters {
        iterations += 1;
        let q = m.mul_vec(&p);
        counter.flop(spmv_flops);
        counter.bytes(spmv_bytes);
        let pq = dot(&p, &q, counter);
        if pq <= 0.0 || !pq.is_finite() {
            error = Some(if pq.is_finite() {
                SolveError::IndefiniteOperator {
                    pq,
                    iteration: iterations,
                }
            } else {
                SolveError::NonFinite {
                    iteration: iterations,
                }
            });
            break;
        }
        let alpha = rz / pq;
        for i in 0..dim {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        counter.flop(4 * dim as u64);
        counter.bytes(32 * dim as u64);
        r_norm_sq = dot(&r, &r, counter);
        if r_norm_sq <= threshold_sq {
            converged = true;
            break;
        }
        z = apply_bj(&r, counter);
        let rz_new = dot(&r, &z, counter);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..dim {
            p[i] = z[i] + beta * p[i];
        }
        counter.flop(2 * dim as u64);
        counter.bytes(24 * dim as u64);
    }

    SolveResult {
        x,
        iterations,
        converged,
        residual: r_norm_sq.max(0.0).sqrt(),
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::profile::DeviceProfile;
    use dda_simt::TimingModel;

    #[test]
    fn solves_spd_system() {
        let m = SymBlockMatrix::random_spd(25, 3.0, 42);
        let b: Vec<f64> = (0..m.dim()).map(|i| (i % 11) as f64 - 5.0).collect();
        let mut c = CpuCounter::new();
        let res = pcg_serial_bj(&m, &b, &vec![0.0; m.dim()], PcgOptions::default(), &mut c);
        assert!(res.converged);
        let ax = m.mul_vec(&res.x);
        let err: f64 = ax
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5);
        assert!(c.flops > 0 && c.bytes > 0);
    }

    #[test]
    fn modeled_time_scales_with_iterations() {
        let m = SymBlockMatrix::random_spd(25, 3.0, 42);
        let b: Vec<f64> = (0..m.dim()).map(|i| (i % 11) as f64 - 5.0).collect();
        let model = TimingModel::default();
        let cpu = DeviceProfile::xeon_e5620_serial();

        let mut c_loose = CpuCounter::new();
        let _ = pcg_serial_bj(
            &m,
            &b,
            &vec![0.0; m.dim()],
            PcgOptions {
                tol: 1e-2,
                max_iters: 200,
            },
            &mut c_loose,
        );
        let mut c_tight = CpuCounter::new();
        let _ = pcg_serial_bj(
            &m,
            &b,
            &vec![0.0; m.dim()],
            PcgOptions {
                tol: 1e-12,
                max_iters: 200,
            },
            &mut c_tight,
        );
        assert!(c_tight.seconds(&model, &cpu) > c_loose.seconds(&model, &cpu));
    }

    #[test]
    fn agrees_with_device_pcg() {
        use crate::precond::BlockJacobi;
        use crate::traits::HsbcsrMat;
        use dda_simt::Device;
        use dda_sparse::Hsbcsr;

        let m = SymBlockMatrix::random_spd(20, 3.0, 11);
        let b: Vec<f64> = (0..m.dim()).map(|i| ((i * 3) % 7) as f64).collect();
        let mut c = CpuCounter::new();
        let serial = pcg_serial_bj(&m, &b, &vec![0.0; m.dim()], PcgOptions::default(), &mut c);

        let h = Hsbcsr::from_sym(&m);
        let dev = Device::new(DeviceProfile::tesla_k40());
        let bj = BlockJacobi::new(&dev, &h);
        let device = crate::pcg::pcg(
            &dev,
            &HsbcsrMat { m: &h },
            &b,
            &vec![0.0; m.dim()],
            &bj,
            PcgOptions::default(),
        );
        // Same algorithm, same arithmetic order up to reduction order:
        // iteration counts match and solutions agree to solver tolerance.
        assert_eq!(serial.iterations, device.iterations);
        for i in 0..m.dim() {
            assert!((serial.x[i] - device.x[i]).abs() < 1e-6);
        }
    }
}
