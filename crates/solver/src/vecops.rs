//! Instrumented device vector kernels for the Krylov iteration.
//!
//! PCG's non-SpMV work is a handful of BLAS-1 operations per iteration:
//! two dots, three axpy-like updates, and a norm check. Each is a real
//! device launch here so the solver's modeled time includes them (they are
//! memory-bound and small — on the GPU their launch overhead is visible,
//! which is part of why low-iteration-count preconditioners matter).

use dda_simt::Device;

/// `y ← a·x + y`.
pub fn axpy(dev: &Device, a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let bx = dev.bind_ro(x);
    let by = dev.bind(y);
    dev.launch("vec.axpy", n, |lane| {
        let i = lane.gid;
        let xv = lane.ld(&bx, i);
        let yv = lane.ld(&by, i);
        lane.flop(2);
        lane.st(&by, i, a * xv + yv);
    });
}

/// `y ← x + b·y` (the `p ← z + βp` update).
pub fn xpby(dev: &Device, x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let bx = dev.bind_ro(x);
    let by = dev.bind(y);
    dev.launch("vec.xpby", n, |lane| {
        let i = lane.gid;
        let xv = lane.ld(&bx, i);
        let yv = lane.ld(&by, i);
        lane.flop(2);
        lane.st(&by, i, xv + b * yv);
    });
}

/// Element-wise copy through the device.
pub fn copy(dev: &Device, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let bx = dev.bind_ro(x);
    let by = dev.bind(y);
    dev.launch("vec.copy", n, |lane| {
        let v = lane.ld(&bx, lane.gid);
        lane.st(&by, lane.gid, v);
    });
}

/// Dot product with a two-phase block reduction (tile partial sums, then a
/// final single-block pass).
pub fn dot(dev: &Device, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let tile = 256usize;
    let n_blocks = n.div_ceil(tile);
    let mut partials = vec![0.0f64; n_blocks];
    {
        let bx = dev.bind_ro(x);
        let by = dev.bind_ro(y);
        let bp = dev.bind(&mut partials);
        dev.launch_blocks("vec.dot.partial", n_blocks, 256, |blk| {
            let start = blk.block_id * tile;
            let count = tile.min(n - start);
            let xs = blk.gld_range(&bx, start, count);
            let ys = blk.gld_range(&by, start, count);
            blk.flop_masked(count, 2);
            blk.shfl_reduce_cost(count, 32);
            blk.sync();
            let s: f64 = xs.iter().zip(ys.iter()).map(|(a, b)| a * b).sum();
            blk.gst_one(&bp, blk.block_id, s);
        });
    }
    if n_blocks == 1 {
        return partials[0];
    }
    // Final reduction in one block (host reads the single result back, as a
    // real PCG does for its scalars).
    let mut result = vec![0.0f64; 1];
    {
        let bp = dev.bind_ro(&partials);
        let br = dev.bind(&mut result);
        dev.launch_blocks("vec.dot.final", 1, 256, |blk| {
            let mut acc = 0.0;
            let mut off = 0;
            while off < n_blocks {
                let count = 256.min(n_blocks - off);
                let vals = blk.gld_range(&bp, off, count);
                blk.flop_masked(count, 1);
                acc += vals.iter().sum::<f64>();
                off += count;
            }
            blk.shfl_reduce_cost(256, 32);
            blk.gst_one(&br, 0, acc);
        });
    }
    result[0]
}

/// Squared 2-norm.
pub fn norm_sq(dev: &Device, x: &[f64]) -> f64 {
    dot(dev, x, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn axpy_works() {
        let d = dev();
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut y = vec![1.0; 1000];
        axpy(&d, 2.0, &x, &mut y);
        assert_eq!(y[10], 21.0);
        assert_eq!(y[999], 1999.0);
    }

    #[test]
    fn xpby_works() {
        let d = dev();
        let x = vec![5.0; 100];
        let mut y = vec![2.0; 100];
        xpby(&d, &x, 3.0, &mut y);
        assert!(y.iter().all(|&v| (v - 11.0).abs() < 1e-15));
    }

    #[test]
    fn copy_works() {
        let d = dev();
        let x: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let mut y = vec![0.0; 500];
        copy(&d, &x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn dot_small_and_large() {
        let d = dev();
        assert_eq!(dot(&d, &[], &[]), 0.0);
        let x = vec![2.0; 10];
        let y = vec![3.0; 10];
        assert!((dot(&d, &x, &y) - 60.0).abs() < 1e-12);

        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.5).collect();
        let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let got = dot(&d, &x, &y);
        assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    #[test]
    fn norm_sq_matches() {
        let d = dev();
        let x = vec![3.0, 4.0];
        assert!((norm_sq(&d, &x) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn kernels_appear_in_trace() {
        let d = dev();
        let x = vec![1.0; 1024];
        let y = vec![1.0; 1024];
        let _ = dot(&d, &x, &y);
        let by = d.trace().by_kernel();
        assert!(by.contains_key("vec.dot.partial"));
        assert!(by.contains_key("vec.dot.final"));
    }
}
