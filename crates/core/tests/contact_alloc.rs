//! Steady-state allocation audit for the serial contact-detection paths.
//!
//! Once a [`ContactWorkspace`] is warmed, every serial broad-phase
//! variant — the all-pairs sweep, the cell-binned grid, and the cached
//! grid's hit path — must allocate **nothing**: boxes, bin entries, and
//! pair lists live in the workspace and are reused by capacity, and all
//! sorting is in-place `sort_unstable`. This test arms a counting global
//! allocator around the warmed calls and requires exactly zero heap
//! allocations.
//!
//! Only the serial paths are audited: the device paths reuse their
//! host-side workspace buffers too, but the simulator's primitives
//! (radix sort, scan, compaction) allocate internally by design — their
//! buffer-capacity steady state is asserted in `contact::grid`'s unit
//! tests instead.
//!
//! The assembly cache's host bookkeeping gets the same treatment: once
//! warmed, the per-step rebind (buffer sizing + flattened joint-parameter
//! refill) and the per-iteration dirty-mask cycle of a multi-open–close
//! step must be allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use dda_core::contact::{
    broad_phase_serial_ws, detect_broad_serial, narrow_phase_serial, BroadPhaseMode,
    ContactWorkspace,
};
use dda_core::AssemblyCache;
use dda_core::{Block, BlockMaterial, BlockSystem, JointMaterial};
use dda_geom::Polygon;
use dda_simt::serial::CpuCounter;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the armed sections: the counter is global, so two audits
/// running on parallel test threads would see each other's allocations.
static GATE: Mutex<()> = Mutex::new(());

fn grid_system(nx: usize, ny: usize, gap: f64) -> BlockSystem {
    let mut blocks = Vec::new();
    for iy in 0..ny {
        for ix in 0..nx {
            let x0 = ix as f64 * (1.0 + gap);
            let y0 = iy as f64 * (1.0 + gap);
            blocks.push(Block::new(Polygon::rect(x0, y0, x0 + 1.0, y0 + 1.0), 0));
        }
    }
    BlockSystem::new(
        blocks,
        BlockMaterial::rock(),
        JointMaterial::frictional(30.0),
    )
}

#[test]
fn warmed_serial_broad_phases_allocate_nothing() {
    let sys = grid_system(12, 12, 0.02);
    let (range, slack) = (0.05, 0.4);
    let mut counter = CpuCounter::default();
    let mut ws_all = ContactWorkspace::new();
    let mut ws_grid = ContactWorkspace::new();
    let mut ws_cached = ContactWorkspace::new();

    // Warm: workspace capacities, and the cached mode's candidate build
    // (so the measured call is the steady-state hit path).
    for _ in 0..2 {
        broad_phase_serial_ws(&sys, range, &mut counter, &mut ws_all);
        detect_broad_serial(
            &sys,
            BroadPhaseMode::Grid,
            range,
            slack,
            &mut counter,
            &mut ws_grid,
        );
        detect_broad_serial(
            &sys,
            BroadPhaseMode::GridCached,
            range,
            slack,
            &mut counter,
            &mut ws_cached,
        );
    }
    let expected = ws_all.pairs.clone();
    assert!(!expected.is_empty(), "audit needs real pair work");

    // Measure.
    let _gate = GATE.lock().unwrap();
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    broad_phase_serial_ws(&sys, range, &mut counter, &mut ws_all);
    detect_broad_serial(
        &sys,
        BroadPhaseMode::Grid,
        range,
        slack,
        &mut counter,
        &mut ws_grid,
    );
    detect_broad_serial(
        &sys,
        BroadPhaseMode::GridCached,
        range,
        slack,
        &mut counter,
        &mut ws_cached,
    );
    ARMED.store(false, Ordering::SeqCst);

    let n_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n_allocs, 0,
        "warmed serial broad phases performed {n_allocs} heap allocations"
    );

    // And they still agree on the answer.
    assert_eq!(ws_grid.pairs, expected, "grid diverged from all-pairs");
    assert_eq!(
        ws_cached.pairs, expected,
        "cached hit diverged from all-pairs"
    );
    assert!(ws_cached.cache.hits >= 2, "third call must be a cache hit");
}

#[test]
fn warmed_assembly_cache_bookkeeping_allocates_nothing() {
    let sys = grid_system(8, 8, 0.02);
    let mut counter = CpuCounter::default();
    let mut ws = ContactWorkspace::new();
    broad_phase_serial_ws(&sys, 0.05, &mut counter, &mut ws);
    let contacts = narrow_phase_serial(&sys, &ws.pairs, 0.05, &mut counter);
    assert!(!contacts.is_empty(), "audit needs real contacts");

    // Warm: the first begin_step grows every stream buffer and the joint
    // parameter table; the second proves the sizes are stable.
    let mut acache = AssemblyCache::new();
    acache.begin_step(&sys, &contacts);
    acache.begin_step(&sys, &contacts);

    // Measure one step's worth of host bookkeeping: the per-step rebind,
    // then several open–close iterations' dirty-mask accumulate/consume
    // cycles (the device-side recompute/splice launches sit between these
    // in the pipeline and are audited for capacity reuse separately).
    let _gate = GATE.lock().unwrap();
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    acache.begin_step(&sys, &contacts);
    for it in 0..4 {
        let mask = acache.dirty_mask();
        for (k, m) in mask.iter_mut().enumerate() {
            *m = u32::from(k % (it + 2) == 0);
        }
        mask.fill(0);
        let _ = acache.stats();
    }
    acache.invalidate();
    ARMED.store(false, Ordering::SeqCst);

    let n_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n_allocs, 0,
        "warmed assembly-cache bookkeeping performed {n_allocs} heap allocations"
    );
}
