//! Polygon overlap measurement for interpenetration checking.
//!
//! The open–close loop must verify that "there are no interpenetrations
//! between the contacted blocks" (paper, §I). The penalty formulation keeps
//! penetration small but nonzero; these helpers measure it so the checker
//! can decide whether another open–close iteration is needed and so tests
//! can assert the physical invariant (overlap area bounded by the penalty
//! compliance).

use crate::polygon::Polygon;
use crate::vec2::Vec2;

/// Area of the intersection of two **convex** polygons.
pub fn convex_overlap_area(a: &Polygon, b: &Polygon) -> f64 {
    if !a.aabb().overlaps(&b.aabb()) {
        return 0.0;
    }
    a.clip_convex(b).map_or(0.0, |p| p.area())
}

/// Maximum depth by which any vertex of `a` penetrates convex polygon `b`
/// (0 when no vertex is inside).
///
/// Depth of an interior vertex is its distance to the nearest edge of `b` —
/// the translation needed to expel it.
pub fn max_vertex_penetration(a: &Polygon, b: &Polygon) -> f64 {
    let mut depth: f64 = 0.0;
    for &v in a.vertices() {
        if b.contains(v) {
            let d = b
                .edges()
                .map(|e| e.dist_to_point(v))
                .fold(f64::INFINITY, f64::min);
            depth = depth.max(d);
        }
    }
    depth
}

/// Symmetric penetration measure between two convex polygons: the larger of
/// the two directed vertex penetrations.
pub fn penetration_depth(a: &Polygon, b: &Polygon) -> f64 {
    max_vertex_penetration(a, b).max(max_vertex_penetration(b, a))
}

/// True when two convex polygons overlap with more than `tol` area.
pub fn overlaps(a: &Polygon, b: &Polygon, tol: f64) -> bool {
    convex_overlap_area(a, b) > tol
}

/// Total overlap area over all pairs in a block system — the global
/// interpenetration metric reported by the pipeline's diagnostics.
///
/// Quadratic in the number of polygons; intended for tests and validation,
/// not for the hot loop (the pipeline's checker works per-contact).
pub fn total_overlap_area(polys: &[Polygon]) -> f64 {
    let mut total = 0.0;
    for i in 0..polys.len() {
        for j in (i + 1)..polys.len() {
            total += convex_overlap_area(&polys[i], &polys[j]);
        }
    }
    total
}

/// Signed gap between a vertex and an edge along the edge's outward normal:
/// negative values indicate penetration. `p2 → p3` must be a CCW edge of the
/// contacted block so that material lies to its left.
#[inline]
pub fn vertex_edge_gap(p1: Vec2, p2: Vec2, p3: Vec2) -> f64 {
    let l = p2.dist(p3);
    if l < crate::GEOM_EPS {
        return p1.dist(p2);
    }
    // orient2d(p2, p3, p1) > 0 ⇔ p1 left of the edge ⇔ inside material ⇔
    // penetrating, so the signed *gap* is the negative of the signed area
    // ratio.
    -crate::predicates::orient2d(p2, p3, p1) / l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_area_of_offset_squares() {
        let a = Polygon::rect(0.0, 0.0, 2.0, 2.0);
        let b = Polygon::rect(1.0, 1.0, 3.0, 3.0);
        assert!((convex_overlap_area(&a, &b) - 1.0).abs() < 1e-12);
        assert!(overlaps(&a, &b, 1e-9));
    }

    #[test]
    fn disjoint_squares_no_overlap() {
        let a = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        let b = Polygon::rect(5.0, 5.0, 6.0, 6.0);
        assert_eq!(convex_overlap_area(&a, &b), 0.0);
        assert_eq!(penetration_depth(&a, &b), 0.0);
    }

    #[test]
    fn touching_squares_zero_area() {
        let a = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        let b = Polygon::rect(1.0, 0.0, 2.0, 1.0);
        assert!(convex_overlap_area(&a, &b) < 1e-9);
        assert!(!overlaps(&a, &b, 1e-9));
    }

    #[test]
    fn vertex_penetration_depth() {
        let a = Polygon::rect(0.0, 0.0, 2.0, 2.0);
        // b's lower-left corner is 0.25 deep inside a (distance to nearest
        // edge of a is min(2-1.75, 2-1.75)=0.25).
        let b = Polygon::rect(1.75, 1.75, 3.0, 3.0);
        let d = max_vertex_penetration(&b, &a);
        assert!((d - 0.25).abs() < 1e-12);
        assert!((penetration_depth(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn vertex_edge_gap_signs() {
        // CCW bottom edge of a block occupying y>0: p2=(0,0) → p3=(1,0).
        let p2 = Vec2::new(0.0, 0.0);
        let p3 = Vec2::new(1.0, 0.0);
        // Vertex below the edge (outside the material): positive gap.
        assert!((vertex_edge_gap(Vec2::new(0.5, -0.3), p2, p3) - 0.3).abs() < 1e-12);
        // Vertex above the edge (inside the material): negative = penetration.
        assert!((vertex_edge_gap(Vec2::new(0.5, 0.2), p2, p3) + 0.2).abs() < 1e-12);
        // On the edge: zero.
        assert!(vertex_edge_gap(Vec2::new(0.5, 0.0), p2, p3).abs() < 1e-12);
    }

    #[test]
    fn total_overlap_accumulates_pairs() {
        let polys = vec![
            Polygon::rect(0.0, 0.0, 2.0, 2.0),
            Polygon::rect(1.0, 0.0, 3.0, 2.0), // overlaps #0 by 2
            Polygon::rect(10.0, 0.0, 11.0, 1.0),
        ];
        assert!((total_overlap_area(&polys) - 2.0).abs() < 1e-12);
    }
}
