//! Experiment runners shared by the harness binaries and the integration
//! tests. Every function is deterministic for a given seed.

use dda_core::assembly::assemble_serial;
use dda_core::contact::init::{init_contacts_classified, init_contacts_monolithic};
use dda_core::contact::{broad_phase_serial, narrow_phase_serial, GeomSoa};
use dda_core::pipeline::{CpuPipeline, GpuPipeline, ModuleTimes, PrecondKind};
use dda_core::{BlockSystem, DdaParams};
use dda_simt::serial::CpuCounter;
use dda_simt::{Device, DeviceProfile};
use dda_solver::precond::{Ilu0, Preconditioner};
use dda_sparse::ell::spmv_ell;
use dda_sparse::spmv::{spmv_bcsr, spmv_csr_scalar, spmv_csr_vector, spmv_hsbcsr, Stage1Smem};
use dda_sparse::{BlockCsr, Csr, Ell, Hsbcsr, SymBlockMatrix};
use dda_workloads::{rockfall_case, slope_case, RockfallConfig, SlopeConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

fn k20() -> Device {
    Device::new(DeviceProfile::tesla_k20())
}

/// Builds the case-1 system at a given block count.
pub fn case1_system(blocks: usize, seed: u64) -> (BlockSystem, DdaParams) {
    slope_case(&SlopeConfig {
        seed,
        ..SlopeConfig::default().with_target_blocks(blocks)
    })
}

/// Develops the case-1 contact network for `warm` steps and returns the
/// assembled stiffness matrix (the Fig-10 test matrix).
pub fn case1_matrix(blocks: usize, warm: usize, seed: u64) -> SymBlockMatrix {
    case1_matrix_stiff(blocks, warm, seed, 1.0)
}

/// [`case1_matrix`] with the contact penalty stiffened by `contrast`.
///
/// [`DdaParams::for_model`] picks Δt so the inertial diagonal matches the
/// penalty springs — the well-conditioned regime where Block-Jacobi
/// converges in a handful of iterations. Scaling the penalty alone breaks
/// that balance: the off-diagonal contact coupling grows past the
/// diagonal and the iteration count climbs with `contrast`. This is the
/// iteration-heavy regime where mixed precision and AMG2 earn their keep
/// (BENCH_6's stress operator), and it is physical: Shi's `p ∈
/// [10·E, 1000·E]` recommendation spans exactly this range.
pub fn case1_matrix_stiff(blocks: usize, warm: usize, seed: u64, contrast: f64) -> SymBlockMatrix {
    let (sys, mut params) = case1_system(blocks, seed);
    params.penalty *= contrast;
    let mut pipe = CpuPipeline::new(sys, params);
    for _ in 0..warm {
        pipe.step();
    }
    let mut c = CpuCounter::new();
    let contacts = pipe.contacts().to_vec();
    let asm = assemble_serial(&pipe.sys, &contacts, &pipe.params, &mut c);
    asm.matrix
}

// ---------------------------------------------------------------------------
// Table I + Fig 5: preconditioner study
// ---------------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct PrecondRow {
    /// Preconditioner name ("BJ", "SSOR", "ILU").
    pub name: &'static str,
    /// Mean PCG iterations per solve.
    pub avg_iterations: f64,
    /// Mean construction time per solve (modeled seconds).
    pub construct_s: f64,
    /// Mean application time per preconditioner apply (modeled seconds).
    pub apply_s: f64,
    /// Total equation-solving time over the run (modeled seconds).
    pub total_solve_s: f64,
    /// Per-step iteration samples (Fig 5's series).
    pub samples: Vec<usize>,
}

/// Runs the case-1 pipeline once per preconditioner and extracts Table I /
/// Fig 5.
pub fn preconditioner_study(blocks: usize, steps: usize, seed: u64) -> Vec<PrecondRow> {
    let kinds = [
        (PrecondKind::BlockJacobi, "BJ"),
        (PrecondKind::SsorAi, "SSOR"),
        (PrecondKind::Ilu0, "ILU"),
    ];
    let mut rows = Vec::new();
    for (kind, name) in kinds {
        let (sys, mut params) = case1_system(blocks, seed);
        // The study isolates solver behaviour: a tight tolerance keeps all
        // three preconditioners converging to the same solutions.
        params.pcg.max_iters = 200;
        let mut pipe = GpuPipeline::new(sys, params, k40()).with_precond(kind);
        let reports = pipe.run(steps);

        let samples: Vec<usize> = reports.iter().map(|r| r.last_solve_iterations).collect();
        let solves: usize = reports.iter().map(|r| r.oc_iterations).sum();
        let total_iters: usize = reports.iter().map(|r| r.pcg_iterations).sum();
        let applies = (total_iters + solves).max(1);

        let by = pipe.device().trace().by_kernel();
        let time_of = |prefixes: &[&str]| -> f64 {
            by.iter()
                .filter(|(k, _)| prefixes.iter().any(|p| k.starts_with(p)))
                .map(|(_, (_, s))| *s)
                .sum()
        };
        let (construct_total, apply_total) = match kind {
            // The fused solver applies BJ inside `pcg.fused.precond_rz`
            // (z = D⁻¹r fused with the norm reduce and r·z partials); only
            // the setup apply still runs the standalone kernel.
            PrecondKind::BlockJacobi => (
                time_of(&["precond.bj.construct"]),
                time_of(&["precond.bj.apply", "pcg.fused.precond_rz"]),
            ),
            PrecondKind::SsorAi => (
                time_of(&["precond.bj.construct"]),
                time_of(&["precond.ssor."]),
            ),
            PrecondKind::Ilu0 => (time_of(&["precond.ilu.construct"]), time_of(&["tss."])),
            PrecondKind::Jacobi => (
                time_of(&["precond.jacobi.construct"]),
                time_of(&["precond.jacobi.apply"]),
            ),
            PrecondKind::Amg2 => (
                time_of(&["precond.amg2.construct"]),
                time_of(&["precond.amg2."]) - time_of(&["precond.amg2.construct"]),
            ),
            PrecondKind::None => (0.0, 0.0),
        };

        rows.push(PrecondRow {
            name,
            avg_iterations: total_iters as f64 / solves.max(1) as f64,
            construct_s: construct_total / solves.max(1) as f64,
            apply_s: apply_total / applies as f64,
            total_solve_s: pipe.times.solving,
            samples,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig 10: SpMV / TSS comparison
// ---------------------------------------------------------------------------

/// Modeled times of the Fig-10 kernels on the same matrix.
#[derive(Debug, Clone)]
pub struct SpmvStudy {
    /// Diagonal sub-matrix count of the test matrix.
    pub n_diag: usize,
    /// Non-diagonal (upper) sub-matrix count.
    pub n_nondiag: usize,
    /// Naive scalar-CSR kernel.
    pub t_csr_scalar: f64,
    /// Warp-per-row CSR kernel (the cuSPARSE baseline).
    pub t_csr_vector: f64,
    /// Full-matrix BCSR kernel.
    pub t_bcsr: f64,
    /// ELLPACK-R kernel (the §II-B related-work baseline).
    pub t_ell: f64,
    /// The paper's two-stage HSBCSR kernel.
    pub t_hsbcsr: f64,
    /// One ILU(0) triangular-solve pair (TSS).
    pub t_tss: f64,
}

/// Runs every SpMV variant and one TSS on the case-1 matrix.
pub fn spmv_study(blocks: usize, seed: u64) -> SpmvStudy {
    let m = case1_matrix(blocks, 2, seed);
    let x: Vec<f64> = (0..m.dim())
        .map(|i| ((i % 17) as f64) * 0.1 - 0.8)
        .collect();

    let csr = Csr::from_sym_full(&m);
    let bcsr = BlockCsr::from_sym_full(&m);
    let ell = Ell::from_csr(&csr);
    let h = Hsbcsr::from_sym(&m);

    let time_one = |f: &dyn Fn(&Device)| -> f64 {
        let dev = k40();
        f(&dev);
        dev.modeled_seconds()
    };

    let t_csr_scalar = time_one(&|d| {
        spmv_csr_scalar(d, &csr, &x);
    });
    let t_csr_vector = time_one(&|d| {
        spmv_csr_vector(d, &csr, &x);
    });
    let t_bcsr = time_one(&|d| {
        spmv_bcsr(d, &bcsr, &x);
    });
    let t_ell = time_one(&|d| {
        spmv_ell(d, &ell, &x);
    });
    let t_hsbcsr = time_one(&|d| {
        spmv_hsbcsr(d, &h, &x, Stage1Smem::Proposed);
    });
    // TSS: construct ILU once, then time a single apply (two triangular
    // solves), as Fig 10 plots.
    let dev = k40();
    let ilu = Ilu0::new(&dev, &csr);
    dev.reset_trace();
    let _ = ilu.apply(&dev, &x);
    let t_tss = dev.modeled_seconds();

    SpmvStudy {
        n_diag: m.n_blocks(),
        n_nondiag: m.n_upper(),
        t_csr_scalar,
        t_csr_vector,
        t_bcsr,
        t_ell,
        t_hsbcsr,
        t_tss,
    }
}

// ---------------------------------------------------------------------------
// Tables II / III: end-to-end case studies
// ---------------------------------------------------------------------------

/// Per-platform module times of one case.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// "case 1" / "case 2".
    pub label: &'static str,
    /// Steps executed.
    pub steps: usize,
    /// Blocks in the model.
    pub blocks: usize,
    /// E5620 serial model times.
    pub cpu: ModuleTimes,
    /// Tesla K20 modeled times.
    pub k20: ModuleTimes,
    /// Tesla K40 modeled times.
    pub k40: ModuleTimes,
    /// Mean contacts per step (K40 run).
    pub mean_contacts: f64,
}

fn run_case(label: &'static str, sys: BlockSystem, params: DdaParams, steps: usize) -> CaseStudy {
    let blocks = sys.len();
    let mut cpu = CpuPipeline::new(sys.clone(), params.clone());
    cpu.run(steps);
    let mut g20 = GpuPipeline::new(sys.clone(), params.clone(), k20());
    g20.run(steps);
    let mut g40 = GpuPipeline::new(sys, params, k40());
    let reports = g40.run(steps);
    let mean_contacts =
        reports.iter().map(|r| r.n_contacts as f64).sum::<f64>() / steps.max(1) as f64;
    CaseStudy {
        label,
        steps,
        blocks,
        cpu: cpu.times,
        k20: g20.times,
        k40: g40.times,
        mean_contacts,
    }
}

/// Table II: the static slope case.
pub fn run_case1(blocks: usize, steps: usize, seed: u64) -> CaseStudy {
    let (sys, params) = case1_system(blocks, seed);
    run_case("case 1 (static slope)", sys, params, steps)
}

/// Table III: the dynamic rockfall case.
pub fn run_case2(rocks: usize, steps: usize) -> CaseStudy {
    let (sys, params) = rockfall_case(&RockfallConfig::default().with_rocks(rocks));
    run_case("case 2 (rockfall)", sys, params, steps)
}

// ---------------------------------------------------------------------------
// D1: data-classification divergence study (§III-A)
// ---------------------------------------------------------------------------

/// Classified-vs-monolithic contact initialization comparison.
#[derive(Debug, Clone)]
pub struct DivergenceStudy {
    /// Contacts processed.
    pub contacts: usize,
    /// Modeled seconds, monolithic kernel.
    pub mono_s: f64,
    /// Modeled seconds of the classified *initialization kernels* — the
    /// like-for-like comparison: in the paper's framework the
    /// classification itself (scan/radix sort) already exists, produced by
    /// the narrow phase and reused by every downstream module.
    pub class_s: f64,
    /// Modeled seconds of the classification machinery itself (flagging,
    /// scans, compaction), reported separately.
    pub classification_overhead_s: f64,
    /// Branch-divergence fraction of the monolithic kernel.
    pub mono_divergence: f64,
    /// Branch-divergence fraction of the classified init kernels.
    pub class_divergence: f64,
}

impl DivergenceStudy {
    /// Net time saved by classification (µs), the paper's 20.576 µs.
    pub fn saved_us(&self) -> f64 {
        (self.mono_s - self.class_s) * 1e6
    }

    /// Divergence reduction in percentage points (paper: 11.18 %).
    pub fn divergence_reduction_pct(&self) -> f64 {
        (self.mono_divergence - self.class_divergence) * 100.0
    }
}

/// Runs contact initialization both ways over the case-1 contact set.
pub fn divergence_study(blocks: usize, seed: u64) -> DivergenceStudy {
    let (sys, params) = case1_system(blocks, seed);
    let mut cnt = CpuCounter::new();
    let pairs = broad_phase_serial(&sys, params.contact_range, &mut cnt);
    let contacts = narrow_phase_serial(&sys, &pairs, params.contact_range, &mut cnt);
    let touch = params.touch_tol * params.max_displacement;
    let soa = GeomSoa::build(&sys);

    // The monolithic baseline processes contacts in *discovery order* — a
    // direct CPU port has no reason to sort them; the key-sorted,
    // class-grouped layout is exactly what the paper's classification
    // framework produces. A deterministic shuffle reconstructs that
    // unordered stream.
    let d1 = k40();
    let mut mono = contacts.clone();
    let mut state = 0x243F6A8885A308D3u64;
    for k in (1..mono.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        mono.swap(k, (state % (k as u64 + 1)) as usize);
    }
    init_contacts_monolithic(&d1, &soa, &mut mono, touch);
    let mono_s = d1.modeled_seconds();
    let mono_stats = d1.trace().total_stats();

    let d2 = k40();
    let mut class = contacts.clone();
    init_contacts_classified(&d2, &soa, &mut class, touch);
    let total_class_s = d2.modeled_seconds();
    // Separate the uniform init kernels from the classification machinery.
    let by = d2.trace().by_kernel();
    let mut init_stats = dda_simt::KernelStats::default();
    let mut class_s = 0.0;
    for (k, (s, t)) in by.iter() {
        if k.starts_with("init.v") {
            init_stats.merge(s);
            class_s += t;
        }
    }
    let mut mono_sorted = mono.clone();
    mono_sorted.sort_by_key(|c| c.key());
    class.sort_by_key(|c| c.key());
    assert_eq!(
        mono_sorted, class,
        "both paths must produce identical contacts"
    );

    DivergenceStudy {
        contacts: contacts.len(),
        mono_s,
        class_s,
        classification_overhead_s: total_class_s - class_s,
        mono_divergence: mono_stats.divergence_fraction(),
        class_divergence: init_stats.divergence_fraction(),
    }
}

// ---------------------------------------------------------------------------
// Figs 8–9: shared-memory scheme ablation
// ---------------------------------------------------------------------------

/// Bank-conflict ablation of the HSBCSR stage-1 reduction.
#[derive(Debug, Clone)]
pub struct SmemStudy {
    /// Bank-conflict replays, proposed scheme.
    pub proposed_replays: u64,
    /// Bank-conflict replays, naive row-major scheme.
    pub naive_replays: u64,
    /// Modeled SpMV seconds, proposed scheme.
    pub proposed_s: f64,
    /// Modeled SpMV seconds, naive scheme.
    pub naive_s: f64,
}

/// Runs the HSBCSR SpMV with both stage-1 shared-memory schemes.
pub fn smem_study(blocks: usize, seed: u64) -> SmemStudy {
    let m = case1_matrix(blocks, 2, seed);
    let h = Hsbcsr::from_sym(&m);
    let x = vec![1.0; m.dim()];

    let d1 = k40();
    let _ = spmv_hsbcsr(&d1, &h, &x, Stage1Smem::Proposed);
    let s1 = d1.trace().total_stats();
    let t1 = d1.modeled_seconds();

    let d2 = k40();
    let _ = spmv_hsbcsr(&d2, &h, &x, Stage1Smem::NaiveRowMajor);
    let s2 = d2.trace().total_stats();
    let t2 = d2.modeled_seconds();

    SmemStudy {
        proposed_replays: s1.smem_replays,
        naive_replays: s2.smem_replays,
        proposed_s: t1,
        naive_s: t2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 60; // small but contact-rich

    #[test]
    fn preconditioner_study_ordering() {
        let rows = preconditioner_study(N, 2, 1);
        assert_eq!(rows.len(), 3);
        let bj = &rows[0];
        let ssor = &rows[1];
        let ilu = &rows[2];
        // Table I ordering: iterations ILU ≤ SSOR ≤ BJ.
        assert!(ilu.avg_iterations <= ssor.avg_iterations + 1e-9);
        assert!(ssor.avg_iterations <= bj.avg_iterations + 1e-9);
        // Costs: BJ construction cheapest, ILU most expensive.
        assert!(bj.construct_s < ilu.construct_s);
        assert!(bj.apply_s < ilu.apply_s);
        // The headline: ILU loses the total despite fewer iterations.
        assert!(
            ilu.total_solve_s > bj.total_solve_s,
            "ILU {} must exceed BJ {}",
            ilu.total_solve_s,
            bj.total_solve_s
        );
        assert_eq!(bj.samples.len(), 2);
    }

    #[test]
    fn spmv_study_fig10_shape() {
        // At this deliberately tiny scale (unit-test budget) kernel-launch
        // overhead and under-occupancy dominate, so only the
        // scale-independent parts of the Fig-10 shape are asserted here;
        // the full ordering (HSBCSR < cuSPARSE-style vector CSR, the 2.8×
        // gap, TSS ≈ 11× SpMV) is exercised at experiment scale by the
        // `fig10` binary and the release-mode integration test.
        let s = spmv_study(N, 2);
        assert!(s.n_diag > 20);
        assert!(s.n_nondiag > 10);
        assert!(
            s.t_hsbcsr < s.t_csr_scalar,
            "{} vs {}",
            s.t_hsbcsr,
            s.t_csr_scalar
        );
        // TSS always loses to one SpMV: level-by-level launches.
        assert!(
            s.t_tss > s.t_hsbcsr,
            "TSS {} vs SpMV {}",
            s.t_tss,
            s.t_hsbcsr
        );
    }

    #[test]
    fn case_study_internal_consistency() {
        // Speed-up *shape* claims need near-full device occupancy, i.e.
        // thousands of blocks (the table2/table3 binaries); at unit-test
        // scale we check the bookkeeping: every module accrues time on
        // every platform, and the faster device profile wins.
        let cs = run_case1(N, 2, 3);
        for times in [&cs.cpu, &cs.k20, &cs.k40] {
            assert!(times.contact_detection > 0.0);
            assert!(times.diag_building > 0.0);
            assert!(times.nondiag_building > 0.0);
            assert!(times.solving > 0.0);
            assert!(times.interpenetration > 0.0);
            assert!(times.updating > 0.0);
        }
        assert!(cs.k40.total() < cs.k20.total());
        assert!(cs.mean_contacts > 10.0);
    }

    #[test]
    fn divergence_study_shape() {
        let d = divergence_study(N, 5);
        assert!(d.contacts > 20);
        assert!(d.mono_divergence > 0.0);
        assert_eq!(d.class_divergence, 0.0);
        assert!(d.divergence_reduction_pct() > 0.0);
    }

    #[test]
    fn smem_study_shape() {
        let s = smem_study(N, 7);
        assert_eq!(s.proposed_replays, 0);
        assert!(s.naive_replays > 0);
        assert!(s.proposed_s <= s.naive_s);
    }
}
