//! Batched multi-scene throughput runtime.
//!
//! Small DDA scenes leave a modeled GPU mostly idle: a 60-block rockfall
//! launches kernels over a few hundred threads, so per-launch overhead and
//! low occupancy dominate. [`SceneBatch`] steps N independent scenes
//! concurrently on **one** device: the per-scene state lives side by side
//! (offset-indexed per scene), every pipeline phase is visited
//! *phase-major* across all scenes inside a device batch region, and the
//! region merges the scenes' matching kernels into one modeled launch
//! covering all scenes — amortizing launch overhead and summing warps into
//! far better occupancy.
//!
//! The three-level DDA loop becomes a **masked lockstep**: all scenes enter
//! loop 2 (displacement control) and loop 3 (open–close iteration)
//! together, and per-scene convergence masks drop finished scenes out of
//! subsequent phases — a scene whose open–close iteration converged at
//! global iteration k simply stops contributing launches, exactly like a
//! masked-off scene slice in a real packed kernel. Each scene's own
//! control-flow decisions (convergence, Δt retries, freeze flags) are
//! evaluated with scene-local data, so per-scene trajectories are
//! **bit-identical** to stepping the same scene alone in a
//! [`GpuPipeline`](super::GpuPipeline).
//!
//! Launch accounting per step is exposed as `(launches_in, launches_out)`:
//! the launches the N scenes would have issued solo versus the merged
//! launches the batch actually modeled.

use super::driver::{StepOutcome, MAX_RETRIES};
use super::solver_cache::SolverCache;
use super::{ModuleTimes, StepReport};
use crate::assembly::{assemble_contacts_gpu, AssembledSystem};
use crate::contact::init::init_contacts_classified;
use crate::contact::{broad_phase_gpu, narrow_phase_gpu, transfer_contacts_gpu, Contact, GeomSoa};
use crate::interpenetration::{check_gpu, BranchScheme, GapArrays};
use crate::openclose::{categorize_gpu, open_close_gpu};
use crate::params::DdaParams;
use crate::stiffness::perblock::{build_diag_gpu, BlockSoa};
use crate::system::BlockSystem;
use crate::update::{max_displacement, update_system};
use dda_simt::serial::CpuCounter;
use dda_simt::{BatchSummary, Device, KernelStats};
use dda_solver::{pcg_fused_batch, PcgBatchEntry};
use dda_sparse::Block6;

/// One scene's slice of the batch: its own block system, parameters,
/// contact set, warm-start vector, and solver cache.
struct BatchScene {
    sys: BlockSystem,
    params: DdaParams,
    times: ModuleTimes,
    contacts: Vec<Contact>,
    x_prev: Vec<f64>,
    cache: SolverCache,
    gsoa: Option<GeomSoa>,
    bsoa: Option<BlockSoa>,
}

/// Steps N independent scenes concurrently on one modeled device (see the
/// module docs for the batching model).
pub struct SceneBatch {
    dev: Device,
    scenes: Vec<BatchScene>,
    launches_in: u64,
    launches_out: u64,
}

impl SceneBatch {
    /// Packs `scenes` onto `dev`. Panics if `scenes` is empty.
    pub fn new(dev: Device, scenes: Vec<(BlockSystem, DdaParams)>) -> SceneBatch {
        assert!(!scenes.is_empty(), "a batch needs at least one scene");
        let scenes = scenes
            .into_iter()
            .map(|(sys, params)| {
                let n = sys.len();
                BatchScene {
                    sys,
                    params,
                    times: ModuleTimes::default(),
                    contacts: Vec::new(),
                    x_prev: vec![0.0; 6 * n],
                    cache: SolverCache::default(),
                    gsoa: None,
                    bsoa: None,
                }
            })
            .collect();
        SceneBatch {
            dev,
            scenes,
            launches_in: 0,
            launches_out: 0,
        }
    }

    /// Number of scenes in the batch.
    pub fn n_scenes(&self) -> usize {
        self.scenes.len()
    }

    /// The shared device (for trace inspection).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Scene `i`'s evolving block system.
    pub fn sys(&self, i: usize) -> &BlockSystem {
        &self.scenes[i].sys
    }

    /// Scene `i`'s analysis parameters (Δt adapts per scene).
    pub fn params(&self, i: usize) -> &DdaParams {
        &self.scenes[i].params
    }

    /// Scene `i`'s current contact set.
    pub fn contacts(&self, i: usize) -> &[Contact] {
        &self.scenes[i].contacts
    }

    /// Scene `i`'s accumulated modeled seconds per module (its share of
    /// every merged launch, split by modeled work).
    pub fn times(&self, i: usize) -> &ModuleTimes {
        &self.scenes[i].times
    }

    /// Sum of all scenes' module times.
    pub fn total_times(&self) -> ModuleTimes {
        let mut t = ModuleTimes::default();
        for sc in &self.scenes {
            t.contact_detection += sc.times.contact_detection;
            t.diag_building += sc.times.diag_building;
            t.nondiag_building += sc.times.nondiag_building;
            t.solving += sc.times.solving;
            t.interpenetration += sc.times.interpenetration;
            t.updating += sc.times.updating;
        }
        t
    }

    /// Launch accounting of the last step: `(launches_in, launches_out)` —
    /// what the scenes would have launched solo vs what the batch modeled
    /// after merging.
    pub fn last_step_launches(&self) -> (u64, u64) {
        (self.launches_in, self.launches_out)
    }

    /// Folds a phase's batch summary into the per-scene module times and
    /// the step's launch accounting.
    fn charge(&mut self, s: BatchSummary, field: fn(&mut ModuleTimes) -> &mut f64) {
        self.launches_in += s.launches_in;
        self.launches_out += s.launches_out;
        for (sc, &sec) in self.scenes.iter_mut().zip(&s.per_segment_seconds) {
            *field(&mut sc.times) += sec;
        }
    }

    /// Advances every scene one time step, returning one report per scene.
    pub fn step(&mut self) -> Vec<StepReport> {
        let n = self.scenes.len();
        let mut reports = vec![StepReport::default(); n];
        self.launches_in = 0;
        self.launches_out = 0;

        // ---- Phase: contact detection (all scenes, one merged launch set)
        self.dev.batch_begin(n);
        for (i, sc) in self.scenes.iter_mut().enumerate() {
            self.dev.batch_segment(i);
            let touch = sc.params.touch_tol * sc.params.max_displacement;
            let gsoa = GeomSoa::build(&sc.sys);
            let pairs = broad_phase_gpu(&self.dev, &gsoa, sc.params.contact_range);
            let mut contacts = narrow_phase_gpu(&self.dev, &gsoa, &pairs, sc.params.contact_range);
            transfer_contacts_gpu(&self.dev, &sc.contacts, &mut contacts);
            init_contacts_classified(&self.dev, &gsoa, &mut contacts, touch);
            sc.contacts = contacts;
            reports[i].n_contacts = sc.contacts.len();
            for c in sc.contacts.iter_mut() {
                c.flips = 0;
            }
            sc.gsoa = Some(gsoa);
            sc.bsoa = Some(BlockSoa::build(&sc.sys));
        }
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.contact_detection);

        // ---- Loops 2–3: masked lockstep across scenes ------------------------
        let mut active = vec![true; n]; // still inside loop 2
        let mut outcomes: Vec<Option<StepOutcome>> = (0..n).map(|_| None).collect();
        let mut diag: Vec<Option<(Vec<Block6>, Vec<f64>)>> = (0..n).map(|_| None).collect();
        let mut attempt = 0;
        while active.iter().any(|&a| a) {
            // Phase: diagonal building (Δt changed for retrying scenes).
            self.dev.batch_begin(n);
            for (i, sc) in self.scenes.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                self.dev.batch_segment(i);
                diag[i] = Some(build_diag_gpu(
                    &self.dev,
                    &sc.sys,
                    sc.bsoa.as_ref().expect("detection builds the SoA"),
                    &sc.params,
                ));
            }
            let s = self.dev.batch_end();
            self.charge(s, |t| &mut t.diag_building);

            // Loop 3 state for this attempt.
            let mut in_oc = active.clone();
            let mut d: Vec<Vec<f64>> = self.scenes.iter().map(|sc| sc.x_prev.clone()).collect();
            let mut gaps: Vec<GapArrays> = (0..n).map(|_| GapArrays::default()).collect();
            let mut oc_conv = vec![false; n];
            let mut asms: Vec<Option<AssembledSystem>> = (0..n).map(|_| None).collect();
            for i in 0..n {
                if active[i] {
                    reports[i].oc_iterations = 0;
                }
            }
            let mut oc_iter = 0;
            while in_oc.iter().any(|&a| a) {
                // Phase: non-diagonal building.
                self.dev.batch_begin(n);
                for (i, sc) in self.scenes.iter_mut().enumerate() {
                    if !in_oc[i] {
                        continue;
                    }
                    self.dev.batch_segment(i);
                    let (dg, rhs0) = diag[i].as_ref().expect("diag phase ran");
                    let asm = assemble_contacts_gpu(
                        &self.dev,
                        &sc.sys,
                        sc.gsoa.as_ref().expect("detection builds the SoA"),
                        &sc.contacts,
                        &sc.params,
                        dg.clone(),
                        rhs0.clone(),
                    );
                    reports[i].n_upper = asm.matrix.n_upper();
                    reports[i].oc_iterations += 1;
                    asms[i] = Some(asm);
                }
                let s = self.dev.batch_end();
                self.charge(s, |t| &mut t.nondiag_building);

                // Phase: equation solving — per-scene format/preconditioner
                // prep, then the masked batched fused PCG over all active
                // scenes' systems.
                let mut entries = Vec::new();
                let mut idxs = Vec::new();
                self.dev.batch_begin(n);
                for (i, (sc, asm)) in self.scenes.iter_mut().zip(asms.iter()).enumerate() {
                    if !in_oc[i] {
                        continue;
                    }
                    self.dev.batch_segment(i);
                    let asm = asm.as_ref().expect("assembly phase ran");
                    let BatchScene {
                        cache,
                        x_prev,
                        params,
                        ..
                    } = sc;
                    let (h, bj, ws) = cache.prepare(&self.dev, &asm.matrix, true);
                    entries.push(PcgBatchEntry {
                        h,
                        b: &asm.rhs,
                        x0: x_prev.as_slice(),
                        m: bj.expect("prepare(want_bj) returns a factorization"),
                        opts: params.pcg,
                        ws,
                    });
                    idxs.push(i);
                }
                let prep = self.dev.batch_end();
                let (results, solve_sum) = pcg_fused_batch(&self.dev, &mut entries);
                drop(entries);
                self.charge(prep, |t| &mut t.solving);
                self.launches_in += solve_sum.launches_in;
                self.launches_out += solve_sum.launches_out;
                let mut last_conv = vec![false; n];
                for (k, (res, &i)) in results.into_iter().zip(&idxs).enumerate() {
                    self.scenes[i].times.solving += solve_sum.per_segment_seconds[k];
                    reports[i].pcg_iterations += res.iterations;
                    reports[i].last_solve_iterations = res.iterations;
                    last_conv[i] = res.converged;
                    d[i] = res.x;
                }

                // Phase: interpenetration checking + open–close update.
                self.dev.batch_begin(n);
                for (i, sc) in self.scenes.iter_mut().enumerate() {
                    if !in_oc[i] {
                        continue;
                    }
                    self.dev.batch_segment(i);
                    let open_tol = 1e-6 * sc.params.max_displacement;
                    let freeze = oc_iter + 3 >= sc.params.oc_max_iters;
                    gaps[i] = check_gpu(
                        &self.dev,
                        sc.gsoa.as_ref().expect("detection builds the SoA"),
                        &sc.sys,
                        &sc.contacts,
                        &d[i],
                        sc.params.penalty,
                        sc.params.shear_ratio,
                        BranchScheme::Restructured,
                    );
                    let changes =
                        open_close_gpu(&self.dev, &mut sc.contacts, &gaps[i], open_tol, freeze);
                    // Scene-local convergence mask: a converged (or
                    // iteration-capped) scene stops contributing launches.
                    if changes == 0 && last_conv[i] {
                        oc_conv[i] = true;
                        in_oc[i] = false;
                    } else if oc_iter + 1 >= sc.params.oc_max_iters {
                        in_oc[i] = false;
                    }
                }
                let s = self.dev.batch_end();
                self.charge(s, |t| &mut t.interpenetration);
                oc_iter += 1;
            }

            // Displacement control, per scene on the host (scalar controls
            // are the only thing that crosses back, as in the paper).
            for (i, sc) in self.scenes.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                reports[i].oc_converged = oc_conv[i];
                let maxd = max_displacement(&sc.sys, &d[i]);
                reports[i].max_displacement = maxd;
                let too_big = maxd > 2.0 * sc.params.max_displacement;
                if (too_big || !oc_conv[i]) && attempt < MAX_RETRIES && sc.params.reduce_dt() {
                    reports[i].retries += 1; // scene stays active for the next attempt
                } else {
                    outcomes[i] = Some(StepOutcome {
                        d: std::mem::take(&mut d[i]),
                        gaps: std::mem::take(&mut gaps[i]),
                        oc_converged: oc_conv[i],
                        too_big,
                        retries: reports[i].retries,
                    });
                    active[i] = false;
                }
            }
            attempt += 1;
        }
        // The loop above exits only when every scene has an outcome.
        let outcomes: Vec<StepOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("inactive scenes hold an outcome"))
            .collect();

        // ---- Phase: third classification (C1…C5) -----------------------------
        self.dev.batch_begin(n);
        for (i, sc) in self.scenes.iter_mut().enumerate() {
            self.dev.batch_segment(i);
            reports[i].categories = categorize_gpu(&self.dev, &sc.contacts);
        }
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.interpenetration);

        // ---- Phase: data updating --------------------------------------------
        self.dev.batch_begin(n);
        for (i, (sc, out)) in self.scenes.iter_mut().zip(outcomes).enumerate() {
            self.dev.batch_segment(i);
            reports[i].max_open_penetration = out.gaps.max_open_penetration(&sc.contacts);
            let mut uc = CpuCounter::new();
            update_system(
                &mut sc.sys,
                &out.d,
                &mut sc.contacts,
                &out.gaps,
                &sc.params,
                &mut uc,
            );
            let nd = 6 * sc.sys.len() as u64; // one thread per DOF
            self.dev.record_external(
                "update.apply",
                KernelStats {
                    launches: 2,
                    threads: nd,
                    warps: nd.div_ceil(32).max(1),
                    flops: uc.flops,
                    warp_flops: uc.flops * 2,
                    gmem_bytes: uc.bytes,
                    gmem_transactions: uc.bytes.div_ceil(128),
                    ..Default::default()
                },
            );
            reports[i].dt = sc.params.dt;
            out.recover_dt_if_clean(&mut sc.params);
            sc.x_prev = out.d;
        }
        let s = self.dev.batch_end();
        self.charge(s, |t| &mut t.updating);

        reports
    }

    /// Runs `n` steps; element `[s][i]` is scene `i`'s report at step `s`.
    pub fn run(&mut self, n: usize) -> Vec<Vec<StepReport>> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::material::{BlockMaterial, JointMaterial};
    use crate::pipeline::GpuPipeline;
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn k40() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    /// A family of small distinct scenes: a resting stack, a falling
    /// block, and an offset stack — different contact histories, different
    /// convergence behavior.
    fn scene(kind: usize) -> (BlockSystem, DdaParams) {
        let (top, params) = match kind % 3 {
            0 => (
                Polygon::rect(-0.5, 0.0, 0.5, 1.0),
                DdaParams::for_model(1.0, 5e9).static_analysis(),
            ),
            1 => {
                let mut p = DdaParams::for_model(1.0, 5e9);
                p.dt = 0.002;
                p.dt_max = 0.002;
                (Polygon::rect(-0.5, 0.005, 0.5, 1.005), p)
            }
            _ => (
                Polygon::rect(0.3, 0.0, 1.3, 1.0),
                DdaParams::for_model(1.0, 5e9).static_analysis(),
            ),
        };
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(top, 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(35.0),
        );
        (sys, params)
    }

    #[test]
    fn batch_trajectories_bit_identical_to_solo() {
        let n = 3;
        let mut solos: Vec<GpuPipeline> = (0..n)
            .map(|k| {
                let (sys, params) = scene(k);
                GpuPipeline::new(sys, params, k40())
            })
            .collect();
        let mut batch = SceneBatch::new(k40(), (0..n).map(scene).collect());
        for step in 0..4 {
            let rb = batch.step();
            for (i, solo) in solos.iter_mut().enumerate() {
                let rs = solo.step();
                assert_eq!(rs.n_contacts, rb[i].n_contacts, "step {step} scene {i}");
                assert_eq!(
                    rs.oc_iterations, rb[i].oc_iterations,
                    "step {step} scene {i}"
                );
                assert_eq!(rs.retries, rb[i].retries, "step {step} scene {i}");
                assert_eq!(
                    rs.pcg_iterations, rb[i].pcg_iterations,
                    "step {step} scene {i}"
                );
                assert_eq!(rs.oc_converged, rb[i].oc_converged, "step {step} scene {i}");
                assert_eq!(rs.dt.to_bits(), rb[i].dt.to_bits(), "step {step} scene {i}");
                // Bit-identical state: positions and velocities match
                // exactly, not merely within tolerance.
                for (bs, bb) in solo.sys.blocks.iter().zip(&batch.sys(i).blocks) {
                    let (cs, cb) = (bs.centroid(), bb.centroid());
                    assert_eq!(cs.x.to_bits(), cb.x.to_bits(), "step {step} scene {i}");
                    assert_eq!(cs.y.to_bits(), cb.y.to_bits(), "step {step} scene {i}");
                    for dof in 0..6 {
                        assert_eq!(
                            bs.velocity[dof].to_bits(),
                            bb.velocity[dof].to_bits(),
                            "step {step} scene {i} dof {dof}"
                        );
                    }
                }
                // And the contact bookkeeping agrees.
                assert_eq!(solo.contacts().len(), batch.contacts(i).len());
                for (cs, cb) in solo.contacts().iter().zip(batch.contacts(i)) {
                    assert_eq!(cs.state, cb.state, "step {step} scene {i}");
                    assert_eq!(
                        cs.edge_ratio.to_bits(),
                        cb.edge_ratio.to_bits(),
                        "step {step} scene {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_merges_launches_and_beats_serial_time() {
        let n = 4;
        let mut batch = SceneBatch::new(k40(), (0..n).map(|_| scene(0)).collect());
        let mut solos: Vec<GpuPipeline> = (0..n)
            .map(|_| {
                let (sys, params) = scene(0);
                GpuPipeline::new(sys, params, k40())
            })
            .collect();
        batch.step();
        for s in solos.iter_mut() {
            s.step();
        }
        let (l_in, l_out) = batch.last_step_launches();
        assert!(
            l_out < l_in,
            "merging must reduce launches: {l_out} vs {l_in}"
        );
        // Identical scenes merge near-perfectly: ~n× fewer launches.
        assert!(
            (l_out as f64) < (l_in as f64) / (n as f64 - 1.0),
            "expected ~{n}× merge, got {l_in} -> {l_out}"
        );
        let serial: f64 = solos.iter().map(|s| s.device().modeled_seconds()).sum();
        let batched = batch.device().modeled_seconds();
        assert!(
            batched < serial,
            "batched {batched} s must beat serial-loop {serial} s"
        );
    }

    #[test]
    fn batch_of_one_keeps_solo_accounting() {
        let mut batch = SceneBatch::new(k40(), vec![scene(0)]);
        batch.step();
        let (l_in, l_out) = batch.last_step_launches();
        assert_eq!(l_in, l_out, "a single scene has nothing to merge with");
    }

    #[test]
    fn per_scene_times_sum_to_device_total() {
        let mut batch = SceneBatch::new(k40(), (0..3).map(scene).collect());
        batch.run(2);
        let total = batch.total_times().total();
        let dev = batch.device().modeled_seconds();
        assert!(
            (total - dev).abs() < 1e-9 * dev.max(1e-12),
            "attributed {total} s vs device {dev} s"
        );
        for i in 0..3 {
            assert!(batch.times(i).total() > 0.0, "scene {i} got no time share");
        }
    }
}
