//! Deterministic fault injection (compiled only with the `fault-inject`
//! feature).
//!
//! The fault-isolation machinery in the pipeline crates is worthless if it
//! cannot be exercised on demand: real NaN contamination and PCG breakdown
//! are rare and input-dependent. This module lets a test or benchmark
//! *arm* a fault against one batch segment (scene) of a device; the
//! pipeline's instrumented call sites poll [`Device::fault_fires`] at the
//! matching phase and corrupt their own data when it returns true.
//!
//! Injection is deterministic by construction: a fault names its target
//! segment and a firing budget, and firing consumes budget in program
//! order — no randomness, no clocks — so a poisoned run is exactly
//! reproducible and an *unpoisoned* run is bit-identical to a build
//! without the feature (the polls read state under a lock and touch no
//! numerical data).
//!
//! [`Device::fault_fires`]: crate::Device::fault_fires

/// What to corrupt when the fault fires. The corruption itself lives at
/// the pipeline call site (this crate only decides *whether* it happens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Poison the scene's assembled right-hand side with NaN.
    NanRhs,
    /// Negate the assembled operator's diagonal so PCG meets negative
    /// curvature and breaks down.
    IndefiniteOperator,
    /// Pin the open–close loop: the contact state machine reports a
    /// change every iteration, so loop 3 never settles.
    OcPin,
    /// Declare the AMG2 Galerkin coarse operator singular during
    /// construction, forcing the fallback ladder to descend to ILU0. (A
    /// genuinely singular coarse operator cannot arise from a valid SPD
    /// system — PᵀAP inherits definiteness — so exercising that branch
    /// needs injection.)
    CoarseSingular,
}

/// One armed fault: target segment, kind, and remaining firings
/// (`usize::MAX` = unlimited).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArmedFault {
    pub(crate) segment: usize,
    pub(crate) fault: Fault,
    pub(crate) remaining: usize,
}
