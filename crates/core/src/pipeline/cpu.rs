//! The serial reference pipeline (Fig 1), timed under the E5620 model.

use super::driver::{drive_step, StepBackend};
use super::health::StepError;
use super::{ModuleTimes, StepReport};
use crate::assembly::{assemble_contacts_serial, AssembledSystem};
use crate::contact::{
    detect_broad_serial, init::init_contacts_serial, narrow_phase_serial, transfer_contacts_serial,
    Contact, ContactWorkspace,
};
use crate::interpenetration::{check_serial, GapArrays};
use crate::openclose::open_close_serial;
use crate::params::DdaParams;
use crate::stiffness::perblock::build_diag_serial;
use crate::system::BlockSystem;
use crate::update::{max_displacement, update_system};
use dda_simt::profile::DeviceProfile;
use dda_simt::serial::CpuCounter;
use dda_simt::TimingModel;
use dda_solver::serial::pcg_serial_bj;
use dda_solver::{SolveError, SolveResult};
use dda_sparse::{Block6, SymBlockMatrix};

/// The serial DDA driver.
pub struct CpuPipeline {
    /// The evolving block system.
    pub sys: BlockSystem,
    /// Analysis controls (Δt adapts during the run).
    pub params: DdaParams,
    /// Accumulated modeled E5620 seconds per module.
    pub times: ModuleTimes,
    contacts: Vec<Contact>,
    x_prev: Vec<f64>,
    ws: ContactWorkspace,
    model: TimingModel,
    profile: DeviceProfile,
}

impl CpuPipeline {
    /// Creates a pipeline over a system.
    pub fn new(sys: BlockSystem, params: DdaParams) -> CpuPipeline {
        let n = sys.len();
        CpuPipeline {
            sys,
            params,
            times: ModuleTimes::default(),
            contacts: Vec::new(),
            x_prev: vec![0.0; 6 * n],
            ws: ContactWorkspace::new(),
            model: TimingModel::default(),
            profile: DeviceProfile::xeon_e5620_serial(),
        }
    }

    /// Broad-phase cache diagnostics: `(hits, rebuilds)` of the
    /// displacement-bounded candidate cache (both zero unless
    /// [`crate::contact::BroadPhaseMode::GridCached`] is selected).
    pub fn broad_cache_stats(&self) -> (u64, u64) {
        (self.ws.cache.hits, self.ws.cache.rebuilds)
    }

    /// Current contact set (after the last step).
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// A clone of the pipeline's full resumable state — the capture half
    /// of solo-pipeline checkpointing. The health field is a fresh
    /// running record (solo pipelines keep no lifecycle machine). Must be
    /// taken at a step boundary to be resumable.
    pub fn scene_state(&self) -> super::batch::SceneState {
        super::batch::SceneState {
            sys: self.sys.clone(),
            params: self.params.clone(),
            contacts: self.contacts.clone(),
            x_prev: self.x_prev.clone(),
            times: self.times,
            health: super::health::SceneHealth::new_running(),
        }
    }

    /// Rebuilds a pipeline from a captured state — the restore half.
    /// Continuing the restored pipeline reproduces the original's
    /// trajectory bit for bit.
    pub fn from_state(st: super::batch::SceneState) -> CpuPipeline {
        let mut p = CpuPipeline::new(st.sys, st.params);
        p.contacts = st.contacts;
        p.x_prev = st.x_prev;
        p.times = st.times;
        p
    }

    fn charge(&self, c: CpuCounter) -> f64 {
        c.seconds(&self.model, &self.profile)
    }

    /// Advances one time step, reporting scene-health faults as structured
    /// errors instead of panicking. On `Err` the system state is left as it
    /// was before the step (the commit phase never ran).
    pub fn try_step(&mut self) -> Result<StepReport, StepError> {
        let mut report = StepReport::default();
        let touch = self.params.touch_tol * self.params.max_displacement;

        // ---- Contact detection ---------------------------------------------
        let mut cd = CpuCounter::new();
        detect_broad_serial(
            &self.sys,
            self.params.broad_phase,
            self.params.contact_range,
            self.params.broad_slack,
            &mut cd,
            &mut self.ws,
        );
        let mut contacts = narrow_phase_serial(
            &self.sys,
            &self.ws.pairs,
            self.params.contact_range,
            &mut cd,
        );
        transfer_contacts_serial(&self.contacts, &mut contacts, &mut cd);
        init_contacts_serial(&self.sys, &mut contacts, touch, &mut cd);
        self.contacts = contacts;
        // `params.contact_order` is accepted but inert here: the serial
        // path has no warps, so a scheduling permutation could only change
        // processing order — which by construction never changes outputs.
        // Keeping it a no-op preserves CPU↔GPU trajectory identity under
        // either knob setting without maintaining a second code path.
        // `params.assembly_reuse` and `params.warm_start` are inert the
        // same way: the serial pipeline is the reference oracle the
        // incremental/warm paths are validated against, so it always
        // recomputes in full and always starts PCG from the previous
        // step's solution.
        self.times.contact_detection += self.charge(cd);
        report.n_contacts = self.contacts.len();
        for c in self.contacts.iter_mut() {
            c.flips = 0;
        }

        // ---- Loops 2–3 (shared driver) -------------------------------------
        let outcome = drive_step(self, &mut report)?;

        // ---- Data updating ----------------------------------------------------
        report.max_open_penetration = outcome.gaps.max_open_penetration(&self.contacts);
        let mut uc = CpuCounter::new();
        update_system(
            &mut self.sys,
            &outcome.d,
            &mut self.contacts,
            &outcome.gaps,
            &self.params,
            &mut uc,
        );
        self.times.updating += self.charge(uc);
        report.dt = self.params.dt;
        outcome.recover_dt_if_clean(&mut self.params);
        self.x_prev = outcome.d;
        // Committed geometry moved at most the accepted step's maximum
        // vertex displacement — the broad-phase cache's validity bound.
        self.ws.cache.note_motion(report.max_displacement);
        Ok(report)
    }

    /// Advances one time step, panicking on a scene-health fault (the
    /// historical contract; healthy scenes never hit it).
    pub fn step(&mut self) -> StepReport {
        self.try_step()
            .unwrap_or_else(|e| panic!("CPU pipeline step failed: {e}"))
    }

    /// Runs `n` steps, collecting reports.
    pub fn run(&mut self, n: usize) -> Vec<StepReport> {
        (0..n).map(|_| self.step()).collect()
    }
}

impl StepBackend for CpuPipeline {
    fn params(&self) -> &DdaParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut DdaParams {
        &mut self.params
    }

    fn x_prev(&self) -> &[f64] {
        &self.x_prev
    }

    fn build_diag(&mut self) -> (Vec<Block6>, Vec<f64>) {
        let mut dc = CpuCounter::new();
        let out = build_diag_serial(&self.sys, &self.params, &mut dc);
        self.times.diag_building += self.charge(dc);
        out
    }

    fn assemble(&mut self, diag: &[Block6], rhs0: &[f64]) -> AssembledSystem {
        let mut nd = CpuCounter::new();
        let asm = assemble_contacts_serial(
            &self.sys,
            &self.contacts,
            &self.params,
            diag.to_vec(),
            rhs0.to_vec(),
            &mut nd,
        );
        self.times.nondiag_building += self.charge(nd);
        asm
    }

    fn solve(&mut self, matrix: &SymBlockMatrix, rhs: &[f64]) -> Result<SolveResult, StepError> {
        let mut sc = CpuCounter::new();
        let res = pcg_serial_bj(matrix, rhs, &self.x_prev, self.params.pcg, &mut sc);
        self.times.solving += self.charge(sc);
        // The serial reference has no fallback ladder: a singular
        // preconditioner means the scene input is malformed, so surface it.
        // Curvature breakdowns still return an iterate for Δt retry.
        if let Some(error @ SolveError::SingularPreconditioner { .. }) = res.error {
            return Err(StepError::SolverBreakdown { error });
        }
        Ok(res)
    }

    fn check(&mut self, d: &[f64]) -> GapArrays {
        let mut ic = CpuCounter::new();
        let gaps = check_serial(
            &self.sys,
            &self.contacts,
            d,
            self.params.penalty,
            self.params.shear_ratio,
            &mut ic,
        );
        self.times.interpenetration += self.charge(ic);
        gaps
    }

    fn open_close(&mut self, gaps: &GapArrays, open_tol: f64, freeze: bool) -> usize {
        let mut ic = CpuCounter::new();
        let changes = open_close_serial(&mut self.contacts, gaps, open_tol, freeze, &mut ic);
        self.times.interpenetration += self.charge(ic);
        changes
    }

    fn max_displacement(&self, d: &[f64]) -> f64 {
        max_displacement(&self.sys, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::contact::ContactState;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::{Polygon, Vec2};

    fn resting_stack() -> (BlockSystem, DdaParams) {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(-0.5, 0.0, 0.5, 1.0), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(35.0),
        );
        let params = DdaParams::for_model(1.0, 5e9).static_analysis();
        (sys, params)
    }

    #[test]
    fn block_on_floor_stays_put() {
        let (sys, params) = resting_stack();
        let y0 = sys.blocks[1].centroid().y;
        let mut pipe = CpuPipeline::new(sys, params);
        for _ in 0..5 {
            let r = pipe.step();
            assert!(r.n_contacts >= 2, "contacts: {}", r.n_contacts);
        }
        let y1 = pipe.sys.blocks[1].centroid().y;
        // Penalty compliance allows a microscopic settlement only.
        assert!((y0 - y1).abs() < 5e-4, "block sank by {} m", y0 - y1);
        // No interpenetration beyond the penalty compliance scale.
        assert!(pipe.sys.total_interpenetration() < 1e-4);
    }

    #[test]
    fn unsupported_block_falls() {
        let sys = BlockSystem::new(
            vec![Block::new(Polygon::rect(0.0, 10.0, 1.0, 11.0), 0)],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let mut params = DdaParams::for_model(1.0, 5e9); // dynamic
        params.dt = 0.01; // free flight: no stiffness constraint on Δt
        params.dt_max = 0.01;
        let mut pipe = CpuPipeline::new(sys, params);
        let y0 = pipe.sys.blocks[0].centroid().y;
        for _ in 0..10 {
            pipe.step();
        }
        let y1 = pipe.sys.blocks[0].centroid().y;
        assert!(y1 < y0 - 1e-4, "free block must fall: {y0} → {y1}");
        // And accelerate: velocity is downward.
        assert!(pipe.sys.blocks[0].velocity[1] < 0.0);
    }

    #[test]
    fn falling_block_lands_on_floor() {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(-0.5, 0.005, 0.5, 1.005), 0), // 5 mm above
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(35.0),
        );
        let mut params = DdaParams::for_model(1.0, 5e9);
        params.dt = 0.002;
        params.dt_max = 0.002;
        let mut pipe = CpuPipeline::new(sys, params);
        for _ in 0..40 {
            pipe.step();
        }
        let b = &pipe.sys.blocks[1];
        let min_y = b
            .poly
            .vertices()
            .iter()
            .map(|v| v.y)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_y > -2e-3 && min_y < 2e-3,
            "block should rest on the floor, bottom at {min_y}"
        );
        assert!(pipe.sys.total_interpenetration() < 1e-3);
    }

    #[test]
    fn module_times_accumulate() {
        let (sys, params) = resting_stack();
        let mut pipe = CpuPipeline::new(sys, params);
        pipe.step();
        let t = pipe.times;
        assert!(t.contact_detection > 0.0);
        assert!(t.diag_building > 0.0);
        assert!(t.nondiag_building > 0.0);
        assert!(t.solving > 0.0);
        assert!(t.interpenetration > 0.0);
        assert!(t.updating > 0.0);
        // Equation solving dominates the serial pipeline (§IV) for
        // contact-rich systems... at this tiny scale just require it to be
        // a major component.
        assert!(t.solving > 0.2 * t.total());
    }

    #[test]
    fn report_fields_populated() {
        let (sys, params) = resting_stack();
        let mut pipe = CpuPipeline::new(sys, params);
        let r = pipe.step();
        assert!(r.oc_iterations >= 1);
        assert!(r.pcg_iterations >= 1);
        assert!(r.dt > 0.0);
        assert!(r.oc_converged, "resting stack must converge: {r:?}");
    }

    #[test]
    fn dt_holds_at_floor_while_step_is_dirty() {
        // Regression: a persistently non-converging scene must park Δt at
        // the floor, not thrash. Before the fix, a step accepted only
        // because the Δt floor blocked further reduction still counted as
        // "no retries", so recover_dt() raised Δt and the next step fell
        // right back — oscillating between dt_min and 1.3·dt_min forever.
        let (sys, mut params) = resting_stack();
        // Make the solver incapable of converging: impossible tolerance,
        // two iterations. Every solve reports !converged, so loop 3 never
        // converges and every step is dirty.
        params.pcg.tol = 1e-30;
        params.pcg.max_iters = 2;
        let mut pipe = CpuPipeline::new(sys, params);
        // Drive Δt down to the floor.
        for _ in 0..6 {
            let r = pipe.step();
            assert!(!r.oc_converged, "solver must be hobbled for this test");
        }
        assert_eq!(
            pipe.params.dt, pipe.params.dt_min,
            "Δt must reach the floor"
        );
        // And hold there: no recovery as long as steps stay dirty. The
        // pre-fix thrash shows up as Δt bouncing to 1.3·dt_min *after* the
        // step (recovery fired on a dirty floor-accepted step) and as a
        // wasted reduction retry on the following step.
        for step in 0..4 {
            let r = pipe.step();
            assert_eq!(
                pipe.params.dt, pipe.params.dt_min,
                "step {step}: Δt must hold at the floor, not thrash"
            );
            assert_eq!(
                r.retries, 0,
                "step {step}: floor oscillation wastes retries"
            );
        }
    }

    #[test]
    fn block_sliding_off_ramp_edge_releases_contact() {
        // A rock sliding down a steep ramp reaches the ramp's toe: the
        // vertex–edge contact's entry point runs off the edge's end. The
        // slide bookkeeping must release the contact (and let detection
        // re-find geometry) rather than silently pinning edge_ratio at 1.
        let ramp = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(0.0, 3.0),
        ]);
        // Small square resting on the incline near the toe, moving
        // downslope (the incline runs from (0,3) to (4,0); direction
        // (0.8, -0.6)).
        let s = 0.4;
        let cx = 2.8; // near the toe
        let cy = 3.0 * (1.0 - cx / 4.0) + 0.01;
        let rock = Polygon::new(vec![
            Vec2::new(cx, cy),
            Vec2::new(cx + s * 0.8, cy - s * 0.6),
            Vec2::new(cx + s * 0.8 + s * 0.6, cy - s * 0.6 + s * 0.8),
            Vec2::new(cx + s * 0.6, cy + s * 0.8),
        ]);
        let mut b = Block::new(rock, 0);
        b.velocity[0] = 2.0 * 0.8;
        b.velocity[1] = 2.0 * -0.6;
        let sys = BlockSystem::new(
            vec![Block::new(ramp, 0).fixed(), b],
            BlockMaterial::rock(),
            // Low friction so it keeps sliding.
            JointMaterial::frictional(5.0),
        );
        let mut params = DdaParams::for_model(s, 5e9);
        params.dt = 0.005;
        params.dt_max = 0.005;
        let mut pipe = CpuPipeline::new(sys, params);
        let mut saw_slide = false;
        for _ in 0..60 {
            pipe.step();
            saw_slide |= pipe
                .contacts()
                .iter()
                .any(|c| c.state == ContactState::Slide);
            // The invariant under test: no surviving closed contact may sit
            // pinned at a saturated edge ratio — sliding past the end must
            // have released it (transfer then drops it or detection re-finds
            // real geometry).
            for c in pipe.contacts() {
                if c.state == ContactState::Slide {
                    assert!(
                        c.edge_ratio < 1.0 && c.edge_ratio > 0.0,
                        "sliding contact pinned at edge end: ratio={}",
                        c.edge_ratio
                    );
                }
            }
            // Once the rock has left the ramp entirely we are done.
            if pipe.sys.blocks[1].centroid().x > 4.0 + s {
                break;
            }
        }
        assert!(saw_slide, "scenario must actually exercise the slide path");
        // The rock must end up past the toe — it was never wedged in place
        // by a contact stuck at the edge end.
        assert!(
            pipe.sys.blocks[1].centroid().x > 3.0,
            "rock stalled at x={}",
            pipe.sys.blocks[1].centroid().x
        );
    }
}
