//! Property-style parity tests for the cell-binned broad phase.
//!
//! The uniform grid is an *indexing* change, not a semantics change: for
//! any block soup it must report exactly the pairs the all-pairs sweep
//! reports — same set, same canonical (i < j, lexicographic) order — on
//! both the serial and the device path. The soups here are chosen to
//! stress the grid's corner cases: uniform scatter, dense clusters,
//! a giant block spanning many cells over random debris, everything
//! crammed into one cell, the empty system, and a single block.
//!
//! A second battery drives a soup block-by-block until the cache's slack
//! budget is consumed, checking after every motion step that the cached
//! candidate filter never misses a pair a fresh re-bin would find, and
//! that the rebuild counter fires only when the slack is actually spent.

use dda_repro::core::contact::{
    broad_phase_serial_ws, detect_broad_gpu, detect_broad_serial, BroadPhaseMode, ContactWorkspace,
    GeomSoa,
};
use dda_repro::core::{Block, BlockMaterial, BlockSystem, JointMaterial};
use dda_repro::geom::{Polygon, Vec2};
use dda_repro::simt::serial::CpuCounter;
use dda_repro::simt::{Device, DeviceProfile};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40())
}

/// Hand-rolled LCG so the soups are reproducible without pulling a rand
/// dependency into the umbrella tests.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
}

fn soup(blocks: Vec<Block>) -> BlockSystem {
    BlockSystem::new(
        blocks,
        BlockMaterial::rock(),
        JointMaterial::frictional(30.0),
    )
}

fn rect_at(rng: &mut Lcg, cx: f64, cy: f64, smin: f64, smax: f64) -> Block {
    let (w, h) = (rng.range(smin, smax), rng.range(smin, smax));
    Block::new(
        Polygon::rect(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0),
        0,
    )
}

fn uniform_soup(rng: &mut Lcg, n: usize, side: f64) -> BlockSystem {
    soup(
        (0..n)
            .map(|_| {
                let (cx, cy) = (rng.range(0.0, side), rng.range(0.0, side));
                rect_at(rng, cx, cy, 0.4, 1.6)
            })
            .collect(),
    )
}

fn clustered_soup(rng: &mut Lcg, clusters: usize, per: usize, side: f64) -> BlockSystem {
    let mut blocks = Vec::new();
    for _ in 0..clusters {
        let (cx, cy) = (rng.range(0.0, side), rng.range(0.0, side));
        for _ in 0..per {
            let (dx, dy) = (rng.range(-1.5, 1.5), rng.range(-1.5, 1.5));
            blocks.push(rect_at(rng, cx + dx, cy + dy, 0.3, 1.0));
        }
    }
    soup(blocks)
}

fn giant_soup(rng: &mut Lcg, n: usize, side: f64) -> BlockSystem {
    let mut blocks = vec![Block::new(Polygon::rect(-1.0, -1.0, side + 1.0, 0.0), 0)];
    for _ in 0..n {
        let (cx, cy) = (rng.range(0.0, side), rng.range(0.05, side / 3.0));
        blocks.push(rect_at(rng, cx, cy, 0.3, 1.2));
    }
    soup(blocks)
}

fn one_cell_soup(rng: &mut Lcg, n: usize) -> BlockSystem {
    // Everything inside a patch smaller than one block extent: the grid
    // degenerates to (nearly) a single occupied cell.
    soup(
        (0..n)
            .map(|_| {
                let (cx, cy) = (rng.range(0.0, 0.5), rng.range(0.0, 0.5));
                rect_at(rng, cx, cy, 0.8, 1.4)
            })
            .collect(),
    )
}

/// All four paths — serial/device × all-pairs/grid — must produce the
/// same canonical pair list.
fn assert_parity(sys: &BlockSystem, range: f64) {
    let mut counter = CpuCounter::default();
    let mut oracle = ContactWorkspace::new();
    broad_phase_serial_ws(sys, range, &mut counter, &mut oracle);

    let mut grid_ser = ContactWorkspace::new();
    detect_broad_serial(
        sys,
        BroadPhaseMode::Grid,
        range,
        0.0,
        &mut counter,
        &mut grid_ser,
    );
    assert_eq!(grid_ser.pairs, oracle.pairs, "serial grid vs all-pairs");

    let dev = k40();
    let soa = GeomSoa::build(sys);
    let mut all_gpu = ContactWorkspace::new();
    detect_broad_gpu(
        &dev,
        &soa,
        BroadPhaseMode::AllPairs,
        range,
        0.0,
        &mut all_gpu,
    );
    assert_eq!(all_gpu.pairs, oracle.pairs, "device all-pairs vs serial");

    let mut grid_gpu = ContactWorkspace::new();
    detect_broad_gpu(&dev, &soa, BroadPhaseMode::Grid, range, 0.0, &mut grid_gpu);
    assert_eq!(grid_gpu.pairs, oracle.pairs, "device grid vs all-pairs");
}

#[test]
fn uniform_soups_match_all_pairs() {
    for seed in 1..=5u64 {
        let mut rng = Lcg(seed);
        let sys = uniform_soup(&mut rng, 120, 28.0);
        for range in [0.0, 0.05, 0.5] {
            assert_parity(&sys, range);
        }
    }
}

#[test]
fn clustered_soups_match_all_pairs() {
    for seed in 10..=14u64 {
        let mut rng = Lcg(seed);
        let sys = clustered_soup(&mut rng, 6, 20, 40.0);
        assert_parity(&sys, 0.05);
        assert_parity(&sys, 0.3);
    }
}

#[test]
fn giant_block_soups_match_all_pairs() {
    for seed in 20..=23u64 {
        let mut rng = Lcg(seed);
        let sys = giant_soup(&mut rng, 80, 50.0);
        assert_parity(&sys, 0.05);
    }
}

#[test]
fn one_cell_soups_match_all_pairs() {
    for seed in 30..=33u64 {
        let mut rng = Lcg(seed);
        let sys = one_cell_soup(&mut rng, 40);
        assert_parity(&sys, 0.05);
    }
}

#[test]
fn empty_and_single_soups_match_all_pairs() {
    let mut rng = Lcg(99);
    assert_parity(&soup(Vec::new()), 0.05);
    let one = soup(vec![rect_at(&mut rng, 3.0, 3.0, 0.5, 1.5)]);
    assert_parity(&one, 0.05);
}

/// Drives blocks step by step until the slack budget is consumed: the
/// cached filter must agree with a fresh re-bin after *every* step, the
/// steps inside the budget must be served from the cache, and the
/// rebuild counter must fire once the accumulated motion spends the
/// slack.
#[test]
fn cache_revalidation_never_misses_a_pair() {
    let (range, slack) = (0.05, 0.35);
    let step_d = 0.06; // per-step max displacement: ~6 steps per budget
    for seed in 40..=42u64 {
        let mut rng = Lcg(seed);
        let mut sys = uniform_soup(&mut rng, 90, 22.0);
        // Per-block drift directions, fixed for the whole run.
        let dirs: Vec<Vec2> = (0..sys.len())
            .map(|_| {
                let a = rng.range(0.0, std::f64::consts::TAU);
                Vec2::new(a.cos(), a.sin())
            })
            .collect();

        let mut counter = CpuCounter::default();
        let mut cached = ContactWorkspace::new();
        let mut fresh = ContactWorkspace::new();
        detect_broad_serial(
            &sys,
            BroadPhaseMode::GridCached,
            range,
            slack,
            &mut counter,
            &mut cached,
        );
        assert_eq!(cached.cache.rebuilds, 1, "first call builds");

        for step in 0..16 {
            // Each block moves by at most step_d (scaled per block so the
            // motions differ); the driver reports the max to the cache,
            // exactly as the pipelines report StepReport::max_displacement.
            let mut maxd = 0.0f64;
            for (b, dir) in sys.blocks.iter_mut().zip(&dirs) {
                let d = step_d * (0.5 + 0.5 * ((step + 1) as f64 % 2.0));
                b.poly = b.poly.translated(Vec2::new(dir.x * d, dir.y * d));
                maxd = maxd.max(d);
            }
            cached.cache.note_motion(maxd);

            detect_broad_serial(
                &sys,
                BroadPhaseMode::GridCached,
                range,
                slack,
                &mut counter,
                &mut cached,
            );
            detect_broad_serial(
                &sys,
                BroadPhaseMode::Grid,
                range,
                slack,
                &mut counter,
                &mut fresh,
            );
            assert_eq!(
                cached.pairs, fresh.pairs,
                "seed {seed} step {step}: cached filter diverged from a fresh re-bin"
            );
        }
        assert!(
            cached.cache.rebuilds >= 2,
            "seed {seed}: 16 steps × {step_d} must exceed slack {slack} and force a rebuild \
             (saw {} rebuilds)",
            cached.cache.rebuilds
        );
        assert!(
            cached.cache.hits >= 4,
            "seed {seed}: most steps must be served from the cache (saw {} hits)",
            cached.cache.hits
        );
    }
}
