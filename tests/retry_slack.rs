//! Broad-phase cache slack accounting under mid-window retries
//! (requires `--features fault-inject`).
//!
//! The displacement-bounded pair cache stays valid while accumulated
//! per-step motion fits inside the slack margin. The subtle case audited
//! here: a step that *retries* (open–close fails → Δt is cut → the
//! attempt re-runs) mid-cache-window. Retries re-solve from the same
//! committed geometry — no attempt moves a vertex until the commit phase
//! — and `note_motion` charges the slack ledger exactly once per
//! committed step, with the *accepted* attempt's maximum displacement
//! (the report field is overwritten per attempt, so the final value
//! belongs to the attempt that actually committed). If the accounting
//! ever charged a rejected attempt's larger displacement, or skipped the
//! charge on a retried step, the cache could go stale and silently drop
//! candidate pairs.
//!
//! The regression pins the contract end to end: a deterministically
//! injected open–close pin (`Fault::OcPin`) forces a real Δt-cut retry
//! several steps into a warm cache window, and the cached run must stay
//! **bitwise identical** — contacts and trajectory — to an `AllPairs`
//! oracle run with the same fault armed. A missed pair cannot hide: it
//! would change the contact stream, the assembled system, and the
//! committed geometry.

#![cfg(feature = "fault-inject")]

use dda_repro::core::contact::BroadPhaseMode;
use dda_repro::core::pipeline::SceneBatch;
use dda_repro::core::{BlockSystem, DdaParams};
use dda_repro::simt::{Device, DeviceProfile, Fault};
use dda_repro::workloads::{rockfall_case, RockfallConfig};

fn k40() -> Device {
    Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
}

fn scene(mode: BroadPhaseMode) -> (BlockSystem, DdaParams) {
    let mut cfg = RockfallConfig::default().with_rocks(8);
    cfg.initial_speed = 2.0;
    let (sys, params) = rockfall_case(&cfg);
    (sys, params.with_broad_phase(mode))
}

/// Bitwise snapshot of scene 0's trajectory state.
fn snapshot(batch: &SceneBatch) -> Vec<u64> {
    let mut bits = Vec::new();
    for b in &batch.sys(0).expect("scene runs").blocks {
        let c = b.centroid();
        bits.push(c.x.to_bits());
        bits.push(c.y.to_bits());
        for dof in 0..6 {
            bits.push(b.velocity[dof].to_bits());
        }
    }
    for c in batch.contacts(0).expect("scene runs") {
        bits.push(c.key());
        bits.push(c.state as u64);
        bits.push(c.normal_disp.to_bits());
    }
    bits
}

/// Runs one scene for `warm` clean steps, then arms an open–close pin
/// that defeats every iteration of the next step's first attempt (forcing
/// a Δt-cut retry), then runs `tail` more steps. Returns per-step
/// snapshots plus the faulted step's retry count.
fn faulted_run(mode: BroadPhaseMode, warm: usize, tail: usize) -> (Vec<Vec<u64>>, usize) {
    let mut batch = SceneBatch::new(k40(), vec![scene(mode)]);
    let mut snaps = Vec::new();
    for _ in 0..warm {
        batch.step();
        snaps.push(snapshot(&batch));
    }
    // Pin open–close for exactly one attempt's worth of iterations: the
    // first attempt burns its whole budget and is rejected, the retry
    // (smaller Δt, zero remaining firings) converges and commits.
    let oc_budget = batch.params(0).expect("scene runs").oc_max_iters;
    batch.device().arm_fault(0, Fault::OcPin, oc_budget);
    let r = batch.step();
    let retries = r[0].retries;
    snaps.push(snapshot(&batch));
    for _ in 0..tail {
        batch.step();
        snaps.push(snapshot(&batch));
    }
    (snaps, retries)
}

#[test]
fn retry_mid_cache_window_never_drops_a_pair() {
    const WARM: usize = 4; // cache built on step 1, window warm by here
    const TAIL: usize = 5; // stale-cache damage would surface downstream

    let (oracle, oracle_retries) = faulted_run(BroadPhaseMode::AllPairs, WARM, TAIL);
    let (cached, cached_retries) = faulted_run(BroadPhaseMode::GridCached, WARM, TAIL);

    assert!(
        oracle_retries >= 1,
        "the pinned open–close iteration must force a real retry"
    );
    assert_eq!(
        oracle_retries, cached_retries,
        "both runs must retry identically for the comparison to bite"
    );
    for (step, (a, b)) in oracle.iter().zip(&cached).enumerate() {
        assert_eq!(
            a, b,
            "step {step}: cached run diverged from the AllPairs oracle — \
             the slack ledger mishandled the retried step"
        );
    }
}

#[test]
fn retry_step_charges_slack_once_and_keeps_the_cache_warm() {
    // White-box companion: the cache must actually be exercised (hits
    // accumulate across the window) and the retried step must not force a
    // spurious rebuild — retries never move geometry, so the candidate
    // set stays valid.
    let mut batch = SceneBatch::new(k40(), vec![scene(BroadPhaseMode::GridCached)]);
    batch.run(4);
    let (hits_before, rebuilds_before) = batch.broad_cache_stats(0).expect("scene runs");
    assert!(hits_before > 0, "warm window must reuse the cache");

    let oc_budget = batch.params(0).expect("scene runs").oc_max_iters;
    batch.device().arm_fault(0, Fault::OcPin, oc_budget);
    let r = batch.step();
    assert!(r[0].retries >= 1, "pin must force a retry");

    let (_, rebuilds_after) = batch.broad_cache_stats(0).expect("scene runs");
    assert!(
        rebuilds_after <= rebuilds_before + 1,
        "a retried step charges motion once — it must not thrash rebuilds \
         (before={rebuilds_before}, after={rebuilds_after})"
    );
    // The scene stays healthy and keeps stepping on the cache.
    batch.run(3);
    let (hits_final, _) = batch.broad_cache_stats(0).expect("scene runs");
    assert!(
        hits_final > hits_before,
        "cache must keep serving after the retry"
    );
}
