//! Analysis control parameters.
//!
//! These correspond to Shi's classical DDA input controls: the time-step
//! size and its adaptive bounds, the maximum-allowed-displacement ratio
//! (loop 2's control parameter), the contact penalty stiffness, and the
//! open–close iteration budget.

use crate::contact::grid::BroadPhaseMode;
use crate::contact::order::ContactOrder;
use dda_solver::{PcgOptions, PrecondKind, SolverPrecision};
use serde::{Deserialize, Serialize};

/// Assembly strategy across the open–close iteration loop.
///
/// `Recompute` re-runs the full Fig 4 contribution stream every iteration
/// and stays the reference oracle. `Incremental` memoizes the stream in an
/// [`crate::assembly_cache::AssemblyCache`]: on iterations after the first
/// only the contacts whose state/slip bookkeeping changed are recomputed
/// and spliced in, and the keyed-reduction plan (radix sort + segment
/// boundaries) is reused while the keys are unchanged. The two modes are
/// bitwise identical by construction (the serial pipeline ignores the
/// knob, like [`ContactOrder`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssemblyReuse {
    /// Full contribution recompute every open–close iteration (oracle).
    #[default]
    Recompute,
    /// Delta recompute + stream splice + reduction-plan reuse.
    Incremental,
}

/// Initial iterate policy for the per-iteration PCG solves.
///
/// `PrevStep` starts every solve from the previous *step's* accepted
/// solution (the historical behavior). `PrevIterate` warm-starts each
/// open–close re-solve from the previous iterate of the same step, which
/// is much closer once the contact states stop churning; convergence is
/// still driven to the same tolerance, so the answer is
/// tolerance-equivalent, not bitwise-identical. Fallback-ladder descents
/// always cold-start from the previous step's solution (deterministic
/// rescue behavior), and the warm iterate is discarded whenever a solve
/// degrades.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverWarmStart {
    /// Every solve starts from the previous step's accepted solution.
    #[default]
    PrevStep,
    /// Re-solves within a step start from the previous healthy iterate.
    PrevIterate,
}

/// DDA analysis parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdaParams {
    /// Current physical time-step size Δt (s). Adapted downward when the
    /// open–close iteration or displacement control fails, and allowed to
    /// recover toward [`DdaParams::dt_max`].
    pub dt: f64,
    /// Upper bound for Δt.
    pub dt_max: f64,
    /// Lower bound for Δt (a step that still fails here is accepted with a
    /// warning, as Shi's code does).
    pub dt_min: f64,
    /// Maximum allowed displacement per step, in absolute length units
    /// (Shi's `g2·w0`). Loop 2 redoes a step whose largest vertex
    /// displacement exceeds **twice** this value.
    pub max_displacement: f64,
    /// Contact penalty spring stiffness `p` (N/m). Shi recommends
    /// 10–100 × E × thickness; the workloads compute it from the stiffest
    /// block material.
    pub penalty: f64,
    /// Shear spring stiffness as a fraction of the normal penalty.
    pub shear_ratio: f64,
    /// Open–close iterations allowed per step before Δt is cut.
    pub oc_max_iters: usize,
    /// Contact search radius `d0` for the narrow phase (inflates bounding
    /// boxes in the broad phase too). Typically `2.5 × max_displacement`.
    pub contact_range: f64,
    /// Tolerance below which a contact is considered just touching
    /// (fraction of `max_displacement`).
    pub touch_tol: f64,
    /// Linear solver controls (the paper caps PCG at 200 iterations).
    pub pcg: PcgOptions,
    /// Preconditioner the solver starts on; the degradation ladder
    /// descends from here (see [`DdaParams::solver_ladder`]). Per-scene:
    /// a stiff scene can opt into AMG2 while its batch-mates stay on
    /// Block-Jacobi.
    pub precond: PrecondKind,
    /// Solver storage precision: `Full` keeps every array fp64; `Mixed`
    /// streams matrix values as fp32 inside an fp64 iterative-refinement
    /// loop (same convergence criterion, roughly half the SpMV traffic).
    ///
    /// The knob stops at the solver: contact detection — including the
    /// broad phase and its displacement-bounded cache — always runs on
    /// the fp64 geometry, so candidate pair sets and cache slack
    /// accounting are identical under either precision.
    pub precision: SolverPrecision,
    /// Dynamics factor in `[0, 1]`: 1 carries full velocity between steps
    /// (dynamic analysis, case 2), 0 restarts each step from rest (static
    /// relaxation, case 1).
    pub dynamics: f64,
    /// Penalty used to anchor fixed-block vertices, as a multiple of the
    /// contact penalty.
    pub fixity_factor: f64,
    /// Broad-phase algorithm: the paper's all-pairs sweep (reference
    /// oracle, the default), the O(n + k) uniform grid, or the grid with
    /// the displacement-bounded pair cache. All three produce identical
    /// pair sets — and therefore bitwise-identical trajectories.
    pub broad_phase: BroadPhaseMode,
    /// Per-block slack margin (length units) for the cached broad phase:
    /// candidates are built at `contact_range + broad_slack` and stay
    /// valid while accumulated per-step motion is within the slack.
    /// Larger values re-bin less often but filter more candidates.
    pub broad_slack: f64,
    /// Contact-stream scheduling order for the GPU kernels: `Discovery`
    /// walks contacts in pair-discovery order; `ClassSorted` schedules
    /// them through the persistent class ordering cache so warps stay
    /// `(category, kind)`-uniform at the judgment sites. Scheduling is a
    /// permutation of *processing* order only — outputs are bitwise
    /// identical either way (and the serial pipeline ignores the knob).
    pub contact_order: ContactOrder,
    /// Assembly strategy across open–close iterations (see
    /// [`AssemblyReuse`]); bitwise-inert, like `contact_order`.
    pub assembly_reuse: AssemblyReuse,
    /// Initial-iterate policy for the per-iteration solves (see
    /// [`SolverWarmStart`]); `PrevIterate` trades bitwise reproducibility
    /// of intermediate iterates for fewer PCG iterations at the same
    /// converged tolerance.
    pub warm_start: SolverWarmStart,
}

impl DdaParams {
    /// Sensible defaults for a model with characteristic block size
    /// `block_size` (m) and stiffest Young's modulus `young` (Pa).
    pub fn for_model(block_size: f64, young: f64) -> DdaParams {
        let max_displacement = 0.01 * block_size;
        // Step size from the elastic time scale of one block
        // (≈ wave transit time): keeps the inertia term comparable to the
        // penalty stiffness, which is what conditions the system well
        // enough for PCG — the paper notes the physical time per step "is
        // usually less than 0.0001 s" (§IV-A).
        let dt = (0.5 * block_size * (2500.0 / young).sqrt()).clamp(1e-5, 0.01);
        DdaParams {
            dt,
            dt_max: dt,
            dt_min: 1e-7,
            max_displacement,
            penalty: 10.0 * young,
            shear_ratio: 1.0,
            oc_max_iters: 6,
            contact_range: 2.5 * max_displacement,
            touch_tol: 0.2,
            pcg: PcgOptions {
                tol: 1e-8,
                max_iters: 300,
            },
            precond: PrecondKind::default(),
            precision: SolverPrecision::default(),
            dynamics: 1.0,
            fixity_factor: 10.0,
            broad_phase: BroadPhaseMode::default(),
            // Accepted steps move at most 2·max_displacement, so four
            // worst-case steps fit the slack budget — in practice far
            // more, since settled scenes move much less per step.
            broad_slack: 8.0 * max_displacement,
            contact_order: ContactOrder::default(),
            assembly_reuse: AssemblyReuse::default(),
            warm_start: SolverWarmStart::default(),
        }
    }

    /// Selects the broad-phase algorithm (builder style).
    pub fn with_broad_phase(mut self, mode: BroadPhaseMode) -> DdaParams {
        self.broad_phase = mode;
        self
    }

    /// Selects the contact-stream scheduling order (builder style).
    pub fn with_contact_order(mut self, o: ContactOrder) -> DdaParams {
        self.contact_order = o;
        self
    }

    /// Selects the assembly-reuse strategy (builder style).
    pub fn with_assembly_reuse(mut self, r: AssemblyReuse) -> DdaParams {
        self.assembly_reuse = r;
        self
    }

    /// Selects the solver warm-start policy (builder style).
    pub fn with_warm_start(mut self, w: SolverWarmStart) -> DdaParams {
        self.warm_start = w;
        self
    }

    /// Selects the starting preconditioner rung (builder style).
    pub fn with_precond(mut self, p: PrecondKind) -> DdaParams {
        self.precond = p;
        self
    }

    /// Selects the solver storage precision (builder style).
    pub fn with_precision(mut self, p: SolverPrecision) -> DdaParams {
        self.precision = p;
        self
    }

    /// The degradation ladder the solver walks, derived from the
    /// configured starting rung: AMG2 → ILU0 → SSOR-AI → Block-Jacobi →
    /// Jacobi, entered at [`DdaParams::precond`]. Plain CG has no rungs
    /// to descend to.
    pub fn solver_ladder(&self) -> &'static [PrecondKind] {
        self.precond.ladder()
    }

    /// Static-analysis variant (velocities zeroed each step — the paper's
    /// case 1 "stable analysis of a slope").
    pub fn static_analysis(mut self) -> DdaParams {
        self.dynamics = 0.0;
        self
    }

    /// Cuts the time step after a failed step; returns false when already
    /// at the floor.
    pub fn reduce_dt(&mut self) -> bool {
        if self.dt <= self.dt_min {
            return false;
        }
        self.dt = (self.dt * 0.3).max(self.dt_min);
        true
    }

    /// Gently recovers the time step after successful steps.
    pub fn recover_dt(&mut self) {
        self.dt = (self.dt * 1.3).min(self.dt_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_model() {
        let p = DdaParams::for_model(2.0, 5e9);
        assert!((p.max_displacement - 0.02).abs() < 1e-12);
        assert!((p.contact_range - 0.05).abs() < 1e-12);
        assert_eq!(p.penalty, 50e9);
        assert_eq!(p.pcg.max_iters, 300);
    }

    #[test]
    fn dt_reduction_and_recovery() {
        let mut p = DdaParams::for_model(1.0, 1e9);
        let dt0 = p.dt;
        assert!(p.reduce_dt());
        assert!(p.dt < dt0);
        for _ in 0..100 {
            p.recover_dt();
        }
        assert_eq!(p.dt, p.dt_max);
        p.dt = p.dt_min;
        assert!(!p.reduce_dt(), "at the floor reduction must fail");
    }

    #[test]
    fn static_mode() {
        let p = DdaParams::for_model(1.0, 1e9).static_analysis();
        assert_eq!(p.dynamics, 0.0);
    }

    #[test]
    fn solver_ladder_derives_from_configured_rung() {
        let p = DdaParams::for_model(1.0, 1e9);
        assert_eq!(p.precond, PrecondKind::BlockJacobi, "default start rung");
        assert_eq!(p.precision, SolverPrecision::Full, "default precision");
        assert_eq!(
            p.solver_ladder(),
            &[PrecondKind::BlockJacobi, PrecondKind::Jacobi]
        );
        let p = p.with_precond(PrecondKind::Amg2);
        assert_eq!(p.solver_ladder()[0], PrecondKind::Amg2);
        assert_eq!(
            *p.solver_ladder().last().expect("non-empty ladder"),
            PrecondKind::Jacobi,
            "every ladder bottoms out at scalar Jacobi"
        );
        let p = p.with_precond(PrecondKind::None);
        assert_eq!(
            p.solver_ladder(),
            &[PrecondKind::None],
            "plain CG: no rungs"
        );
    }
}
