//! Per-thread kernel context and warp-level aggregation.
//!
//! A [`Lane`] is the view one simulated CUDA thread has of the machine. The
//! executor runs the 32 lanes of a warp one after another, each recording an
//! ordered trace of its memory accesses and branch decisions; the warp
//! collector then *replays the warp in lockstep* — zipping the k-th access
//! of every lane — to derive coalesced transaction counts, shared-memory
//! bank conflicts, and branch-divergence groups exactly as the hardware
//! would observe them.

use crate::buffer::GBuf;
use crate::stats::KernelStats;
use crate::{SMEM_BANKS, TEX_TRANSACTION_BYTES, TRANSACTION_BYTES, WARP_SIZE};

/// Kind of a recorded global-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemKind {
    /// Load through L1/L2 (128-byte transactions).
    Load,
    /// Store through L1/L2 (128-byte transactions).
    Store,
    /// Load through the texture path (32-byte transactions) — what the
    /// paper uses for the irregular vector reads in SpMV.
    Tex,
}

#[derive(Debug, Clone, Copy)]
struct MemAcc {
    addr: u64,
    bytes: u32,
    kind: MemKind,
}

/// Ordered trace of one lane's execution.
#[derive(Debug, Default)]
pub(crate) struct LaneRec {
    flops: u64,
    mem: Vec<MemAcc>,
    smem: Vec<u32>,
    branches: Vec<(u32, bool)>,
    shuffles: u64,
    syncs: u64,
    active: bool,
}

impl LaneRec {
    /// Marks the lane as active in the current warp (tail warps leave some
    /// lanes inactive).
    pub(crate) fn set_active(&mut self) {
        self.active = true;
    }

    pub(crate) fn clear(&mut self) {
        self.flops = 0;
        self.mem.clear();
        self.smem.clear();
        self.branches.clear();
        self.shuffles = 0;
        self.syncs = 0;
        self.active = false;
    }
}

/// Execution context handed to a per-thread kernel closure.
///
/// All instrumented operations are *also* the real operation: [`Lane::ld`]
/// returns the element, [`Lane::st`] writes it. Pure arithmetic is the
/// kernel's own Rust code, accounted via [`Lane::flop`].
pub struct Lane<'w> {
    /// Global thread index (`blockIdx * blockDim + threadIdx` equivalent).
    pub gid: usize,
    /// Lane index within the warp, `0..32`.
    pub lane_id: u32,
    /// Warp index within the launch.
    pub warp_id: usize,
    pub(crate) epoch: u32,
    pub(crate) rec: &'w mut LaneRec,
}

impl<'w> Lane<'w> {
    /// Loads element `i` of `buf` through the L1/L2 path.
    #[inline]
    pub fn ld<T: Copy + Send>(&mut self, buf: &GBuf<T>, i: usize) -> T {
        self.rec.mem.push(MemAcc {
            addr: buf.addr(i),
            bytes: buf.elem_bytes(),
            kind: MemKind::Load,
        });
        buf.get(i)
    }

    /// Loads element `i` of `buf` through the texture path (32-byte
    /// transactions; cheaper for irregular gathers).
    #[inline]
    pub fn ld_tex<T: Copy + Send>(&mut self, buf: &GBuf<T>, i: usize) -> T {
        self.rec.mem.push(MemAcc {
            addr: buf.addr(i),
            bytes: buf.elem_bytes(),
            kind: MemKind::Tex,
        });
        buf.get(i)
    }

    /// Stores `v` into element `i` of `buf`.
    ///
    /// Within one launch no other lane may store to the same element
    /// (CUDA's data-race rule); the device's conflict checker enforces this
    /// when armed.
    #[inline]
    pub fn st<T: Copy + Send>(&mut self, buf: &GBuf<T>, i: usize, v: T) {
        self.rec.mem.push(MemAcc {
            addr: buf.addr(i),
            bytes: buf.elem_bytes(),
            kind: MemKind::Store,
        });
        buf.set(i, v, self.epoch);
    }

    /// Records `n` floating-point operations of lane work.
    #[inline]
    pub fn flop(&mut self, n: u32) {
        self.rec.flops += u64::from(n);
    }

    /// Records a special-function operation (`tan`, `sqrt`, `atan2`, …),
    /// costed as 8 flops — the SFU throughput ratio on Kepler.
    #[inline]
    pub fn special(&mut self, n: u32) {
        self.rec.flops += 8 * u64::from(n);
    }

    /// Records a branch decision at static `site` and returns `taken`, so
    /// kernels write `if lane.branch(SITE_X, cond) { … }`. Lanes of one warp
    /// disagreeing at the same site and occurrence form a divergence group.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) -> bool {
        self.rec.branches.push((site, taken));
        taken
    }

    /// Records a shared-memory read of word index `word` (bank = `word % 32`).
    #[inline]
    pub fn smem_ld(&mut self, word: u32) {
        self.rec.smem.push(word);
    }

    /// Records a shared-memory write of word index `word`.
    #[inline]
    pub fn smem_st(&mut self, word: u32) {
        self.rec.smem.push(word);
    }

    /// Records a warp shuffle operation.
    #[inline]
    pub fn shfl(&mut self, n: u32) {
        self.rec.shuffles += u64::from(n);
    }

    /// Records a block-wide barrier.
    #[inline]
    pub fn sync(&mut self) {
        self.rec.syncs += 1;
    }
}

/// Transaction-segment keys plus `(width, read, tex)` divergence groups.
type AggScratch = (Vec<u64>, Vec<(u32, bool, bool)>);

thread_local! {
    /// Reused transaction-segment and divergence-group scratch, so warp
    /// aggregation in the steady-state hot loop never allocates.
    static AGG_SCRATCH: std::cell::RefCell<AggScratch> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Folds the 32 lane traces of one warp into `stats`, applying the lockstep
/// coalescing / bank-conflict / divergence rules.
pub(crate) fn aggregate_warp(lanes: &[LaneRec], stats: &mut KernelStats) {
    let active = || lanes.iter().filter(|l| l.active);
    if active().next().is_none() {
        return;
    }
    AGG_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (segs, groups) = &mut *scratch;

        // --- SIMT compute work ---------------------------------------------
        let mut max_flops = 0u64;
        for l in active() {
            stats.flops += l.flops;
            max_flops = max_flops.max(l.flops);
            stats.gmem_bytes += l.mem.iter().map(|m| u64::from(m.bytes)).sum::<u64>();
        }
        stats.warp_flops += max_flops * WARP_SIZE as u64;

        // --- Global memory: zip k-th access of each lane -------------------
        let max_mem = active().map(|l| l.mem.len()).max().unwrap_or(0);
        for k in 0..max_mem {
            for kind in [MemKind::Load, MemKind::Store, MemKind::Tex] {
                segs.clear();
                let granularity = if kind == MemKind::Tex {
                    TEX_TRANSACTION_BYTES
                } else {
                    TRANSACTION_BYTES
                };
                for l in active() {
                    if let Some(m) = l.mem.get(k) {
                        if m.kind == kind {
                            // An element spanning a boundary costs both segments.
                            let first = m.addr / granularity;
                            let last = (m.addr + u64::from(m.bytes) - 1) / granularity;
                            for s in first..=last {
                                segs.push(s);
                            }
                        }
                    }
                }
                if segs.is_empty() {
                    continue;
                }
                segs.sort_unstable();
                segs.dedup();
                if kind == MemKind::Tex {
                    stats.tex_transactions += segs.len() as u64;
                } else {
                    stats.gmem_transactions += segs.len() as u64;
                }
            }
        }

        // --- Shared memory: bank conflicts per lockstep access --------------
        let max_smem = active().map(|l| l.smem.len()).max().unwrap_or(0);
        for k in 0..max_smem {
            let mut bank_count = [0u32; SMEM_BANKS];
            let mut n = 0u64;
            for l in active() {
                if let Some(&w) = l.smem.get(k) {
                    bank_count[(w as usize) % SMEM_BANKS] += 1;
                    n += 1;
                }
            }
            if n > 0 {
                stats.smem_accesses += n;
                let max_mult = *bank_count.iter().max().unwrap();
                stats.smem_replays += u64::from(max_mult.saturating_sub(1));
            }
        }

        // --- Branch divergence: zip k-th branch, grouped by site -----------
        let max_br = active().map(|l| l.branches.len()).max().unwrap_or(0);
        for k in 0..max_br {
            // Group the k-th decision of each lane by site; within a site
            // group, mixed outcomes form a divergence event.
            groups.clear(); // entries are (site, saw_taken, saw_not)
            for l in active() {
                if let Some(&(site, taken)) = l.branches.get(k) {
                    match groups.iter_mut().find(|g| g.0 == site) {
                        Some(g) => {
                            g.1 |= taken;
                            g.2 |= !taken;
                        }
                        None => groups.push((site, taken, !taken)),
                    }
                }
            }
            for &(_, saw_taken, saw_not) in groups.iter() {
                stats.branch_groups += 1;
                if saw_taken && saw_not {
                    stats.divergent_branch_groups += 1;
                }
            }
        }

        // --- Warp-uniform ops ----------------------------------------------
        stats.shuffles += active().map(|l| l.shuffles).max().unwrap_or(0);
        stats.syncs += active().map(|l| l.syncs).max().unwrap_or(0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_warp() -> Vec<LaneRec> {
        (0..WARP_SIZE).map(|_| LaneRec::default()).collect()
    }

    fn run_lane(rec: &mut LaneRec, gid: usize, f: impl FnOnce(&mut Lane)) {
        rec.clear();
        rec.active = true;
        let mut lane = Lane {
            gid,
            lane_id: (gid % WARP_SIZE) as u32,
            warp_id: gid / WARP_SIZE,
            epoch: 1,
            rec,
        };
        f(&mut lane);
    }

    #[test]
    fn coalesced_load_is_two_transactions_for_f64() {
        // 32 lanes loading consecutive f64 = 256 bytes = 2 × 128-byte
        // transactions.
        let data = vec![1.0f64; 64];
        let buf = GBuf::new_ro(&data, 0);
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                let _ = lane.ld(&buf, lane.gid);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.gmem_transactions, 2);
        assert_eq!(stats.gmem_bytes, 256);
        assert!((stats.overfetch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coalesced_f32_load_charges_half_the_bytes_of_f64() {
        // The mixed-precision matrix streams rely on the byte accounting
        // following `size_of::<T>()`: 32 lanes loading consecutive f32 =
        // 128 bytes = 1 transaction, exactly half the f64 case above.
        let data = vec![1.0f32; 64];
        let buf = GBuf::new_ro(&data, 0);
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                let _ = lane.ld(&buf, lane.gid);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.gmem_bytes, 128, "f32 must charge 4 bytes per lane");
        assert_eq!(stats.gmem_transactions, 1);
    }

    #[test]
    fn strided_load_is_fully_uncoalesced() {
        // Stride-16 f64 access: every lane touches its own 128-byte segment.
        let data = vec![0.0f64; 16 * 32];
        let buf = GBuf::new_ro(&data, 0);
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                let _ = lane.ld(&buf, lane.gid * 16);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.gmem_transactions, 32);
        assert!(stats.overfetch() > 15.0);
    }

    #[test]
    fn broadcast_load_is_one_transaction() {
        let data = vec![0.0f64; 4];
        let buf = GBuf::new_ro(&data, 0);
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                let _ = lane.ld(&buf, 0);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.gmem_transactions, 1);
    }

    #[test]
    fn texture_path_uses_32_byte_transactions() {
        let data = vec![0.0f64; 512];
        let buf = GBuf::new_ro(&data, 0);
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                // Scattered gather, 64 elements apart.
                let _ = lane.ld_tex(&buf, (lane.gid * 64) % 512);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.gmem_transactions, 0);
        // 8 distinct addresses (gid*64 mod 512 cycles through 8 values),
        // each its own 32-byte segment.
        assert_eq!(stats.tex_transactions, 8);
    }

    #[test]
    fn divergence_detected_on_mixed_outcomes() {
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                let c = lane.branch(0, lane.gid % 2 == 0);
                if c {
                    lane.flop(4);
                }
                lane.branch(1, true); // uniform branch
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.branch_groups, 2);
        assert_eq!(stats.divergent_branch_groups, 1);
        assert!((stats.divergence_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simt_work_counts_idle_lanes() {
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                if lane.gid == 0 {
                    lane.flop(100); // one busy lane
                }
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.flops, 100);
        assert_eq!(stats.warp_flops, 100 * 32);
        assert!((stats.simt_efficiency() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn bank_conflicts_counted() {
        let mut warp = fresh_warp();
        // All 32 lanes hit bank 0 (words 0, 32, 64, …): 31 replays.
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                lane.smem_ld((lane.gid as u32) * 32);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.smem_accesses, 32);
        assert_eq!(stats.smem_replays, 31);

        // Conflict-free: each lane its own bank.
        let mut warp2 = fresh_warp();
        for (i, rec) in warp2.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                lane.smem_ld(lane.gid as u32);
            });
        }
        let mut stats2 = KernelStats::default();
        aggregate_warp(&warp2, &mut stats2);
        assert_eq!(stats2.smem_replays, 0);
    }

    #[test]
    fn partial_warp_aggregates_only_active_lanes() {
        let mut warp = fresh_warp();
        // Only 5 active lanes.
        for (i, rec) in warp.iter_mut().take(5).enumerate() {
            run_lane(rec, i, |lane| {
                lane.flop(10);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        assert_eq!(stats.flops, 50);
        assert_eq!(stats.warp_flops, 320); // still a full warp of lockstep work
    }

    #[test]
    fn stores_and_loads_group_separately() {
        let mut a = vec![0.0f64; 32];
        let b = vec![1.0f64; 32];
        let ba = GBuf::new_rw(&mut a, 0, false);
        let bb = GBuf::new_ro(&b, 1 << 20);
        let mut warp = fresh_warp();
        for (i, rec) in warp.iter_mut().enumerate() {
            run_lane(rec, i, |lane| {
                let v = lane.ld(&bb, lane.gid);
                lane.st(&ba, lane.gid, v * 2.0);
            });
        }
        let mut stats = KernelStats::default();
        aggregate_warp(&warp, &mut stats);
        // 2 coalesced transactions for the load + 2 for the store.
        assert_eq!(stats.gmem_transactions, 4);
        drop(ba);
        assert_eq!(a[7], 2.0);
    }
}
