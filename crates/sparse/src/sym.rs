//! The canonical half-stored symmetric block matrix.
//!
//! "As A is symmetric, only the upper entry of A is computed and stored"
//! (§III-C). [`SymBlockMatrix`] is exactly that representation: one dense
//! 6×6 sub-matrix per diagonal block plus the strictly-upper nonzero
//! sub-matrices sorted by `(row, col)`. It is what stiffness assembly
//! produces, what the preconditioners factor, and what every storage format
//! in this crate converts from.

use crate::block6::{vec6_add_assign, Block6, Vec6, BLOCK_DOF};
use serde::{Deserialize, Serialize};

/// A symmetric block matrix stored as diagonal + strict upper triangle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymBlockMatrix {
    /// Diagonal sub-matrices, one per block row (all nonzero in DDA).
    pub diag: Vec<Block6>,
    /// Strictly-upper nonzero sub-matrices, sorted by `(row, col)`,
    /// without duplicates. Invariant: `row < col < diag.len()`.
    pub upper: Vec<(u32, u32, Block6)>,
}

impl SymBlockMatrix {
    /// Creates a matrix from parts, validating and normalising the upper
    /// entries (sorts by `(row, col)` and sums duplicates).
    ///
    /// # Panics
    /// Panics when an upper entry is not strictly upper (`row >= col`) or
    /// indexes past `diag.len()`.
    pub fn new(diag: Vec<Block6>, mut upper: Vec<(u32, u32, Block6)>) -> Self {
        let n = diag.len() as u32;
        for &(r, c, _) in &upper {
            assert!(r < c, "upper entry ({r},{c}) is not strictly upper");
            assert!(c < n, "upper entry ({r},{c}) out of range (n = {n})");
        }
        upper.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, Block6)> = Vec::with_capacity(upper.len());
        for (r, c, b) in upper {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += b,
                _ => merged.push((r, c, b)),
            }
        }
        SymBlockMatrix {
            diag,
            upper: merged,
        }
    }

    /// Number of block rows.
    pub fn n_blocks(&self) -> usize {
        self.diag.len()
    }

    /// Scalar dimension (`6 × n_blocks`).
    pub fn dim(&self) -> usize {
        self.diag.len() * BLOCK_DOF
    }

    /// Number of strictly-upper nonzero sub-matrices.
    pub fn n_upper(&self) -> usize {
        self.upper.len()
    }

    /// Reference symmetric SpMV: `y = A x`, looping diagonal, upper, and
    /// mirrored lower contributions. The ground truth every SpMV kernel in
    /// [`crate::spmv`] is tested against.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let n = self.n_blocks();
        let mut y = vec![0.0; self.dim()];
        for i in 0..n {
            let xi: &Vec6 = x[i * 6..i * 6 + 6].try_into().unwrap();
            let yi = self.diag[i].mul_vec(xi);
            vec6_add_assign((&mut y[i * 6..i * 6 + 6]).try_into().unwrap(), &yi);
        }
        for &(r, c, ref b) in &self.upper {
            let (r, c) = (r as usize, c as usize);
            let xc: &Vec6 = x[c * 6..c * 6 + 6].try_into().unwrap();
            let up = b.mul_vec(xc);
            vec6_add_assign((&mut y[r * 6..r * 6 + 6]).try_into().unwrap(), &up);
            let xr: &Vec6 = x[r * 6..r * 6 + 6].try_into().unwrap();
            let low = b.tr_mul_vec(xr);
            vec6_add_assign((&mut y[c * 6..c * 6 + 6]).try_into().unwrap(), &low);
        }
        y
    }

    /// Expands to a dense row-major matrix (tests and tiny systems only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let d = self.dim();
        let mut m = vec![vec![0.0; d]; d];
        for (i, b) in self.diag.iter().enumerate() {
            for r in 0..6 {
                for c in 0..6 {
                    m[i * 6 + r][i * 6 + c] = b.0[r][c];
                }
            }
        }
        for &(br, bc, ref b) in &self.upper {
            let (br, bc) = (br as usize, bc as usize);
            for r in 0..6 {
                for c in 0..6 {
                    m[br * 6 + r][bc * 6 + c] = b.0[r][c];
                    m[bc * 6 + c][br * 6 + r] = b.0[r][c];
                }
            }
        }
        m
    }

    /// True when every diagonal sub-matrix is symmetric within `tol`
    /// (required for the whole matrix to be symmetric, since off-diagonal
    /// symmetry is structural).
    pub fn diag_symmetric(&self, tol: f64) -> bool {
        self.diag.iter().all(|b| b.is_symmetric(tol))
    }

    /// A reproducible random symmetric positive-definite test matrix with
    /// `n` block rows and roughly `avg_neighbors` upper entries per row.
    ///
    /// Used by tests and benches that need DDA-shaped matrices without
    /// running the pipeline: entries are random but the diagonal is boosted
    /// to dominance, which is how the inertia term conditions the real
    /// stiffness matrix.
    pub fn random_spd(n: usize, avg_neighbors: f64, seed: u64) -> SymBlockMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut rand_f = {
            let mut n2 = next;
            move || (n2() >> 11) as f64 / (1u64 << 53) as f64
        };

        let mut upper: Vec<(u32, u32, Block6)> = Vec::new();
        let p_edge = if n > 1 {
            (avg_neighbors / (n - 1) as f64).min(1.0)
        } else {
            0.0
        };
        // Band-limited neighbours keep the structure slope-like (contacts
        // are spatially local).
        let band = ((avg_neighbors * 4.0).ceil() as usize).max(2);
        for r in 0..n {
            for c in (r + 1)..n.min(r + 1 + band) {
                if rand_f() < p_edge * (n - 1) as f64 / band as f64 {
                    let mut b = Block6::ZERO;
                    for i in 0..6 {
                        for j in 0..6 {
                            b.0[i][j] = rand_f() * 2.0 - 1.0;
                        }
                    }
                    upper.push((r as u32, c as u32, b));
                }
            }
        }

        // Diagonal: symmetric, boosted to strict dominance.
        let mut diag = vec![Block6::ZERO; n];
        let mut row_mass = vec![0.0f64; n];
        for &(r, c, ref b) in &upper {
            let m = b.max_abs() * 6.0;
            row_mass[r as usize] += m;
            row_mass[c as usize] += m;
        }
        for (i, d) in diag.iter_mut().enumerate() {
            for r in 0..6 {
                for c in r..6 {
                    let v = rand_f() * 0.5 - 0.25;
                    d.0[r][c] = v;
                    d.0[c][r] = v;
                }
            }
            d.add_diag(row_mass[i] + 6.0 + rand_f());
        }
        SymBlockMatrix::new(diag, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SymBlockMatrix {
        // 3 blocks, upper entries (0,1) and (1,2).
        let diag = vec![
            Block6::identity().scale(10.0),
            Block6::identity().scale(20.0),
            Block6::identity().scale(30.0),
        ];
        let mut b01 = Block6::ZERO;
        b01.0[0][1] = 2.0;
        let mut b12 = Block6::identity();
        b12.0[5][0] = -1.0;
        SymBlockMatrix::new(diag, vec![(1, 2, b12), (0, 1, b01)])
    }

    #[test]
    fn construction_sorts_and_validates() {
        let m = small();
        assert_eq!(m.n_blocks(), 3);
        assert_eq!(m.dim(), 18);
        assert_eq!(m.n_upper(), 2);
        assert_eq!((m.upper[0].0, m.upper[0].1), (0, 1));
        assert_eq!((m.upper[1].0, m.upper[1].1), (1, 2));
    }

    #[test]
    fn duplicates_are_summed() {
        let diag = vec![Block6::identity(); 2];
        let m = SymBlockMatrix::new(
            diag,
            vec![
                (0, 1, Block6::identity()),
                (0, 1, Block6::identity().scale(2.0)),
            ],
        );
        assert_eq!(m.n_upper(), 1);
        assert_eq!(m.upper[0].2, Block6::identity().scale(3.0));
    }

    #[test]
    #[should_panic(expected = "not strictly upper")]
    fn rejects_lower_entry() {
        SymBlockMatrix::new(
            vec![Block6::identity(); 2],
            vec![(1, 1, Block6::identity())],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        SymBlockMatrix::new(
            vec![Block6::identity(); 2],
            vec![(0, 5, Block6::identity())],
        );
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = small();
        let x: Vec<f64> = (0..18).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let y = m.mul_vec(&x);
        let dense = m.to_dense();
        for r in 0..18 {
            let expect: f64 = (0..18).map(|c| dense[r][c] * x[c]).sum();
            assert!((y[r] - expect).abs() < 1e-12, "row {r}");
        }
    }

    #[test]
    fn dense_is_symmetric() {
        let m = small();
        let d = m.to_dense();
        for r in 0..18 {
            for c in 0..18 {
                assert_eq!(d[r][c], d[c][r]);
            }
        }
    }

    #[test]
    fn random_spd_shape_and_symmetry() {
        let m = SymBlockMatrix::random_spd(50, 4.0, 42);
        assert_eq!(m.n_blocks(), 50);
        assert!(m.n_upper() > 20, "expected a meaningful edge count");
        assert!(m.diag_symmetric(0.0));
        // Upper entries sorted and strictly upper.
        for w in m.upper.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
        // Deterministic for equal seeds, different across seeds.
        let m2 = SymBlockMatrix::random_spd(50, 4.0, 42);
        assert_eq!(m, m2);
        let m3 = SymBlockMatrix::random_spd(50, 4.0, 43);
        assert_ne!(m, m3);
    }

    #[test]
    fn random_spd_is_diagonally_dominant_scalarwise() {
        let m = SymBlockMatrix::random_spd(30, 3.0, 7);
        let d = m.to_dense();
        for r in 0..m.dim() {
            let off: f64 = (0..m.dim())
                .filter(|&c| c != r)
                .map(|c| d[r][c].abs())
                .sum();
            assert!(
                d[r][r] > off,
                "row {r}: diag {} vs off-diag sum {off}",
                d[r][r]
            );
        }
    }
}
