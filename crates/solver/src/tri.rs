//! Level-scheduled sparse triangular solves.
//!
//! Triangular solves are the GPU's weak spot: row `i` cannot start until all
//! its dependencies finish, so the only parallelism is *within a level* of
//! the dependency DAG. Level scheduling (the algorithm cuSPARSE's
//! `csrsv_analysis` performs) groups independent rows; the solve then issues
//! **one kernel launch per level**, each usually far below full occupancy.
//! The paper measures this cost as ~11× a single SpMV (Fig 10) and cites a
//! level-scheduling study that only recovered ~20% — the structure below
//! reproduces that behaviour through launch overhead and under-occupancy,
//! not through a hard-coded constant.

use dda_simt::Device;
use dda_sparse::Csr;

/// Rows grouped by dependency level.
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    /// `levels[k]` lists the rows solvable in parallel at step `k`.
    pub levels: Vec<Vec<u32>>,
}

impl LevelSchedule {
    /// Number of levels (sequential kernel launches per solve).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Average rows per level — the available parallelism.
    pub fn avg_width(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        let total: usize = self.levels.iter().map(|l| l.len()).sum();
        total as f64 / self.levels.len() as f64
    }
}

/// Builds the level schedule of a **lower** triangular matrix (dependencies
/// are the strictly-lower entries of each row).
pub fn levels_lower(l: &Csr) -> LevelSchedule {
    let n = l.dim;
    let mut level = vec![0u32; n];
    let mut max_level = 0u32;
    for i in 0..n {
        let mut lv = 0u32;
        for p in l.row_ptr[i] as usize..l.row_ptr[i + 1] as usize {
            let j = l.col_idx[p] as usize;
            if j < i {
                lv = lv.max(level[j] + 1);
            }
        }
        level[i] = lv;
        max_level = max_level.max(lv);
    }
    collect_levels(&level, max_level)
}

/// Builds the level schedule of an **upper** triangular matrix
/// (dependencies are the strictly-upper entries; rows resolve from the
/// bottom up).
pub fn levels_upper(u: &Csr) -> LevelSchedule {
    let n = u.dim;
    let mut level = vec![0u32; n];
    let mut max_level = 0u32;
    for i in (0..n).rev() {
        let mut lv = 0u32;
        for p in u.row_ptr[i] as usize..u.row_ptr[i + 1] as usize {
            let j = u.col_idx[p] as usize;
            if j > i {
                lv = lv.max(level[j] + 1);
            }
        }
        level[i] = lv;
        max_level = max_level.max(lv);
    }
    collect_levels(&level, max_level)
}

fn collect_levels(level: &[u32], max_level: u32) -> LevelSchedule {
    let mut levels = vec![Vec::new(); max_level as usize + 1];
    for (i, &lv) in level.iter().enumerate() {
        levels[lv as usize].push(i as u32);
    }
    LevelSchedule { levels }
}

/// Solves `L x = b` with `L` lower triangular stored in CSR. When
/// `unit_diag` is true the diagonal is implicitly 1 and need not be stored;
/// otherwise the diagonal entry must be present in each row.
pub fn solve_lower(
    dev: &Device,
    l: &Csr,
    b: &[f64],
    sched: &LevelSchedule,
    unit_diag: bool,
) -> Vec<f64> {
    let n = l.dim;
    assert_eq!(b.len(), n);
    let mut x = vec![0.0f64; n];
    let b_rp = dev.bind_ro(&l.row_ptr);
    let b_ci = dev.bind_ro(&l.col_idx);
    let b_v = dev.bind_ro(&l.values);
    let b_b = dev.bind_ro(b);
    let b_x = dev.bind(&mut x);
    for rows in &sched.levels {
        let b_rows = dev.bind_ro(rows);
        dev.launch("tss.lower_level", rows.len(), |lane| {
            let i = lane.ld(&b_rows, lane.gid) as usize;
            let mut acc = lane.ld(&b_b, i);
            let mut diag = 1.0;
            for p in lane.ld(&b_rp, i) as usize..lane.ld(&b_rp, i + 1) as usize {
                let j = lane.ld_tex(&b_ci, p) as usize;
                let v = lane.ld_tex(&b_v, p);
                if lane.branch(0, j < i) {
                    lane.flop(2);
                    acc -= v * lane.ld_tex(&b_x, j);
                } else if j == i {
                    diag = v;
                }
            }
            lane.flop(1);
            let xv = if unit_diag { acc } else { acc / diag };
            lane.st(&b_x, i, xv);
        });
    }
    drop(b_x);
    x
}

/// Solves `U x = b` with `U` upper triangular (diagonal stored) in CSR.
pub fn solve_upper(dev: &Device, u: &Csr, b: &[f64], sched: &LevelSchedule) -> Vec<f64> {
    let n = u.dim;
    assert_eq!(b.len(), n);
    let mut x = vec![0.0f64; n];
    let b_rp = dev.bind_ro(&u.row_ptr);
    let b_ci = dev.bind_ro(&u.col_idx);
    let b_v = dev.bind_ro(&u.values);
    let b_b = dev.bind_ro(b);
    let b_x = dev.bind(&mut x);
    for rows in &sched.levels {
        let b_rows = dev.bind_ro(rows);
        dev.launch("tss.upper_level", rows.len(), |lane| {
            let i = lane.ld(&b_rows, lane.gid) as usize;
            let mut acc = lane.ld(&b_b, i);
            let mut diag = 1.0;
            for p in lane.ld(&b_rp, i) as usize..lane.ld(&b_rp, i + 1) as usize {
                let j = lane.ld_tex(&b_ci, p) as usize;
                let v = lane.ld_tex(&b_v, p);
                if lane.branch(0, j > i) {
                    lane.flop(2);
                    acc -= v * lane.ld_tex(&b_x, j);
                } else if j == i {
                    diag = v;
                }
            }
            lane.flop(1);
            lane.st(&b_x, i, acc / diag);
        });
    }
    drop(b_x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_simt::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40())
    }

    /// Builds a CSR from dense rows (tests only).
    fn csr_from_dense(rows: &[Vec<f64>]) -> Csr {
        let dim = rows.len();
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in rows {
            for (c, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            row_ptr,
            col_idx,
            values,
            dim,
        }
    }

    #[test]
    fn lower_solve_known_system() {
        // L = [[2,0,0],[1,3,0],[0,4,5]], b = [2, 7, 23] → x = [1, 2, 3].
        let l = csr_from_dense(&[
            vec![2.0, 0.0, 0.0],
            vec![1.0, 3.0, 0.0],
            vec![0.0, 4.0, 5.0],
        ]);
        let sched = levels_lower(&l);
        let d = dev();
        let x = solve_lower(&d, &l, &[2.0, 7.0, 23.0], &sched, false);
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_diag_lower_solve() {
        // L with implicit unit diagonal: strictly lower entries only.
        let l = csr_from_dense(&[
            vec![0.0, 0.0, 0.0],
            vec![2.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ]);
        let sched = levels_lower(&l);
        let d = dev();
        // x0 = 1; x1 = 4 - 2*1 = 2; x2 = 6 - 1 - 2 = 3.
        let x = solve_lower(&d, &l, &[1.0, 4.0, 6.0], &sched, true);
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_solve_known_system() {
        // U = [[2,1,0],[0,3,4],[0,0,5]], x = [1,2,3] → b = [4, 18, 15].
        let u = csr_from_dense(&[
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 4.0],
            vec![0.0, 0.0, 5.0],
        ]);
        let sched = levels_upper(&u);
        let d = dev();
        let x = solve_upper(&d, &u, &[4.0, 18.0, 15.0], &sched);
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let l = csr_from_dense(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let sched = levels_lower(&l);
        assert_eq!(sched.depth(), 1);
        assert_eq!(sched.avg_width(), 2.0);
    }

    #[test]
    fn chain_matrix_is_fully_sequential() {
        // Bidiagonal: every row depends on the previous — n levels.
        let n = 20;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 1.0;
            if i > 0 {
                row[i - 1] = 0.5;
            }
        }
        let l = csr_from_dense(&rows);
        let sched = levels_lower(&l);
        assert_eq!(sched.depth(), n);
        assert_eq!(sched.avg_width(), 1.0);
    }

    #[test]
    fn level_depth_drives_launch_count() {
        // A sequential chain issues one launch per level; the device trace
        // must show exactly that many TSS launches.
        let n = 30;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 2.0;
            if i > 0 {
                row[i - 1] = 1.0;
            }
        }
        let l = csr_from_dense(&rows);
        let sched = levels_lower(&l);
        let d = dev();
        let b = vec![1.0; n];
        let _ = solve_lower(&d, &l, &b, &sched, false);
        let by = d.trace().by_kernel();
        assert_eq!(by["tss.lower_level"].0.launches, n as u64);
    }

    #[test]
    fn random_lower_solve_matches_reference() {
        // Lower triangle of a random diagonally-dominant matrix.
        let n = 64;
        let mut rows = vec![vec![0.0; n]; n];
        let mut s = 12345u64;
        let mut rnd = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            for j in 0..i {
                if rnd() < 0.2 {
                    rows[i][j] = rnd() - 0.5;
                }
            }
            rows[i][i] = 2.0 + rnd();
        }
        let l = csr_from_dense(&rows);
        let sched = levels_lower(&l);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let d = dev();
        let x = solve_lower(&d, &l, &b, &sched, false);
        // Forward-substitution reference.
        let mut x_ref = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= rows[i][j] * x_ref[j];
            }
            x_ref[i] = acc / rows[i][i];
        }
        for i in 0..n {
            assert!((x[i] - x_ref[i]).abs() < 1e-10, "i={i}");
        }
    }
}
