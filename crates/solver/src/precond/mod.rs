//! The preconditioner candidates of §IV-A.
//!
//! "The preconditioners of DDA on the GPU prefer the low cost in
//! construction and implementation even if their performance is also
//! usually low." Three candidates are compared in Table I:
//!
//! | | construction | apply | convergence |
//! |---|---|---|---|
//! | [`BlockJacobi`] | trivial (6×6 inverses) | one block-diagonal product | slowest |
//! | [`SsorAi`] | trivial (reuses the block inverses) | two triangular SpMVs | middle |
//! | [`Ilu0`] | expensive factorization | two level-scheduled solves | fastest |
//!
//! ILU wins the iteration count (the paper: 93 vs 141 vs 275) and still
//! loses the total time by an order of magnitude because the triangular
//! solves and the factorization dominate.

mod amg2;
mod block_jacobi;
mod identity;
mod ilu0;
mod jacobi;
mod ssor_ai;

pub use amg2::Amg2;
pub use block_jacobi::BlockJacobi;
pub use identity::Identity;
pub use ilu0::Ilu0;
pub use jacobi::Jacobi;
pub use ssor_ai::SsorAi;

use dda_simt::Device;
use serde::{Deserialize, Serialize};

/// Preconditioner selection for the equation-solving module: the paper's
/// Table I candidates plus the two-level block-AMG top rung. This is the
/// *policy* enum the pipeline stores in its parameters and reports — the
/// constructed preconditioners themselves implement [`Preconditioner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PrecondKind {
    /// Plain CG.
    None,
    /// Block-Jacobi (the paper's recommendation together with SSOR).
    #[default]
    BlockJacobi,
    /// SSOR approximate inverse.
    SsorAi,
    /// ILU(0) with level-scheduled triangular solves.
    Ilu0,
    /// Scalar-diagonal Jacobi — the last rung of the degradation ladder.
    Jacobi,
    /// Two-level block-AMG (greedy aggregation + Galerkin coarse solve).
    Amg2,
}

impl PrecondKind {
    /// Short rung name used in step reports and benchmark records.
    pub fn name(self) -> &'static str {
        match self {
            PrecondKind::None => "none",
            PrecondKind::BlockJacobi => "BJ",
            PrecondKind::SsorAi => "SSOR-AI",
            PrecondKind::Ilu0 => "ILU0",
            PrecondKind::Jacobi => "Jacobi",
            PrecondKind::Amg2 => "AMG2",
        }
    }

    /// The degradation ladder rooted at `self`: on construction failure or
    /// solver breakdown the pipeline descends AMG2 → ILU0 → SSOR-AI →
    /// Block-Jacobi → Jacobi, each rung cheaper and harder to break than
    /// the one above (Jacobi only needs a nonzero scalar diagonal). Plain
    /// CG has no rungs to descend to — a breakdown there is the operator's
    /// fault, not the preconditioner's.
    pub fn ladder(self) -> &'static [PrecondKind] {
        match self {
            PrecondKind::None => &[PrecondKind::None],
            PrecondKind::Amg2 => &[
                PrecondKind::Amg2,
                PrecondKind::Ilu0,
                PrecondKind::SsorAi,
                PrecondKind::BlockJacobi,
                PrecondKind::Jacobi,
            ],
            PrecondKind::Ilu0 => &[
                PrecondKind::Ilu0,
                PrecondKind::SsorAi,
                PrecondKind::BlockJacobi,
                PrecondKind::Jacobi,
            ],
            PrecondKind::SsorAi => &[
                PrecondKind::SsorAi,
                PrecondKind::BlockJacobi,
                PrecondKind::Jacobi,
            ],
            PrecondKind::BlockJacobi => &[PrecondKind::BlockJacobi, PrecondKind::Jacobi],
            PrecondKind::Jacobi => &[PrecondKind::Jacobi],
        }
    }
}

/// Structured construction failure: the matrix handed to a preconditioner
/// cannot be factored. These feed the pipeline's degradation ladder
/// (ILU0 → SSOR-AI → Block-Jacobi → Jacobi): a rung that fails to
/// construct is skipped instead of panicking mid-solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondError {
    /// A pivot was zero, nearly zero (relative to the largest diagonal
    /// entry), or non-finite during ILU(0) factorization.
    ZeroPivot {
        /// Scalar row of the offending pivot.
        row: usize,
        /// The pivot value encountered.
        pivot: f64,
    },
    /// A structurally required diagonal entry is absent from the pattern.
    MissingDiagonal {
        /// Scalar row with no stored diagonal.
        row: usize,
    },
    /// A 6×6 diagonal sub-matrix is singular or non-finite (Block-Jacobi
    /// and SSOR-AI construction).
    SingularBlock {
        /// Index of the offending block row.
        block: usize,
    },
    /// A scalar diagonal entry is zero or non-finite (point Jacobi).
    ZeroDiagonal {
        /// Scalar row of the offending entry.
        row: usize,
    },
    /// The AMG2 Galerkin coarse operator could not be Cholesky-factored
    /// (zero, negative, or non-finite pivot). A valid SPD fine operator
    /// cannot produce this — `PᵀAP` inherits definiteness — so in practice
    /// it marks corrupted input or an injected fault, and the ladder
    /// descends to ILU0.
    SingularCoarse {
        /// Scalar row of the offending coarse pivot.
        row: usize,
    },
}

impl core::fmt::Display for PrecondError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PrecondError::ZeroPivot { row, pivot } => {
                write!(f, "zero or non-finite pivot {pivot} at row {row}")
            }
            PrecondError::MissingDiagonal { row } => {
                write!(f, "diagonal entry missing at row {row}")
            }
            PrecondError::SingularBlock { block } => {
                write!(f, "singular diagonal sub-matrix {block}")
            }
            PrecondError::ZeroDiagonal { row } => {
                write!(f, "zero or non-finite diagonal at scalar row {row}")
            }
            PrecondError::SingularCoarse { row } => {
                write!(f, "singular AMG2 coarse operator at scalar row {row}")
            }
        }
    }
}

/// Application interface: `z = M⁻¹ r` on the device.
pub trait Preconditioner {
    /// Short name used in reports ("BJ", "SSOR", "ILU").
    fn name(&self) -> &'static str;
    /// Applies the preconditioner.
    fn apply(&self, dev: &Device, r: &[f64]) -> Vec<f64>;
    /// Flat row-major 6×6 block-diagonal inverses (36 scalars per block
    /// row) when [`Preconditioner::apply`] is exactly the block-diagonal
    /// product `z = D⁻¹ r` — the hook that lets the fused PCG compute `z`
    /// inside its reduction kernel instead of a separate apply launch.
    /// `None` (the default) sends the fused solver down its fallback path.
    fn block_diag_inv(&self) -> Option<&[f64]> {
        None
    }
    /// fp32 shadow of [`Preconditioner::block_diag_inv`], maintained by
    /// block-diagonal preconditioners so the mixed solver's fp32 inner
    /// loop streams the inverses at half the bytes. `None` (the default)
    /// makes the inner loop bridge through the fp64 apply instead.
    fn block_diag_inv_f32(&self) -> Option<&[f32]> {
        None
    }
    /// True when apply is the identity (`z = r`), which the fused PCG also
    /// folds into its reduction kernel.
    fn is_identity(&self) -> bool {
        false
    }
}
