//! Contact initialization (§III-B) — and the data-classification ablation.
//!
//! After transfer, every contact's geometric parameters (current gap,
//! contact edge ratio) are refreshed and new contacts get their initial
//! state. "On the basis of the data classification, their workflows are
//! clear and easy to implement on the GPU": the classified path compacts
//! VE / VV1 / VV2 into homogeneous arrays and runs one uniform kernel per
//! class; the monolithic path (what a direct port would do) runs a single
//! kernel that branches on the class per thread. Experiment D1 compares
//! the two — the paper reports the classification saving 20.576 µs and
//! 11.18 % of branch divergence in this module.

use super::soa::GeomSoa;
use super::types::{Contact, ContactKind, ContactState};
use crate::system::BlockSystem;
use dda_geom::intersect::vertex_edge_gap;
use dda_geom::Vec2;
use dda_simt::primitives::compact_indices;
use dda_simt::serial::CpuCounter;
use dda_simt::Device;

/// Pure per-contact initialization shared by all paths: refreshes the gap
/// and edge ratio from current geometry and closes near-touching open
/// contacts. Returns the updated contact.
fn init_one(mut c: Contact, p1: Vec2, p2: Vec2, p3: Vec2, touch: f64) -> Contact {
    let gap = vertex_edge_gap(p1, p2, p3);
    c.normal_disp = gap;
    // Fresh contacts received their geometric edge ratio from the narrow
    // phase; transferred contacts carry their historical reference point —
    // the shear spring's anchor — which must NOT be recomputed here ("the
    // contact edge ratio of the previous step [is] transferred", §III-B).
    // Only a ratio that drifted off the edge is clamped back.
    c.edge_ratio = c.edge_ratio.clamp(0.0, 1.0);
    if c.state == ContactState::Open && gap <= touch {
        c.state = ContactState::Lock;
        c.prev_iter_state = ContactState::Lock;
    }
    c
}

/// Kind-specific extra work (the classified kernels each do *only* theirs;
/// the monolithic kernel branches between them).
fn kind_extra_flops(kind: ContactKind) -> (u32, u32) {
    // (plain flops, special-function evaluations): the initialization
    // computes the spring geometry — projections and lengths for VE, the
    // parallel-pair bookkeeping for VV1, and the corner angle evaluation
    // (atan2/tan) for VV2, which the paper initializes "individually".
    match kind {
        ContactKind::Ve => (40, 1),
        ContactKind::Vv1 => (120, 4),
        ContactKind::Vv2 => (300, 8),
    }
}

/// Serial reference initialization.
pub fn init_contacts_serial(
    sys: &BlockSystem,
    contacts: &mut [Contact],
    touch: f64,
    counter: &mut CpuCounter,
) {
    for c in contacts.iter_mut() {
        let p1 = sys.blocks[c.i as usize].poly.vertex(c.vertex as usize);
        let seg = sys.blocks[c.j as usize].poly.edge(c.edge as usize);
        *c = init_one(*c, p1, seg.a, seg.b, touch);
        let (f, s) = kind_extra_flops(c.kind);
        counter.flop(20 + f as u64);
        counter.special(s as u64);
        counter.bytes(6 * 8 + 64);
    }
}

/// Loads the contact's geometry through device buffers (instrumented).
fn load_contact_points(
    lane: &mut dda_simt::Lane,
    c: &Contact,
    b_vx: &dda_simt::GBuf<f64>,
    b_vy: &dda_simt::GBuf<f64>,
    b_vp: &dda_simt::GBuf<u32>,
) -> (Vec2, Vec2, Vec2) {
    let i0 = lane.ld_tex(b_vp, c.i as usize) as usize;
    let j0 = lane.ld_tex(b_vp, c.j as usize) as usize;
    let nj = lane.ld_tex(b_vp, c.j as usize + 1) as usize - j0;
    let p1 = Vec2::new(
        lane.ld_tex(b_vx, i0 + c.vertex as usize),
        lane.ld_tex(b_vy, i0 + c.vertex as usize),
    );
    let e = c.edge as usize;
    let p2 = Vec2::new(lane.ld_tex(b_vx, j0 + e), lane.ld_tex(b_vy, j0 + e));
    let e1 = (e + 1) % nj;
    let p3 = Vec2::new(lane.ld_tex(b_vx, j0 + e1), lane.ld_tex(b_vy, j0 + e1));
    (p1, p2, p3)
}

/// Monolithic initialization: one kernel, per-thread branch on the contact
/// kind — the divergent baseline.
pub fn init_contacts_monolithic(dev: &Device, soa: &GeomSoa, contacts: &mut [Contact], touch: f64) {
    if contacts.is_empty() {
        return;
    }
    let n = contacts.len();
    let b_vx = dev.bind_ro(&soa.vx);
    let b_vy = dev.bind_ro(&soa.vy);
    let b_vp = dev.bind_ro(&soa.vptr);
    let b_c = dev.bind(contacts);
    dev.launch("init.monolithic", n, |lane| {
        let c = lane.ld(&b_c, lane.gid);
        let (p1, p2, p3) = load_contact_points(lane, &c, &b_vx, &b_vy, &b_vp);
        lane.flop(20);
        // The kind branches every thread must evaluate.
        let is_ve = lane.branch(10, c.kind == ContactKind::Ve);
        let is_vv1 = lane.branch(11, c.kind == ContactKind::Vv1);
        let (f, s) = kind_extra_flops(c.kind);
        let _ = (is_ve, is_vv1);
        lane.flop(f);
        lane.special(s);
        lane.st(&b_c, lane.gid, init_one(c, p1, p2, p3, touch));
    });
}

/// Classified initialization: the contacts are regrouped into three
/// *successive* arrays — "valid data will be stored in a successive array"
/// (§III-B) — and each class runs one uniform kernel over its contiguous
/// range (no kind branch, coalesced loads, homogeneous warp work).
///
/// The array is left in kind-grouped order; nothing downstream depends on
/// the previous ordering (transfer re-sorts the *next* step's contacts by
/// key and queries these as-is).
pub fn init_contacts_classified(dev: &Device, soa: &GeomSoa, contacts: &mut [Contact], touch: f64) {
    if contacts.is_empty() {
        return;
    }
    let n = contacts.len();

    // Classification machinery: kind flags + scan-based compaction per
    // class, then one gather pass that regroups the array.
    let mut kind_codes = vec![0u32; n];
    {
        let b_c = dev.bind_ro(&*contacts);
        let b_k = dev.bind(&mut kind_codes);
        dev.launch("init.flag_kinds", n, |lane| {
            let c = lane.ld(&b_c, lane.gid);
            lane.st(&b_k, lane.gid, c.kind as u32);
        });
    }
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(3);
    let mut perm: Vec<u32> = Vec::with_capacity(n);
    for kind in [ContactKind::Ve, ContactKind::Vv1, ContactKind::Vv2] {
        let flags: Vec<u32> = kind_codes
            .iter()
            .map(|&k| u32::from(k == kind as u32))
            .collect();
        let idxs = compact_indices(dev, &flags);
        ranges.push((perm.len(), perm.len() + idxs.len()));
        perm.extend_from_slice(&idxs);
    }
    let mut grouped = vec![contacts[0]; n];
    {
        let b_c = dev.bind_ro(&*contacts);
        let b_perm = dev.bind_ro(&perm);
        let b_out = dev.bind(&mut grouped);
        dev.launch("init.regroup", n, |lane| {
            let src = lane.ld(&b_perm, lane.gid) as usize;
            let c = lane.ld(&b_c, src);
            lane.st(&b_out, lane.gid, c);
        });
    }
    contacts.copy_from_slice(&grouped);

    // Per-class uniform kernels over contiguous ranges.
    let b_vx = dev.bind_ro(&soa.vx);
    let b_vy = dev.bind_ro(&soa.vy);
    let b_vp = dev.bind_ro(&soa.vptr);
    for (kind, &(lo, hi)) in [ContactKind::Ve, ContactKind::Vv1, ContactKind::Vv2]
        .iter()
        .zip(&ranges)
    {
        if hi == lo {
            continue;
        }
        let b_c = dev.bind(&mut *contacts);
        let name = match kind {
            ContactKind::Ve => "init.ve",
            ContactKind::Vv1 => "init.vv1",
            ContactKind::Vv2 => "init.vv2",
        };
        let (f, s) = kind_extra_flops(*kind);
        dev.launch(name, hi - lo, |lane| {
            let pos = lo + lane.gid;
            let c = lane.ld(&b_c, pos);
            let (p1, p2, p3) = load_contact_points(lane, &c, &b_vx, &b_vy, &b_vp);
            lane.flop(20 + f);
            lane.special(s);
            lane.st(&b_c, pos, init_one(c, p1, p2, p3, touch));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::contact::narrow::narrow_phase_serial;
    use crate::material::{BlockMaterial, JointMaterial};
    use dda_geom::Polygon;
    use dda_simt::DeviceProfile;

    fn stack() -> BlockSystem {
        BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0).fixed(),
                Block::new(Polygon::rect(0.0, 0.0, 1.0, 1.0), 0),
                Block::new(Polygon::rect(1.0, 0.0, 2.0, 1.0), 0),
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        )
    }

    fn contacts_of(sys: &BlockSystem) -> Vec<Contact> {
        let mut c = CpuCounter::new();
        narrow_phase_serial(sys, &[(0, 1), (0, 2), (1, 2)], 0.05, &mut c)
    }

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_k40()).with_conflict_checking(true)
    }

    #[test]
    fn touching_contacts_become_locked() {
        let sys = stack();
        let mut contacts = contacts_of(&sys);
        let mut cnt = CpuCounter::new();
        init_contacts_serial(&sys, &mut contacts, 0.01, &mut cnt);
        assert!(!contacts.is_empty());
        for c in &contacts {
            assert_eq!(c.state, ContactState::Lock, "{c:?}");
            assert!(c.normal_disp.abs() < 1e-9, "resting gap ~0: {c:?}");
        }
    }

    #[test]
    fn separated_contacts_stay_open() {
        let sys = BlockSystem::new(
            vec![
                Block::new(Polygon::rect(-5.0, -1.0, 5.0, 0.0), 0),
                Block::new(Polygon::rect(0.0, 0.03, 1.0, 1.0), 0), // 3 cm above
            ],
            BlockMaterial::rock(),
            JointMaterial::frictional(30.0),
        );
        let mut c0 = CpuCounter::new();
        let mut contacts = narrow_phase_serial(&sys, &[(0, 1)], 0.1, &mut c0);
        assert!(!contacts.is_empty());
        let mut cnt = CpuCounter::new();
        init_contacts_serial(&sys, &mut contacts, 0.01, &mut cnt);
        for c in &contacts {
            assert_eq!(c.state, ContactState::Open);
            assert!(c.normal_disp > 0.02);
        }
    }

    #[test]
    fn monolithic_and_classified_agree_with_serial() {
        let sys = stack();
        let base = contacts_of(&sys);
        let soa = GeomSoa::build(&sys);

        let mut serial = base.clone();
        let mut cnt = CpuCounter::new();
        init_contacts_serial(&sys, &mut serial, 0.01, &mut cnt);

        let d1 = dev();
        let mut mono = base.clone();
        init_contacts_monolithic(&d1, &soa, &mut mono, 0.01);
        assert_eq!(serial, mono);

        let d2 = dev();
        let mut class = base.clone();
        init_contacts_classified(&d2, &soa, &mut class, 0.01);
        // The classified path regroups by kind; compare as key-sorted sets.
        let mut serial_sorted = serial.clone();
        serial_sorted.sort_by_key(|c| c.key());
        class.sort_by_key(|c| c.key());
        assert_eq!(serial_sorted, class);
    }

    #[test]
    fn classification_reduces_divergence() {
        // A mixed population of contact kinds: the monolithic kernel's kind
        // branches diverge, the classified kernels' do not.
        let sys = stack();
        let base = contacts_of(&sys);
        // The stack produces VE and VV1 contacts; that mix is enough.
        let kinds: std::collections::HashSet<_> = base.iter().map(|c| c.kind).collect();
        assert!(kinds.len() >= 2, "need a kind mix: {kinds:?}");
        let soa = GeomSoa::build(&sys);

        let d1 = dev();
        let mut mono = base.clone();
        init_contacts_monolithic(&d1, &soa, &mut mono, 0.01);
        let mono_stats = d1.trace().by_kernel()["init.monolithic"].0;

        let d2 = dev();
        let mut class = base.clone();
        init_contacts_classified(&d2, &soa, &mut class, 0.01);
        let class_init: u64 = d2
            .trace()
            .by_kernel()
            .iter()
            .filter(|(k, _)| k.starts_with("init."))
            .map(|(_, (s, _))| s.divergent_branch_groups)
            .sum();

        assert!(mono_stats.divergent_branch_groups > 0);
        assert_eq!(class_init, 0, "classified init kernels must be uniform");
    }

    #[test]
    fn empty_contacts_no_op() {
        let sys = stack();
        let soa = GeomSoa::build(&sys);
        let d = dev();
        let mut none: Vec<Contact> = vec![];
        init_contacts_monolithic(&d, &soa, &mut none, 0.01);
        init_contacts_classified(&d, &soa, &mut none, 0.01);
        assert!(d.trace().is_empty());
    }
}
